#!/usr/bin/env bash
# Single-command regeneration of every simulation-derived artifact.
#
# Run this after any change that legitimately alters simulation results
# (kernel behaviour, power model, workload generation). It rebuilds the
# whole invalidation chain in dependency order:
#
#   1. golden.txt        — the bit-identity digest. Regenerating it changes
#                          the code-version salt baked into every store key,
#                          so every previously stored record stops being
#                          addressable.
#   2. results.store     — recreated from scratch (the schema/salt changed,
#                          so none of the old records could be recalled
#                          anyway) by the full experiments sweep.
#   3. RESULTS.md +      — re-rendered byte-identically from the fresh store
#      EXPERIMENTS.md      by the report binary (--populate fills any figure
#                          cell the sweep did not cover).
#   4. report --check    — proves the committed docs now match the store,
#                          i.e. CI's docs gate will pass.
#
# Each `cargo run` rebuilds first, so step 2 compiles against the
# golden.txt written in step 1 (the salt is compiled in via include_str!).
#
# Crash safety: every artifact is written to a scratch file and moved into
# place only once its producing step succeeded, so an interrupted run (crash,
# ^C, disk-full) can never leave a half-written golden.txt or store behind —
# the previous artifacts survive intact.

set -euo pipefail
cd "$(dirname "$0")/.."

# The scratch dir lives next to the artifacts so every `mv` is an atomic
# same-filesystem rename, not a non-atomic cross-device copy.
scratch="$(mktemp -d .regen-scratch.XXXXXX)"
trap 'rm -rf "$scratch"' EXIT

echo "== [1/4] regenerating golden.txt (bit-identity digest + store salt) =="
cargo run --release -p flywheel-bench --bin golden > "$scratch/golden.txt"
mv "$scratch/golden.txt" golden.txt

echo "== [2/4] repopulating results.store (full experiments sweep) =="
cargo run --release -p flywheel-bench --bin experiments -- all --store "$scratch/results.store"
mv "$scratch/results.store" results.store

echo "== [3/4] re-rendering RESULTS.md and EXPERIMENTS.md from the store =="
cp EXPERIMENTS.md "$scratch/EXPERIMENTS.md"
cargo run --release -p flywheel-report --bin report -- --populate \
    --results "$scratch/RESULTS.md" --experiments "$scratch/EXPERIMENTS.md"
mv "$scratch/RESULTS.md" RESULTS.md
mv "$scratch/EXPERIMENTS.md" EXPERIMENTS.md

echo "== [4/4] verifying the docs gate =="
cargo run --release -p flywheel-report --bin report -- --check

echo "regen complete: golden.txt, results.store, RESULTS.md, EXPERIMENTS.md and BENCH.json are consistent"
