#!/usr/bin/env bash
# Single-command regeneration of every simulation-derived artifact.
#
# Run this after any change that legitimately alters simulation results
# (kernel behaviour, power model, workload generation). It rebuilds the
# whole invalidation chain in dependency order:
#
#   1. golden.txt        — the bit-identity digest. Regenerating it changes
#                          the code-version salt baked into every store key,
#                          so every previously stored record stops being
#                          addressable.
#   2. results.store     — recreated from scratch (the schema/salt changed,
#                          so none of the old records could be recalled
#                          anyway) by the full experiments sweep.
#   3. RESULTS.md +      — re-rendered byte-identically from the fresh store
#      EXPERIMENTS.md      by the report binary (--populate fills any figure
#                          cell the sweep did not cover).
#   4. report --check    — proves the committed docs now match the store,
#                          i.e. CI's docs gate will pass.
#
# Each `cargo run` rebuilds first, so step 2 compiles against the
# golden.txt written in step 1 (the salt is compiled in via include_str!).

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== [1/4] regenerating golden.txt (bit-identity digest + store salt) =="
cargo run --release -p flywheel-bench --bin golden > golden.txt

echo "== [2/4] repopulating results.store (full experiments sweep) =="
rm -f results.store
cargo run --release -p flywheel-bench --bin experiments -- all --store results.store

echo "== [3/4] re-rendering RESULTS.md and EXPERIMENTS.md from the store =="
cargo run --release -p flywheel-report --bin report -- --populate

echo "== [4/4] verifying the docs gate =="
cargo run --release -p flywheel-report --bin report -- --check

echo "regen complete: golden.txt, results.store, RESULTS.md, EXPERIMENTS.md and BENCH.json are consistent"
