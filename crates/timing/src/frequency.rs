//! Module clock frequencies and clock-domain planning.
//!
//! Table 1 of the paper lists, per process technology, the clock frequency each
//! module could sustain given its access latency and degree of pipelining. The
//! baseline machine is forced to run every domain at the Issue Window frequency
//! (single-cycle wake-up/select); the Flywheel machine lets the front-end and (in
//! trace-execution mode) the back-end run faster. This module derives those
//! frequencies from the latency models and packages the clock-domain configuration
//! consumed by the simulators.

use crate::{CacheGeometry, IssueWindowGeometry, RegFileGeometry, StructureLatency, TechNode};

/// Converts an access latency (ps) pipelined over `cycles` cycles into the maximum
/// sustainable clock frequency in MHz.
fn freq_mhz(latency_ps: f64, cycles: u32) -> f64 {
    assert!(latency_ps > 0.0);
    cycles as f64 * 1.0e6 / latency_ps
}

/// The clock frequency each pipeline module can sustain at a given technology node
/// (the reproduction's version of the paper's Table 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModuleFrequencies {
    /// Technology node these frequencies are for.
    pub node: TechNode,
    /// 128-entry, 6-wide Issue Window with single-cycle wake-up/select.
    pub issue_window_mhz: f64,
    /// 64 KB two-way I-cache, two-cycle pipelined access.
    pub icache_mhz: f64,
    /// 64 KB four-way dual-ported D-cache, two-cycle pipelined access.
    pub dcache_mhz: f64,
    /// 192-entry baseline register file, single-cycle access.
    pub regfile_mhz: f64,
    /// 128 KB Execution Cache, three-cycle pipelined access.
    pub execution_cache_mhz: f64,
    /// 512-entry Flywheel register file, two-cycle access.
    pub flywheel_regfile_mhz: f64,
}

impl ModuleFrequencies {
    /// Computes the module frequencies for `node` from the latency models.
    pub fn for_node(node: TechNode) -> Self {
        ModuleFrequencies {
            node,
            issue_window_mhz: freq_mhz(IssueWindowGeometry::paper_baseline().latency_ps(node), 1),
            icache_mhz: freq_mhz(CacheGeometry::paper_icache().latency_ps(node), 2),
            dcache_mhz: freq_mhz(CacheGeometry::paper_dcache().latency_ps(node), 2),
            regfile_mhz: freq_mhz(RegFileGeometry::paper_baseline().latency_ps(node), 1),
            execution_cache_mhz: freq_mhz(
                CacheGeometry::paper_execution_cache().latency_ps(node),
                3,
            ),
            flywheel_regfile_mhz: freq_mhz(RegFileGeometry::paper_flywheel().latency_ps(node), 2),
        }
    }

    /// The frequency the fully synchronous baseline runs at: everything is held back
    /// to the slowest single-cycle structure, the Issue Window.
    pub fn baseline_clock_mhz(&self) -> f64 {
        self.issue_window_mhz
    }

    /// Maximum front-end speed-up over the baseline clock (limited by the I-cache).
    pub fn max_frontend_speedup(&self) -> f64 {
        self.icache_mhz / self.issue_window_mhz
    }

    /// Maximum trace-execution-mode back-end speed-up over the baseline clock
    /// (limited by the Execution Cache, the Flywheel register file and the D-cache).
    pub fn max_backend_speedup(&self) -> f64 {
        let limit = self
            .execution_cache_mhz
            .min(self.flywheel_regfile_mhz)
            .min(self.dcache_mhz);
        limit / self.issue_window_mhz
    }
}

/// The clock-domain configuration of one simulation run.
///
/// Periods are in integer picoseconds; the simulators advance a global picosecond
/// timeline and tick each domain on its own edges, so any rational frequency ratio is
/// supported. Speed-ups follow the paper's notation: `FE25` means the front-end clock
/// is 25 % faster than the baseline clock, `BE50` means the execution core is 50 %
/// faster while in trace-execution mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClockPlan {
    /// Period of the baseline (Issue Window) clock, in ps.
    pub baseline_period_ps: u64,
    /// Period of the front-end clock, in ps.
    pub frontend_period_ps: u64,
    /// Period of the execution core clock while replaying from the Execution Cache,
    /// in ps.
    pub backend_period_ps: u64,
}

impl ClockPlan {
    /// A fully synchronous plan: every domain runs at the baseline clock of `node`.
    pub fn synchronous(node: TechNode) -> Self {
        let period = ModuleFrequencies::for_node(node).baseline_clock_mhz();
        let period_ps = (1.0e6 / period).round() as u64;
        ClockPlan {
            baseline_period_ps: period_ps,
            frontend_period_ps: period_ps,
            backend_period_ps: period_ps,
        }
    }

    /// A Flywheel plan for `node` with the given percentage speed-ups over the
    /// baseline clock (e.g. `with_speedups(node, 50, 50)` is the paper's
    /// `FE50%, BE50%` configuration).
    pub fn with_speedups(node: TechNode, frontend_pct: u32, backend_pct: u32) -> Self {
        let base = ClockPlan::synchronous(node).baseline_period_ps;
        ClockPlan {
            baseline_period_ps: base,
            frontend_period_ps: Self::speed_up(base, frontend_pct),
            backend_period_ps: Self::speed_up(base, backend_pct),
        }
    }

    /// A plan expressed directly in periods (useful for tests).
    ///
    /// # Panics
    ///
    /// Panics if any period is zero.
    pub fn from_periods(baseline_ps: u64, frontend_ps: u64, backend_ps: u64) -> Self {
        assert!(baseline_ps > 0 && frontend_ps > 0 && backend_ps > 0);
        ClockPlan {
            baseline_period_ps: baseline_ps,
            frontend_period_ps: frontend_ps,
            backend_period_ps: backend_ps,
        }
    }

    fn speed_up(period_ps: u64, pct: u32) -> u64 {
        ((period_ps as f64) / (1.0 + pct as f64 / 100.0))
            .round()
            .max(1.0) as u64
    }

    /// Front-end speed-up factor over the baseline clock.
    pub fn frontend_speedup(&self) -> f64 {
        self.baseline_period_ps as f64 / self.frontend_period_ps as f64
    }

    /// Back-end (trace-execution) speed-up factor over the baseline clock.
    pub fn backend_speedup(&self) -> f64 {
        self.baseline_period_ps as f64 / self.backend_period_ps as f64
    }

    /// Whether the plan is fully synchronous (all periods identical).
    pub fn is_synchronous(&self) -> bool {
        self.baseline_period_ps == self.frontend_period_ps
            && self.baseline_period_ps == self.backend_period_ps
    }

    /// Checks the plan against the achievable module frequencies at `node` and
    /// returns the violated domain names, if any.
    pub fn validate_against(&self, node: TechNode) -> Vec<&'static str> {
        let freqs = ModuleFrequencies::for_node(node);
        let mut violations = Vec::new();
        // Allow a 10% modelling margin over the analytic estimates.
        if self.frontend_speedup() > freqs.max_frontend_speedup() * 1.10 {
            violations.push("front-end");
        }
        if self.backend_speedup() > freqs.max_backend_speedup() * 1.10 {
            violations.push("back-end");
        }
        violations
    }
}

/// Clock plan for a load/store queue split into its own clock domain.
///
/// Table 1 gives the D-cache (and thus the memory pipeline feeding it) a higher
/// sustainable frequency than the Issue Window at every node. The multi-domain
/// machine exploits that headroom by clocking the LSQ + D-cache access pipeline
/// at the D-cache frequency while the rest of the execution core stays on the
/// back-end clock, paying a synchronizer crossing in each direction per load.
///
/// This is deliberately a separate type from [`ClockPlan`]: the two-domain plan
/// feeds content-addressed store keys through its `Debug` rendering, so it must
/// never grow fields. A third domain composes alongside it instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LsqDomainPlan {
    /// Period of the LSQ/D-cache domain clock, in ps.
    pub period_ps: u64,
    /// Synchronizer latency, in LSQ-domain producer/consumer cycles, charged on
    /// each crossing between the execution core and the LSQ domain.
    pub sync_cycles: u32,
}

impl LsqDomainPlan {
    /// The paper-geometry LSQ domain for `node`: the D-cache's Table 1 frequency
    /// with a one-cycle synchronizer on each crossing.
    pub fn paper(node: TechNode) -> Self {
        let freqs = ModuleFrequencies::for_node(node);
        let period_ps = ((1.0e6 / freqs.dcache_mhz).round() as u64).max(1);
        LsqDomainPlan {
            period_ps,
            sync_cycles: 1,
        }
    }

    /// A plan expressed directly in a period (useful for tests).
    ///
    /// # Panics
    ///
    /// Panics if the period is zero.
    pub fn from_period(period_ps: u64, sync_cycles: u32) -> Self {
        assert!(period_ps > 0);
        LsqDomainPlan {
            period_ps,
            sync_cycles,
        }
    }

    /// Speed-up of the LSQ domain over the back-end period `be_period_ps`.
    pub fn speedup_over(&self, be_period_ps: u64) -> f64 {
        be_period_ps as f64 / self.period_ps as f64
    }

    /// Checks the plan against the achievable D-cache frequency at `node` and
    /// returns the violated domain names, if any (mirrors
    /// [`ClockPlan::validate_against`], including its 10% modelling margin).
    pub fn validate_against(&self, node: TechNode) -> Vec<&'static str> {
        let freqs = ModuleFrequencies::for_node(node);
        let plan_mhz = 1.0e6 / self.period_ps as f64;
        if plan_mhz > freqs.dcache_mhz * 1.10 {
            vec!["lsq"]
        } else {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_frequencies_track_paper_values() {
        // Paper Table 1 at 0.18um: IW 950, I$ 1300, D$ 1000, RF 1150, EC 1000,
        // Flywheel RF 1050 (MHz). Allow ~12% model error.
        let f = ModuleFrequencies::for_node(TechNode::N180);
        let close = |got: f64, want: f64| (got - want).abs() / want < 0.12;
        assert!(
            close(f.issue_window_mhz, 950.0),
            "IW {}",
            f.issue_window_mhz
        );
        assert!(close(f.icache_mhz, 1300.0), "I$ {}", f.icache_mhz);
        assert!(close(f.dcache_mhz, 1000.0), "D$ {}", f.dcache_mhz);
        assert!(close(f.regfile_mhz, 1150.0), "RF {}", f.regfile_mhz);
        assert!(
            close(f.execution_cache_mhz, 1000.0),
            "EC {}",
            f.execution_cache_mhz
        );
        assert!(
            close(f.flywheel_regfile_mhz, 1050.0),
            "FRF {}",
            f.flywheel_regfile_mhz
        );
    }

    #[test]
    fn frequencies_grow_with_newer_nodes() {
        let mut prev = 0.0;
        for node in TechNode::all() {
            let f = ModuleFrequencies::for_node(*node);
            assert!(f.issue_window_mhz > prev);
            prev = f.issue_window_mhz;
        }
    }

    #[test]
    fn frontend_headroom_approaches_two_at_60nm() {
        // Section 4: "in future process technologies ... the front-end of the
        // pipeline will support twice the frequency of the Issue Window, while the
        // execution core will also support a higher clock speed, but by only 50%".
        let f = ModuleFrequencies::for_node(TechNode::N60);
        assert!(
            f.max_frontend_speedup() > 1.8,
            "{}",
            f.max_frontend_speedup()
        );
        let be = f.max_backend_speedup();
        assert!((1.25..1.8).contains(&be), "backend speedup {be}");
        // At the older 0.18um node the headroom is smaller.
        let old = ModuleFrequencies::for_node(TechNode::N180);
        assert!(old.max_frontend_speedup() < f.max_frontend_speedup());
    }

    #[test]
    fn clock_plan_speedups_round_trip() {
        let plan = ClockPlan::with_speedups(TechNode::N130, 50, 50);
        assert!((plan.frontend_speedup() - 1.5).abs() < 0.02);
        assert!((plan.backend_speedup() - 1.5).abs() < 0.02);
        assert!(!plan.is_synchronous());
        let sync = ClockPlan::with_speedups(TechNode::N130, 0, 0);
        assert!(sync.is_synchronous());
    }

    #[test]
    fn synchronous_plan_matches_baseline_frequency() {
        let plan = ClockPlan::synchronous(TechNode::N90);
        let f = ModuleFrequencies::for_node(TechNode::N90);
        let period_mhz = 1.0e6 / plan.baseline_period_ps as f64;
        assert!((period_mhz - f.baseline_clock_mhz()).abs() / f.baseline_clock_mhz() < 0.01);
    }

    #[test]
    fn validation_flags_unachievable_speedups() {
        // A 3x front-end speedup is beyond what any node supports.
        let plan = ClockPlan::with_speedups(TechNode::N60, 200, 50);
        assert!(plan.validate_against(TechNode::N60).contains(&"front-end"));
        // The paper's FE100/BE50 point is achievable at 60nm.
        let paper = ClockPlan::with_speedups(TechNode::N60, 100, 50);
        assert!(paper.validate_against(TechNode::N60).is_empty());
    }

    #[test]
    #[should_panic]
    fn zero_period_panics() {
        let _ = ClockPlan::from_periods(0, 1, 1);
    }

    #[test]
    fn lsq_domain_plan_runs_at_the_dcache_frequency() {
        for node in TechNode::all() {
            let plan = LsqDomainPlan::paper(*node);
            let f = ModuleFrequencies::for_node(*node);
            let plan_mhz = 1.0e6 / plan.period_ps as f64;
            assert!(
                (plan_mhz - f.dcache_mhz).abs() / f.dcache_mhz < 0.01,
                "{node:?}: {plan_mhz} vs {}",
                f.dcache_mhz
            );
            assert_eq!(plan.sync_cycles, 1);
            assert!(plan.validate_against(*node).is_empty());
        }
        // From 0.18um on, Table 1 gives the D-cache headroom over the Issue
        // Window clock (at 0.25um the wire-dominated IW still keeps up).
        for node in [TechNode::N180, TechNode::N130, TechNode::N90, TechNode::N60] {
            let plan = LsqDomainPlan::paper(node);
            let be = ClockPlan::synchronous(node).backend_period_ps;
            assert!(plan.speedup_over(be) > 1.0, "{node:?}");
        }
    }

    #[test]
    fn lsq_domain_validation_flags_overclocked_plans() {
        let paper = LsqDomainPlan::paper(TechNode::N130);
        let hot = LsqDomainPlan::from_period(paper.period_ps / 2, 1);
        assert_eq!(hot.validate_against(TechNode::N130), vec!["lsq"]);
    }

    #[test]
    #[should_panic]
    fn zero_lsq_period_panics() {
        let _ = LsqDomainPlan::from_period(0, 1);
    }
}
