//! The values published in the paper, for side-by-side comparison.
//!
//! The experiment harness prints the model-derived numbers next to these published
//! ones so that EXPERIMENTS.md can record paper-vs-measured for Table 1 and Figure 1.

use crate::{ModuleFrequencies, TechNode};

/// One row of the paper's Table 1: a module and its sustainable clock frequency (MHz)
/// at 0.18, 0.13, 0.09 and 0.06 µm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Row {
    /// Module name as printed in the paper.
    pub module: &'static str,
    /// Frequencies in MHz for [0.18, 0.13, 0.09, 0.06] µm.
    pub mhz: [f64; 4],
}

/// The technology nodes covered by Table 1, in column order.
pub const TABLE1_NODES: [TechNode; 4] =
    [TechNode::N180, TechNode::N130, TechNode::N90, TechNode::N60];

/// The paper's published Table 1.
pub fn published_table1() -> Vec<Table1Row> {
    vec![
        Table1Row {
            module: "Issue Window (single cycle)",
            mhz: [950.0, 1150.0, 1500.0, 1950.0],
        },
        Table1Row {
            module: "I-Cache (two cycles)",
            mhz: [1300.0, 1800.0, 2600.0, 3800.0],
        },
        Table1Row {
            module: "D-Cache (two cycles)",
            mhz: [1000.0, 1400.0, 2000.0, 3000.0],
        },
        Table1Row {
            module: "Register File (single cycle)",
            mhz: [1150.0, 1650.0, 2250.0, 3250.0],
        },
        Table1Row {
            module: "Execution Cache (three cycles)",
            mhz: [1000.0, 1400.0, 2050.0, 3000.0],
        },
        Table1Row {
            module: "Register File (two cycles)",
            mhz: [1050.0, 1500.0, 2000.0, 2950.0],
        },
    ]
}

/// The model-derived equivalent of Table 1.
pub fn modeled_table1() -> Vec<Table1Row> {
    let freqs: Vec<ModuleFrequencies> = TABLE1_NODES
        .iter()
        .map(|n| ModuleFrequencies::for_node(*n))
        .collect();
    let col = |f: &dyn Fn(&ModuleFrequencies) -> f64| -> [f64; 4] {
        [f(&freqs[0]), f(&freqs[1]), f(&freqs[2]), f(&freqs[3])]
    };
    vec![
        Table1Row {
            module: "Issue Window (single cycle)",
            mhz: col(&|f| f.issue_window_mhz),
        },
        Table1Row {
            module: "I-Cache (two cycles)",
            mhz: col(&|f| f.icache_mhz),
        },
        Table1Row {
            module: "D-Cache (two cycles)",
            mhz: col(&|f| f.dcache_mhz),
        },
        Table1Row {
            module: "Register File (single cycle)",
            mhz: col(&|f| f.regfile_mhz),
        },
        Table1Row {
            module: "Execution Cache (three cycles)",
            mhz: col(&|f| f.execution_cache_mhz),
        },
        Table1Row {
            module: "Register File (two cycles)",
            mhz: col(&|f| f.flywheel_regfile_mhz),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_and_modeled_tables_have_matching_shape() {
        let p = published_table1();
        let m = modeled_table1();
        assert_eq!(p.len(), m.len());
        for (pr, mr) in p.iter().zip(&m) {
            assert_eq!(pr.module, mr.module);
        }
    }

    #[test]
    fn modeled_values_are_within_fifteen_percent_of_published() {
        for (pr, mr) in published_table1().iter().zip(modeled_table1()) {
            for (p, m) in pr.mhz.iter().zip(mr.mhz) {
                let err = (m - p).abs() / p;
                assert!(
                    err < 0.15,
                    "{}: published {p} MHz, modeled {m:.0} MHz",
                    pr.module
                );
            }
        }
    }

    #[test]
    fn published_frequencies_increase_towards_newer_nodes() {
        for row in published_table1() {
            for w in row.mhz.windows(2) {
                assert!(w[1] > w[0]);
            }
        }
    }
}
