//! # flywheel-timing
//!
//! Technology-scaling and structure-latency models used by the Flywheel
//! reproduction.
//!
//! The paper derives its clock-frequency assumptions (Table 1) and its
//! latency-scaling argument (Figure 1) from Cacti [Wilton & Jouppi] and from the
//! Palacharla/Jouppi/Smith complexity models: access latency is decomposed into a
//! *logic* component (which scales with the transistor feature size) and a *wire*
//! component (which scales much more slowly). The Issue Window wake-up path is
//! wire-dominated and therefore scales worst; caches and register files are
//! logic-dominated and keep improving.
//!
//! This crate reimplements that decomposition analytically:
//!
//! * [`TechNode`] — the five process technologies used by the paper with their
//!   logic/wire scale factors, supply voltages and leakage currents (Table 2).
//! * [`IssueWindowGeometry`], [`CacheGeometry`], [`RegFileGeometry`] — structure
//!   descriptions whose [`latency_ps`](StructureLatency::latency_ps) follows the
//!   logic + wire model, calibrated against the paper's Table 1.
//! * [`frequency`] — derivation of achievable module clock frequencies and of the
//!   paper's baseline/Flywheel clock-domain speeds.
//! * [`paper`] — the values published in Table 1, for side-by-side comparison in the
//!   experiment harness.
//!
//! ```
//! use flywheel_timing::{CacheGeometry, IssueWindowGeometry, StructureLatency, TechNode};
//!
//! let iw = IssueWindowGeometry::new(128, 6);
//! let icache = CacheGeometry::new(64 * 1024, 2, 1, 64);
//! // The cache is roughly 2x slower than the issue window at 0.18um ...
//! let ratio_180 = icache.latency_ps(TechNode::N180) / iw.latency_ps(TechNode::N180);
//! assert!(ratio_180 > 1.3);
//! // ... but catches up at 0.06um because the issue window is wire-dominated.
//! let ratio_60 = icache.latency_ps(TechNode::N60) / iw.latency_ps(TechNode::N60);
//! assert!(ratio_60 < ratio_180);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frequency;
mod node;
pub mod paper;
mod structures;

pub use frequency::{ClockPlan, LsqDomainPlan, ModuleFrequencies};
pub use node::TechNode;
pub use structures::{CacheGeometry, IssueWindowGeometry, RegFileGeometry, StructureLatency};
