//! Latency models for the pipeline structures.

use crate::TechNode;

/// Common interface of every structure latency model: a logic component and a wire
/// component at the 0.18 µm reference node, scaled per technology node.
pub trait StructureLatency {
    /// The logic-delay component at the 0.18 µm reference node, in picoseconds.
    fn logic_ps_ref(&self) -> f64;

    /// The wire-delay component at the 0.18 µm reference node, in picoseconds.
    fn wire_ps_ref(&self) -> f64;

    /// Total access latency at `node`, in picoseconds.
    fn latency_ps(&self, node: TechNode) -> f64 {
        self.logic_ps_ref() * node.logic_scale() + self.wire_ps_ref() * node.wire_scale()
    }

    /// The fraction of the 0.18 µm latency contributed by wires.
    fn wire_fraction(&self) -> f64 {
        let total = self.logic_ps_ref() + self.wire_ps_ref();
        if total == 0.0 {
            0.0
        } else {
            self.wire_ps_ref() / total
        }
    }
}

/// Geometry of an Issue Window (wake-up CAM + select logic).
///
/// Following Palacharla et al., the tag broadcast of the wake-up phase must drive a
/// wire spanning every window entry, so the wire component grows with the number of
/// entries and the issue width; this is the structure that scales worst and the one
/// the Flywheel design removes from the critical path.
///
/// ```
/// use flywheel_timing::{IssueWindowGeometry, StructureLatency, TechNode};
/// let big = IssueWindowGeometry::new(128, 6);
/// let small = IssueWindowGeometry::new(64, 4);
/// assert!(big.latency_ps(TechNode::N90) > small.latency_ps(TechNode::N90));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IssueWindowGeometry {
    /// Number of window entries.
    pub entries: u32,
    /// Issue width (instructions selected per cycle).
    pub issue_width: u32,
}

impl IssueWindowGeometry {
    /// Creates an issue-window geometry.
    ///
    /// # Panics
    ///
    /// Panics if `entries` or `issue_width` is zero.
    pub fn new(entries: u32, issue_width: u32) -> Self {
        assert!(entries > 0 && issue_width > 0);
        IssueWindowGeometry {
            entries,
            issue_width,
        }
    }

    /// The paper's baseline configuration: 128 entries, issue width 6.
    pub fn paper_baseline() -> Self {
        IssueWindowGeometry::new(128, 6)
    }
}

impl StructureLatency for IssueWindowGeometry {
    fn logic_ps_ref(&self) -> f64 {
        // Tag match + select tree: grows slowly (logarithmically) with the window.
        560.0
            + 100.0 * ((self.entries as f64 / 64.0).log2()).max(-2.0)
            + 40.0 * ((self.issue_width as f64 / 6.0).log2()).max(-2.0)
    }

    fn wire_ps_ref(&self) -> f64 {
        // Tag broadcast across all entries; grows with entries and issue width
        // (quadratic overall in the Palacharla formulation: entries x width drive
        // both the broadcast length and the number of comparators per entry).
        3.0 * self.entries as f64 * (0.5 + 0.5 * self.issue_width as f64 / 6.0)
    }
}

/// Geometry of a cache (I-cache, D-cache, L2 or the Execution Cache data array).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheGeometry {
    /// Capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways).
    pub assoc: u32,
    /// Number of read/write ports.
    pub ports: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
}

impl CacheGeometry {
    /// Creates a cache geometry.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn new(size_bytes: u64, assoc: u32, ports: u32, line_bytes: u32) -> Self {
        assert!(size_bytes > 0 && assoc > 0 && ports > 0 && line_bytes > 0);
        CacheGeometry {
            size_bytes,
            assoc,
            ports,
            line_bytes,
        }
    }

    /// The paper's 64 KB, 2-way, single-ported I-cache.
    pub fn paper_icache() -> Self {
        CacheGeometry::new(64 * 1024, 2, 1, 64)
    }

    /// The paper's 64 KB, 4-way, dual-ported D-cache.
    pub fn paper_dcache() -> Self {
        CacheGeometry::new(64 * 1024, 4, 2, 64)
    }

    /// The paper's 512 KB, 4-way unified L2.
    pub fn paper_l2() -> Self {
        CacheGeometry::new(512 * 1024, 4, 1, 128)
    }

    /// The paper's 128 KB, 2-way Execution Cache (wide blocks of pre-scheduled
    /// instructions).
    pub fn paper_execution_cache() -> Self {
        CacheGeometry::new(128 * 1024, 2, 1, 256)
    }

    fn size_kb(&self) -> f64 {
        self.size_bytes as f64 / 1024.0
    }
}

impl StructureLatency for CacheGeometry {
    fn logic_ps_ref(&self) -> f64 {
        // Decoder + way comparison + output drive. Dominated by the decoder depth
        // (log of the number of sets) and widened by extra ports and very wide
        // lines.
        let assoc_factor = 1.0 + 0.05 * (self.assoc as f64 - 2.0);
        let port_factor = 1.0 + 0.10 * (self.ports as f64 - 1.0);
        let line_factor = 1.0 + 0.25 * ((self.line_bytes as f64 / 64.0).log2()).max(0.0);
        260.0 * self.size_kb().log2() * assoc_factor * port_factor * line_factor
    }

    fn wire_ps_ref(&self) -> f64 {
        // Word-line / bit-line RC; grows with the square root of the array area.
        6.0 * self.size_kb().sqrt() * (1.0 + 0.15 * (self.ports as f64 - 1.0))
    }
}

/// Geometry of a multi-ported register file.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegFileGeometry {
    /// Number of physical registers.
    pub entries: u32,
    /// Total number of read + write ports.
    pub ports: u32,
}

impl RegFileGeometry {
    /// Creates a register-file geometry.
    ///
    /// # Panics
    ///
    /// Panics if `entries` or `ports` is zero.
    pub fn new(entries: u32, ports: u32) -> Self {
        assert!(entries > 0 && ports > 0);
        RegFileGeometry { entries, ports }
    }

    /// The paper's 192-entry baseline register file (single-cycle access).
    pub fn paper_baseline() -> Self {
        RegFileGeometry::new(192, 18)
    }

    /// The paper's 512-entry Flywheel register file (two-cycle access).
    pub fn paper_flywheel() -> Self {
        RegFileGeometry::new(512, 18)
    }
}

impl StructureLatency for RegFileGeometry {
    fn logic_ps_ref(&self) -> f64 {
        // Calibrated to the paper's 192-entry (870 ps) and 512-entry (1905 ps)
        // figures; sub-linear in the entry count, linear-ish in the port count.
        12.3 * (self.entries as f64).powf(0.8) * (1.0 + 0.02 * (self.ports as f64 - 18.0))
    }

    fn wire_ps_ref(&self) -> f64 {
        0.23 * self.entries as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issue_window_is_wire_dominated_relative_to_caches() {
        let iw = IssueWindowGeometry::paper_baseline();
        let icache = CacheGeometry::paper_icache();
        assert!(iw.wire_fraction() > 0.3);
        assert!(icache.wire_fraction() < 0.1);
    }

    #[test]
    fn latency_decreases_with_newer_nodes() {
        let structures: Vec<Box<dyn StructureLatency>> = vec![
            Box::new(IssueWindowGeometry::paper_baseline()),
            Box::new(CacheGeometry::paper_dcache()),
            Box::new(RegFileGeometry::paper_flywheel()),
        ];
        for s in &structures {
            let mut prev = f64::MAX;
            for node in TechNode::all() {
                let l = s.latency_ps(*node);
                assert!(l < prev, "latency must shrink monotonically");
                prev = l;
            }
        }
    }

    #[test]
    fn issue_window_matches_paper_within_tolerance() {
        // Table 1: 128-entry, 6-wide IW supports 950 MHz at 0.18um and 1950 MHz at
        // 0.06um (single-cycle access), i.e. 1052 ps and 513 ps.
        let iw = IssueWindowGeometry::paper_baseline();
        let at_180 = iw.latency_ps(TechNode::N180);
        let at_60 = iw.latency_ps(TechNode::N60);
        assert!((at_180 - 1052.0).abs() / 1052.0 < 0.10, "got {at_180}");
        assert!((at_60 - 513.0).abs() / 513.0 < 0.12, "got {at_60}");
    }

    #[test]
    fn caches_scale_better_than_issue_window() {
        let iw = IssueWindowGeometry::paper_baseline();
        let icache = CacheGeometry::paper_icache();
        let iw_gain = iw.latency_ps(TechNode::N180) / iw.latency_ps(TechNode::N60);
        let cache_gain = icache.latency_ps(TechNode::N180) / icache.latency_ps(TechNode::N60);
        assert!(
            cache_gain > iw_gain + 0.4,
            "cache gain {cache_gain:.2} should exceed IW gain {iw_gain:.2}"
        );
    }

    #[test]
    fn figure1_crossover_shape() {
        // Figure 1: the 64K cache is about 2x slower than the IW at 0.25/0.18um but
        // reaches roughly the same access time at 0.06um.
        let iw = IssueWindowGeometry::paper_baseline();
        let icache = CacheGeometry::paper_icache();
        let ratio_old = icache.latency_ps(TechNode::N250) / iw.latency_ps(TechNode::N250);
        let ratio_new = icache.latency_ps(TechNode::N60) / iw.latency_ps(TechNode::N60);
        assert!(ratio_old > 1.4, "old-node ratio {ratio_old:.2}");
        assert!(ratio_new < 1.25, "new-node ratio {ratio_new:.2}");
    }

    #[test]
    fn bigger_register_files_are_slower() {
        let small = RegFileGeometry::new(128, 18);
        let medium = RegFileGeometry::paper_baseline();
        let large = RegFileGeometry::paper_flywheel();
        for node in TechNode::all() {
            assert!(small.latency_ps(*node) < medium.latency_ps(*node));
            assert!(medium.latency_ps(*node) < large.latency_ps(*node));
        }
    }

    #[test]
    fn register_file_matches_paper_within_tolerance() {
        let baseline = RegFileGeometry::paper_baseline();
        let flywheel = RegFileGeometry::paper_flywheel();
        let b_180 = baseline.latency_ps(TechNode::N180);
        let f_180 = flywheel.latency_ps(TechNode::N180);
        assert!((b_180 - 870.0).abs() / 870.0 < 0.10, "got {b_180}");
        assert!((f_180 - 1905.0).abs() / 1905.0 < 0.10, "got {f_180}");
    }

    #[test]
    #[should_panic]
    fn zero_entries_panics() {
        let _ = IssueWindowGeometry::new(0, 4);
    }
}
