//! Process technology nodes.

use std::fmt;

/// A CMOS process technology node.
///
/// The five nodes are the ones used by the paper (Figure 1 uses all five; Table 1 and
/// the power study use 0.18 µm and below). Per-node electrical parameters follow the
/// paper's Table 2; the logic/wire delay scale factors are normalized to 0.18 µm and
/// calibrated so that the structure models in this crate reproduce the published
/// Table 1 clock frequencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TechNode {
    /// 0.25 µm.
    N250,
    /// 0.18 µm.
    N180,
    /// 0.13 µm.
    N130,
    /// 0.09 µm (90 nm).
    N90,
    /// 0.06 µm (60 nm) — the paper follows Cacti's node sequence rather than the
    /// industry's 65 nm.
    N60,
}

impl TechNode {
    /// All nodes from oldest to newest.
    pub fn all() -> &'static [TechNode] {
        &[
            TechNode::N250,
            TechNode::N180,
            TechNode::N130,
            TechNode::N90,
            TechNode::N60,
        ]
    }

    /// The nodes used in the paper's energy-scaling study (Figure 15).
    pub fn power_study_nodes() -> &'static [TechNode] {
        &[TechNode::N130, TechNode::N90, TechNode::N60]
    }

    /// Feature size in nanometres.
    pub fn feature_nm(&self) -> u32 {
        match self {
            TechNode::N250 => 250,
            TechNode::N180 => 180,
            TechNode::N130 => 130,
            TechNode::N90 => 90,
            TechNode::N60 => 60,
        }
    }

    /// Scale factor of gate (logic) delay relative to 0.18 µm.
    ///
    /// Logic delay tracks the feature size almost linearly.
    pub fn logic_scale(&self) -> f64 {
        match self {
            TechNode::N250 => 1.40,
            TechNode::N180 => 1.00,
            TechNode::N130 => 0.715,
            TechNode::N90 => 0.50,
            TechNode::N60 => 0.345,
        }
    }

    /// Scale factor of wire (interconnect) delay relative to 0.18 µm.
    ///
    /// Wires improve far more slowly than transistors; this is the root cause of the
    /// Issue Window scaling problem the paper addresses.
    pub fn wire_scale(&self) -> f64 {
        match self {
            TechNode::N250 => 1.10,
            TechNode::N180 => 1.00,
            TechNode::N130 => 0.93,
            TechNode::N90 => 0.87,
            TechNode::N60 => 0.82,
        }
    }

    /// Supply voltage in volts (Table 2; the 0.18/0.25 µm values follow the same
    /// trend the paper's sources use).
    pub fn vdd(&self) -> f64 {
        match self {
            TechNode::N250 => 1.8,
            TechNode::N180 => 1.6,
            TechNode::N130 => 1.4,
            TechNode::N90 => 1.2,
            TechNode::N60 => 1.1,
        }
    }

    /// Threshold voltage in volts (Table 2).
    pub fn vt(&self) -> f64 {
        match self {
            TechNode::N250 => 0.29,
            TechNode::N180 => 0.26,
            TechNode::N130 => 0.22,
            TechNode::N90 => 0.20,
            TechNode::N60 => 0.18,
        }
    }

    /// Normalized leakage current per device in nano-amperes (Table 2).
    pub fn leakage_na_per_device(&self) -> f64 {
        match self {
            TechNode::N250 => 20.0,
            TechNode::N180 => 40.0,
            TechNode::N130 => 80.0,
            TechNode::N90 => 280.0,
            TechNode::N60 => 280.0,
        }
    }

    /// Scale factor of switched capacitance per device relative to 0.18 µm.
    ///
    /// Capacitance shrinks roughly with the feature size; it feeds the dynamic-energy
    /// model in `flywheel-power`.
    pub fn capacitance_scale(&self) -> f64 {
        self.feature_nm() as f64 / 180.0
    }
}

impl fmt::Display for TechNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}nm", self.feature_nm())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_are_ordered_old_to_new() {
        let nodes = TechNode::all();
        for w in nodes.windows(2) {
            assert!(w[0].feature_nm() > w[1].feature_nm());
        }
    }

    #[test]
    fn logic_scales_faster_than_wire() {
        for node in TechNode::all() {
            if *node == TechNode::N180 {
                assert_eq!(node.logic_scale(), 1.0);
                assert_eq!(node.wire_scale(), 1.0);
            }
        }
        // Towards newer nodes, logic improves more than wires.
        assert!(TechNode::N60.logic_scale() < TechNode::N60.wire_scale());
        assert!(TechNode::N250.logic_scale() > TechNode::N250.wire_scale());
    }

    #[test]
    fn vdd_and_vt_decrease_monotonically() {
        for w in TechNode::all().windows(2) {
            assert!(w[0].vdd() >= w[1].vdd());
            assert!(w[0].vt() >= w[1].vt());
        }
    }

    #[test]
    fn leakage_grows_towards_newer_nodes() {
        assert!(TechNode::N90.leakage_na_per_device() > TechNode::N130.leakage_na_per_device());
        assert_eq!(
            TechNode::N60.leakage_na_per_device(),
            TechNode::N90.leakage_na_per_device()
        );
    }

    #[test]
    fn paper_table2_values_are_encoded() {
        assert_eq!(TechNode::N130.vdd(), 1.4);
        assert_eq!(TechNode::N90.vdd(), 1.2);
        assert_eq!(TechNode::N60.vdd(), 1.1);
        assert_eq!(TechNode::N130.leakage_na_per_device(), 80.0);
        assert_eq!(TechNode::N90.leakage_na_per_device(), 280.0);
    }

    #[test]
    fn display_shows_nanometres() {
        assert_eq!(TechNode::N60.to_string(), "60nm");
        assert_eq!(TechNode::N250.to_string(), "250nm");
    }
}
