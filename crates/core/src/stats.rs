//! Results reported by the Flywheel machine.

use flywheel_uarch::SimResult;

/// Flywheel-specific statistics for one run (measured portion).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FlywheelStats {
    /// Wall-clock time spent in trace-execution mode, ps.
    pub exec_mode_ps: u64,
    /// Wall-clock time spent in trace-creation mode, ps.
    pub creation_mode_ps: u64,
    /// Fraction of execution time spent on the Execution Cache path (the paper
    /// reports an 88 % average).
    pub ec_residency: f64,
    /// Execution Cache trace look-ups.
    pub ec_lookups: u64,
    /// Execution Cache look-up hits.
    pub ec_hits: u64,
    /// Traces stored into the Execution Cache.
    pub traces_stored: u64,
    /// Final data-array utilization (fraction of instruction slots in use).
    pub ec_utilization: f64,
    /// Times the machine switched onto the Execution Cache path.
    pub trace_switches: u64,
    /// Replays abandoned because the actual path diverged from the recorded trace.
    pub trace_divergences: u64,
    /// Rename stalls caused by exhausted register pools.
    pub pool_stalls: u64,
    /// Register redistributions performed.
    pub redistributions: u64,
}

impl FlywheelStats {
    /// Execution Cache look-up hit rate.
    pub fn ec_hit_rate(&self) -> f64 {
        if self.ec_lookups == 0 {
            0.0
        } else {
            self.ec_hits as f64 / self.ec_lookups as f64
        }
    }
}

/// The complete result of one Flywheel simulation: the common performance/energy
/// result plus the Flywheel-specific statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct FlywheelResult {
    /// Performance, energy and pipeline statistics (same shape as the baseline's
    /// result, so the two machines can be compared directly).
    pub sim: SimResult,
    /// Flywheel-specific statistics.
    pub flywheel: FlywheelStats,
}

impl FlywheelResult {
    /// Speed-up of this run over a baseline result (>1 means Flywheel is faster).
    pub fn speedup_over(&self, baseline: &SimResult) -> f64 {
        self.sim.speedup_over(baseline)
    }

    /// Energy of this run relative to a baseline result (<1 means Flywheel uses less
    /// energy).
    pub fn energy_ratio_over(&self, baseline: &SimResult) -> f64 {
        self.sim.energy_ratio_over(baseline)
    }

    /// Power of this run relative to a baseline result.
    pub fn power_ratio_over(&self, baseline: &SimResult) -> f64 {
        self.sim.power_ratio_over(baseline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_zero_lookups() {
        let s = FlywheelStats::default();
        assert_eq!(s.ec_hit_rate(), 0.0);
        let s2 = FlywheelStats {
            ec_lookups: 10,
            ec_hits: 9,
            ..FlywheelStats::default()
        };
        assert!((s2.ec_hit_rate() - 0.9).abs() < 1e-12);
    }
}
