//! The Flywheel pipeline: trace-creation and trace-execution modes.

use crate::config::{DvfsConfig, DvfsPolicy, FlywheelConfig};
use crate::ec::{ExecutionCache, Trace, TraceBuilder};
use crate::pools::PoolRenamer;
use crate::stats::{FlywheelResult, FlywheelStats};
use flywheel_isa::{DynInst, OpClass, Pc};
use flywheel_power::{EnergyAccumulator, MachineKind, PowerModel, Unit};
use flywheel_uarch::{
    AccessOutcome, BpredStats, CompletionQueue, EntryState, GsharePredictor, HierarchyStats,
    InflightEntry, InflightTable, IssueScheduler, MemoryHierarchy, PhysRegFile, SimBudget,
    SimResult, StoreIndex,
};
use std::collections::VecDeque;

/// Operating mode of the machine (paper §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Instructions flow through the normal front end; issued groups are recorded
    /// into the Execution Cache.
    Creation,
    /// The front end is clock gated; instructions are replayed from the Execution
    /// Cache and fed directly to the execution core at the fast back-end clock.
    Execution,
}

/// State of the DVFS governor (the DVFS-managed Flywheel machine).
#[derive(Debug, Clone)]
struct DvfsState {
    policy: DvfsPolicy,
    /// Back-end cycle at (or after) which the governor evaluates next.
    next_eval_cycle: u64,
    /// Per-mode time snapshots at the previous evaluation.
    last_exec_mode_ps: u64,
    last_creation_mode_ps: u64,
    /// Currently governed trace-execution back-end speed-up, in percent.
    current_pct: u32,
    /// Number of clock retunes performed.
    retunes: u64,
}

/// State of an in-progress trace replay.
#[derive(Debug, Clone)]
struct Replay {
    trace: Trace,
    /// Oracle instructions matched (program-order aligned with `trace.insts`).
    pulled: Vec<DynInst>,
    /// Set once the actual instruction stream departs from the recorded path.
    diverged: bool,
    /// Next program-order index to send to the execution core.
    next_idx: usize,
    /// Back-end cycle at which the first issue unit may leave the fill buffer.
    ready_at_cycle: u64,
    /// Instructions consumed so far (for data-array block accounting).
    consumed: u64,
}

/// The Flywheel machine: the paper's proposed microarchitecture, combining the
/// Dual-Clock Issue Window, the two-phase pool-based register renaming and the
/// Execution Cache with pre-scheduled execution.
///
/// With [`FlywheelConfig::execution_cache`] disabled this degenerates into the
/// "Register Allocation" machine of Figure 11 (dual-clock front end and new renaming,
/// no alternative execution path).
///
/// Like the baseline machine, the per-cycle hot loop is allocation-free: in-flight
/// bookkeeping lives in the shared slab-indexed
/// [`InflightTable`]/[`IssueScheduler`]/[`StoreIndex`] structures of
/// `flywheel-uarch`.
///
/// ```
/// use flywheel_core::{FlywheelConfig, FlywheelSim};
/// use flywheel_timing::TechNode;
/// use flywheel_uarch::SimBudget;
/// use flywheel_workloads::{Benchmark, RecordedTrace};
///
/// let budget = SimBudget::new(1_000, 5_000);
/// let program = Benchmark::Micro.synthesize(1);
/// // Both machine models replay the same recorded stream; fresh cursors restart
/// // it from the beginning at zero cost.
/// let trace = RecordedTrace::record(&program, 1, RecordedTrace::capture_len_for(budget.total()));
/// let mut sim = FlywheelSim::new(FlywheelConfig::paper_iso_clock(TechNode::N130), trace.cursor());
/// let result = sim.run(budget);
/// assert_eq!(result.sim.instructions, 5_000);
/// ```
pub struct FlywheelSim<I: Iterator<Item = DynInst>> {
    cfg: FlywheelConfig,
    trace: I,
    peeked: Option<DynInst>,
    /// Instructions fetched in creation mode but handed back when the machine
    /// switched to the Execution Cache path before dispatching them.
    pushback: VecDeque<DynInst>,
    trace_done: bool,

    // Shared structures.
    hierarchy: MemoryHierarchy,
    bpred: GsharePredictor,
    pools: PoolRenamer,
    prf: PhysRegFile,
    fus: flywheel_uarch::FunctionalUnits,
    ec: ExecutionCache,

    // In-flight bookkeeping (both modes share the ROB/LSQ and execution pipeline).
    inflight: InflightTable,
    frontend_q: VecDeque<u64>,
    rob: VecDeque<u64>,
    iw_len: usize,
    lsq: VecDeque<u64>,
    /// Executing instructions keyed by completion cycle; stale (squashed)
    /// entries are validated out on pop.
    completions: CompletionQueue,
    sched: IssueScheduler,
    stores: StoreIndex,

    // Persistent scratch buffers (reused every cycle; never allocated in the loop).
    finished_scratch: Vec<(u64, u64)>,
    issued_scratch: Vec<u64>,

    // Creation-mode fetch state.
    fetch_blocked_on_branch: Option<u64>,
    fetch_resume_at_ps: u64,
    builder: Option<TraceBuilder>,
    builder_start_seq: u64,
    builder_dispatched: u32,

    // Mode control.
    mode: Mode,
    replay: Option<Replay>,
    /// Register Update is blocked until this instruction retires (FRT checkpoint).
    checkpoint_wait_retire_of: Option<u64>,
    /// Back-end cycle from which Register Update may proceed.
    checkpoint_ready_cycle: u64,

    // Clocks.
    fe_period_ps: u64,
    be_period_creation_ps: u64,
    be_period_exec_ps: u64,
    fe_time_ps: u64,
    be_time_ps: u64,
    fe_cycles: u64,
    be_cycles: u64,
    exec_mode_ps: u64,
    creation_mode_ps: u64,

    // Register redistribution.
    next_redistribution_cycle: u64,
    stalled_until_cycle: u64,

    /// Optional DVFS governor retuning `be_period_exec_ps` at fixed intervals
    /// from observed trace-execution residency. `None` keeps the clock plan
    /// fixed for the run — bit-identical to the plain Flywheel machine.
    dvfs: Option<DvfsState>,

    // Energy.
    power_model: PowerModel,
    energy: EnergyAccumulator,

    // Counters.
    retired: u64,
    retire_limit: u64,
    squashed: u64,
    trace_switches: u64,
    trace_divergences: u64,
    last_progress_cycle: u64,
    /// Whether the edge being processed changed any machine state (gates the
    /// idle fast-forward in the run loop).
    tick_activity: bool,
    measure_start: Option<Snapshot>,
}

#[derive(Debug, Clone)]
struct Snapshot {
    retired: u64,
    squashed: u64,
    be_cycles: u64,
    fe_cycles: u64,
    time_ps: u64,
    exec_mode_ps: u64,
    creation_mode_ps: u64,
    trace_switches: u64,
    trace_divergences: u64,
    bpred: BpredStats,
    caches: HierarchyStats,
    ec: crate::ec::EcStats,
    pools: crate::pools::PoolStats,
}

impl<I: Iterator<Item = DynInst>> FlywheelSim<I> {
    /// Creates a Flywheel machine for `cfg` consuming instructions from `trace`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`FlywheelConfig::validate`].
    pub fn new(cfg: FlywheelConfig, trace: I) -> Self {
        cfg.validate()
            .unwrap_or_else(|e| panic!("invalid configuration: {e}"));
        let base = &cfg.base;
        let power_model = PowerModel::new(cfg.power_config());
        let fe_period_ps = base.clocks.frontend_period_ps;
        let be_period_creation_ps = base.clocks.baseline_period_ps;
        let be_period_exec_ps = base.clocks.backend_period_ps;
        let inflight_capacity = (base.rob_entries
            + base.front_end_stages * base.fetch_width
            + base.fetch_width) as usize;
        FlywheelSim {
            hierarchy: MemoryHierarchy::new(base),
            bpred: GsharePredictor::new(base.bpred),
            pools: PoolRenamer::new(cfg.pools),
            prf: PhysRegFile::new(cfg.pools.total_phys_regs),
            fus: flywheel_uarch::FunctionalUnits::new(base.fus),
            ec: ExecutionCache::new(cfg.ec),
            inflight: InflightTable::with_capacity(inflight_capacity),
            frontend_q: VecDeque::new(),
            rob: VecDeque::new(),
            iw_len: 0,
            lsq: VecDeque::new(),
            completions: CompletionQueue::new(),
            sched: IssueScheduler::new(
                cfg.pools.total_phys_regs as usize,
                if cfg.base.pipelined_wakeup { 1 } else { 0 },
            ),
            stores: StoreIndex::new(),
            finished_scratch: Vec::new(),
            issued_scratch: Vec::new(),
            fetch_blocked_on_branch: None,
            fetch_resume_at_ps: 0,
            builder: None,
            builder_start_seq: 0,
            builder_dispatched: 0,
            mode: Mode::Creation,
            replay: None,
            checkpoint_wait_retire_of: None,
            checkpoint_ready_cycle: 0,
            fe_period_ps,
            be_period_creation_ps,
            be_period_exec_ps,
            fe_time_ps: fe_period_ps,
            be_time_ps: be_period_creation_ps,
            fe_cycles: 0,
            be_cycles: 0,
            exec_mode_ps: 0,
            creation_mode_ps: 0,
            next_redistribution_cycle: cfg.pools.redistribution_interval,
            stalled_until_cycle: 0,
            dvfs: None,
            power_model,
            energy: EnergyAccumulator::new(MachineKind::Flywheel),
            retired: 0,
            retire_limit: u64::MAX,
            squashed: 0,
            trace_switches: 0,
            trace_divergences: 0,
            last_progress_cycle: 0,
            tick_activity: false,
            measure_start: None,
            peeked: None,
            pushback: VecDeque::new(),
            trace_done: false,
            trace,
            cfg,
        }
    }

    /// Creates a DVFS-governed Flywheel machine for `cfg` consuming
    /// instructions from `trace`: identical to [`FlywheelSim::new`] on
    /// `cfg.fly`, plus a governor that retunes the trace-execution back-end
    /// clock every `cfg.policy.interval_be_cycles` core cycles from the
    /// Execution-Cache residency observed over the elapsed interval.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`DvfsConfig::validate`].
    pub fn new_dvfs(cfg: DvfsConfig, trace: I) -> Self {
        cfg.validate()
            .unwrap_or_else(|e| panic!("invalid configuration: {e}"));
        let policy = cfg.policy;
        let current_pct = cfg.fly.backend_speedup_pct;
        let mut sim = FlywheelSim::new(cfg.fly, trace);
        sim.dvfs = Some(DvfsState {
            policy,
            next_eval_cycle: policy.interval_be_cycles,
            last_exec_mode_ps: 0,
            last_creation_mode_ps: 0,
            current_pct,
            retunes: 0,
        });
        sim
    }

    /// The configuration of this machine.
    pub fn config(&self) -> &FlywheelConfig {
        &self.cfg
    }

    /// Number of clock retunes the DVFS governor has performed (0 without a
    /// governor).
    pub fn dvfs_retunes(&self) -> u64 {
        self.dvfs.as_ref().map_or(0, |d| d.retunes)
    }

    /// Runs the simulation for the given budget.
    pub fn run(&mut self, budget: SimBudget) -> FlywheelResult {
        let warm_target = budget.warmup_instructions;
        let total_target = budget.total();
        self.retire_limit = warm_target.max(1);
        let mut watchdog = flywheel_uarch::watchdog::armed();
        let mut telemetry = flywheel_uarch::telemetry::armed();
        let mut tel_executing = self.mode == Mode::Execution;
        let mut tel_pool_stalls = self.pools.stats().pool_stalls;
        while self.retired < total_target && !(self.trace_done && self.inflight.is_empty()) {
            if self.measure_start.is_none() && self.retired >= warm_target {
                self.begin_measurement();
                self.retire_limit = total_target;
            }
            self.tick_activity = false;
            if self.be_time_ps <= self.fe_time_ps {
                self.tick_backend();
            } else {
                self.tick_frontend();
            }
            if !self.tick_activity {
                self.fast_forward();
            }
            if self.be_cycles - self.last_progress_cycle > 500_000 {
                panic!(
                    "no retirement progress for 500k cycles (mode {:?}, retired {}, rob {}, \
                     iw {}, frontend {}, replay {})",
                    self.mode,
                    self.retired,
                    self.rob.len(),
                    self.iw_len,
                    self.frontend_q.len(),
                    self.replay.is_some(),
                );
            }
            if let Some(wd) = watchdog.as_mut() {
                wd.poll(self.be_cycles);
            }
            if let Some(t) = telemetry.as_mut() {
                let executing = self.mode == Mode::Execution;
                if executing != tel_executing {
                    tel_executing = executing;
                    t.mode_edge(executing, self.be_cycles, self.fe_cycles);
                }
                let stalls = self.pools.stats().pool_stalls;
                if stalls != tel_pool_stalls {
                    t.pool_stalls(self.be_cycles, stalls - tel_pool_stalls);
                    tel_pool_stalls = stalls;
                }
                t.sample_occupancy(
                    self.be_cycles,
                    self.iw_len,
                    self.rob.len(),
                    self.frontend_q.len(),
                    self.lsq.len(),
                );
            }
        }
        if let Some(t) = telemetry.as_mut() {
            t.finish(self.be_cycles, self.fe_cycles);
        }
        if self.measure_start.is_none() {
            self.begin_measurement();
        }
        self.finish()
    }

    fn be_period(&self) -> u64 {
        match self.mode {
            Mode::Creation => self.be_period_creation_ps,
            Mode::Execution => self.be_period_exec_ps,
        }
    }

    /// The back-end edge time at which cycle `c` executes (the edge at
    /// `be_time_ps` runs cycle `be_cycles + 1`). The mode — and with it the
    /// back-end period — is constant across the idle stretch being bounded: any
    /// mode switch is tick activity.
    fn be_cycle_time_ps(&self, c: u64) -> u64 {
        if c <= self.be_cycles + 1 {
            self.be_time_ps
        } else {
            self.be_time_ps
                .saturating_add((c - self.be_cycles - 1).saturating_mul(self.be_period()))
        }
    }

    /// The first back-end edge at or after time `ps`.
    fn be_edge_at_or_after(&self, ps: u64) -> u64 {
        if ps <= self.be_time_ps {
            self.be_time_ps
        } else {
            self.be_time_ps + (ps - self.be_time_ps).div_ceil(self.be_period()) * self.be_period()
        }
    }

    /// The first front-end edge at or after time `ps`.
    fn fe_edge_at_or_after(&self, ps: u64) -> u64 {
        if ps <= self.fe_time_ps {
            self.fe_time_ps
        } else {
            self.fe_time_ps + (ps - self.fe_time_ps).div_ceil(self.fe_period_ps) * self.fe_period_ps
        }
    }

    /// A conservative lower bound on the next time any machine state can
    /// change, or `None` when no event is safely boundable (then the machine
    /// single-steps as before). See `BaselineSim::next_event_ps` for the
    /// reasoning; the Flywheel machine adds the mode-specific gates (Register
    /// Update checkpoint, redistribution stalls, trace-replay startup and
    /// operand arrival).
    fn next_event_ps(&self) -> Option<u64> {
        // A completed ROB head retires at the next back-end edge — or is gated
        // only by the retire limit, which the run loop may lift between steps.
        if let Some(&head) = self.rob.front() {
            if self.inflight[head].state == EntryState::Completed {
                return None;
            }
        }
        let mut t = u64::MAX;
        if let Some(c) = self.completions.next_due() {
            t = t.min(self.be_cycle_time_ps(c));
        }
        if let Some(c) = self.sched.next_due() {
            t = t.min(self.be_cycle_time_ps(c));
        }
        let wakeup_extra = if self.cfg.base.pipelined_wakeup { 1 } else { 0 };
        for i in 0..self.sched.ready_len() {
            let seq = self.sched.ready_seq(i);
            let Some(e) = self.inflight.get(seq) else {
                continue;
            };
            // A load behind an older unresolved store wakes through that
            // store's own events (it is dispatched, woken or completing).
            if e.d.stat.op() == OpClass::Load && self.stores.blocks_load(seq) {
                continue;
            }
            let arrive = self.be_cycle_time_ps(e.ready_cycle.saturating_add(wakeup_extra));
            t = t.min(arrive.max(self.be_edge_at_or_after(e.visible_at_ps)));
        }
        // Cycle-numbered gates that open in the future (past thresholds are
        // permanently inert).
        for c in [self.stalled_until_cycle, self.checkpoint_ready_cycle] {
            if c > self.be_cycles {
                t = t.min(self.be_cycle_time_ps(c));
            }
        }
        // The DVFS governor may change the back-end period at its next
        // evaluation: never bulk-advance past it (this keeps the back-end
        // period constant across every bounded idle stretch).
        if let Some(d) = &self.dvfs {
            t = t.min(self.be_cycle_time_ps(d.next_eval_cycle));
        }
        match self.mode {
            Mode::Creation => {
                // Pool redistribution is considered whenever the ROB drains.
                if self.rob.is_empty() {
                    t = t.min(self.be_cycle_time_ps(self.next_redistribution_cycle));
                }
                // Dispatch of the front-end queue head, when Register Update is
                // currently allowed (it can only open — never close — without
                // tick activity, and its opening edges are included above).
                let gate_open = self.checkpoint_wait_retire_of.is_none()
                    && self.be_cycles >= self.checkpoint_ready_cycle
                    && self.be_cycles >= self.stalled_until_cycle;
                if gate_open {
                    if let Some(&head) = self.frontend_q.front() {
                        let e = &self.inflight[head];
                        if e.dispatch_ready_ps > self.fe_time_ps {
                            t = t.min(self.fe_edge_at_or_after(e.dispatch_ready_ps));
                        } else {
                            let is_mem = e.d.stat.op().is_mem();
                            let blocked = self.rob.len() >= self.cfg.base.rob_entries as usize
                                || self.iw_len >= self.cfg.base.iw_entries as usize
                                || (is_mem && self.lsq.len() >= self.cfg.base.lsq_entries as usize);
                            if !blocked {
                                t = t.min(self.fe_time_ps);
                            }
                        }
                    }
                }
                // Fetch resuming (not checkpoint-gated).
                let queue_cap =
                    (self.cfg.base.front_end_stages * self.cfg.base.fetch_width) as usize;
                if self.fetch_blocked_on_branch.is_none()
                    && !self.trace_done
                    && self.frontend_q.len() < queue_cap
                {
                    t = t.min(self.fe_edge_at_or_after(self.fetch_resume_at_ps));
                }
            }
            Mode::Execution => {
                let Some(r) = &self.replay else {
                    // The next back-end tick falls back to creation mode.
                    return None;
                };
                if !r.diverged && r.pulled.len() < r.trace.len() && !self.trace_done {
                    // The next back-end tick pulls (and trains on) oracle
                    // instructions.
                    t = t.min(self.be_time_ps);
                } else if r.next_idx < r.pulled.len() {
                    // The machine is waiting to issue the next replay unit.
                    if self.rob.is_empty() && self.iw_len == 0 {
                        // The abandon-replay safety valve may fire next tick.
                        return None;
                    }
                    let unit = r.trace.insts[r.next_idx].unit;
                    let mut unit_end = r.next_idx;
                    while unit_end < r.trace.len() && r.trace.insts[unit_end].unit == unit {
                        unit_end += 1;
                    }
                    // Replay issues one unit per cycle: the next unit goes out
                    // at the first edge where the startup buffer, the Register
                    // Update checkpoint and all its source operands are due
                    // (capacity and pool blocks only delay it further, which a
                    // conservative bound may ignore). A checkpoint waiting on a
                    // retire is bounded by the completion events instead.
                    let issuable = unit_end.min(r.pulled.len()) == unit_end || r.diverged;
                    if issuable && self.checkpoint_wait_retire_of.is_none() {
                        let mut unit_time = self.be_time_ps;
                        for c in [r.ready_at_cycle, self.checkpoint_ready_cycle] {
                            if c > self.be_cycles {
                                unit_time = unit_time.max(self.be_cycle_time_ps(c));
                            }
                        }
                        let end = unit_end.min(r.pulled.len());
                        for i in r.next_idx..end {
                            for src in r.trace.insts[i].stat.srcs() {
                                let at = self.prf.ready_at(self.pools.mapping(src));
                                if at == u64::MAX {
                                    return None;
                                }
                                if at > self.be_cycles {
                                    unit_time = unit_time.max(self.be_cycle_time_ps(at));
                                }
                            }
                        }
                        t = t.min(unit_time);
                    }
                }
                // A fully drained replay transitions out with tick activity, so
                // no further events are needed here.
            }
        }
        // Never jump past the no-progress watchdog's firing point.
        t = t.min(self.be_cycle_time_ps(self.last_progress_cycle + 500_001));
        (t != u64::MAX).then_some(t)
    }

    /// Bulk-advances both clock domains over the edges strictly before the next
    /// possible event, charging exactly the per-cycle bookkeeping those idle
    /// edges would have performed (clock energy, gated-front-end accounting,
    /// per-mode time, and the Issue Window wake-up/select energy of occupied
    /// windows).
    fn fast_forward(&mut self) {
        let Some(t) = self.next_event_ps() else {
            return;
        };
        if self.fe_time_ps < t {
            let k = (t - 1 - self.fe_time_ps) / self.fe_period_ps + 1;
            self.fe_cycles += k;
            self.fe_time_ps += k * self.fe_period_ps;
            self.energy.tick_frontend_n(self.mode == Mode::Execution, k);
        }
        if self.be_time_ps < t {
            let period = self.be_period();
            let k = (t - 1 - self.be_time_ps) / period + 1;
            self.be_cycles += k;
            self.be_time_ps += k * period;
            match self.mode {
                Mode::Creation => self.creation_mode_ps += k * period,
                Mode::Execution => self.exec_mode_ps += k * period,
            }
            self.energy.tick_backend_n(k);
            // The skipped cycles lie entirely on one side of the stall window
            // (its end is an event above); only unstalled cycles pay the
            // per-cycle Issue Window energy of an occupied window.
            if self.iw_len > 0 && self.be_cycles >= self.stalled_until_cycle {
                self.energy.record(Unit::IssueWindowWakeup, k);
                self.energy.record(Unit::IssueWindowSelect, k);
            }
        }
    }

    fn now_ps(&self) -> u64 {
        (self.be_time_ps.saturating_sub(self.be_period()))
            .max(self.fe_time_ps.saturating_sub(self.fe_period_ps))
    }

    fn begin_measurement(&mut self) {
        self.energy = EnergyAccumulator::new(MachineKind::Flywheel);
        // Traces recorded during warm-up were built while the branch predictor and
        // the caches were still cold, so their schedules are unrepresentative.
        // Mirroring the paper's fast-forward discipline, measurement starts with warm
        // predictor/cache state but lets the Execution Cache refill with traces built
        // under that warm behaviour. A replay that is already in progress keeps its
        // (cloned) trace and simply runs to its end.
        self.ec.invalidate_all();
        self.builder = None;
        self.builder_dispatched = 0;
        self.measure_start = Some(Snapshot {
            retired: self.retired,
            squashed: self.squashed,
            be_cycles: self.be_cycles,
            fe_cycles: self.fe_cycles,
            time_ps: self.now_ps(),
            exec_mode_ps: self.exec_mode_ps,
            creation_mode_ps: self.creation_mode_ps,
            trace_switches: self.trace_switches,
            trace_divergences: self.trace_divergences,
            bpred: self.bpred.stats(),
            caches: self.hierarchy.stats(),
            ec: self.ec.stats(),
            pools: self.pools.stats(),
        });
    }

    fn finish(&mut self) -> FlywheelResult {
        let start = self.measure_start.clone().expect("measurement started");
        let elapsed_ps = self.now_ps().saturating_sub(start.time_ps).max(1);
        let bp = self.bpred.stats();
        let ch = self.hierarchy.stats();
        let exec_ps = self.exec_mode_ps - start.exec_mode_ps;
        let creation_ps = self.creation_mode_ps - start.creation_mode_ps;
        let residency = if exec_ps + creation_ps == 0 {
            0.0
        } else {
            exec_ps as f64 / (exec_ps + creation_ps) as f64
        };
        let ec_now = self.ec.stats();
        let pool_now = self.pools.stats();
        let energy = self.energy.finish(&self.power_model, elapsed_ps);
        let sim = SimResult {
            instructions: self.retired - start.retired,
            be_cycles: self.be_cycles - start.be_cycles,
            fe_cycles: self.fe_cycles - start.fe_cycles,
            elapsed_ps,
            squashed: self.squashed - start.squashed,
            bpred: BpredStats {
                cond_predictions: bp.cond_predictions - start.bpred.cond_predictions,
                cond_mispredicts: bp.cond_mispredicts - start.bpred.cond_mispredicts,
                target_mispredicts: bp.target_mispredicts - start.bpred.target_mispredicts,
                total_ctrl: bp.total_ctrl - start.bpred.total_ctrl,
            },
            caches: HierarchyStats {
                l1i: (ch.l1i.0 - start.caches.l1i.0, ch.l1i.1 - start.caches.l1i.1),
                l1d: (ch.l1d.0 - start.caches.l1d.0, ch.l1d.1 - start.caches.l1d.1),
                l2: (ch.l2.0 - start.caches.l2.0, ch.l2.1 - start.caches.l2.1),
            },
            energy,
            gated_frontend_fraction: residency,
        };
        let flywheel = FlywheelStats {
            exec_mode_ps: exec_ps,
            creation_mode_ps: creation_ps,
            ec_residency: residency,
            ec_lookups: ec_now.lookups - start.ec.lookups,
            ec_hits: ec_now.hits - start.ec.hits,
            traces_stored: ec_now.traces_stored - start.ec.traces_stored,
            ec_utilization: self.ec.utilization(),
            trace_switches: self.trace_switches - start.trace_switches,
            trace_divergences: self.trace_divergences - start.trace_divergences,
            pool_stalls: pool_now.pool_stalls - start.pools.pool_stalls,
            redistributions: pool_now.redistributions - start.pools.redistributions,
        };
        FlywheelResult { sim, flywheel }
    }

    // ------------------------------------------------------------------ oracle

    fn next_trace_inst(&mut self) -> Option<DynInst> {
        if let Some(d) = self.pushback.pop_front() {
            return Some(d);
        }
        if let Some(d) = self.peeked.take() {
            return Some(d);
        }
        match self.trace.next() {
            Some(d) => Some(d),
            None => {
                self.trace_done = true;
                None
            }
        }
    }

    fn peek_trace_inst(&mut self) -> Option<DynInst> {
        if let Some(d) = self.pushback.front() {
            return Some(d.clone());
        }
        if self.peeked.is_none() {
            self.peeked = self.trace.next();
            if self.peeked.is_none() {
                self.trace_done = true;
            }
        }
        self.peeked.clone()
    }

    // ------------------------------------------------------------------ front end

    fn tick_frontend(&mut self) {
        let now = self.fe_time_ps;
        self.fe_cycles += 1;
        self.fe_time_ps += self.fe_period_ps;
        match self.mode {
            Mode::Execution => {
                // Front end (including the Issue Window) is clock gated.
                self.energy.tick_frontend(true);
            }
            Mode::Creation => {
                self.energy.tick_frontend(false);
                self.dispatch(now);
                let queue_cap =
                    (self.cfg.base.front_end_stages * self.cfg.base.fetch_width) as usize;
                if self.fetch_blocked_on_branch.is_none()
                    && now >= self.fetch_resume_at_ps
                    && self.frontend_q.len() < queue_cap
                    && !self.trace_done
                {
                    // A fetch attempt always changes state: it inserts
                    // instructions, starts a line fill, or exhausts the trace.
                    self.tick_activity = true;
                    self.fetch(now);
                }
            }
        }
    }

    fn register_update_allowed(&self) -> bool {
        self.checkpoint_wait_retire_of.is_none() && self.be_cycles >= self.checkpoint_ready_cycle
    }

    fn dispatch(&mut self, now: u64) {
        if self.be_cycles < self.stalled_until_cycle || !self.register_update_allowed() {
            return;
        }
        let sync_ps = self.cfg.base.sync_latency_be_cycles as u64 * self.be_period_creation_ps;
        let mut dispatched = 0;
        while dispatched < self.cfg.base.dispatch_width {
            let Some(&seq) = self.frontend_q.front() else {
                break;
            };
            let (ready, op, stat, pc) = {
                let e = &self.inflight[seq];
                (e.dispatch_ready_ps <= now, e.d.stat.op(), e.d.stat, e.d.pc)
            };
            let is_mem = op.is_mem();
            if !ready
                || self.rob.len() >= self.cfg.base.rob_entries as usize
                || self.iw_len >= self.cfg.base.iw_entries as usize
                || (is_mem && self.lsq.len() >= self.cfg.base.lsq_entries as usize)
            {
                break;
            }
            // Everything past this point changes machine state: the EC lookup
            // charges tag energy, a failed pool rename counts a stall, and a
            // successful one dispatches.
            self.tick_activity = true;
            // Trace completion condition: if the current trace has grown to its
            // limit, look the next PC up in the EC before dispatching it — on a hit
            // the machine switches to the alternative execution path; on a miss the
            // finished trace is sealed into the EC and a new one starts here.
            if self.cfg.execution_cache && self.builder_dispatched >= self.cfg.ec.max_trace_insts {
                if self.try_switch_to_execution(pc, None) {
                    return;
                }
                self.store_current_trace();
            }
            let Some(rename) = self.pools.rename(&stat, &mut self.prf) else {
                break;
            };
            self.frontend_q.pop_front();
            {
                let entry = &mut self.inflight[seq];
                entry.rename = rename;
                entry.state = EntryState::Waiting;
                entry.visible_at_ps = now + sync_ps;
                entry.in_iw = true;
            }
            self.rob.push_back(seq);
            self.iw_len += 1;
            self.sched.on_dispatch(&mut self.inflight, seq, &self.prf);
            if is_mem {
                self.lsq.push_back(seq);
                if op == OpClass::Store {
                    self.stores.on_dispatch_store(seq);
                }
            }
            if self.builder.is_none() {
                self.builder = Some(TraceBuilder::new(pc));
                self.builder_start_seq = seq;
                self.builder_dispatched = 0;
            }
            self.builder_dispatched += 1;
            self.energy.record(Unit::Rename, 1);
            self.energy.record(Unit::RegisterUpdate, 1);
            self.energy.record(Unit::IssueWindowInsert, 1);
            self.energy.record(Unit::Rob, 1);
            dispatched += 1;
        }
    }

    fn fetch(&mut self, now: u64) {
        let Some(first) = self.peek_trace_inst() else {
            return;
        };
        let first_pc = first.pc;
        self.energy.record(Unit::ICache, 1);
        self.energy.record(Unit::BranchPredictor, 1);
        let outcome = self.hierarchy.fetch(first_pc.addr());
        if outcome != AccessOutcome::L1 {
            if outcome == AccessOutcome::Memory {
                self.energy.record(Unit::L2, 1);
            }
            self.fetch_resume_at_ps = now + self.hierarchy.extra_latency_ps(outcome);
            return;
        }
        let fetch_width = self.cfg.base.fetch_width as usize;
        let group_room = fetch_width - first_pc.fetch_group_offset(fetch_width);
        let dispatch_delay = self.cfg.base.front_end_stages as u64 * self.fe_period_ps;
        for _ in 0..group_room {
            let Some(d) = self.next_trace_inst() else {
                break;
            };
            let seq = d.seq;
            let correct = self.bpred.predict(&d);
            let redirects = d.redirects_fetch();
            self.energy.record(Unit::Decode, 1);
            self.inflight.insert(InflightEntry::new_frontend(
                d,
                now + dispatch_delay,
                !correct,
            ));
            self.frontend_q.push_back(seq);
            if !correct {
                self.fetch_blocked_on_branch = Some(seq);
                break;
            }
            if redirects {
                break;
            }
        }
    }

    // ------------------------------------------------------------------ back end

    fn tick_backend(&mut self) {
        self.maybe_retune_clock();
        let now = self.be_time_ps;
        let period = self.be_period();
        self.be_cycles += 1;
        self.be_time_ps += period;
        match self.mode {
            Mode::Creation => self.creation_mode_ps += period,
            Mode::Execution => self.exec_mode_ps += period,
        }
        self.energy.tick_backend();
        self.fus.begin_cycle();

        self.complete(now);
        self.retire();
        if self.be_cycles >= self.stalled_until_cycle {
            match self.mode {
                Mode::Creation => {
                    self.issue_creation(now);
                    if self.iw_len > 0 {
                        self.energy.record(Unit::IssueWindowWakeup, 1);
                        self.energy.record(Unit::IssueWindowSelect, 1);
                    }
                }
                Mode::Execution => {
                    // Instructions dispatched before the switch still drain through
                    // the Issue Window; the front end is only fully gated once it is
                    // empty.
                    if self.iw_len > 0 {
                        self.issue_creation(now);
                        self.energy.record(Unit::IssueWindowWakeup, 1);
                        self.energy.record(Unit::IssueWindowSelect, 1);
                    }
                    self.issue_execution();
                }
            }
        }
        self.maybe_redistribute();
    }

    /// DVFS governor evaluation, run at the top of every back-end tick (before
    /// the edge advances time, so a retuned period applies from this cycle on).
    ///
    /// The fast-forward bound in [`Self::next_event_ps`] never bulk-advances
    /// the back-end past `next_eval_cycle`, so the period stays constant across
    /// every bounded idle stretch — the invariant `be_cycle_time_ps` relies on.
    fn maybe_retune_clock(&mut self) {
        let Some(d) = &mut self.dvfs else { return };
        if self.be_cycles < d.next_eval_cycle {
            return;
        }
        d.next_eval_cycle = self.be_cycles + d.policy.interval_be_cycles;
        let exec = self.exec_mode_ps - d.last_exec_mode_ps;
        let creation = self.creation_mode_ps - d.last_creation_mode_ps;
        d.last_exec_mode_ps = self.exec_mode_ps;
        d.last_creation_mode_ps = self.creation_mode_ps;
        if exec + creation == 0 {
            return;
        }
        let residency = exec as f64 / (exec + creation) as f64;
        let p = d.policy;
        let new_pct = if residency >= p.hi_residency {
            d.current_pct
                .saturating_add(p.step_pct)
                .min(p.max_backend_pct)
        } else if residency <= p.lo_residency {
            d.current_pct
                .saturating_sub(p.step_pct)
                .max(p.min_backend_pct)
        } else {
            d.current_pct
        };
        if new_pct != d.current_pct {
            d.current_pct = new_pct;
            d.retunes += 1;
            // Same period derivation as `ClockPlan::with_speedups`, so a
            // governed plan settling on the starting speed-up reproduces the
            // static plan's period exactly.
            self.be_period_exec_ps =
                flywheel_timing::ClockPlan::with_speedups(self.cfg.base.node, 0, new_pct)
                    .backend_period_ps;
            // A clock change is machine activity: never fast-forward over it.
            self.tick_activity = true;
        }
    }

    fn maybe_redistribute(&mut self) {
        if self.be_cycles < self.next_redistribution_cycle
            || self.mode != Mode::Creation
            || !self.rob.is_empty()
        {
            return;
        }
        self.next_redistribution_cycle = self.be_cycles + self.cfg.pools.redistribution_interval;
        if self.pools.maybe_redistribute() {
            self.tick_activity = true;
            self.stalled_until_cycle = self.be_cycles + self.cfg.pools.redistribution_cost;
            self.ec.invalidate_all();
            // Renaming information stored in the current trace is obsolete too.
            self.builder = None;
        }
    }

    fn complete(&mut self, now: u64) {
        let cycle = self.be_cycles;
        // Drain the due prefix of the completion queue; the per-cycle cost when
        // nothing finishes (the common case during a memory stall) is one peek.
        self.finished_scratch.clear();
        while let Some((at, seq)) = self.completions.pop_due(cycle) {
            self.finished_scratch.push((seq, at));
        }
        if self.finished_scratch.is_empty() {
            return;
        }
        self.tick_activity = true;
        // Process in program order, as the original executing-list scan did.
        self.finished_scratch.sort_unstable();
        for i in 0..self.finished_scratch.len() {
            let (seq, at) = self.finished_scratch[i];
            // An earlier completion in this very cycle may have squashed this
            // entry during mispredict recovery, and a squashed + re-issued
            // instruction (trace-replay hand-backs re-fetch the same sequence
            // numbers) leaves stale queue entries whose deadline no longer
            // matches the live schedule.
            let Some(e) = self.inflight.get_mut(seq) else {
                continue;
            };
            if e.state != EntryState::Issued || e.complete_at != at {
                continue;
            }
            e.state = EntryState::Completed;
            let (has_dst, mispredicted) = (e.rename.dst.is_some(), e.mispredicted);
            if has_dst {
                self.energy.record(Unit::RegFileWrite, 1);
            }
            self.energy.record(Unit::ResultBus, 1);
            if mispredicted && self.mode == Mode::Creation {
                self.handle_creation_mispredict(seq, now);
            }
        }
    }

    /// A mispredicted branch resolved in trace-creation mode: finish the trace being
    /// built, squash, and either restart the front end or switch to the Execution
    /// Cache path.
    fn handle_creation_mispredict(&mut self, branch_seq: u64, now: u64) {
        // Squash younger instructions (none exist when fetch stalls on the branch,
        // but keep the logic for robustness).
        while let Some(&tail) = self.rob.back() {
            if tail <= branch_seq {
                break;
            }
            self.rob.pop_back();
            let entry = self.inflight.remove(tail).expect("squashed entry exists");
            if entry.in_iw {
                self.iw_len -= 1;
            }
            self.pools.squash(&entry.rename);
            self.note_squashed(tail);
        }
        while let Some(&seq) = self.frontend_q.back() {
            if seq <= branch_seq {
                break;
            }
            self.frontend_q.pop_back();
            self.inflight.remove(seq);
            self.note_squashed(seq);
        }
        while self.lsq.back().is_some_and(|&s| s > branch_seq) {
            self.lsq.pop_back();
        }
        // Squashed executing instructions leave stale completion-queue entries;
        // `complete` validates them against the live table on pop.
        self.sched.squash_after(branch_seq);
        self.stores.squash_after(branch_seq);

        if self.fetch_blocked_on_branch == Some(branch_seq) {
            self.fetch_blocked_on_branch = None;
        }
        // The Rename Table checkpoint (FRT -> RT copy) cannot happen before the
        // mispredicted instruction retires.
        self.checkpoint_wait_retire_of = Some(branch_seq);

        // Store the trace built so far.
        self.store_current_trace();

        // Search the EC for a trace starting at the correct target.
        let target = self.inflight[branch_seq].d.next_pc;
        if self.cfg.execution_cache && self.try_switch_to_execution(target, Some(branch_seq)) {
            return;
        }
        // Miss: restart the front end at the correct target; a new trace starts with
        // the next dispatched instruction.
        let redirect_delay = self.fe_period_ps * (1 + self.cfg.base.redirect_sync_fe_cycles) as u64;
        self.fetch_resume_at_ps = self.fetch_resume_at_ps.max(now + redirect_delay);
        self.builder = None;
    }

    /// Counts a squashed instruction and clears any pipeline markers pointing at
    /// it. A younger mispredicted branch can be squashed by an older one
    /// resolving in the same cycle; leaving `fetch_blocked_on_branch` (or the
    /// FRT checkpoint) aimed at the dead instruction would stall the front end
    /// forever — the original HashMap kernel hit this as a "completing entry
    /// must exist" panic on long runs.
    fn note_squashed(&mut self, seq: u64) {
        self.squashed += 1;
        if self.fetch_blocked_on_branch == Some(seq) {
            self.fetch_blocked_on_branch = None;
        }
        if self.checkpoint_wait_retire_of == Some(seq) {
            self.checkpoint_wait_retire_of = None;
            self.checkpoint_ready_cycle = self.be_cycles + 1;
        }
    }

    fn store_current_trace(&mut self) {
        if let Some(builder) = self.builder.take() {
            if !builder.is_empty() && self.cfg.execution_cache {
                let trace = builder.finish();
                let blocks = self.ec.insert(trace);
                self.energy.record(Unit::EcDataWrite, blocks);
            }
        }
        self.builder_dispatched = 0;
    }

    /// Looks up `target` in the EC and, on a hit, switches to trace-execution mode.
    /// Any instructions still waiting in the front-end queue are handed back to the
    /// oracle stream (they will be replayed from the EC instead).
    fn try_switch_to_execution(&mut self, target: Pc, _after_branch: Option<u64>) -> bool {
        self.energy.record(Unit::EcTagLookup, 1);
        let Some(trace) = self.ec.lookup(target).cloned() else {
            return false;
        };
        self.store_current_trace();
        // Hand un-dispatched front-end instructions back to the oracle. The queue
        // is in program order, so popping from the back and pushing to the front
        // of the pushback queue preserves the stream order.
        while let Some(seq) = self.frontend_q.pop_back() {
            if let Some(entry) = self.inflight.remove(seq) {
                self.pushback.push_front(entry.d);
            }
        }
        self.fetch_blocked_on_branch = None;
        self.mode = Mode::Execution;
        self.trace_switches += 1;
        let ready_at_cycle = self.be_cycles + self.cfg.ec.hit_cycles as u64;
        self.replay = Some(Replay {
            trace,
            pulled: Vec::new(),
            diverged: false,
            next_idx: 0,
            ready_at_cycle,
            consumed: 0,
        });
        true
    }

    // -------------------------------------------------------- creation-mode issue

    fn issue_creation(&mut self, now: u64) {
        let cycle = self.be_cycles;
        let wakeup_extra = if self.cfg.base.pipelined_wakeup { 1 } else { 0 };
        let mut issued_count = 0;
        self.issued_scratch.clear();
        self.sched.release_due(&self.inflight, cycle);

        // Scan only woken entries (all sources produced), in program order — the
        // same order the original kernel walked the whole Issue Window in.
        for i in 0..self.sched.ready_len() {
            if issued_count >= self.cfg.base.issue_width {
                break;
            }
            let seq = self.sched.ready_seq(i);
            let (op, srcs_len, visible_at, ready_cycle, mem_addr, pc, stat) = {
                let e = &self.inflight[seq];
                (
                    e.d.stat.op(),
                    e.rename.srcs.len(),
                    e.visible_at_ps,
                    e.ready_cycle,
                    e.d.mem.map(|m| m.addr),
                    e.d.pc,
                    e.d.stat,
                )
            };
            if visible_at > now {
                continue;
            }
            if ready_cycle.saturating_add(wakeup_extra) > cycle {
                continue;
            }
            if !self.fus.can_issue(op) {
                continue;
            }
            if op == OpClass::Load && self.stores.blocks_load(seq) {
                continue;
            }
            assert!(self.fus.try_issue(op));
            let exec_cycles = self.execution_latency(seq, op, mem_addr, self.be_period_creation_ps);
            self.start_execution(seq, exec_cycles);
            self.iw_len -= 1;
            // Record the issued instruction into the trace being built.
            if self.cfg.execution_cache && seq >= self.builder_start_seq {
                if let Some(builder) = self.builder.as_mut() {
                    builder.record(seq, pc, stat);
                }
            }
            self.energy.record(Unit::RegFileRead, srcs_len as u64);
            self.energy.record(Self::fu_energy_unit(op), 1);
            if op.is_mem() {
                self.energy.record(Unit::Lsq, 1);
            }
            self.issued_scratch.push(seq);
            issued_count += 1;
        }
        if issued_count > 0 {
            self.tick_activity = true;
        }
        if let Some(builder) = self.builder.as_mut() {
            builder.close_unit();
        }
        self.sched.remove_issued(&self.issued_scratch);
        self.sched.drain_wakes(&mut self.inflight);
    }

    fn start_execution(&mut self, seq: u64, exec_cycles: u64) {
        let cycle = self.be_cycles;
        let wakeup_ready = cycle + exec_cycles;
        let complete_at = cycle + self.cfg.base.reg_read_cycles as u64 + exec_cycles;
        let (op, line) = {
            let e = &mut self.inflight[seq];
            e.state = EntryState::Issued;
            e.complete_at = complete_at;
            e.in_iw = false;
            if let Some(dst) = e.rename.dst {
                self.prf.mark_ready(dst, wakeup_ready);
                self.sched.defer_wake(dst, wakeup_ready);
            }
            (e.d.stat.op(), e.d.mem.map(|m| m.addr & !63))
        };
        if op == OpClass::Store {
            self.stores
                .on_store_issue(seq, line.expect("stores carry an address"));
        }
        self.completions.push(complete_at, seq);
    }

    // -------------------------------------------------------- execution-mode issue

    fn issue_execution(&mut self) {
        let Some(mut replay) = self.replay.take() else {
            // Should not happen; fall back to creation mode.
            self.tick_activity = true;
            self.enter_creation_mode_at_next_oracle_pc();
            return;
        };

        // Pull oracle instructions that follow the recorded path.
        while !replay.diverged && replay.pulled.len() < replay.trace.len() {
            let expected_pc = replay.trace.insts[replay.pulled.len()].pc;
            match self.peek_trace_inst() {
                Some(d) if d.pc == expected_pc => {
                    let d = self.next_trace_inst().expect("peeked instruction exists");
                    // Retirement keeps sending branch-predictor updates even while
                    // the front end is gated, so the predictor stays coherent for
                    // the next trace-creation phase.
                    self.bpred.train(&d);
                    replay.pulled.push(d);
                    self.tick_activity = true;
                }
                Some(_) => {
                    replay.diverged = true;
                    self.trace_divergences += 1;
                    self.tick_activity = true;
                }
                None => break,
            }
        }

        let startup_done = self.be_cycles >= replay.ready_at_cycle;

        // Issue the next issue unit (in-order, VLIW-like).
        if startup_done && self.register_update_allowed() && replay.next_idx < replay.pulled.len() {
            let unit = replay.trace.insts[replay.next_idx].unit;
            // Full extent of the unit in the recorded trace.
            let mut unit_end = replay.next_idx;
            while unit_end < replay.trace.len() && replay.trace.insts[unit_end].unit == unit {
                unit_end += 1;
            }
            // Only instructions already verified against the actual stream can issue;
            // a partially verified unit waits unless the stream has diverged (the
            // unverified tail will never execute).
            let end = unit_end.min(replay.pulled.len());
            if end == unit_end || replay.diverged {
                let group = replay.next_idx..end;
                if !group.is_empty() && self.can_issue_replay_group(&replay, group.clone()) {
                    self.tick_activity = true;
                    for idx in group {
                        self.issue_replay_inst(&mut replay, idx);
                    }
                    self.sched.drain_wakes(&mut self.inflight);
                    replay.next_idx = end;
                } else if !group.is_empty() && self.rob.is_empty() && self.iw_len == 0 {
                    self.tick_activity = true;
                    // Safety valve: with nothing in flight the unit can only be
                    // blocked by state that will never change (e.g. a pool shrunk by
                    // a redistribution below what the recorded schedule assumed).
                    // Abandon the replay and rebuild the trace through the front end;
                    // instructions already verified but not yet issued go back to the
                    // oracle stream so the front end re-fetches them.
                    for d in replay.pulled[replay.next_idx..].iter().rev() {
                        self.pushback.push_front(d.clone());
                    }
                    self.ec.remove(replay.trace.start_pc);
                    self.replay = None;
                    self.checkpoint_ready_cycle = self.be_cycles + 1;
                    self.enter_creation_mode_at_next_oracle_pc();
                    return;
                }
            }
        }

        // Trace end conditions.
        let finished_all = replay.next_idx >= replay.trace.len();
        let finished_diverged = replay.diverged && replay.next_idx >= replay.pulled.len();
        if finished_all || finished_diverged {
            self.tick_activity = true;
            if replay.diverged {
                // The offending branch must retire before the next trace can pass
                // Register Update (FRT checkpoint).
                self.set_checkpoint_after(replay.pulled.last().map(|d| d.seq));
                // The recorded schedule no longer matches the program's behaviour;
                // drop it so the front end builds a fresh (longer) trace for this
                // path the next time it is reached.
                self.ec.remove(replay.trace.start_pc);
            } else if self.cfg.srt {
                // Natural trace end detected before Register Update: the SRT swap
                // costs a single cycle.
                self.checkpoint_ready_cycle = self.be_cycles + 1;
            } else {
                self.set_checkpoint_after(replay.pulled.last().map(|d| d.seq));
            }
            self.replay = None;
            self.next_trace_segment();
            return;
        }
        self.replay = Some(replay);
    }

    /// Blocks Register Update until `seq` retires; if it already left the machine,
    /// the checkpoint only costs the usual single cycle.
    fn set_checkpoint_after(&mut self, seq: Option<u64>) {
        match seq {
            Some(s) if self.inflight.contains(s) => {
                self.checkpoint_wait_retire_of = Some(s);
            }
            _ => self.checkpoint_ready_cycle = self.be_cycles + 1,
        }
    }

    fn can_issue_replay_group(&self, replay: &Replay, group: std::ops::Range<usize>) -> bool {
        if self.rob.len() + group.len() > self.cfg.base.rob_entries as usize {
            return false;
        }
        let mem_count = group
            .clone()
            .filter(|&i| replay.trace.insts[i].stat.op().is_mem())
            .count();
        if self.lsq.len() + mem_count > self.cfg.base.lsq_entries as usize {
            return false;
        }
        // Operand readiness: sources must be available (pre-scheduled VLIW-like
        // replay stalls on cache misses and long-latency producers). Destinations
        // must have a free entry in their register pool.
        for i in group {
            let stat = replay.trace.insts[i].stat;
            for src in stat.srcs() {
                let phys = self.pools.mapping(src);
                if !self.prf.is_ready(phys, self.be_cycles) {
                    return false;
                }
            }
            if let Some(dst) = stat.dst() {
                if !self.pools.can_allocate(dst) {
                    return false;
                }
            }
        }
        true
    }

    fn issue_replay_inst(&mut self, replay: &mut Replay, idx: usize) {
        let d = replay.pulled[idx].clone();
        let seq = d.seq;
        let op = d.stat.op();
        let mem_addr = d.mem.map(|m| m.addr);
        let rename = self
            .pools
            .rename(&d.stat, &mut self.prf)
            // Pool capacity cannot be exceeded during replay: the same allocation
            // pattern already succeeded during trace creation and the ROB bounds the
            // number of in-flight writes. If it does happen (after a redistribution
            // shrank a pool), fall back to reusing the current mapping.
            .unwrap_or_default();
        self.energy.record(Unit::RegisterUpdate, 1);
        self.energy
            .record(Unit::RegFileRead, d.stat.srcs().count() as u64);
        self.energy.record(Self::fu_energy_unit(op), 1);
        if op.is_mem() {
            self.energy.record(Unit::Lsq, 1);
        }
        // Data-array block accounting: one read per block of instructions consumed.
        if replay
            .consumed
            .is_multiple_of(self.cfg.ec.block_insts as u64)
        {
            self.energy.record(Unit::EcDataRead, 1);
        }
        replay.consumed += 1;

        self.inflight.insert(InflightEntry::new_replay(d, rename));
        self.rob.push_back(seq);
        if op.is_mem() {
            self.lsq.push_back(seq);
        }
        let exec_cycles = self.execution_latency(seq, op, mem_addr, self.be_period_exec_ps);
        self.start_execution(seq, exec_cycles);
    }

    /// After a trace ends, decide where execution continues: another trace from the
    /// EC, or the front end.
    fn next_trace_segment(&mut self) {
        let Some(next) = self.peek_trace_inst() else {
            self.mode = Mode::Creation;
            return;
        };
        if self.cfg.execution_cache {
            self.energy.record(Unit::EcTagLookup, 1);
            if let Some(trace) = self.ec.lookup(next.pc).cloned() {
                self.trace_switches += 1;
                // For natural trace-to-trace transitions the next look-up is started
                // ahead of time, so the data-array latency is hidden and only the
                // single-cycle SRT swap (already charged through
                // `checkpoint_ready_cycle`) is visible.
                let ready_at_cycle = self.be_cycles + 1;
                self.replay = Some(Replay {
                    trace,
                    pulled: Vec::new(),
                    diverged: false,
                    next_idx: 0,
                    ready_at_cycle,
                    consumed: 0,
                });
                self.mode = Mode::Execution;
                return;
            }
        }
        self.enter_creation_mode_at_next_oracle_pc();
    }

    fn enter_creation_mode_at_next_oracle_pc(&mut self) {
        self.mode = Mode::Creation;
        self.builder = None;
        self.builder_dispatched = 0;
        self.fetch_blocked_on_branch = None;
        // The front end needs a redirect-like restart before it can supply
        // instructions again.
        let redirect_delay = self.fe_period_ps * (1 + self.cfg.base.redirect_sync_fe_cycles) as u64;
        self.fetch_resume_at_ps = self.fetch_resume_at_ps.max(self.now_ps() + redirect_delay);
    }

    // ------------------------------------------------------------------ shared

    fn retire(&mut self) {
        let mut n = 0;
        while n < self.cfg.base.commit_width && self.retired < self.retire_limit {
            let Some(&head) = self.rob.front() else { break };
            if self.inflight[head].state != EntryState::Completed {
                break;
            }
            self.rob.pop_front();
            let entry = self.inflight.remove(head).expect("retiring entry exists");
            self.pools.commit(&entry.rename);
            let op = entry.d.stat.op();
            if op.is_mem() {
                // The ROB head is the oldest in-flight instruction, so a retiring
                // memory instruction is always the LSQ head.
                debug_assert_eq!(self.lsq.front(), Some(&head));
                self.lsq.pop_front();
                if op == OpClass::Store {
                    self.stores.on_store_retire(head);
                }
            }
            if self.checkpoint_wait_retire_of == Some(head) {
                // FRT -> RT copy can proceed on the next cycle.
                self.checkpoint_wait_retire_of = None;
                self.checkpoint_ready_cycle = self.be_cycles + 1;
            }
            self.energy.record(Unit::Retire, 1);
            self.retired += 1;
            self.last_progress_cycle = self.be_cycles;
            self.tick_activity = true;
            n += 1;
        }
    }

    fn fu_energy_unit(op: OpClass) -> Unit {
        match op {
            OpClass::IntMul | OpClass::IntDiv => Unit::FuIntMulDiv,
            OpClass::FpAdd => Unit::FuFpAdd,
            OpClass::FpMul | OpClass::FpDiv => Unit::FuFpMulDiv,
            _ => Unit::FuIntAlu,
        }
    }

    fn execution_latency(
        &mut self,
        seq: u64,
        op: OpClass,
        mem_addr: Option<u64>,
        be_period_ps: u64,
    ) -> u64 {
        let base = op.base_latency() as u64;
        match op {
            OpClass::Load => {
                let addr = mem_addr.expect("loads carry an address");
                if self.stores.forwards_to(seq, addr & !63) {
                    return base;
                }
                self.energy.record(Unit::DCache, 1);
                let outcome = self.hierarchy.data(addr);
                if outcome != AccessOutcome::L1 {
                    self.energy.record(Unit::L2, 1);
                }
                let extra_ps = self.hierarchy.extra_latency_ps(outcome);
                let extra_cycles = extra_ps.div_ceil(be_period_ps);
                base + self.cfg.base.l1_hit_cycles as u64 + extra_cycles
            }
            OpClass::Store => {
                self.energy.record(Unit::DCache, 1);
                let addr = mem_addr.expect("stores carry an address");
                let outcome = self.hierarchy.data(addr);
                if outcome != AccessOutcome::L1 {
                    self.energy.record(Unit::L2, 1);
                }
                base
            }
            _ => base,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flywheel_timing::TechNode;
    use flywheel_uarch::{BaselineConfig, BaselineSim};
    use flywheel_workloads::{Benchmark, TraceGenerator};

    fn run_flywheel(b: Benchmark, cfg: FlywheelConfig, budget: SimBudget) -> FlywheelResult {
        let program = b.synthesize(42);
        let trace = TraceGenerator::new(&program, 42);
        FlywheelSim::new(cfg, trace).run(budget)
    }

    fn run_baseline(b: Benchmark, budget: SimBudget) -> SimResult {
        let program = b.synthesize(42);
        let trace = TraceGenerator::new(&program, 42);
        BaselineSim::new(BaselineConfig::paper(TechNode::N130), trace).run(budget)
    }

    #[test]
    fn retires_the_requested_instruction_count() {
        let r = run_flywheel(
            Benchmark::Micro,
            FlywheelConfig::paper_iso_clock(TechNode::N130),
            SimBudget::new(1_000, 20_000),
        );
        assert_eq!(r.sim.instructions, 20_000);
        assert!(r.sim.elapsed_ps > 0);
    }

    #[test]
    fn execution_cache_path_is_used_most_of_the_time() {
        // The paper reports an average 88% residency on the alternative execution
        // path; loop-dominated benchmarks should comfortably exceed 50% even at the
        // small test scale.
        let r = run_flywheel(
            Benchmark::Ijpeg,
            FlywheelConfig::paper_iso_clock(TechNode::N130),
            SimBudget::new(20_000, 60_000),
        );
        assert!(
            r.flywheel.ec_residency > 0.4,
            "EC residency {:.2} too low (switches {}, stored {}, hits {}/{})",
            r.flywheel.ec_residency,
            r.flywheel.trace_switches,
            r.flywheel.traces_stored,
            r.flywheel.ec_hits,
            r.flywheel.ec_lookups,
        );
        assert!(r.flywheel.traces_stored > 0);
        assert!(r.flywheel.trace_switches > 0);
        assert_eq!(
            r.sim.gated_frontend_fraction, r.flywheel.ec_residency,
            "residency must be reported consistently"
        );
    }

    #[test]
    fn disabling_the_ec_keeps_the_machine_in_creation_mode() {
        let r = run_flywheel(
            Benchmark::Gzip,
            FlywheelConfig::register_allocation_only(TechNode::N130),
            SimBudget::new(2_000, 20_000),
        );
        assert_eq!(r.flywheel.ec_residency, 0.0);
        assert_eq!(r.flywheel.traces_stored, 0);
        assert_eq!(r.sim.instructions, 20_000);
    }

    #[test]
    fn register_allocation_machine_is_slower_than_baseline() {
        // Figure 11: the Dual-Clock IW + pool renaming alone lose performance
        // against the baseline at the same clock (longer pipeline, rename stalls).
        let budget = SimBudget::new(5_000, 40_000);
        for bench in [Benchmark::Gzip, Benchmark::Parser] {
            let base = run_baseline(bench, budget);
            let regalloc = run_flywheel(
                bench,
                FlywheelConfig::register_allocation_only(TechNode::N130),
                budget,
            );
            let relative = base.elapsed_ps as f64 / regalloc.sim.elapsed_ps as f64;
            assert!(
                relative < 1.02,
                "{bench}: register-allocation machine should not beat the baseline ({relative:.3})"
            );
            // The paper reports >10% losses for the register-pressure benchmarks; the
            // synthetic stand-ins overshoot that somewhat at small scale, so only a
            // collapse (more than 2x) is treated as a failure.
            assert!(
                relative > 0.5,
                "{bench}: register-allocation machine should not collapse ({relative:.3})"
            );
            assert!(
                regalloc.flywheel.pool_stalls > 0,
                "{bench}: expected pool pressure"
            );
        }
    }

    #[test]
    fn faster_clocks_improve_flywheel_performance() {
        // Figure 12: raising the front-end and back-end clocks must increase
        // performance monotonically (roughly).
        let budget = SimBudget::new(10_000, 40_000);
        let iso = run_flywheel(
            Benchmark::Mesa,
            FlywheelConfig::paper_iso_clock(TechNode::N130),
            budget,
        );
        let be50 = run_flywheel(
            Benchmark::Mesa,
            FlywheelConfig::paper(TechNode::N130, 0, 50),
            budget,
        );
        let fe50 = run_flywheel(
            Benchmark::Mesa,
            FlywheelConfig::paper(TechNode::N130, 50, 50),
            budget,
        );
        assert!(
            be50.sim.elapsed_ps < iso.sim.elapsed_ps,
            "BE+50% ({}) should beat iso-clock ({})",
            be50.sim.elapsed_ps,
            iso.sim.elapsed_ps
        );
        // A faster front end mostly helps by filling the Issue Window sooner; at
        // this small scale it may be offset by extra register-pool pressure, so a
        // modest tolerance is allowed.
        assert!(
            fe50.sim.elapsed_ps <= be50.sim.elapsed_ps * 110 / 100,
            "FE+50% should not cost more than 10% ({} vs {})",
            fe50.sim.elapsed_ps,
            be50.sim.elapsed_ps
        );
    }

    #[test]
    fn sped_up_flywheel_beats_the_baseline() {
        // The headline claim: with FE+50%/BE+50% the Flywheel machine is markedly
        // faster than the fully synchronous baseline.
        let budget = SimBudget::new(10_000, 50_000);
        let base = run_baseline(Benchmark::Ijpeg, budget);
        let iso = run_flywheel(
            Benchmark::Ijpeg,
            FlywheelConfig::paper_iso_clock(TechNode::N130),
            budget,
        );
        let fly = run_flywheel(
            Benchmark::Ijpeg,
            FlywheelConfig::paper(TechNode::N130, 50, 50),
            budget,
        );
        let speedup = fly.speedup_over(&base);
        // At the small test scale the reproduction undershoots the paper's 1.5x
        // (see EXPERIMENTS.md), but the sped-up Flywheel must stay competitive with
        // the baseline and clearly beat its own iso-clock configuration.
        assert!(
            speedup > 0.85,
            "expected a competitive result, got {speedup:.3} (residency {:.2})",
            fly.flywheel.ec_residency
        );
        assert!(
            fly.speedup_over(&iso.sim) > 1.1,
            "faster clocks must pay off: {:.3}",
            fly.speedup_over(&iso.sim)
        );
    }

    #[test]
    fn flywheel_saves_energy_through_front_end_gating() {
        // Figure 13: the Flywheel machine consumes less total energy than the
        // baseline because the front end is gated while replaying from the EC. At
        // the small unit-test scale the effect is evaluated at the baseline clock
        // where the residency is highest; EXPERIMENTS.md records the full sweep.
        let budget = SimBudget::new(10_000, 50_000);
        let base = run_baseline(Benchmark::Ijpeg, budget);
        let fly = run_flywheel(
            Benchmark::Ijpeg,
            FlywheelConfig::paper_iso_clock(TechNode::N130),
            budget,
        );
        let ratio = fly.energy_ratio_over(&base);
        assert!(
            ratio < 1.0,
            "expected energy savings, got ratio {ratio:.3} (residency {:.2})",
            fly.flywheel.ec_residency
        );
        assert!(
            ratio > 0.4,
            "savings should not be implausibly large ({ratio:.3})"
        );
        // The EC path spends energy on its own structures.
        assert!(fly.sim.energy.flywheel_pj > 0.0);
    }

    #[test]
    fn vortex_uses_the_front_end_more_than_loop_codes() {
        // The paper singles out vortex as the benchmark with the lowest EC
        // residency (~60%) because of its large instruction footprint.
        // The paper reports vortex as the benchmark with the lowest residency on the
        // alternative execution path (< 60%, against an 88% suite average), caused by
        // its large instruction footprint and call-dominated control flow.
        let budget = SimBudget::new(10_000, 40_000);
        let vortex = run_flywheel(
            Benchmark::Vortex,
            FlywheelConfig::paper_iso_clock(TechNode::N130),
            budget,
        );
        assert!(
            vortex.flywheel.ec_residency < 0.75,
            "vortex residency {:.2} should be on the low side",
            vortex.flywheel.ec_residency
        );
        assert!(
            vortex.flywheel.ec_residency > 0.1,
            "vortex should still use the EC path some of the time ({:.2})",
            vortex.flywheel.ec_residency
        );
    }

    #[test]
    fn trace_divergences_are_detected() {
        let r = run_flywheel(
            Benchmark::Parser,
            FlywheelConfig::paper_iso_clock(TechNode::N130),
            SimBudget::new(10_000, 40_000),
        );
        assert!(
            r.flywheel.trace_divergences > 0,
            "parser's irregular branches must cause replay divergences"
        );
    }

    #[test]
    fn dvfs_governor_retunes_and_beats_the_iso_clock_start() {
        // Starting at BE0 on a high-residency benchmark, the governor must
        // ratchet the trace-execution clock up and finish the measured run
        // faster than the static iso-clock machine, without touching committed
        // work.
        let budget = SimBudget::new(5_000, 40_000);
        let program = Benchmark::FlyBest.synthesize(42);
        let mut gov = FlywheelSim::new_dvfs(
            crate::DvfsConfig::paper(TechNode::N130, 0, 0),
            TraceGenerator::new(&program, 42),
        );
        let governed = gov.run(budget);
        assert!(gov.dvfs_retunes() > 0, "governor never retuned");
        let iso = run_flywheel(
            Benchmark::FlyBest,
            FlywheelConfig::paper_iso_clock(TechNode::N130),
            budget,
        );
        assert_eq!(governed.sim.instructions, iso.sim.instructions);
        assert!(
            governed.sim.elapsed_ps < iso.sim.elapsed_ps,
            "governed {} vs iso {}",
            governed.sim.elapsed_ps,
            iso.sim.elapsed_ps
        );
    }

    #[test]
    fn dvfs_runs_are_deterministic() {
        let budget = SimBudget::new(2_000, 10_000);
        let run = || {
            let program = Benchmark::Gzip.synthesize(42);
            FlywheelSim::new_dvfs(
                crate::DvfsConfig::paper(TechNode::N130, 50, 50),
                TraceGenerator::new(&program, 42),
            )
            .run(budget)
        };
        assert_eq!(run(), run());
    }
}
