//! Configuration of the Flywheel machine.

use flywheel_timing::{ClockPlan, TechNode};
use flywheel_uarch::BaselineConfig;

/// Execution Cache geometry and timing (paper §3.3, Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EcConfig {
    /// Capacity in bytes (128 KB in the paper).
    pub size_bytes: u64,
    /// Associativity of the tag array (2-way in the paper).
    pub assoc: u32,
    /// Instructions per data-array block (8 in the paper's evaluation).
    pub block_insts: u32,
    /// Bytes each stored instruction occupies (decoded + renamed form).
    pub bytes_per_inst: u32,
    /// Access latency of the data array in execution-core cycles (3 in Table 2).
    pub hit_cycles: u32,
    /// Maximum trace length in instructions before a trace-completion condition is
    /// raised (the paper allows "arbitrary length"; this bound exists only to keep
    /// single traces from monopolising the cache).
    pub max_trace_insts: u32,
}

impl EcConfig {
    /// The paper's Execution Cache: 128 KB, 2-way, 8-instruction blocks, 3-cycle hit.
    pub fn paper() -> Self {
        EcConfig {
            size_bytes: 128 * 1024,
            assoc: 2,
            block_insts: 8,
            bytes_per_inst: 8,
            hit_cycles: 3,
            max_trace_insts: 512,
        }
    }

    /// Total instruction slots in the data array.
    pub fn capacity_insts(&self) -> u64 {
        self.size_bytes / self.bytes_per_inst as u64
    }
}

/// Pool-based register file configuration (paper §3.4–3.5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolConfig {
    /// Total physical registers (512 in the paper's Flywheel configuration).
    pub total_phys_regs: u32,
    /// Interval, in execution-core cycles, at which the register-redistribution
    /// counters are examined (500 000 in the paper).
    pub redistribution_interval: u64,
    /// Pipeline stall charged when a redistribution is performed (100 cycles in the
    /// paper). A redistribution also invalidates the Execution Cache.
    pub redistribution_cost: u64,
    /// Fraction of rename stalls (relative to renames) above which a register is
    /// considered a bottleneck and receives extra entries.
    pub bottleneck_threshold: f64,
}

impl PoolConfig {
    /// The paper's configuration: 512 physical registers, counters checked every
    /// 500 k cycles, 100-cycle redistribution.
    pub fn paper() -> Self {
        PoolConfig {
            total_phys_regs: 512,
            redistribution_interval: 500_000,
            redistribution_cost: 100,
            bottleneck_threshold: 0.02,
        }
    }
}

/// Complete configuration of the Flywheel machine.
///
/// The Flywheel machine is the baseline machine (whose structural parameters live in
/// [`BaselineConfig`]) extended with the Dual-Clock Issue Window, the two-phase
/// pool-based register renaming (with its extra Register Update stage) and the
/// Execution Cache. Disabling [`FlywheelConfig::execution_cache`] yields the
/// "Register Allocation" machine of Figure 11 — the Dual-Clock Issue Window and the
/// new renaming without pre-scheduled execution.
#[derive(Debug, Clone, PartialEq)]
pub struct FlywheelConfig {
    /// The underlying pipeline structure (widths, caches, Issue Window, FUs).
    pub base: BaselineConfig,
    /// Execution Cache parameters.
    pub ec: EcConfig,
    /// Register pool parameters.
    pub pools: PoolConfig,
    /// Whether the Execution Cache / pre-scheduled execution path is enabled.
    pub execution_cache: bool,
    /// Whether the Speculative Remapping Table is present (reduces the natural
    /// trace-change penalty to a single cycle, §3.5).
    pub srt: bool,
    /// Front-end clock speed-up over the baseline clock, in percent (the paper sweeps
    /// 0–100 %).
    pub frontend_speedup_pct: u32,
    /// Execution-core clock speed-up while in trace-execution mode, in percent (50 %
    /// in the paper's experiments).
    pub backend_speedup_pct: u32,
}

impl FlywheelConfig {
    /// The paper's Flywheel machine at `node` with the given clock speed-ups.
    pub fn paper(node: TechNode, frontend_speedup_pct: u32, backend_speedup_pct: u32) -> Self {
        let mut base = BaselineConfig::paper(node);
        base.clocks = ClockPlan::with_speedups(node, frontend_speedup_pct, backend_speedup_pct);
        // Dual-Clock Issue Window synchronization (paper §3.2) and the extra Register
        // Update stage (§3.5) which "adds a cycle to the mispredict penalty".
        base.sync_latency_be_cycles = 1;
        base.redirect_sync_fe_cycles = 1;
        base.front_end_stages += 1;
        base.phys_regs = PoolConfig::paper().total_phys_regs;
        // The larger register file needs a two-cycle access (Table 2).
        base.reg_read_cycles = 2;
        FlywheelConfig {
            base,
            ec: EcConfig::paper(),
            pools: PoolConfig::paper(),
            execution_cache: true,
            srt: true,
            frontend_speedup_pct,
            backend_speedup_pct,
        }
    }

    /// The Flywheel machine at the baseline clock (FE 0 %, BE 0 %): Figure 11's
    /// "Flywheel" bars.
    pub fn paper_iso_clock(node: TechNode) -> Self {
        FlywheelConfig::paper(node, 0, 0)
    }

    /// The "Register Allocation" machine of Figure 11: Dual-Clock Issue Window and
    /// pool-based renaming, but no Execution Cache, at the baseline clock.
    pub fn register_allocation_only(node: TechNode) -> Self {
        let mut cfg = FlywheelConfig::paper(node, 0, 0);
        cfg.execution_cache = false;
        cfg
    }

    /// The technology node of this configuration.
    pub fn node(&self) -> TechNode {
        self.base.node
    }

    /// The structural power-model parameters this machine implies.
    ///
    /// Like [`BaselineConfig::power_config`], this is the single construction
    /// point for the energy model's geometry: `FlywheelSim` builds its
    /// `PowerModel` from it and the scenario invariant layer rebuilds the
    /// identical model to cross-check attributed leakage. `rf_entries` stays at
    /// the paper's baseline register file — it is the *reference* geometry that
    /// `flywheel_regfile_factor` (dynamic energy) and the Flywheel register-file
    /// leakage are scaled against — while `flywheel_rf_entries` follows the pool
    /// configuration and `ec_bytes` the Execution Cache geometry. A machine
    /// with the Execution Cache disabled (the Figure 11 "Register Allocation"
    /// variant) reports `ec_bytes: 0`: it does not instantiate the EC data
    /// array, so neither its dynamic energy nor its leakage may appear in the
    /// account — while the Register Update stage, which that variant *does*
    /// have, keeps leaking.
    pub fn power_config(&self) -> flywheel_power::PowerConfig {
        use flywheel_power::PowerConfig;
        let base = &self.base;
        PowerConfig {
            node: base.node,
            iw_entries: base.iw_entries,
            iw_width: base.issue_width,
            fetch_width: base.fetch_width,
            flywheel_rf_entries: self.pools.total_phys_regs,
            icache_bytes: base.icache.size_bytes,
            dcache_bytes: base.dcache.size_bytes,
            l2_bytes: base.l2.size_bytes,
            ec_bytes: if self.execution_cache {
                self.ec.size_bytes
            } else {
                0
            },
            rob_entries: base.rob_entries,
            lsq_entries: base.lsq_entries,
            bpred_entries: base.bpred.pht_entries,
            ..PowerConfig::paper(base.node)
        }
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        self.base.validate()?;
        if self.ec.block_insts == 0 || self.ec.size_bytes == 0 {
            return Err("execution cache must have non-zero capacity".into());
        }
        if self.ec.max_trace_insts < self.ec.block_insts {
            return Err("maximum trace length must cover at least one block".into());
        }
        if (self.pools.total_phys_regs as usize) < flywheel_isa::NUM_ARCH_REGS * 2 {
            return Err("each architected register needs at least two pool entries".into());
        }
        if self.base.phys_regs != self.pools.total_phys_regs {
            return Err("base.phys_regs must equal pools.total_phys_regs".into());
        }
        Ok(())
    }
}

impl Default for FlywheelConfig {
    fn default() -> Self {
        FlywheelConfig::paper(TechNode::N130, 50, 50)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table2() {
        let c = FlywheelConfig::paper(TechNode::N130, 50, 50);
        c.validate().unwrap();
        assert_eq!(c.ec.size_bytes, 128 * 1024);
        assert_eq!(c.ec.assoc, 2);
        assert_eq!(c.ec.hit_cycles, 3);
        assert_eq!(c.ec.block_insts, 8);
        assert_eq!(c.pools.total_phys_regs, 512);
        assert_eq!(c.pools.redistribution_interval, 500_000);
        assert_eq!(c.pools.redistribution_cost, 100);
        assert_eq!(c.base.reg_read_cycles, 2);
    }

    #[test]
    fn flywheel_pipeline_is_longer_than_baseline() {
        let baseline = BaselineConfig::paper_default();
        let fly = FlywheelConfig::paper_iso_clock(TechNode::N130);
        assert_eq!(fly.base.front_end_stages, baseline.front_end_stages + 1);
        assert_eq!(fly.base.sync_latency_be_cycles, 1);
    }

    #[test]
    fn register_allocation_only_disables_the_ec() {
        let c = FlywheelConfig::register_allocation_only(TechNode::N130);
        assert!(!c.execution_cache);
        c.validate().unwrap();
    }

    #[test]
    fn register_allocation_power_geometry_has_no_ec() {
        use flywheel_power::{MachineKind, PowerModel, Unit, UnitCategory};
        // The Figure 11 variant has no Execution Cache: it must pay neither EC
        // dynamic energy nor EC leakage, while still leaking through the
        // Register Update stage it does have.
        let ra = FlywheelConfig::register_allocation_only(TechNode::N130);
        assert_eq!(ra.power_config().ec_bytes, 0);
        let ra_model = PowerModel::new(ra.power_config());
        assert_eq!(
            ra_model.leakage_w_for(Unit::EcDataRead, MachineKind::Flywheel),
            0.0
        );
        assert_eq!(ra_model.access_energy_pj(Unit::EcDataRead), 0.0);
        assert!(ra_model.leakage_w_for(Unit::RegisterUpdate, MachineKind::Flywheel) > 0.0);
        let full = PowerModel::new(FlywheelConfig::paper_iso_clock(TechNode::N130).power_config());
        assert!(
            ra_model.machine_leakage_w(MachineKind::Flywheel, Some(UnitCategory::FlywheelExtra))
                < full.machine_leakage_w(MachineKind::Flywheel, Some(UnitCategory::FlywheelExtra))
        );
    }

    #[test]
    fn clock_speedups_are_applied() {
        let c = FlywheelConfig::paper(TechNode::N60, 100, 50);
        assert!((c.base.clocks.frontend_speedup() - 2.0).abs() < 0.02);
        assert!((c.base.clocks.backend_speedup() - 1.5).abs() < 0.02);
        let iso = FlywheelConfig::paper_iso_clock(TechNode::N60);
        assert!(iso.base.clocks.is_synchronous());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = FlywheelConfig::default();
        c.ec.max_trace_insts = 2;
        assert!(c.validate().is_err());
        let mut c2 = FlywheelConfig::default();
        c2.pools.total_phys_regs = 64;
        assert!(c2.validate().is_err());
    }

    #[test]
    fn ec_capacity_in_instructions() {
        assert_eq!(EcConfig::paper().capacity_insts(), 16 * 1024);
    }
}
