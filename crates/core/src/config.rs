//! Configuration of the Flywheel machine.

use flywheel_timing::{ClockPlan, ModuleFrequencies, TechNode};
use flywheel_uarch::BaselineConfig;

/// Execution Cache geometry and timing (paper §3.3, Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EcConfig {
    /// Capacity in bytes (128 KB in the paper).
    pub size_bytes: u64,
    /// Associativity of the tag array (2-way in the paper).
    pub assoc: u32,
    /// Instructions per data-array block (8 in the paper's evaluation).
    pub block_insts: u32,
    /// Bytes each stored instruction occupies (decoded + renamed form).
    pub bytes_per_inst: u32,
    /// Access latency of the data array in execution-core cycles (3 in Table 2).
    pub hit_cycles: u32,
    /// Maximum trace length in instructions before a trace-completion condition is
    /// raised (the paper allows "arbitrary length"; this bound exists only to keep
    /// single traces from monopolising the cache).
    pub max_trace_insts: u32,
}

impl EcConfig {
    /// The paper's Execution Cache: 128 KB, 2-way, 8-instruction blocks, 3-cycle hit.
    pub fn paper() -> Self {
        EcConfig {
            size_bytes: 128 * 1024,
            assoc: 2,
            block_insts: 8,
            bytes_per_inst: 8,
            hit_cycles: 3,
            max_trace_insts: 512,
        }
    }

    /// Total instruction slots in the data array.
    pub fn capacity_insts(&self) -> u64 {
        self.size_bytes / self.bytes_per_inst as u64
    }
}

/// Pool-based register file configuration (paper §3.4–3.5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolConfig {
    /// Total physical registers (512 in the paper's Flywheel configuration).
    pub total_phys_regs: u32,
    /// Interval, in execution-core cycles, at which the register-redistribution
    /// counters are examined (500 000 in the paper).
    pub redistribution_interval: u64,
    /// Pipeline stall charged when a redistribution is performed (100 cycles in the
    /// paper). A redistribution also invalidates the Execution Cache.
    pub redistribution_cost: u64,
    /// Fraction of rename stalls (relative to renames) above which a register is
    /// considered a bottleneck and receives extra entries.
    pub bottleneck_threshold: f64,
}

impl PoolConfig {
    /// The paper's configuration: 512 physical registers, counters checked every
    /// 500 k cycles, 100-cycle redistribution.
    pub fn paper() -> Self {
        PoolConfig {
            total_phys_regs: 512,
            redistribution_interval: 500_000,
            redistribution_cost: 100,
            bottleneck_threshold: 0.02,
        }
    }
}

/// Complete configuration of the Flywheel machine.
///
/// The Flywheel machine is the baseline machine (whose structural parameters live in
/// [`BaselineConfig`]) extended with the Dual-Clock Issue Window, the two-phase
/// pool-based register renaming (with its extra Register Update stage) and the
/// Execution Cache. Disabling [`FlywheelConfig::execution_cache`] yields the
/// "Register Allocation" machine of Figure 11 — the Dual-Clock Issue Window and the
/// new renaming without pre-scheduled execution.
#[derive(Debug, Clone, PartialEq)]
pub struct FlywheelConfig {
    /// The underlying pipeline structure (widths, caches, Issue Window, FUs).
    pub base: BaselineConfig,
    /// Execution Cache parameters.
    pub ec: EcConfig,
    /// Register pool parameters.
    pub pools: PoolConfig,
    /// Whether the Execution Cache / pre-scheduled execution path is enabled.
    pub execution_cache: bool,
    /// Whether the Speculative Remapping Table is present (reduces the natural
    /// trace-change penalty to a single cycle, §3.5).
    pub srt: bool,
    /// Front-end clock speed-up over the baseline clock, in percent (the paper sweeps
    /// 0–100 %).
    pub frontend_speedup_pct: u32,
    /// Execution-core clock speed-up while in trace-execution mode, in percent (50 %
    /// in the paper's experiments).
    pub backend_speedup_pct: u32,
}

impl FlywheelConfig {
    /// The paper's Flywheel machine at `node` with the given clock speed-ups.
    pub fn paper(node: TechNode, frontend_speedup_pct: u32, backend_speedup_pct: u32) -> Self {
        let mut base = BaselineConfig::paper(node);
        base.clocks = ClockPlan::with_speedups(node, frontend_speedup_pct, backend_speedup_pct);
        // Dual-Clock Issue Window synchronization (paper §3.2) and the extra Register
        // Update stage (§3.5) which "adds a cycle to the mispredict penalty".
        base.sync_latency_be_cycles = 1;
        base.redirect_sync_fe_cycles = 1;
        base.front_end_stages += 1;
        base.phys_regs = PoolConfig::paper().total_phys_regs;
        // The larger register file needs a two-cycle access (Table 2).
        base.reg_read_cycles = 2;
        FlywheelConfig {
            base,
            ec: EcConfig::paper(),
            pools: PoolConfig::paper(),
            execution_cache: true,
            srt: true,
            frontend_speedup_pct,
            backend_speedup_pct,
        }
    }

    /// The Flywheel machine at the baseline clock (FE 0 %, BE 0 %): Figure 11's
    /// "Flywheel" bars.
    pub fn paper_iso_clock(node: TechNode) -> Self {
        FlywheelConfig::paper(node, 0, 0)
    }

    /// The "Register Allocation" machine of Figure 11: Dual-Clock Issue Window and
    /// pool-based renaming, but no Execution Cache, at the baseline clock.
    pub fn register_allocation_only(node: TechNode) -> Self {
        let mut cfg = FlywheelConfig::paper(node, 0, 0);
        cfg.execution_cache = false;
        cfg
    }

    /// The technology node of this configuration.
    pub fn node(&self) -> TechNode {
        self.base.node
    }

    /// The structural power-model parameters this machine implies.
    ///
    /// Like [`BaselineConfig::power_config`], this is the single construction
    /// point for the energy model's geometry: `FlywheelSim` builds its
    /// `PowerModel` from it and the scenario invariant layer rebuilds the
    /// identical model to cross-check attributed leakage. `rf_entries` stays at
    /// the paper's baseline register file — it is the *reference* geometry that
    /// `flywheel_regfile_factor` (dynamic energy) and the Flywheel register-file
    /// leakage are scaled against — while `flywheel_rf_entries` follows the pool
    /// configuration and `ec_bytes` the Execution Cache geometry. A machine
    /// with the Execution Cache disabled (the Figure 11 "Register Allocation"
    /// variant) reports `ec_bytes: 0`: it does not instantiate the EC data
    /// array, so neither its dynamic energy nor its leakage may appear in the
    /// account — while the Register Update stage, which that variant *does*
    /// have, keeps leaking.
    pub fn power_config(&self) -> flywheel_power::PowerConfig {
        use flywheel_power::PowerConfig;
        let base = &self.base;
        PowerConfig {
            node: base.node,
            iw_entries: base.iw_entries,
            iw_width: base.issue_width,
            fetch_width: base.fetch_width,
            flywheel_rf_entries: self.pools.total_phys_regs,
            icache_bytes: base.icache.size_bytes,
            dcache_bytes: base.dcache.size_bytes,
            l2_bytes: base.l2.size_bytes,
            ec_bytes: if self.execution_cache {
                self.ec.size_bytes
            } else {
                0
            },
            rob_entries: base.rob_entries,
            lsq_entries: base.lsq_entries,
            bpred_entries: base.bpred.pht_entries,
            ..PowerConfig::paper(base.node)
        }
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        self.base.validate()?;
        if self.ec.block_insts == 0 || self.ec.size_bytes == 0 {
            return Err("execution cache must have non-zero capacity".into());
        }
        if self.ec.max_trace_insts < self.ec.block_insts {
            return Err("maximum trace length must cover at least one block".into());
        }
        if (self.pools.total_phys_regs as usize) < flywheel_isa::NUM_ARCH_REGS * 2 {
            return Err("each architected register needs at least two pool entries".into());
        }
        if self.base.phys_regs != self.pools.total_phys_regs {
            return Err("base.phys_regs must equal pools.total_phys_regs".into());
        }
        Ok(())
    }
}

impl Default for FlywheelConfig {
    fn default() -> Self {
        FlywheelConfig::paper(TechNode::N130, 50, 50)
    }
}

/// Governor policy of the DVFS-managed Flywheel machine.
///
/// At fixed intervals of execution-core cycles the governor looks at the
/// trace-execution (Execution Cache) residency observed over the elapsed
/// interval and steps the trace-execution back-end speed-up up or down: high
/// residency means the fast back-end clock is actually being used, so the
/// machine leans into it; low residency means the machine is mostly in trace
/// creation (where the core runs at the baseline clock anyway), so the
/// trace-execution clock is stepped back toward the baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DvfsPolicy {
    /// Interval, in execution-core cycles, between governor evaluations.
    pub interval_be_cycles: u64,
    /// Interval residency above which the back-end speed-up is raised one step.
    pub hi_residency: f64,
    /// Interval residency below which the back-end speed-up is lowered one step.
    pub lo_residency: f64,
    /// Speed-up step per adjustment, in percent over the baseline clock.
    pub step_pct: u32,
    /// Lower bound of the governed back-end speed-up, in percent.
    pub min_backend_pct: u32,
    /// Upper bound of the governed back-end speed-up, in percent.
    pub max_backend_pct: u32,
}

impl DvfsPolicy {
    /// The default governor for `node`: evaluate every 10 000 core cycles, step
    /// by 10 %, and never exceed the trace-execution speed-up the Table 1
    /// module frequencies make achievable at `node` (including the 10 %
    /// modelling margin [`ClockPlan::validate_against`] allows).
    pub fn paper(node: TechNode) -> Self {
        let headroom = ModuleFrequencies::for_node(node).max_backend_speedup() * 1.10;
        let mut cap = (((headroom - 1.0) * 100.0).floor().max(0.0)) as u32;
        // Integer-period rounding can push the realized speed-up a hair over
        // the analytic bound; back the cap off until the plan validates.
        while cap > 0
            && !ClockPlan::with_speedups(node, 0, cap)
                .validate_against(node)
                .is_empty()
        {
            cap -= 1;
        }
        DvfsPolicy {
            interval_be_cycles: 10_000,
            hi_residency: 0.75,
            lo_residency: 0.40,
            step_pct: 10,
            min_backend_pct: 0,
            max_backend_pct: cap,
        }
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.interval_be_cycles == 0 {
            return Err("governor interval must be non-zero".into());
        }
        if self.step_pct == 0 {
            return Err("governor step must be non-zero".into());
        }
        if !(0.0..=1.0).contains(&self.lo_residency)
            || !(0.0..=1.0).contains(&self.hi_residency)
            || self.lo_residency >= self.hi_residency
        {
            return Err("residency thresholds must satisfy 0 <= lo < hi <= 1".into());
        }
        if self.min_backend_pct > self.max_backend_pct {
            return Err("governor bounds must satisfy min <= max".into());
        }
        Ok(())
    }
}

/// Complete configuration of the DVFS-governed Flywheel machine: a Flywheel
/// machine whose trace-execution back-end clock is retuned at fixed intervals
/// from observed Execution-Cache residency instead of being fixed for the run.
#[derive(Debug, Clone, PartialEq)]
pub struct DvfsConfig {
    /// The underlying Flywheel machine; its `backend_speedup_pct` is the
    /// governor's starting point.
    pub fly: FlywheelConfig,
    /// The governor policy.
    pub policy: DvfsPolicy,
}

impl DvfsConfig {
    /// The paper-geometry DVFS machine at `node` with the given front-end
    /// speed-up and starting back-end speed-up.
    ///
    /// The governor never *raises* the clock beyond the Table 1 headroom of
    /// `node`, but an explicitly requested faster starting point is honoured
    /// (the static machines sweep such points too), widening the governed
    /// range to include it.
    pub fn paper(node: TechNode, frontend_speedup_pct: u32, backend_speedup_pct: u32) -> Self {
        let mut policy = DvfsPolicy::paper(node);
        policy.max_backend_pct = policy.max_backend_pct.max(backend_speedup_pct);
        DvfsConfig {
            fly: FlywheelConfig::paper(node, frontend_speedup_pct, backend_speedup_pct),
            policy,
        }
    }

    /// The technology node of this configuration.
    pub fn node(&self) -> TechNode {
        self.fly.node()
    }

    /// The structural power-model parameters this machine implies (identical to
    /// the underlying Flywheel machine: the governor moves no geometry).
    pub fn power_config(&self) -> flywheel_power::PowerConfig {
        self.fly.power_config()
    }

    /// Validates internal consistency, including that the governor's starting
    /// point lies within the governed range and the range is plausible.
    pub fn validate(&self) -> Result<(), String> {
        self.fly.validate()?;
        self.policy.validate()?;
        if !(self.policy.min_backend_pct..=self.policy.max_backend_pct)
            .contains(&self.fly.backend_speedup_pct)
        {
            return Err("starting back-end speed-up must lie within the governor bounds".into());
        }
        // No node's Table 1 supports a back-end beyond twice the baseline
        // clock; cap the governed range there as a sanity bound.
        if self.policy.max_backend_pct > 100 {
            return Err("governor bound exceeds plausible back-end speed-ups (max 100%)".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table2() {
        let c = FlywheelConfig::paper(TechNode::N130, 50, 50);
        c.validate().unwrap();
        assert_eq!(c.ec.size_bytes, 128 * 1024);
        assert_eq!(c.ec.assoc, 2);
        assert_eq!(c.ec.hit_cycles, 3);
        assert_eq!(c.ec.block_insts, 8);
        assert_eq!(c.pools.total_phys_regs, 512);
        assert_eq!(c.pools.redistribution_interval, 500_000);
        assert_eq!(c.pools.redistribution_cost, 100);
        assert_eq!(c.base.reg_read_cycles, 2);
    }

    #[test]
    fn flywheel_pipeline_is_longer_than_baseline() {
        let baseline = BaselineConfig::paper_default();
        let fly = FlywheelConfig::paper_iso_clock(TechNode::N130);
        assert_eq!(fly.base.front_end_stages, baseline.front_end_stages + 1);
        assert_eq!(fly.base.sync_latency_be_cycles, 1);
    }

    #[test]
    fn register_allocation_only_disables_the_ec() {
        let c = FlywheelConfig::register_allocation_only(TechNode::N130);
        assert!(!c.execution_cache);
        c.validate().unwrap();
    }

    #[test]
    fn register_allocation_power_geometry_has_no_ec() {
        use flywheel_power::{MachineKind, PowerModel, Unit, UnitCategory};
        // The Figure 11 variant has no Execution Cache: it must pay neither EC
        // dynamic energy nor EC leakage, while still leaking through the
        // Register Update stage it does have.
        let ra = FlywheelConfig::register_allocation_only(TechNode::N130);
        assert_eq!(ra.power_config().ec_bytes, 0);
        let ra_model = PowerModel::new(ra.power_config());
        assert_eq!(
            ra_model.leakage_w_for(Unit::EcDataRead, MachineKind::Flywheel),
            0.0
        );
        assert_eq!(ra_model.access_energy_pj(Unit::EcDataRead), 0.0);
        assert!(ra_model.leakage_w_for(Unit::RegisterUpdate, MachineKind::Flywheel) > 0.0);
        let full = PowerModel::new(FlywheelConfig::paper_iso_clock(TechNode::N130).power_config());
        assert!(
            ra_model.machine_leakage_w(MachineKind::Flywheel, Some(UnitCategory::FlywheelExtra))
                < full.machine_leakage_w(MachineKind::Flywheel, Some(UnitCategory::FlywheelExtra))
        );
    }

    #[test]
    fn clock_speedups_are_applied() {
        let c = FlywheelConfig::paper(TechNode::N60, 100, 50);
        assert!((c.base.clocks.frontend_speedup() - 2.0).abs() < 0.02);
        assert!((c.base.clocks.backend_speedup() - 1.5).abs() < 0.02);
        let iso = FlywheelConfig::paper_iso_clock(TechNode::N60);
        assert!(iso.base.clocks.is_synchronous());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = FlywheelConfig::default();
        c.ec.max_trace_insts = 2;
        assert!(c.validate().is_err());
        let mut c2 = FlywheelConfig::default();
        c2.pools.total_phys_regs = 64;
        assert!(c2.validate().is_err());
    }

    #[test]
    fn ec_capacity_in_instructions() {
        assert_eq!(EcConfig::paper().capacity_insts(), 16 * 1024);
    }

    #[test]
    fn dvfs_paper_config_is_valid_at_every_node() {
        for node in TechNode::all() {
            let c = DvfsConfig::paper(*node, 50, 50);
            c.validate().unwrap_or_else(|e| panic!("{node:?}: {e}"));
            assert_eq!(c.power_config(), c.fly.power_config());
            // The governor's own headroom cap (before an explicit start widens
            // it) must be achievable under the Table 1 module frequencies.
            let p = DvfsPolicy::paper(*node);
            let plan = ClockPlan::with_speedups(*node, 0, p.max_backend_pct);
            assert!(plan.validate_against(*node).is_empty(), "{node:?}");
        }
        // At 0.13um the paper's BE50 point is honoured as a starting point and
        // widens the governed range to include it.
        let c = DvfsConfig::paper(TechNode::N130, 0, 50);
        assert_eq!(c.fly.backend_speedup_pct, 50);
        assert!(c.policy.max_backend_pct >= 50);
        // An iso-clock start keeps the analytic cap.
        let iso = DvfsConfig::paper(TechNode::N130, 0, 0);
        assert_eq!(
            iso.policy.max_backend_pct,
            DvfsPolicy::paper(TechNode::N130).max_backend_pct
        );
    }

    #[test]
    fn dvfs_policy_rejects_nonsense() {
        let mut p = DvfsPolicy::paper(TechNode::N130);
        p.interval_be_cycles = 0;
        assert!(p.validate().is_err());
        let mut p2 = DvfsPolicy::paper(TechNode::N130);
        p2.lo_residency = 0.9;
        assert!(p2.validate().is_err());
        let mut c = DvfsConfig::paper(TechNode::N130, 0, 0);
        c.policy.max_backend_pct = 1000;
        assert!(c.validate().is_err());
        let mut c2 = DvfsConfig::paper(TechNode::N130, 0, 0);
        c2.fly.backend_speedup_pct = c2.policy.max_backend_pct + 1;
        assert!(c2.validate().is_err());
    }
}
