//! Pool-based, two-phase register renaming (paper §3.4–3.5).

use crate::config::PoolConfig;
use flywheel_isa::{ArchReg, StaticInst, NUM_ARCH_REGS};
use flywheel_uarch::{PhysReg, PhysRegFile, RenameOutcome, SrcList};

/// Statistics of the pool renamer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Successful renames.
    pub renames: u64,
    /// Rename attempts that stalled because the destination register's pool was
    /// exhausted.
    pub pool_stalls: u64,
    /// Register redistributions performed.
    pub redistributions: u64,
}

/// The Flywheel register allocation mechanism: every architected register owns a
/// private pool of physical registers used as a circular buffer.
///
/// The first renaming phase (Register Rename) assigns the next entry of the
/// destination register's pool; the second phase (Register Update) maps the logical
/// entry to the physical register file. For simulation purposes the two phases are
/// folded into one call that returns final physical identifiers — the extra pipeline
/// stage of the Register Update phase is modelled by the pipeline configuration, not
/// here.
///
/// The pool sizes adapt at run time: every `redistribution_interval` cycles the
/// per-register stall counters are examined and entries are moved from cold registers
/// to the bottleneck registers (the dynamic scheme of reference \[12\] in §3.5). A
/// redistribution costs `redistribution_cost` cycles and invalidates the Execution
/// Cache, which the pipeline driver enacts.
#[derive(Debug, Clone)]
pub struct PoolRenamer {
    cfg: PoolConfig,
    /// Pool size per architected register.
    pool_size: Vec<u32>,
    /// Physical base offset of each pool (recomputed at redistribution).
    pool_base: Vec<u32>,
    /// Next entry (logical id) to allocate within each pool.
    cursor: Vec<u32>,
    /// Writes currently in flight per architected register.
    inflight: Vec<u32>,
    /// Current mapping of each architected register (physical id).
    mapping: Vec<PhysReg>,
    /// Stall counters since the last redistribution check.
    stall_counts: Vec<u64>,
    rename_counts: Vec<u64>,
    stats: PoolStats,
}

impl PoolRenamer {
    /// Creates the renamer with pools of equal size.
    ///
    /// # Panics
    ///
    /// Panics if the configuration provides fewer than two entries per register.
    pub fn new(cfg: PoolConfig) -> Self {
        let per_pool = cfg.total_phys_regs / NUM_ARCH_REGS as u32;
        assert!(
            per_pool >= 2,
            "each pool needs at least two physical registers"
        );
        let pool_size = vec![per_pool; NUM_ARCH_REGS];
        let mut renamer = PoolRenamer {
            cfg,
            pool_size,
            pool_base: vec![0; NUM_ARCH_REGS],
            cursor: vec![0; NUM_ARCH_REGS],
            inflight: vec![0; NUM_ARCH_REGS],
            mapping: vec![0; NUM_ARCH_REGS],
            stall_counts: vec![0; NUM_ARCH_REGS],
            rename_counts: vec![0; NUM_ARCH_REGS],
            stats: PoolStats::default(),
        };
        renamer.recompute_bases();
        renamer
    }

    fn recompute_bases(&mut self) {
        let mut base = 0;
        for i in 0..NUM_ARCH_REGS {
            self.pool_base[i] = base;
            base += self.pool_size[i];
            self.cursor[i] = 0;
            self.mapping[i] = self.pool_base[i] as PhysReg;
        }
        debug_assert!(base <= self.cfg.total_phys_regs);
    }

    /// Pool size currently assigned to `reg`.
    pub fn pool_size(&self, reg: ArchReg) -> u32 {
        self.pool_size[reg.flat_index()]
    }

    /// Current statistics.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Current physical mapping of `reg`.
    pub fn mapping(&self, reg: ArchReg) -> PhysReg {
        self.mapping[reg.flat_index()]
    }

    /// Whether a new in-flight write to `reg` could be renamed right now without
    /// stalling.
    pub fn can_allocate(&self, reg: ArchReg) -> bool {
        let idx = reg.flat_index();
        self.inflight[idx] + 1 < self.pool_size[idx]
    }

    /// Renames `inst`, allocating the next pool entry for its destination.
    ///
    /// Returns `None` (leaving all state unchanged) when the destination pool has no
    /// free entry — i.e. when the number of in-flight writes to that architected
    /// register equals its pool size minus one (one entry always holds the last
    /// committed value).
    pub fn rename(&mut self, inst: &StaticInst, prf: &mut PhysRegFile) -> Option<RenameOutcome> {
        let srcs: SrcList = inst.srcs().map(|s| self.mapping[s.flat_index()]).collect();
        let (dst, prev, dst_arch) = if let Some(d) = inst.dst() {
            let idx = d.flat_index();
            self.rename_counts[idx] += 1;
            if self.inflight[idx] + 1 >= self.pool_size[idx] {
                self.stall_counts[idx] += 1;
                self.stats.pool_stalls += 1;
                return None;
            }
            let size = self.pool_size[idx];
            let slot = (self.cursor[idx] + 1) % size;
            self.cursor[idx] = slot;
            let phys = (self.pool_base[idx] + slot) as PhysReg;
            let prev = self.mapping[idx];
            self.mapping[idx] = phys;
            self.inflight[idx] += 1;
            prf.mark_pending(phys);
            (Some(phys), Some(prev), Some(d))
        } else {
            (None, None, None)
        };
        self.stats.renames += 1;
        Some(RenameOutcome {
            srcs,
            dst,
            prev,
            dst_arch,
        })
    }

    /// Releases the pool entry when the instruction retires.
    pub fn commit(&mut self, outcome: &RenameOutcome) {
        if let Some(arch) = outcome.dst_arch {
            let idx = arch.flat_index();
            debug_assert!(self.inflight[idx] > 0);
            self.inflight[idx] -= 1;
        }
    }

    /// Undoes a rename during mispredict recovery (youngest first).
    pub fn squash(&mut self, outcome: &RenameOutcome) {
        if let (Some(arch), Some(prev)) = (outcome.dst_arch, outcome.prev) {
            let idx = arch.flat_index();
            debug_assert!(self.inflight[idx] > 0);
            self.inflight[idx] -= 1;
            self.mapping[idx] = prev;
            let size = self.pool_size[idx];
            self.cursor[idx] = (self.cursor[idx] + size - 1) % size;
        }
    }

    /// Checks the redistribution counters. Returns `true` when a redistribution was
    /// performed; the caller must charge `redistribution_cost` cycles and invalidate
    /// the Execution Cache.
    ///
    /// Must only be called when no instruction is in flight (the pipeline driver
    /// calls it at a quiescent point after draining).
    pub fn maybe_redistribute(&mut self) -> bool {
        let mut bottlenecks = Vec::new();
        let mut cold = Vec::new();
        for i in 0..NUM_ARCH_REGS {
            let renames = self.rename_counts[i].max(1);
            let stall_rate = self.stall_counts[i] as f64 / renames as f64;
            if stall_rate > self.cfg.bottleneck_threshold && self.stall_counts[i] > 4 {
                bottlenecks.push(i);
            } else if self.rename_counts[i] < 4 && self.pool_size[i] > 2 {
                cold.push(i);
            }
        }
        self.stall_counts.iter_mut().for_each(|c| *c = 0);
        self.rename_counts.iter_mut().for_each(|c| *c = 0);
        if bottlenecks.is_empty() || cold.is_empty() {
            return false;
        }
        // Move one entry from each cold register to a bottleneck register,
        // round-robin, without exceeding the total budget.
        let mut moved = false;
        let mut cold_iter = cold.into_iter().cycle();
        for (n, b) in bottlenecks.iter().enumerate() {
            if n >= 16 {
                break;
            }
            // Find a donor that still has entries to give.
            let mut donor = None;
            for _ in 0..NUM_ARCH_REGS {
                let c = cold_iter.next().expect("cycle iterator never ends");
                if self.pool_size[c] > 2 && c != *b {
                    donor = Some(c);
                    break;
                }
            }
            if let Some(d) = donor {
                self.pool_size[d] -= 1;
                self.pool_size[*b] += 1;
                moved = true;
            }
        }
        if moved {
            self.stats.redistributions += 1;
            self.recompute_bases();
        }
        moved
    }

    /// Fraction of architected registers whose pool currently holds more than four
    /// entries (the paper reports 10–15 % in steady state).
    pub fn fraction_with_extra_entries(&self) -> f64 {
        let n = self.pool_size.iter().filter(|&&s| s > 4).count();
        n as f64 / NUM_ARCH_REGS as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flywheel_isa::ArchReg;

    fn alu(dst: u8, src: u8) -> StaticInst {
        StaticInst::alu(ArchReg::int(dst), ArchReg::int(src), None)
    }

    fn renamer() -> (PoolRenamer, PhysRegFile) {
        let cfg = PoolConfig::paper();
        (PoolRenamer::new(cfg), PhysRegFile::new(cfg.total_phys_regs))
    }

    #[test]
    fn default_pools_hold_eight_entries() {
        let (r, _) = renamer();
        assert_eq!(r.pool_size(ArchReg::int(5)), 8);
        assert_eq!(r.pool_size(ArchReg::fp(5)), 8);
    }

    #[test]
    fn rename_allocates_within_the_destination_pool() {
        let (mut r, mut prf) = renamer();
        let base_mapping = r.mapping(ArchReg::int(3));
        let out = r.rename(&alu(3, 3), &mut prf).unwrap();
        assert_eq!(out.srcs.as_slice(), &[base_mapping]);
        let dst = out.dst.unwrap();
        assert_ne!(dst, base_mapping);
        // The new mapping stays within register 3's pool (8 consecutive ids).
        assert!(dst >= base_mapping && dst < base_mapping + 8);
    }

    #[test]
    fn pool_exhaustion_stalls_only_that_register() {
        let (mut r, mut prf) = renamer();
        // 7 in-flight writes to r4 fill the pool (one entry keeps the committed
        // value).
        for _ in 0..7 {
            assert!(r.rename(&alu(4, 4), &mut prf).is_some());
        }
        assert!(
            r.rename(&alu(4, 4), &mut prf).is_none(),
            "pool must be exhausted"
        );
        assert!(
            r.rename(&alu(5, 4), &mut prf).is_some(),
            "other pools are unaffected"
        );
        assert!(r.stats().pool_stalls >= 1);
    }

    #[test]
    fn commit_frees_pool_entries() {
        let (mut r, mut prf) = renamer();
        let mut outcomes = Vec::new();
        for _ in 0..7 {
            outcomes.push(r.rename(&alu(6, 6), &mut prf).unwrap());
        }
        assert!(r.rename(&alu(6, 6), &mut prf).is_none());
        r.commit(&outcomes[0]);
        assert!(r.rename(&alu(6, 6), &mut prf).is_some());
    }

    #[test]
    fn squash_restores_mapping_and_capacity() {
        let (mut r, mut prf) = renamer();
        let before = r.mapping(ArchReg::int(9));
        let o1 = r.rename(&alu(9, 1), &mut prf).unwrap();
        let o2 = r.rename(&alu(9, 2), &mut prf).unwrap();
        r.squash(&o2);
        r.squash(&o1);
        assert_eq!(r.mapping(ArchReg::int(9)), before);
        // Full capacity available again.
        for _ in 0..7 {
            assert!(r.rename(&alu(9, 9), &mut prf).is_some());
        }
    }

    #[test]
    fn redistribution_moves_entries_to_bottleneck_registers() {
        let (mut r, mut prf) = renamer();
        // Hammer register 2 so it stalls, leave most others untouched.
        let mut outstanding = std::collections::VecDeque::new();
        for _ in 0..600 {
            match r.rename(&alu(2, 2), &mut prf) {
                Some(o) => outstanding.push_back(o),
                None => {
                    // Retire the oldest to make room (models the ROB draining).
                    if let Some(o) = outstanding.pop_front() {
                        r.commit(&o);
                    }
                }
            }
        }
        while let Some(o) = outstanding.pop_front() {
            r.commit(&o);
        }
        assert!(
            r.maybe_redistribute(),
            "register 2 should be detected as a bottleneck"
        );
        assert!(r.pool_size(ArchReg::int(2)) > 8);
        assert_eq!(r.stats().redistributions, 1);
        // Total physical registers is conserved.
        let total: u32 = (0..NUM_ARCH_REGS)
            .map(|i| r.pool_size(ArchReg::from_flat_index(i)))
            .sum();
        assert!(total <= PoolConfig::paper().total_phys_regs);
        assert!(r.fraction_with_extra_entries() > 0.0);
    }

    #[test]
    fn redistribution_without_pressure_is_a_no_op() {
        let (mut r, mut prf) = renamer();
        for i in 1..20u8 {
            let o = r.rename(&alu(i, i), &mut prf).unwrap();
            r.commit(&o);
        }
        assert!(!r.maybe_redistribute());
        assert_eq!(r.stats().redistributions, 0);
    }

    #[test]
    fn stores_and_branches_do_not_consume_pool_entries() {
        let (mut r, mut prf) = renamer();
        let store = StaticInst::store(ArchReg::int(1), ArchReg::int(2));
        for _ in 0..100 {
            assert!(r.rename(&store, &mut prf).is_some());
        }
    }
}
