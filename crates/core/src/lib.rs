//! # flywheel-core
//!
//! The Flywheel microarchitecture — the primary contribution of *"Increased
//! Scalability and Power Efficiency by Using Multiple Speed Pipelines"* (Talpes &
//! Marculescu, ISCA 2005) — implemented on top of the baseline machine from
//! `flywheel-uarch`.
//!
//! The Flywheel machine combines three mechanisms so that the large, slow Issue
//! Window no longer dictates the clock speed of the whole pipeline:
//!
//! 1. **Dual-Clock Issue Window** — the front end runs on its own, faster clock and
//!    inserts instructions into the Issue Window asynchronously (a synchronization
//!    latency before they become visible to Wake-up/Select).
//! 2. **Execution Cache / pre-scheduled execution** — issued instruction groups are
//!    recorded, in issue order, into the [`ExecutionCache`]; after a mispredict (or a
//!    trace-completion condition) the cache is searched and, on a hit, the whole
//!    front end is clock gated while the execution core replays the trace at a
//!    faster clock ([`FlywheelSim`]'s trace-execution mode).
//! 3. **Two-phase pool-based register renaming** — every architected register owns a
//!    circular pool of physical registers ([`PoolRenamer`]), so replayed traces need
//!    no conventional renaming; a Register Update stage remaps pool entries to the
//!    512-entry register file, with periodic pool redistribution.
//!
//! The crate exposes the machine as [`FlywheelSim`] (driven by the same dynamic
//! traces as the baseline) plus the individual mechanisms for reuse and ablation.
//!
//! ```
//! use flywheel_core::{FlywheelConfig, FlywheelSim};
//! use flywheel_timing::TechNode;
//! use flywheel_uarch::{BaselineConfig, BaselineSim, SimBudget};
//! use flywheel_workloads::{Benchmark, RecordedTrace};
//!
//! let program = Benchmark::Micro.synthesize(7);
//! let budget = SimBudget::new(2_000, 10_000);
//! // Record the dynamic stream once; both machines replay identical cursors.
//! let trace = RecordedTrace::record(&program, 7, RecordedTrace::capture_len_for(budget.total()));
//!
//! let mut baseline = BaselineSim::new(BaselineConfig::paper(TechNode::N130), trace.cursor());
//! let base = baseline.run(budget);
//!
//! let mut flywheel = FlywheelSim::new(
//!     FlywheelConfig::paper(TechNode::N130, 50, 50),
//!     trace.cursor(),
//! );
//! let fly = flywheel.run(budget);
//! assert!(fly.speedup_over(&base) > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod ec;
mod pools;
mod sim;
mod stats;

pub use config::{DvfsConfig, DvfsPolicy, EcConfig, FlywheelConfig, PoolConfig};
pub use ec::{EcStats, ExecutionCache, RecordedInst, Trace, TraceBuilder};
pub use pools::{PoolRenamer, PoolStats};
pub use sim::FlywheelSim;
pub use stats::{FlywheelResult, FlywheelStats};
