//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment of this repository has no access to crates.io, so the
//! real criterion crate cannot be used. This shim implements the small subset of
//! its API that the `flywheel-bench` benches rely on — `criterion_group!` /
//! `criterion_main!`, benchmark groups, `Bencher::iter` and `black_box` — with a
//! simple wall-clock timing loop that reports mean/min/max per iteration.
//!
//! It is intentionally much simpler than criterion (no statistical analysis, no
//! HTML reports), but its numbers are stable enough to track the simulator-kernel
//! throughput recorded in EXPERIMENTS.md, and switching back to the real crate is
//! a one-line change in `Cargo.toml` if a registry ever becomes available.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Entry point handed to each benchmark function, mirroring criterion's API.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _c: self,
            sample_size: 20,
        }
    }

    /// Runs a single benchmark outside a group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, 20, f);
        self
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` and prints per-iteration statistics.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, f);
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(&mut self) {}
}

fn run_bench<F>(name: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // One warm-up sample, then `samples` timed ones.
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        if b.iters > 0 {
            times.push(b.elapsed.as_secs_f64() / b.iters as f64);
        }
    }
    if times.is_empty() {
        println!("  {name}: no iterations");
        return;
    }
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = times.iter().cloned().fold(0.0f64, f64::max);
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    println!(
        "  {name}: mean {} (min {}, max {}, {} samples)",
        fmt_time(mean),
        fmt_time(min),
        fmt_time(max),
        times.len()
    );
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Times closures passed to [`BenchmarkGroup::bench_function`].
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `f` once and accumulates its wall-clock time.
    ///
    /// The real criterion calls the closure many times per sample with an
    /// iteration count it controls; for the heavyweight whole-simulation benches
    /// in this repo a single call per sample is the right granularity.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        black_box(f());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        b.iter(|| 1 + 1);
        b.iter(|| 2 + 2);
        assert_eq!(b.iters, 2);
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut calls = 0;
        {
            let mut g = c.benchmark_group("test");
            g.sample_size(3);
            g.bench_function("noop", |b| {
                calls += 1;
                b.iter(|| black_box(0u64));
            });
            g.finish();
        }
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn time_formatting_picks_sane_units() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" us"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }
}
