//! # flywheel-rng
//!
//! A tiny, dependency-free, deterministic pseudo-random number generator used by
//! the synthetic workload generators. The container this repo builds in has no
//! access to crates.io, so the `rand` crate is replaced by this xoshiro256**
//! implementation (public-domain algorithm by Blackman & Vigna), seeded through
//! splitmix64.
//!
//! Determinism is the only hard requirement: two generators created with the same
//! seed produce identical streams on every platform, which keeps every simulation
//! in the repo reproducible bit for bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A deterministic xoshiro256** generator.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A uniform integer in the half-open range `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        // Debiased multiply-shift (Lemire). The retry loop terminates quickly for
        // any span.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (span as u128);
        let mut low = m as u64;
        if low < span {
            let threshold = span.wrapping_neg() % span;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (span as u128);
                low = m as u64;
            }
        }
        lo + (m >> 64) as u64
    }

    /// A uniform integer in the closed range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        if hi == u64::MAX {
            if lo == 0 {
                return self.next_u64();
            }
            // `hi - lo + 1` fits because `lo >= 1`.
            return lo + self.range_u64(0, hi - lo + 1);
        }
        self.range_u64(lo, hi + 1)
    }

    /// A uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SimRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut r = SimRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranges_respect_bounds_and_cover_values() {
        let mut r = SimRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = r.range_u64(2, 10);
            assert!((2..10).contains(&v));
            seen[(v - 2) as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all values of a small range appear"
        );
        for _ in 0..1000 {
            let v = r.range_inclusive_u64(3, 8);
            assert!((3..=8).contains(&v));
        }
    }

    #[test]
    fn inclusive_range_covers_the_u64_extremes() {
        let mut r = SimRng::seed_from_u64(3);
        // Full-domain request must not overflow.
        let _ = r.range_inclusive_u64(0, u64::MAX);
        for _ in 0..100 {
            let v = r.range_inclusive_u64(u64::MAX - 2, u64::MAX);
            assert!(v >= u64::MAX - 2);
        }
        assert_eq!(r.range_inclusive_u64(5, 5), 5);
    }

    #[test]
    fn bool_is_roughly_balanced() {
        let mut r = SimRng::seed_from_u64(5);
        let trues = (0..10_000).filter(|_| r.bool()).count();
        assert!((4_000..6_000).contains(&trues));
    }
}
