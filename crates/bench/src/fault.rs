//! Deterministic, seeded fault injection for exercising the recovery paths of
//! the store and the sweep executor.
//!
//! Off by default: the hot path pays one relaxed [`AtomicBool`] load per cell
//! and per store append, nothing more. A plan is installed either
//! programmatically (tests), via the scenarios binary's `--faults SPEC` flag,
//! or via the `FLYWHEEL_FAULTS` environment variable (checked once, lazily).
//!
//! A [`FaultPlan`] is pure data; which cells it hits is a deterministic
//! function of `(seed, cell label)` — [`assign_cells`] ranks every label by a
//! seeded FNV-1a hash and assigns the first `panic` labels to persistent
//! panics, the next `stall` to watchdog-budget stalls, and the next
//! `transient` to first-attempt-only panics (which a retrying executor must
//! recover). Store faults count appends: `torn=N` tears the N-th appended line
//! mid-record and simulates a crash of the appender (everything after the tear
//! is lost, as in a real crash), `flip=N` flips one bit in the N-th record's
//! payload after its checksum was computed, so the damaged record is caught at
//! the next open.
//!
//! Process-level faults extend the same plan to supervised multi-process
//! sweeps: `abort=N`/`sigkill=N`/`hang=N` doom N *shards* (assigned by the
//! same seeded ranking over shard labels, see [`assign_shard_faults`]) to
//! abort, SIGKILL themselves, or hang mid-sweep. They are one-shot per shard
//! incarnation — a restarted worker runs clean — unless `persist-proc=1`
//! makes the fault survive restarts (modelling a persistently bad shard that
//! must exhaust the supervisor's restart budget).
//!
//! Spec grammar (comma-separated `key=value`, all fields optional):
//!
//! ```text
//! seed=7,panic=2,stall=1,transient=1,torn=3,flip=5,timeout-ms=250,max-cycles=1000000
//! seed=7,abort=1,sigkill=1,hang=1,persist-proc=0
//! ```

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// A declarative description of the faults to inject into one process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the deterministic label ranking.
    pub seed: u64,
    /// Number of cells that panic on every attempt.
    pub panic_cells: usize,
    /// Number of cells that stall until the watchdog's wall budget fires.
    pub stall_cells: usize,
    /// Number of cells that panic on the first attempt only (recoverable by
    /// the executor's bounded retry).
    pub transient_cells: usize,
    /// 1-based store-append index whose line is torn mid-record; the appender
    /// then behaves as crashed (no further lines reach the disk).
    pub torn_insert: Option<u64>,
    /// 1-based store-append index whose payload gets one bit flipped after
    /// the checksum was computed.
    pub flip_insert: Option<u64>,
    /// Per-cell wall-clock watchdog budget, in milliseconds.
    pub timeout_ms: Option<u64>,
    /// Per-cell back-end cycle cap override for the watchdog.
    pub max_cycles: Option<u64>,
    /// Number of shards whose worker calls [`std::process::abort`] mid-sweep.
    pub abort_shards: usize,
    /// Number of shards whose worker SIGKILLs itself mid-sweep (death without
    /// any unwinding or atexit — the harshest crash an OS can deliver).
    pub sigkill_shards: usize,
    /// Number of shards whose worker stops heartbeating and hangs mid-sweep
    /// (caught by the supervisor's stall detector, not by any exit code).
    pub hang_shards: usize,
    /// When true, shard faults survive worker restarts (a persistently bad
    /// shard that must exhaust the restart budget). When false (default) a
    /// fault fires once and the restarted incarnation runs clean.
    pub persist_proc: bool,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0xf1a9,
            panic_cells: 0,
            stall_cells: 0,
            transient_cells: 0,
            torn_insert: None,
            flip_insert: None,
            timeout_ms: None,
            max_cycles: None,
            abort_shards: 0,
            sigkill_shards: 0,
            hang_shards: 0,
            persist_proc: false,
        }
    }
}

impl FaultPlan {
    /// Parses the `key=value,key=value` spec grammar (see the module docs).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for part in spec.split(',').filter(|s| !s.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec field '{part}' is not key=value"))?;
            let n: u64 = value
                .trim()
                .parse()
                .map_err(|_| format!("fault spec field '{part}' has a non-numeric value"))?;
            match key.trim() {
                "seed" => plan.seed = n,
                "panic" => plan.panic_cells = n as usize,
                "stall" => plan.stall_cells = n as usize,
                "transient" => plan.transient_cells = n as usize,
                "torn" => plan.torn_insert = Some(n),
                "flip" => plan.flip_insert = Some(n),
                "timeout-ms" | "timeout_ms" => plan.timeout_ms = Some(n),
                "max-cycles" | "max_cycles" => plan.max_cycles = Some(n),
                "abort" => plan.abort_shards = n as usize,
                "sigkill" | "sigkill-self" => plan.sigkill_shards = n as usize,
                "hang" => plan.hang_shards = n as usize,
                "persist-proc" | "persist_proc" => plan.persist_proc = n != 0,
                other => return Err(format!("unknown fault spec field '{other}'")),
            }
        }
        Ok(plan)
    }

    /// Serializes the plan back into the spec grammar [`FaultPlan::parse`]
    /// accepts, omitting fields at their defaults.
    /// `parse(&plan.to_spec()) == plan` for every plan.
    pub fn to_spec(&self) -> String {
        let d = FaultPlan::default();
        let mut parts = Vec::new();
        if self.seed != d.seed {
            parts.push(format!("seed={}", self.seed));
        }
        for (key, value) in [
            ("panic", self.panic_cells),
            ("stall", self.stall_cells),
            ("transient", self.transient_cells),
            ("abort", self.abort_shards),
            ("sigkill", self.sigkill_shards),
            ("hang", self.hang_shards),
        ] {
            if value != 0 {
                parts.push(format!("{key}={value}"));
            }
        }
        for (key, value) in [
            ("torn", self.torn_insert),
            ("flip", self.flip_insert),
            ("timeout-ms", self.timeout_ms),
            ("max-cycles", self.max_cycles),
        ] {
            if let Some(v) = value {
                parts.push(format!("{key}={v}"));
            }
        }
        if self.persist_proc {
            parts.push("persist-proc=1".to_owned());
        }
        parts.join(",")
    }
}

/// The fault class assigned to a cell by [`assign_cells`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellFault {
    /// Panics on every attempt (unrecoverable; lands in the failed manifest).
    Panic,
    /// Stalls until the armed watchdog budget fires (reported as a timeout).
    Stall,
    /// Panics on the first attempt only (recovered by retry).
    Transient,
}

/// A process-level fault a supervised shard worker executes mid-sweep.
///
/// Unlike [`CellFault`]s (panics caught in-process by the executor), these
/// kill or wedge the whole worker *process* — only a supervising parent can
/// recover from them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcFault {
    /// `std::process::abort()`: immediate death, no unwinding, exit by
    /// SIGABRT — models an OOM-kill or a `panic = "abort"` crash.
    Abort,
    /// The worker sends itself SIGKILL — death the process cannot observe,
    /// mask or clean up after.
    SigkillSelf,
    /// The worker stops making progress (and stops heartbeating) forever;
    /// only the supervisor's stall detector can reap it.
    Hang,
}

impl ProcFault {
    /// The spec/CLI name of the fault kind.
    pub fn name(&self) -> &'static str {
        match self {
            ProcFault::Abort => "abort",
            ProcFault::SigkillSelf => "sigkill-self",
            ProcFault::Hang => "hang",
        }
    }

    /// Parses a fault kind name as produced by [`ProcFault::name`].
    pub fn parse(s: &str) -> Option<ProcFault> {
        match s {
            "abort" => Some(ProcFault::Abort),
            "sigkill-self" | "sigkill" => Some(ProcFault::SigkillSelf),
            "hang" => Some(ProcFault::Hang),
            _ => None,
        }
    }

    /// Executes the fault. Never returns: the process dies ([`ProcFault::Abort`],
    /// [`ProcFault::SigkillSelf`]) or blocks forever ([`ProcFault::Hang`]).
    pub fn trigger(&self) -> ! {
        match self {
            ProcFault::Abort => std::process::abort(),
            ProcFault::SigkillSelf => {
                let pid = std::process::id().to_string();
                let _ = std::process::Command::new("kill")
                    .args(["-9", &pid])
                    .status();
                // SIGKILL is not maskable, so reaching this line means the
                // `kill` tool was unavailable; degrade to an abort so the
                // injected death still happens.
                std::process::abort();
            }
            ProcFault::Hang => loop {
                std::thread::sleep(std::time::Duration::from_millis(50));
            },
        }
    }
}

/// Assigns process faults to the `shards` shard indices of a supervised
/// sweep: ranks every shard label (`shard-K`) by the plan's seeded hash and
/// dooms the first `abort` of them to [`ProcFault::Abort`], the next
/// `sigkill` to [`ProcFault::SigkillSelf`] and the next `hang` to
/// [`ProcFault::Hang`] — the exact analogue of [`assign_cells`] one level up.
/// A pure function of `(plan, shards)`, so the supervisor can re-derive the
/// same assignment after any restart.
pub fn assign_shard_faults(plan: &FaultPlan, shards: usize) -> Vec<Option<ProcFault>> {
    let mut ranked: Vec<usize> = (0..shards).collect();
    ranked.sort_by_key(|&k| (rank(plan.seed, &format!("shard-{k}")), k));
    let mut out = vec![None; shards];
    let mut it = ranked.into_iter();
    for k in it.by_ref().take(plan.abort_shards) {
        out[k] = Some(ProcFault::Abort);
    }
    for k in it.by_ref().take(plan.sigkill_shards) {
        out[k] = Some(ProcFault::SigkillSelf);
    }
    for k in it.by_ref().take(plan.hang_shards) {
        out[k] = Some(ProcFault::Hang);
    }
    out
}

/// The fault applied to one store append by [`store_insert_fault`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertFault {
    /// Write only a prefix of the line, then behave as crashed.
    Torn,
    /// Flip one bit of the payload after its checksum was computed.
    BitFlip,
}

struct State {
    plan: FaultPlan,
    panic_set: HashSet<String>,
    stall_set: HashSet<String>,
    transient_set: HashSet<String>,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<State>> = Mutex::new(None);
static INSERTS: AtomicU64 = AtomicU64::new(0);

fn state_lock() -> std::sync::MutexGuard<'static, Option<State>> {
    STATE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Installs `plan` process-wide (replacing any previous plan) and resets the
/// store-append counter. Cell targets are empty until [`assign_cells`] runs.
pub fn install(plan: FaultPlan) {
    let mut guard = state_lock();
    INSERTS.store(0, Ordering::Relaxed);
    *guard = Some(State {
        plan,
        panic_set: HashSet::new(),
        stall_set: HashSet::new(),
        transient_set: HashSet::new(),
    });
    ACTIVE.store(true, Ordering::Relaxed);
}

/// Removes the installed plan; all injection points revert to no-ops.
pub fn clear() {
    let mut guard = state_lock();
    *guard = None;
    ACTIVE.store(false, Ordering::Relaxed);
}

/// Whether a plan is installed. One relaxed atomic load — this is the entire
/// hot-path cost of the harness when fault injection is off.
#[inline]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Installs a plan from the `FLYWHEEL_FAULTS` environment variable, once per
/// process, if the variable is set and no plan was installed programmatically.
pub fn maybe_install_from_env() {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        if active() {
            return;
        }
        if let Ok(spec) = std::env::var("FLYWHEEL_FAULTS") {
            if !spec.is_empty() {
                match FaultPlan::parse(&spec) {
                    Ok(plan) => install(plan),
                    Err(e) => eprintln!("warning: ignoring FLYWHEEL_FAULTS: {e}"),
                }
            }
        }
    });
}

/// A copy of the installed plan, if any.
pub fn plan() -> Option<FaultPlan> {
    state_lock().as_ref().map(|s| s.plan.clone())
}

/// Deterministic per-label rank used to pick fault targets.
fn rank(seed: u64, label: &str) -> u64 {
    crate::store::fnv1a64_seeded(seed, label.as_bytes())
}

/// Assigns fault classes to cells: sorts `labels` by their seeded rank and
/// takes the `panic`, `stall` and `transient` prefixes in that order. The
/// assignment is a pure function of `(seed, label set)` — independent of grid
/// order, worker count and retry scheduling.
pub fn assign_cells(labels: &[String]) {
    let mut guard = state_lock();
    let Some(state) = guard.as_mut() else {
        return;
    };
    let mut ranked: Vec<&String> = labels.iter().collect();
    ranked.sort_by_key(|l| (rank(state.plan.seed, l), l.as_str()));
    let mut it = ranked.into_iter();
    state.panic_set = it.by_ref().take(state.plan.panic_cells).cloned().collect();
    state.stall_set = it.by_ref().take(state.plan.stall_cells).cloned().collect();
    state.transient_set = it
        .by_ref()
        .take(state.plan.transient_cells)
        .cloned()
        .collect();
}

/// The fault class assigned to `label`, if any. Callers should gate on
/// [`active`] first to keep the disabled path lock-free.
pub fn cell_fault(label: &str) -> Option<CellFault> {
    if !active() {
        return None;
    }
    let guard = state_lock();
    let state = guard.as_ref()?;
    if state.panic_set.contains(label) {
        Some(CellFault::Panic)
    } else if state.stall_set.contains(label) {
        Some(CellFault::Stall)
    } else if state.transient_set.contains(label) {
        Some(CellFault::Transient)
    } else {
        None
    }
}

/// Counts one store append and reports the fault to apply to it, if any.
/// Returns `None` (without locking) when no plan is installed.
pub fn store_insert_fault() -> Option<InsertFault> {
    if !active() {
        return None;
    }
    let guard = state_lock();
    let state = guard.as_ref()?;
    let index = INSERTS.fetch_add(1, Ordering::Relaxed) + 1;
    if state.plan.torn_insert == Some(index) {
        Some(InsertFault::Torn)
    } else if state.plan.flip_insert == Some(index) {
        Some(InsertFault::BitFlip)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes the tests that install process-global plans.
    static TEST_GATE: Mutex<()> = Mutex::new(());

    #[test]
    fn spec_round_trips_every_field() {
        let plan =
            FaultPlan::parse("seed=7,panic=2,stall=1,transient=1,torn=3,flip=5,timeout-ms=250")
                .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.panic_cells, 2);
        assert_eq!(plan.stall_cells, 1);
        assert_eq!(plan.transient_cells, 1);
        assert_eq!(plan.torn_insert, Some(3));
        assert_eq!(plan.flip_insert, Some(5));
        assert_eq!(plan.timeout_ms, Some(250));
        assert_eq!(plan.max_cycles, None);
    }

    #[test]
    fn spec_round_trips_through_to_spec() {
        for spec in [
            "",
            "seed=7,panic=2,stall=1,transient=1,torn=3,flip=5,timeout-ms=250",
            "abort=1,sigkill=2,hang=1,persist-proc=1",
            "seed=42,panic=1,abort=1,max-cycles=1000000",
        ] {
            let plan = FaultPlan::parse(spec).unwrap();
            assert_eq!(
                FaultPlan::parse(&plan.to_spec()).unwrap(),
                plan,
                "to_spec must round-trip '{spec}' (got '{}')",
                plan.to_spec()
            );
        }
        assert_eq!(FaultPlan::default().to_spec(), "");
    }

    #[test]
    fn shard_fault_assignment_is_deterministic_and_disjoint() {
        let plan = FaultPlan {
            abort_shards: 1,
            sigkill_shards: 1,
            hang_shards: 1,
            ..FaultPlan::default()
        };
        let a = assign_shard_faults(&plan, 8);
        let b = assign_shard_faults(&plan, 8);
        assert_eq!(a, b, "pure function of (plan, shards)");
        let count = |f: ProcFault| a.iter().filter(|x| **x == Some(f)).count();
        assert_eq!(count(ProcFault::Abort), 1);
        assert_eq!(count(ProcFault::SigkillSelf), 1);
        assert_eq!(count(ProcFault::Hang), 1);
        assert_eq!(a.iter().filter(|x| x.is_none()).count(), 5);

        let reseeded = assign_shard_faults(
            &FaultPlan {
                seed: 999,
                ..plan.clone()
            },
            8,
        );
        assert_ne!(a, reseeded, "a different seed picks different shards");
    }

    #[test]
    fn proc_fault_names_round_trip() {
        for f in [ProcFault::Abort, ProcFault::SigkillSelf, ProcFault::Hang] {
            assert_eq!(ProcFault::parse(f.name()), Some(f));
        }
        assert_eq!(ProcFault::parse("bogus"), None);
    }

    #[test]
    fn spec_rejects_unknown_fields_and_bad_values() {
        assert!(FaultPlan::parse("bogus=1").is_err());
        assert!(FaultPlan::parse("panic=two").is_err());
        assert!(FaultPlan::parse("panic").is_err());
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::default());
    }

    #[test]
    fn assignment_is_deterministic_and_disjoint() {
        let _gate = TEST_GATE.lock().unwrap_or_else(PoisonError::into_inner);
        let labels: Vec<String> = (0..10).map(|i| format!("cell-{i}")).collect();
        install(FaultPlan {
            panic_cells: 2,
            stall_cells: 1,
            transient_cells: 3,
            ..FaultPlan::default()
        });
        assign_cells(&labels);
        let classes: Vec<Option<CellFault>> = labels.iter().map(|l| cell_fault(l)).collect();
        let count = |c: CellFault| classes.iter().filter(|x| **x == Some(c)).count();
        assert_eq!(count(CellFault::Panic), 2);
        assert_eq!(count(CellFault::Stall), 1);
        assert_eq!(count(CellFault::Transient), 3);

        // Same seed, shuffled label order: identical assignment.
        let mut shuffled = labels.clone();
        shuffled.reverse();
        install(FaultPlan {
            panic_cells: 2,
            stall_cells: 1,
            transient_cells: 3,
            ..FaultPlan::default()
        });
        assign_cells(&shuffled);
        let again: Vec<Option<CellFault>> = labels.iter().map(|l| cell_fault(l)).collect();
        assert_eq!(classes, again);

        // A different seed picks (almost surely) different targets.
        install(FaultPlan {
            seed: 999,
            panic_cells: 2,
            stall_cells: 1,
            transient_cells: 3,
            ..FaultPlan::default()
        });
        assign_cells(&labels);
        let reseeded: Vec<Option<CellFault>> = labels.iter().map(|l| cell_fault(l)).collect();
        assert_ne!(classes, reseeded);
        clear();
        assert!(cell_fault(&labels[0]).is_none());
    }

    #[test]
    fn insert_faults_fire_on_the_exact_append_index() {
        let _gate = TEST_GATE.lock().unwrap_or_else(PoisonError::into_inner);
        install(FaultPlan {
            torn_insert: Some(2),
            flip_insert: Some(4),
            ..FaultPlan::default()
        });
        let seen: Vec<Option<InsertFault>> = (0..5).map(|_| store_insert_fault()).collect();
        assert_eq!(
            seen,
            vec![
                None,
                Some(InsertFault::Torn),
                None,
                Some(InsertFault::BitFlip),
                None
            ]
        );
        clear();
        assert_eq!(store_insert_fault(), None);
    }
}
