//! Multi-process supervised sweeps: a scenario grid run as N worker
//! *processes*, each sweeping a disjoint shard of cells into its own store,
//! under a supervisor that restarts whatever the OS kills.
//!
//! PR 6 made a single process crash-safe (CRC-framed store, watchdog,
//! in-process retries); this module is the layer above it, where the failure
//! unit is the whole process — OOM-kills, SIGKILL, `abort()`, silent hangs.
//! The design splits cleanly along the process boundary:
//!
//! * **Workers** are this same binary re-invoked with a hidden
//!   `__shard-worker` argv ([`maybe_run_shard_worker`]). A worker expands the
//!   scenario spec it is handed, takes the grid cells whose index is
//!   congruent to its shard, and sweeps them *serially* (parallelism is the
//!   supervisor's job) into `<store>.shard-K` — skipping any cell its shard
//!   store already holds, so a restarted worker re-runs only what its dead
//!   predecessor never landed (warm-store healing). After every cell it
//!   atomically rewrites a status file carrying a monotone heartbeat counter,
//!   progress counters and its failed-cell manifest.
//! * **The supervisor** ([`run_supervised`]) spawns one worker per shard and
//!   polls: a worker that exits cleanly with `state=done` finished its shard;
//!   any other exit is a crash; a live worker whose heartbeat stops advancing
//!   for [`SupervisorConfig::stall_timeout`] (or that outlives
//!   [`SupervisorConfig::shard_deadline`]) is killed. Crashed and killed
//!   workers are restarted with capped exponential backoff until the
//!   per-shard restart budget is exhausted, at which point the shard is
//!   declared failed and the sweep *degrades* instead of aborting. Finally
//!   the shard stores are unioned into the main store via
//!   [`ResultStore::merge`] — in shard order, so the merged bytes are a pure
//!   function of the grid — and every grid cell that still has no record is
//!   reported in the outcome's failed-cell manifest with the best known
//!   cause.
//!
//! Process-level fault injection rides the PR 6 plan: the supervisor assigns
//! [`ProcFault`]s to shards ([`crate::fault::assign_shard_faults`]) and hands
//! them to workers as a `--proc-fault kind@index` argv, so a worker kills or
//! wedges itself deterministically mid-shard. Faults are stripped from
//! restarted incarnations unless the plan says `persist-proc=1` — the
//! difference between a transient OOM (healed by one restart) and a
//! persistently bad shard (exhausts the budget, degrades the sweep).

use crate::fault::{self, FaultPlan, ProcFault};
use crate::scenario::{run_cell_with_retries, Scenario};
use crate::spec::{scenario_from_spec, scenario_to_spec};
use crate::store::{MergeError, ResultStore, RunStats, StoreError};
use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::time::{Duration, Instant};

/// The hidden `argv[1]` that turns this binary into a shard worker.
pub const WORKER_ARGV: &str = "__shard-worker";

/// Schema header of a worker status file.
const STATUS_SCHEMA: &str = "flywheel-worker/1";

/// The shard store a worker of shard `k` sweeps into: `<store>.shard-K`.
pub fn shard_store_path(store: &Path, shard: usize) -> PathBuf {
    PathBuf::from(format!("{}.shard-{shard}", store.display()))
}

/// The status file a worker of shard `k` heartbeats into.
pub fn shard_status_path(status_dir: &Path, shard: usize) -> PathBuf {
    status_dir.join(format!("shard-{shard}.status"))
}

/// The telemetry event log a worker of shard `k` drains into (merged into the
/// main log after the sweep): `<base>.shard-K`.
pub fn shard_telemetry_path(base: &Path, shard: usize) -> PathBuf {
    PathBuf::from(format!("{}.shard-{shard}", base.display()))
}

// ---------------------------------------------------------------------------
// Worker status files
// ---------------------------------------------------------------------------

/// Why a worker status file could not be parsed.
///
/// Status files are the supervisor's only window into worker health, and they
/// are written by a process the supervisor may have just killed — so the
/// parser is strict: a field that repeats (last-wins would silently mask a
/// torn or doubled write) or a number that does not fit its field's type is a
/// rejection of the whole file, never a silent truncation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatusParseError {
    /// The file exists but could not be read.
    Io {
        /// Path of the status file.
        path: PathBuf,
        /// The underlying OS error.
        message: String,
    },
    /// The first line is not the expected schema header.
    BadSchema {
        /// Path of the status file.
        path: PathBuf,
    },
    /// A line fit neither the `key=value` nor the manifest grammar.
    Malformed {
        /// Path of the status file.
        path: PathBuf,
        /// The offending line.
        line: String,
    },
    /// A `key=value` line carried a key the schema does not define.
    UnknownField {
        /// Path of the status file.
        path: PathBuf,
        /// The unknown key.
        field: String,
    },
    /// A field appeared more than once.
    DuplicateKey {
        /// Path of the status file.
        path: PathBuf,
        /// The repeated key.
        key: String,
    },
    /// A numeric field failed to parse as an unsigned integer.
    BadNumber {
        /// Path of the status file.
        path: PathBuf,
        /// The offending line.
        line: String,
    },
    /// A numeric field parsed but exceeds the range of its target type
    /// (e.g. a `pid` wider than `u32`).
    OutOfRange {
        /// Path of the status file.
        path: PathBuf,
        /// The offending line.
        line: String,
    },
}

impl std::fmt::Display for StatusParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatusParseError::Io { path, message } => {
                write!(f, "reading {}: {message}", path.display())
            }
            StatusParseError::BadSchema { path } => {
                write!(f, "{}: not a {STATUS_SCHEMA} file", path.display())
            }
            StatusParseError::Malformed { path, line } => {
                write!(f, "{}: bad status line '{line}'", path.display())
            }
            StatusParseError::UnknownField { path, field } => {
                write!(f, "{}: unknown status field '{field}'", path.display())
            }
            StatusParseError::DuplicateKey { path, key } => {
                write!(f, "{}: duplicate status field '{key}'", path.display())
            }
            StatusParseError::BadNumber { path, line } => {
                write!(f, "{}: bad number in '{line}'", path.display())
            }
            StatusParseError::OutOfRange { path, line } => {
                write!(f, "{}: number out of range in '{line}'", path.display())
            }
        }
    }
}

impl std::error::Error for StatusParseError {}

/// Whether a worker believes it is mid-sweep or finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerState {
    /// Still sweeping cells.
    Running,
    /// Swept every cell of its shard (possibly with failed cells).
    Done,
}

/// One failed cell as recorded in a worker's status manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerFailedCell {
    /// Attempts made before giving up.
    pub attempts: u32,
    /// Failure kind (`panic` or `timeout`).
    pub kind: String,
    /// The cell's label (whitespace-free by construction).
    pub label: String,
    /// Human-readable failure message.
    pub message: String,
}

/// A worker's heartbeat/progress snapshot, written atomically (temp file +
/// rename) to its status file after every cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerStatus {
    /// OS pid of the worker incarnation that wrote the file.
    pub pid: u32,
    /// Shard index.
    pub shard: usize,
    /// Total shard count of the sweep.
    pub shards: usize,
    /// Monotone heartbeat counter; the supervisor's stall detector watches
    /// this, never wall-clock fields, so a paused-and-resumed worker (SIGSTOP,
    /// debugger) is indistinguishable from a slow one until the timeout.
    pub beat: u64,
    /// Cells of the shard completed so far (hit, simulated or failed).
    pub done: usize,
    /// Cells in the shard.
    pub total: usize,
    /// Cells answered from the (warm) shard store.
    pub hits: usize,
    /// Cells simulated by this incarnation.
    pub simulated: usize,
    /// Whether the worker finished its shard.
    pub state: WorkerState,
    /// Failed-cell manifest (cells that exhausted in-process retries).
    pub failed: Vec<WorkerFailedCell>,
}

impl WorkerStatus {
    fn new(shard: usize, shards: usize, total: usize) -> Self {
        WorkerStatus {
            pid: std::process::id(),
            shard,
            shards,
            beat: 0,
            done: 0,
            total,
            hits: 0,
            simulated: 0,
            state: WorkerState::Running,
            failed: Vec::new(),
        }
    }

    /// Serializes the status into its file format.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{STATUS_SCHEMA}\npid={}\nshard={}\nshards={}\nbeat={}\ndone={}\ntotal={}\nhits={}\nsimulated={}\nstate={}\n",
            self.pid,
            self.shard,
            self.shards,
            self.beat,
            self.done,
            self.total,
            self.hits,
            self.simulated,
            match self.state {
                WorkerState::Running => "running",
                WorkerState::Done => "done",
            },
        );
        for f in &self.failed {
            // label is whitespace-free; the message is the tail of the line
            // (newlines flattened so one manifest entry stays one line).
            let msg = f.message.replace(['\n', '\r'], " ");
            out.push_str(&format!(
                "failed {} {} {} {}\n",
                f.attempts, f.kind, f.label, msg
            ));
        }
        out
    }

    /// Writes the status file atomically (temp + rename), so the supervisor
    /// never reads a torn snapshot.
    pub fn write(&self, path: &Path) -> Result<(), StoreError> {
        let tmp = PathBuf::from(format!("{}.tmp", path.display()));
        let io = |op| StoreError::io(op, path);
        let mut f = std::fs::File::create(&tmp).map_err(io("status-write"))?;
        f.write_all(self.render().as_bytes())
            .map_err(io("status-write"))?;
        f.flush().map_err(io("status-write"))?;
        std::fs::rename(&tmp, path).map_err(io("status-rename"))
    }

    /// Reads a status file; `Ok(None)` when it does not exist yet (a worker
    /// that has not completed its first write).
    ///
    /// Duplicate fields and numbers that overflow their field's type are
    /// rejected as [`StatusParseError`]s — a torn, doubled or forged file
    /// must never be mistaken for a healthy heartbeat.
    pub fn read(path: &Path) -> Result<Option<WorkerStatus>, StatusParseError> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                return Err(StatusParseError::Io {
                    path: path.to_path_buf(),
                    message: e.to_string(),
                })
            }
        };
        let mut lines = text.lines();
        if lines.next() != Some(STATUS_SCHEMA) {
            return Err(StatusParseError::BadSchema {
                path: path.to_path_buf(),
            });
        }
        let mut status = WorkerStatus::new(0, 0, 0);
        status.pid = 0;
        let mut seen: Vec<String> = Vec::new();
        for line in lines {
            if let Some(rest) = line.strip_prefix("failed ") {
                let mut it = rest.splitn(4, ' ');
                let (attempts, kind, label) = match (it.next(), it.next(), it.next()) {
                    (Some(a), Some(k), Some(l)) => (a, k, l),
                    _ => {
                        return Err(StatusParseError::Malformed {
                            path: path.to_path_buf(),
                            line: line.to_owned(),
                        })
                    }
                };
                status.failed.push(WorkerFailedCell {
                    attempts: attempts.parse().map_err(|_| StatusParseError::BadNumber {
                        path: path.to_path_buf(),
                        line: line.to_owned(),
                    })?,
                    kind: kind.to_owned(),
                    label: label.to_owned(),
                    message: it.next().unwrap_or("").to_owned(),
                });
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(StatusParseError::Malformed {
                    path: path.to_path_buf(),
                    line: line.to_owned(),
                });
            };
            if seen.iter().any(|k| k == key) {
                return Err(StatusParseError::DuplicateKey {
                    path: path.to_path_buf(),
                    key: key.to_owned(),
                });
            }
            seen.push(key.to_owned());
            let num = || {
                value
                    .parse::<u64>()
                    .map_err(|_| StatusParseError::BadNumber {
                        path: path.to_path_buf(),
                        line: line.to_owned(),
                    })
            };
            let oor = || StatusParseError::OutOfRange {
                path: path.to_path_buf(),
                line: line.to_owned(),
            };
            match key {
                "pid" => status.pid = u32::try_from(num()?).map_err(|_| oor())?,
                "shard" => status.shard = usize::try_from(num()?).map_err(|_| oor())?,
                "shards" => status.shards = usize::try_from(num()?).map_err(|_| oor())?,
                "beat" => status.beat = num()?,
                "done" => status.done = usize::try_from(num()?).map_err(|_| oor())?,
                "total" => status.total = usize::try_from(num()?).map_err(|_| oor())?,
                "hits" => status.hits = usize::try_from(num()?).map_err(|_| oor())?,
                "simulated" => status.simulated = usize::try_from(num()?).map_err(|_| oor())?,
                "state" => {
                    status.state = match value {
                        "running" => WorkerState::Running,
                        "done" => WorkerState::Done,
                        _ => {
                            return Err(StatusParseError::Malformed {
                                path: path.to_path_buf(),
                                line: line.to_owned(),
                            })
                        }
                    }
                }
                other => {
                    return Err(StatusParseError::UnknownField {
                        path: path.to_path_buf(),
                        field: other.to_owned(),
                    })
                }
            }
        }
        Ok(Some(status))
    }
}

// ---------------------------------------------------------------------------
// Worker entry point
// ---------------------------------------------------------------------------

/// If this process was invoked as a shard worker (`argv[1]` is
/// [`WORKER_ARGV`]), runs the shard sweep and exits; otherwise returns so the
/// caller's normal `main` proceeds. Every binary that acts as a supervisor
/// front end (`scenarios`, `flywheel-serve`) calls this first, so
/// `std::env::current_exe()` doubles as the worker executable.
pub fn maybe_run_shard_worker() {
    let mut args = std::env::args().skip(1);
    if args.next().as_deref() != Some(WORKER_ARGV) {
        return;
    }
    let code = match shard_worker_main(&args.collect::<Vec<_>>()) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("shard worker: {e}");
            2
        }
    };
    std::process::exit(code);
}

/// Parses `--flag value` pairs from a worker argv tail.
fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn shard_worker_main(args: &[String]) -> Result<(), String> {
    let spec = flag(args, "--spec").ok_or("missing --spec")?;
    let shard: usize = flag(args, "--shard")
        .ok_or("missing --shard")?
        .parse()
        .map_err(|_| "bad --shard")?;
    let shards: usize = flag(args, "--shards")
        .ok_or("missing --shards")?
        .parse()
        .map_err(|_| "bad --shards")?;
    let store_path = PathBuf::from(flag(args, "--store").ok_or("missing --store")?);
    let status_path = PathBuf::from(flag(args, "--status").ok_or("missing --status")?);
    let telemetry_path = flag(args, "--telemetry").map(PathBuf::from);
    let proc_fault: Option<(ProcFault, usize)> = match flag(args, "--proc-fault") {
        None => None,
        Some(v) => {
            let (kind, idx) = v
                .split_once('@')
                .ok_or("bad --proc-fault (want kind@index)")?;
            Some((
                ProcFault::parse(kind).ok_or_else(|| format!("unknown proc fault '{kind}'"))?,
                idx.parse().map_err(|_| "bad --proc-fault index")?,
            ))
        }
    };
    if shards == 0 || shard >= shards {
        return Err(format!("shard {shard} out of range for {shards} shards"));
    }

    let scenario = scenario_from_spec(spec)?;
    let budget = scenario.budget;
    fault::maybe_install_from_env();
    let grid = scenario.expand();
    if fault::active() {
        // Assign cell-level faults over the *full* grid label set, exactly as
        // a single-process sweep would, so which cells are doomed does not
        // depend on the shard count.
        let labels: Vec<String> = grid.iter().map(|c| c.label()).collect();
        fault::assign_cells(&labels);
    }
    let shard_cells: Vec<_> = grid
        .iter()
        .enumerate()
        .filter(|(i, _)| i % shards == shard)
        .map(|(_, c)| *c)
        .collect();

    // A restarted incarnation truncates its predecessor's shard log: the
    // events of already-landed cells are gone, but the log stays CRC-clean
    // and self-consistent (telemetry is observability, not results).
    if let Some(path) = &telemetry_path {
        crate::telemetry::install_global_telemetry(
            path,
            flywheel_uarch::telemetry::DEFAULT_SAMPLE_INTERVAL,
        )?;
    }

    let (mut store, _report) =
        ResultStore::open_recovering(&store_path).map_err(|e| e.to_string())?;
    let mut status = WorkerStatus::new(shard, shards, shard_cells.len());
    let bump = |status: &mut WorkerStatus| -> Result<(), String> {
        status.beat += 1;
        status.write(&status_path).map_err(|e| e.to_string())
    };
    bump(&mut status)?; // first heartbeat before any (possibly slow) cell

    for (local_idx, cell) in shard_cells.iter().enumerate() {
        if let Some((f, idx)) = proc_fault {
            if local_idx == idx {
                eprintln!(
                    "fault injection: worker shard {shard} triggering {} at cell {idx}",
                    f.name()
                );
                f.trigger();
            }
        }
        let key = cell.key(budget);
        if store.contains(&key) {
            status.hits += 1;
        } else {
            match run_cell_with_retries(cell, budget) {
                Ok(r) => {
                    store
                        .insert(
                            key,
                            &cell.label(),
                            RunStats {
                                sim: r.sim,
                                flywheel: r.flywheel,
                            },
                        )
                        .map_err(|e| e.to_string())?;
                    status.simulated += 1;
                }
                Err(f) => status.failed.push(WorkerFailedCell {
                    attempts: f.attempts,
                    kind: f.cause.kind().to_owned(),
                    label: f.cell.label(),
                    message: f.cause.message().to_owned(),
                }),
            }
        }
        status.done += 1;
        bump(&mut status)?;
    }
    status.state = WorkerState::Done;
    bump(&mut status)?;
    if telemetry_path.is_some() {
        crate::telemetry::finish_global_telemetry();
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Supervisor
// ---------------------------------------------------------------------------

/// Policy knobs of a supervised sweep.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Worker process (= shard) count.
    pub shards: usize,
    /// Restarts allowed per shard before it is declared failed (so a shard
    /// runs at most `max_restarts + 1` incarnations).
    pub max_restarts: u32,
    /// Base restart backoff; incarnation `n` waits `backoff << (n-1)`.
    pub backoff: Duration,
    /// Upper bound on the exponential backoff.
    pub backoff_cap: Duration,
    /// A live worker whose heartbeat counter does not advance for this long
    /// is considered hung and killed.
    pub stall_timeout: Duration,
    /// Wall-clock budget of one worker incarnation; exceeding it is treated
    /// like a stall (killed, restarted, budget permitting).
    pub shard_deadline: Duration,
    /// The executable spawned as the worker (normally
    /// `std::env::current_exe()`; tests pass the `scenarios` binary).
    pub worker_exe: PathBuf,
    /// Directory for worker status files (created if missing).
    pub status_dir: PathBuf,
    /// Fault plan forwarded to workers (cell/store faults via the
    /// `FLYWHEEL_FAULTS` environment, process faults via `--proc-fault`).
    pub faults: Option<FaultPlan>,
    /// When set, workers arm kernel telemetry and drain it into per-shard
    /// event logs (`<base>.shard-K`), merged into the log at this base path
    /// after the sweep. `None` (the default) leaves telemetry disarmed and
    /// the sweep byte-identical to a build without it.
    pub telemetry: Option<PathBuf>,
}

impl SupervisorConfig {
    /// A config with production-shaped defaults for `shards` workers spawned
    /// from `worker_exe`, heartbeating under `status_dir`.
    pub fn new(shards: usize, worker_exe: PathBuf, status_dir: PathBuf) -> Self {
        SupervisorConfig {
            shards,
            max_restarts: 2,
            backoff: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(2),
            stall_timeout: Duration::from_secs(10),
            shard_deadline: Duration::from_secs(120),
            worker_exe,
            status_dir,
            faults: None,
            telemetry: None,
        }
    }
}

/// One entry of the supervisor's event log. Per shard, the sequence of events
/// is deterministic for a fixed (scenario, config, fault plan); ordering
/// *across* shards depends on OS scheduling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SupervisorEvent {
    /// Incarnation `incarnation` (1-based) of the shard's worker started.
    Spawned {
        /// Shard index.
        shard: usize,
        /// 1-based incarnation counter.
        incarnation: u32,
    },
    /// The worker exited without finishing its shard.
    Crashed {
        /// Shard index.
        shard: usize,
        /// Incarnation that died.
        incarnation: u32,
        /// Exit-status description (e.g. `signal: 9 (SIGKILL)`).
        reason: String,
    },
    /// The worker's heartbeat stopped advancing and it was killed.
    Stalled {
        /// Shard index.
        shard: usize,
        /// Incarnation that stalled.
        incarnation: u32,
    },
    /// The worker outlived the per-incarnation wall budget and was killed.
    DeadlineExceeded {
        /// Shard index.
        shard: usize,
        /// Incarnation that was killed.
        incarnation: u32,
    },
    /// A replacement incarnation was scheduled after a backoff.
    Restarting {
        /// Shard index.
        shard: usize,
        /// Incarnation that will be spawned next.
        incarnation: u32,
        /// Backoff waited before the spawn, in milliseconds.
        backoff_ms: u64,
    },
    /// The shard's worker finished the shard.
    ShardDone {
        /// Shard index.
        shard: usize,
        /// Incarnation that finished.
        incarnation: u32,
    },
    /// The shard exhausted its restart budget; the sweep degrades.
    ShardFailed {
        /// Shard index.
        shard: usize,
    },
}

impl SupervisorEvent {
    /// The shard the event belongs to.
    pub fn shard(&self) -> usize {
        match *self {
            SupervisorEvent::Spawned { shard, .. }
            | SupervisorEvent::Crashed { shard, .. }
            | SupervisorEvent::Stalled { shard, .. }
            | SupervisorEvent::DeadlineExceeded { shard, .. }
            | SupervisorEvent::Restarting { shard, .. }
            | SupervisorEvent::ShardDone { shard, .. }
            | SupervisorEvent::ShardFailed { shard } => shard,
        }
    }

    /// Compact `kind` tag (used by logs and the determinism tests, which
    /// compare per-shard kind sequences — crash *reasons* can legitimately
    /// vary in wording across platforms).
    pub fn kind(&self) -> &'static str {
        match self {
            SupervisorEvent::Spawned { .. } => "spawned",
            SupervisorEvent::Crashed { .. } => "crashed",
            SupervisorEvent::Stalled { .. } => "stalled",
            SupervisorEvent::DeadlineExceeded { .. } => "deadline",
            SupervisorEvent::Restarting { .. } => "restarting",
            SupervisorEvent::ShardDone { .. } => "done",
            SupervisorEvent::ShardFailed { .. } => "failed",
        }
    }

    /// One-line human description.
    pub fn describe(&self) -> String {
        match self {
            SupervisorEvent::Spawned { shard, incarnation } => {
                format!("shard {shard}: spawned incarnation {incarnation}")
            }
            SupervisorEvent::Crashed {
                shard,
                incarnation,
                reason,
            } => format!("shard {shard}: incarnation {incarnation} crashed ({reason})"),
            SupervisorEvent::Stalled { shard, incarnation } => {
                format!("shard {shard}: incarnation {incarnation} stalled; killed")
            }
            SupervisorEvent::DeadlineExceeded { shard, incarnation } => {
                format!("shard {shard}: incarnation {incarnation} exceeded its deadline; killed")
            }
            SupervisorEvent::Restarting {
                shard,
                incarnation,
                backoff_ms,
            } => format!(
                "shard {shard}: restarting (incarnation {incarnation}) after {backoff_ms} ms"
            ),
            SupervisorEvent::ShardDone { shard, incarnation } => {
                format!("shard {shard}: done (incarnation {incarnation})")
            }
            SupervisorEvent::ShardFailed { shard } => {
                format!("shard {shard}: restart budget exhausted; degrading")
            }
        }
    }
}

/// A grid cell that has no record in the merged store after the sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepFailedCell {
    /// Shard the cell belonged to.
    pub shard: usize,
    /// The cell's label.
    pub label: String,
    /// Failure kind: `panic`/`timeout` (from the worker's manifest) or
    /// `shard-failed` when the whole shard exhausted its restart budget.
    pub kind: String,
    /// Human-readable cause.
    pub message: String,
}

/// What a supervised sweep did.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Shard count the grid was split into.
    pub shards: usize,
    /// Grid cells in total.
    pub cells: usize,
    /// Cells already warm in the main store before any worker was spawned.
    pub warm_cells: usize,
    /// Cells recalled from shard stores by workers (healing hits).
    pub hits: usize,
    /// Cells simulated by workers.
    pub simulated: usize,
    /// Total worker restarts across all shards.
    pub restarts: u32,
    /// Shards that exhausted their restart budget.
    pub failed_shards: Vec<usize>,
    /// Cells with no record in the merged store, with best-known causes.
    pub failed_cells: Vec<SweepFailedCell>,
    /// The full supervisor event log (interleaved across shards).
    pub events: Vec<SupervisorEvent>,
    /// Paths of the per-shard stores (kept for post-mortems and fsck).
    pub shard_stores: Vec<PathBuf>,
}

impl SweepOutcome {
    /// Whether every cell of the grid has a record in the merged store.
    pub fn is_complete(&self) -> bool {
        self.failed_cells.is_empty() && self.failed_shards.is_empty()
    }
}

/// Why a supervised sweep could not produce a merged store.
#[derive(Debug)]
pub enum SweepError {
    /// The scenario failed validation or spec round-trip.
    Scenario(String),
    /// Opening/writing a store failed.
    Store(StoreError),
    /// Unioning the shard stores failed (conflict or I/O).
    Merge(MergeError),
    /// Spawning a worker process failed.
    Spawn {
        /// Shard whose worker could not be spawned.
        shard: usize,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// Merging the per-shard telemetry event logs failed.
    Telemetry(String),
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Scenario(e) => write!(f, "invalid scenario: {e}"),
            SweepError::Store(e) => write!(f, "sweep store error: {e}"),
            SweepError::Merge(e) => write!(f, "sweep merge error: {e}"),
            SweepError::Spawn { shard, source } => {
                write!(f, "could not spawn worker for shard {shard}: {source}")
            }
            SweepError::Telemetry(e) => write!(f, "sweep telemetry error: {e}"),
        }
    }
}

impl std::error::Error for SweepError {}

impl From<StoreError> for SweepError {
    fn from(e: StoreError) -> Self {
        SweepError::Store(e)
    }
}

impl From<MergeError> for SweepError {
    fn from(e: MergeError) -> Self {
        SweepError::Merge(e)
    }
}

/// Book-keeping for one shard's worker lifecycle.
struct ShardState {
    child: Option<Child>,
    incarnation: u32,
    spawned_at: Instant,
    last_beat: u64,
    last_beat_at: Instant,
    next_spawn_at: Option<Instant>,
    done: bool,
    failed: bool,
}

/// Runs `scenario` as a supervised multi-process sharded sweep into the store
/// at `store_path`, healing crashes per `cfg`. `on_event` observes the event
/// log live (the same events are returned in the outcome).
///
/// Cells already present in the store are not re-swept; a fully warm store
/// spawns no workers at all. On completion the shard stores are merged into
/// `store_path` in shard order (byte-deterministic) and left on disk for
/// inspection.
pub fn run_supervised(
    scenario: &Scenario,
    store_path: &Path,
    cfg: &SupervisorConfig,
    mut on_event: impl FnMut(&SupervisorEvent),
) -> Result<SweepOutcome, SweepError> {
    scenario.validate().map_err(SweepError::Scenario)?;
    let shards = cfg.shards.max(1);
    let spec = scenario_to_spec(scenario).map_err(|e| SweepError::Scenario(e.to_string()))?;
    let budget = scenario.budget;
    let grid = scenario.expand();

    let mut main_store = ResultStore::open(store_path)?;
    let keys: Vec<_> = grid.iter().map(|c| c.key(budget)).collect();
    let warm_cells = keys.iter().filter(|k| main_store.contains(k)).count();

    let mut events: Vec<SupervisorEvent> = Vec::new();
    let shard_stores: Vec<PathBuf> = (0..shards)
        .map(|k| shard_store_path(store_path, k))
        .collect();

    let mut outcome = SweepOutcome {
        shards,
        cells: grid.len(),
        warm_cells,
        hits: 0,
        simulated: 0,
        restarts: 0,
        failed_shards: Vec::new(),
        failed_cells: Vec::new(),
        events: Vec::new(),
        shard_stores: shard_stores.clone(),
    };

    if warm_cells < grid.len() {
        std::fs::create_dir_all(&cfg.status_dir)
            .map_err(|e| StoreError::io("status-dir", &cfg.status_dir)(e))?;

        // Pre-seed each shard store with the main store's warm records for
        // that shard, so partially-warm sweeps only simulate what is missing.
        for (k, shard_store) in shard_stores.iter().enumerate() {
            let warm: Vec<usize> = (k..grid.len())
                .step_by(shards)
                .filter(|&i| main_store.contains(&keys[i]))
                .collect();
            if warm.is_empty() {
                continue;
            }
            let mut store = ResultStore::open(shard_store)?;
            for i in warm {
                if !store.contains(&keys[i]) {
                    if let Some(stats) = main_store.get(&keys[i]) {
                        store.insert(keys[i], &grid[i].label(), stats.clone())?;
                    }
                }
            }
        }

        // Cell/store faults travel to workers by environment; process faults
        // are assigned to shards here and travel by argv.
        let cell_fault_env: Option<String> = cfg.faults.as_ref().map(|p| {
            let mut p = p.clone();
            p.abort_shards = 0;
            p.sigkill_shards = 0;
            p.hang_shards = 0;
            p.persist_proc = false;
            p.to_spec()
        });
        let shard_faults: Vec<Option<ProcFault>> = match &cfg.faults {
            Some(plan) => fault::assign_shard_faults(plan, shards),
            None => vec![None; shards],
        };
        let persist_proc = cfg.faults.as_ref().is_some_and(|p| p.persist_proc);
        let shard_len = |k: usize| (k..grid.len()).step_by(shards).count();

        let spawn = |shard: usize, incarnation: u32| -> Result<Child, SweepError> {
            let mut cmd = Command::new(&cfg.worker_exe);
            cmd.arg(WORKER_ARGV)
                .arg("--spec")
                .arg(&spec)
                .arg("--shard")
                .arg(shard.to_string())
                .arg("--shards")
                .arg(shards.to_string())
                .arg("--store")
                .arg(&shard_stores[shard])
                .arg("--status")
                .arg(shard_status_path(&cfg.status_dir, shard));
            if let Some(base) = &cfg.telemetry {
                cmd.arg("--telemetry")
                    .arg(shard_telemetry_path(base, shard));
            }
            // Inject the process fault on the first incarnation only, unless
            // the plan says it persists across restarts.
            if let Some(f) = shard_faults[shard] {
                if incarnation == 1 || persist_proc {
                    cmd.arg("--proc-fault")
                        .arg(format!("{}@{}", f.name(), shard_len(shard) / 2));
                }
            }
            match &cell_fault_env {
                Some(spec) if !spec.is_empty() => {
                    cmd.env("FLYWHEEL_FAULTS", spec);
                }
                _ => {
                    cmd.env_remove("FLYWHEEL_FAULTS");
                }
            }
            cmd.spawn()
                .map_err(|source| SweepError::Spawn { shard, source })
        };

        let now = Instant::now();
        let mut states: Vec<ShardState> = (0..shards)
            .map(|_| ShardState {
                child: None,
                incarnation: 0,
                spawned_at: now,
                last_beat: 0,
                last_beat_at: now,
                next_spawn_at: Some(now),
                done: false,
                failed: false,
            })
            .collect();

        let mut emit = |e: SupervisorEvent, events: &mut Vec<SupervisorEvent>| {
            on_event(&e);
            events.push(e);
        };

        while states.iter().any(|s| !s.done && !s.failed) {
            // Index rather than iter_mut(): the body re-borrows `states[shard]`
            // around process spawns and event emission, so one long &mut over
            // the vector would not borrow-check.
            #[allow(clippy::needless_range_loop)]
            for shard in 0..shards {
                // Split-borrow dance: decide on a copy of the scheduling
                // state, then mutate.
                if states[shard].done || states[shard].failed {
                    continue;
                }
                let now = Instant::now();
                if states[shard].child.is_none() {
                    if states[shard].next_spawn_at.is_some_and(|t| now >= t) {
                        let incarnation = states[shard].incarnation + 1;
                        let child = spawn(shard, incarnation)?;
                        let s = &mut states[shard];
                        s.child = Some(child);
                        s.incarnation = incarnation;
                        s.spawned_at = now;
                        s.last_beat = 0;
                        s.last_beat_at = now;
                        s.next_spawn_at = None;
                        emit(SupervisorEvent::Spawned { shard, incarnation }, &mut events);
                    }
                    continue;
                }

                let incarnation = states[shard].incarnation;
                let status = WorkerStatus::read(&shard_status_path(&cfg.status_dir, shard))
                    .ok()
                    .flatten();
                let exited = states[shard]
                    .child
                    .as_mut()
                    .and_then(|c| c.try_wait().ok().flatten());
                match exited {
                    Some(exit) => {
                        states[shard].child = None;
                        let finished = exit.success()
                            && status
                                .as_ref()
                                .is_some_and(|s| s.state == WorkerState::Done);
                        if finished {
                            states[shard].done = true;
                            emit(
                                SupervisorEvent::ShardDone { shard, incarnation },
                                &mut events,
                            );
                        } else {
                            emit(
                                SupervisorEvent::Crashed {
                                    shard,
                                    incarnation,
                                    reason: exit.to_string(),
                                },
                                &mut events,
                            );
                            schedule_restart(cfg, &mut states[shard], shard, &mut |e| {
                                emit(e, &mut events)
                            });
                        }
                    }
                    None => {
                        if let Some(s) = &status {
                            if s.beat > states[shard].last_beat {
                                states[shard].last_beat = s.beat;
                                states[shard].last_beat_at = now;
                            }
                        }
                        let stalled =
                            now.duration_since(states[shard].last_beat_at) > cfg.stall_timeout;
                        let over_deadline =
                            now.duration_since(states[shard].spawned_at) > cfg.shard_deadline;
                        if stalled || over_deadline {
                            if let Some(child) = &mut states[shard].child {
                                let _ = child.kill();
                                let _ = child.wait();
                            }
                            states[shard].child = None;
                            let event = if stalled {
                                SupervisorEvent::Stalled { shard, incarnation }
                            } else {
                                SupervisorEvent::DeadlineExceeded { shard, incarnation }
                            };
                            emit(event, &mut events);
                            schedule_restart(cfg, &mut states[shard], shard, &mut |e| {
                                emit(e, &mut events)
                            });
                        }
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(10));
        }

        outcome.restarts = states.iter().map(|s| s.incarnation.saturating_sub(1)).sum();
        outcome.failed_shards = (0..shards).filter(|&k| states[k].failed).collect();
    }

    // Union every shard store that exists — including partial stores of
    // failed shards, so no valid record a dead worker landed is ever lost.
    // Merging in shard order keeps the merged bytes deterministic. A fully
    // warm sweep spawned nothing and merges nothing new.
    for shard_store in &shard_stores {
        if !shard_store.exists() {
            continue;
        }
        let (other, _report) = ResultStore::open_recovering(shard_store)?;
        main_store.merge(&other)?;
    }

    // Fold the per-shard telemetry logs into the main event log, in shard
    // order (missing shard logs — warm shards, dead-before-install workers —
    // are skipped).
    if let Some(base) = &cfg.telemetry {
        let shard_logs: Vec<PathBuf> = (0..shards).map(|k| shard_telemetry_path(base, k)).collect();
        crate::telemetry::merge_telemetry_logs(base, &shard_logs).map_err(SweepError::Telemetry)?;
    }

    // Gather worker progress + failure manifests from the final status files
    // (skipped on the fully-warm path, where any status files on disk are
    // stale leftovers of an earlier sweep).
    let mut manifests: HashMap<String, WorkerFailedCell> = HashMap::new();
    if warm_cells < grid.len() {
        for shard in 0..shards {
            if let Ok(Some(status)) = WorkerStatus::read(&shard_status_path(&cfg.status_dir, shard))
            {
                outcome.hits += status.hits;
                outcome.simulated += status.simulated;
                for f in status.failed {
                    manifests.insert(f.label.clone(), f);
                }
            }
        }
    }

    // Anything still missing from the merged store is a failed cell; report
    // the worker's recorded cause when it has one, otherwise attribute it to
    // the shard's exhausted restart budget.
    for (i, cell) in grid.iter().enumerate() {
        if main_store.contains(&keys[i]) {
            continue;
        }
        let shard = i % shards;
        let label = cell.label();
        let failed = match manifests.get(&label) {
            Some(m) => SweepFailedCell {
                shard,
                label,
                kind: m.kind.clone(),
                message: m.message.clone(),
            },
            None => SweepFailedCell {
                shard,
                label,
                kind: "shard-failed".to_owned(),
                message: format!("shard {shard} exhausted its restart budget"),
            },
        };
        outcome.failed_cells.push(failed);
    }

    outcome.events = events;
    Ok(outcome)
}

/// Schedules the next incarnation of a crashed/stalled shard, or declares the
/// shard failed when the restart budget is exhausted.
fn schedule_restart(
    cfg: &SupervisorConfig,
    state: &mut ShardState,
    shard: usize,
    emit: &mut impl FnMut(SupervisorEvent),
) {
    if state.incarnation > cfg.max_restarts {
        state.failed = true;
        emit(SupervisorEvent::ShardFailed { shard });
        return;
    }
    let backoff = cfg
        .backoff
        .saturating_mul(1 << (state.incarnation.saturating_sub(1)).min(16))
        .min(cfg.backoff_cap);
    state.next_spawn_at = Some(Instant::now() + backoff);
    emit(SupervisorEvent::Restarting {
        shard,
        incarnation: state.incarnation + 1,
        backoff_ms: backoff.as_millis() as u64,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_files_round_trip() {
        let mut s = WorkerStatus::new(2, 4, 10);
        s.beat = 17;
        s.done = 5;
        s.hits = 3;
        s.simulated = 2;
        s.failed.push(WorkerFailedCell {
            attempts: 3,
            kind: "panic".to_owned(),
            label: "flywheel/gzip/s1/130nm/FE0+BE0/iw128rob128/ec128K/mem100".to_owned(),
            message: "fault injection: forced panic in cell x (attempt 2)".to_owned(),
        });
        let dir = std::env::temp_dir().join(format!("fw-status-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shard-2.status");
        s.write(&path).unwrap();
        let back = WorkerStatus::read(&path).unwrap().unwrap();
        assert_eq!(back, s);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn write_status(tag: &str, body: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fw-status-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shard-0.status");
        std::fs::write(&path, format!("{STATUS_SCHEMA}\n{body}")).unwrap();
        path
    }

    #[test]
    fn duplicate_status_keys_are_rejected() {
        // Last-wins would let a doubled write smuggle in a stale heartbeat.
        let path = write_status("dup", "pid=1\nshard=0\nshards=1\nbeat=5\nbeat=900\n");
        let err = WorkerStatus::read(&path).unwrap_err();
        assert_eq!(
            err,
            StatusParseError::DuplicateKey {
                path: path.clone(),
                key: "beat".to_owned()
            },
            "{err}"
        );
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn out_of_range_status_numbers_are_rejected() {
        // 2^32 does not fit a u32 pid; `as u32` would silently wrap it to 0.
        let path = write_status("oor", "pid=4294967296\n");
        let err = WorkerStatus::read(&path).unwrap_err();
        assert!(
            matches!(err, StatusParseError::OutOfRange { .. }),
            "{err:?}"
        );
        assert!(err.to_string().contains("out of range"), "{err}");
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn unparseable_status_numbers_are_rejected() {
        let path = write_status("nan", "beat=soon\n");
        let err = WorkerStatus::read(&path).unwrap_err();
        assert!(matches!(err, StatusParseError::BadNumber { .. }), "{err:?}");
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn unknown_status_fields_are_rejected() {
        let path = write_status("unk", "pid=1\nmood=great\n");
        let err = WorkerStatus::read(&path).unwrap_err();
        assert_eq!(
            err,
            StatusParseError::UnknownField {
                path: path.clone(),
                field: "mood".to_owned()
            }
        );
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn repeated_manifest_lines_are_allowed() {
        // `failed` lines are a list, not a key: several must coexist while
        // the scalar fields stay single-shot.
        let path = write_status(
            "manifest",
            "pid=1\nfailed 3 panic cell/a boom\nfailed 2 timeout cell/b wedged\n",
        );
        let status = WorkerStatus::read(&path).unwrap().unwrap();
        assert_eq!(status.failed.len(), 2);
        assert_eq!(status.failed[1].kind, "timeout");
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn missing_status_file_reads_as_none() {
        assert_eq!(
            WorkerStatus::read(Path::new("/nonexistent/shard-0.status")).unwrap(),
            None
        );
    }

    #[test]
    fn shard_paths_are_stable() {
        assert_eq!(
            shard_store_path(Path::new("/tmp/results.store"), 3),
            PathBuf::from("/tmp/results.store.shard-3")
        );
        assert_eq!(
            shard_status_path(Path::new("/tmp/status"), 3),
            PathBuf::from("/tmp/status/shard-3.status")
        );
    }
}
