//! # flywheel-bench
//!
//! Shared experiment harness used by the `experiments` binary and the Criterion
//! benches to regenerate every table and figure of the paper's evaluation.
//!
//! Each experiment runs the baseline machine and one or more Flywheel configurations
//! over the paper's benchmark suite and reports the same normalized quantities the
//! paper plots (relative performance, energy and power). Budgets are configurable so
//! the same code serves quick benches and the full experiment runs recorded in
//! EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use flywheel_core::{FlywheelConfig, FlywheelResult, FlywheelSim};
use flywheel_timing::TechNode;
use flywheel_uarch::{BaselineConfig, BaselineSim, SimBudget, SimResult};
use flywheel_workloads::{Benchmark, TraceGenerator};

/// Seed used for every experiment (results are deterministic).
pub const EXPERIMENT_SEED: u64 = 2005;

/// The clock configurations swept in Figures 12-14: (front-end %, back-end %).
pub const CLOCK_SWEEP: [(u32, u32); 5] = [(0, 50), (25, 50), (50, 50), (75, 50), (100, 50)];

/// Runs the baseline machine on `bench` at `node`.
pub fn run_baseline(bench: Benchmark, node: TechNode, budget: SimBudget) -> SimResult {
    let program = bench.synthesize(EXPERIMENT_SEED);
    BaselineSim::new(BaselineConfig::paper(node), TraceGenerator::new(&program, EXPERIMENT_SEED))
        .run(budget)
}

/// Runs a baseline variant (used by the Figure 2 pipeline-loop study).
pub fn run_baseline_with(
    bench: Benchmark,
    cfg: BaselineConfig,
    budget: SimBudget,
) -> SimResult {
    let program = bench.synthesize(EXPERIMENT_SEED);
    BaselineSim::new(cfg, TraceGenerator::new(&program, EXPERIMENT_SEED)).run(budget)
}

/// Runs a Flywheel configuration on `bench`.
pub fn run_flywheel(bench: Benchmark, cfg: FlywheelConfig, budget: SimBudget) -> FlywheelResult {
    let program = bench.synthesize(EXPERIMENT_SEED);
    FlywheelSim::new(cfg, TraceGenerator::new(&program, EXPERIMENT_SEED)).run(budget)
}

/// One row of a per-benchmark, per-configuration result table.
#[derive(Debug, Clone)]
pub struct Row {
    /// Benchmark name (paper label).
    pub bench: &'static str,
    /// One value per swept configuration.
    pub values: Vec<f64>,
}

/// Prints a table of rows plus their geometric-mean/average row, Figure-style.
pub fn print_table(title: &str, columns: &[String], rows: &[Row]) {
    println!("\n== {title} ==");
    print!("{:<10}", "bench");
    for c in columns {
        print!(" {c:>10}");
    }
    println!();
    let mut sums = vec![0.0; columns.len()];
    for row in rows {
        print!("{:<10}", row.bench);
        for (i, v) in row.values.iter().enumerate() {
            sums[i] += v;
            print!(" {v:>10.3}");
        }
        println!();
    }
    print!("{:<10}", "average");
    for s in &sums {
        print!(" {:>10.3}", s / rows.len() as f64);
    }
    println!();
}

/// The default budget used by the quick benches (kept small so `cargo bench`
/// finishes in minutes; EXPERIMENTS.md records runs with the larger budget).
pub fn bench_budget() -> SimBudget {
    SimBudget::new(10_000, 40_000)
}

/// The budget used by the `experiments` binary unless overridden on the command
/// line.
pub fn experiment_budget() -> SimBudget {
    SimBudget::new(50_000, 250_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_a_tiny_experiment_end_to_end() {
        let budget = SimBudget::new(1_000, 5_000);
        let base = run_baseline(Benchmark::Micro, TechNode::N130, budget);
        let fly = run_flywheel(
            Benchmark::Micro,
            FlywheelConfig::paper_iso_clock(TechNode::N130),
            budget,
        );
        assert_eq!(base.instructions, fly.sim.instructions);
        assert!(fly.speedup_over(&base) > 0.2);
    }

    #[test]
    fn clock_sweep_matches_the_paper_axes() {
        assert_eq!(CLOCK_SWEEP.len(), 5);
        assert!(CLOCK_SWEEP.iter().all(|(_, be)| *be == 50));
        assert_eq!(CLOCK_SWEEP[0].0, 0);
        assert_eq!(CLOCK_SWEEP[4].0, 100);
    }
}
