//! # flywheel-bench
//!
//! Shared experiment harness used by the `experiments` binary and the Criterion
//! benches to regenerate every table and figure of the paper's evaluation.
//!
//! Each experiment runs the baseline machine and one or more Flywheel configurations
//! over the paper's benchmark suite and reports the same normalized quantities the
//! paper plots (relative performance, energy and power). Budgets are configurable so
//! the same code serves quick benches and the full experiment runs recorded in
//! EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod executor;
pub mod fault;
pub mod scenario;
pub mod search;
pub mod spec;
pub mod stats;
pub mod store;
pub mod supervisor;
pub mod telemetry;

use flywheel_core::{FlywheelConfig, FlywheelResult, FlywheelSim};
use flywheel_timing::TechNode;
use flywheel_uarch::{BaselineConfig, BaselineSim, SimBudget, SimResult};
use flywheel_workloads::{Benchmark, RecordedTrace, SyntheticProgram};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

pub use store::simulations_performed;

/// Seed used for every experiment (results are deterministic).
pub const EXPERIMENT_SEED: u64 = 2005;

/// The clock configurations swept in Figures 12-14: (front-end %, back-end %).
pub const CLOCK_SWEEP: [(u32, u32); 5] = [(0, 50), (25, 50), (50, 50), (75, 50), (100, 50)];

/// Process-wide cache of synthesized programs and recorded traces, keyed by
/// `(benchmark, seed)`. Every sweep cell of every experiment replays the same
/// per-benchmark dynamic stream, so each program is synthesized once and each
/// trace is generated once per process (per budget growth), instead of once per
/// (machine, benchmark, configuration) cell.
#[derive(Default)]
struct WorkloadCache {
    programs: HashMap<(Benchmark, u64), Arc<SyntheticProgram>>,
    traces: HashMap<(Benchmark, u64), Arc<RecordedTrace>>,
}

fn cache() -> &'static Mutex<WorkloadCache> {
    static CACHE: OnceLock<Mutex<WorkloadCache>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(WorkloadCache::default()))
}

fn locked_program(c: &mut WorkloadCache, bench: Benchmark, seed: u64) -> Arc<SyntheticProgram> {
    c.programs
        .entry((bench, seed))
        .or_insert_with(|| Arc::new(bench.synthesize(seed)))
        .clone()
}

/// The shared synthesized program for `(bench, seed)` (cached per process).
pub fn shared_program(bench: Benchmark, seed: u64) -> Arc<SyntheticProgram> {
    locked_program(
        &mut cache().lock().unwrap_or_else(PoisonError::into_inner),
        bench,
        seed,
    )
}

/// The shared recorded trace for `(bench, seed)`, captured long enough for
/// `budget` (see [`RecordedTrace::capture_len_for`]) and cached per process.
///
/// If a later call asks for a larger budget than the cached capture covers, the
/// trace is re-recorded at the larger bound and replaces the cached one; the
/// longer capture replays the identical stream (bounded captures are prefixes of
/// unbounded generation), so results do not depend on the request order.
pub fn shared_trace(bench: Benchmark, seed: u64, budget: SimBudget) -> Arc<RecordedTrace> {
    let need = RecordedTrace::capture_len_for(budget.total());
    // The cache holds only fully-constructed immutable Arcs, so a thread that
    // panicked mid-cell cannot have left it inconsistent — recover the lock.
    let mut c = cache().lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(t) = c.traces.get(&(bench, seed)) {
        if t.len() >= need {
            return t.clone();
        }
    }
    let program = locked_program(&mut c, bench, seed);
    let trace = Arc::new(RecordedTrace::record(&program, seed, need));
    c.traces.insert((bench, seed), trace.clone());
    trace
}

/// Runs the baseline machine on `bench` at `node`.
pub fn run_baseline(bench: Benchmark, node: TechNode, budget: SimBudget) -> SimResult {
    run_baseline_with(bench, BaselineConfig::paper(node), budget)
}

/// Runs a baseline variant (used by the Figure 2 pipeline-loop study) at the
/// shared experiment seed.
pub fn run_baseline_with(bench: Benchmark, cfg: BaselineConfig, budget: SimBudget) -> SimResult {
    run_baseline_cfg(bench, EXPERIMENT_SEED, cfg, budget)
}

/// Runs a Flywheel configuration on `bench` at the shared experiment seed.
pub fn run_flywheel(bench: Benchmark, cfg: FlywheelConfig, budget: SimBudget) -> FlywheelResult {
    run_flywheel_cfg(bench, EXPERIMENT_SEED, cfg, budget)
}

/// Simulates one baseline-machine cell, bypassing every store. The single
/// choke point through which all baseline simulations run (and are counted).
fn simulate_baseline(
    bench: Benchmark,
    seed: u64,
    cfg: BaselineConfig,
    budget: SimBudget,
) -> SimResult {
    store::count_simulation();
    let trace = shared_trace(bench, seed, budget);
    // When a telemetry sink is installed, arm the thread-local recorder for
    // this cell, tagged with the same content address the store files the
    // cell under. Disarmed cost: one atomic load.
    let _telemetry = telemetry::arm_cell(|| {
        (
            store::baseline_key(&cfg, bench, seed, budget),
            store::cell_label("baseline", bench, seed),
        )
    });
    BaselineSim::new(cfg, trace.cursor()).run(budget)
}

/// Simulates one Flywheel-machine cell, bypassing every store.
fn simulate_flywheel(
    bench: Benchmark,
    seed: u64,
    cfg: FlywheelConfig,
    budget: SimBudget,
) -> FlywheelResult {
    store::count_simulation();
    let trace = shared_trace(bench, seed, budget);
    let _telemetry = telemetry::arm_cell(|| {
        (
            store::flywheel_key(&cfg, bench, seed, budget),
            store::cell_label("flywheel", bench, seed),
        )
    });
    FlywheelSim::new(cfg, trace.cursor()).run(budget)
}

/// Runs (or recalls) a baseline-machine cell at an explicit seed.
///
/// When a process-global [`store::ResultStore`] is installed (the binaries'
/// `--store` flag), the cell's content address is looked up first and a hit is
/// returned without simulating — the record round-trips bit-identically, so
/// callers cannot tell the difference.
pub fn run_baseline_cfg(
    bench: Benchmark,
    seed: u64,
    cfg: BaselineConfig,
    budget: SimBudget,
) -> SimResult {
    if store::global_store_installed() {
        let key = store::baseline_key(&cfg, bench, seed, budget);
        if let Some(hit) = store::global_get(&key) {
            return hit.sim;
        }
        let r = simulate_baseline(bench, seed, cfg, budget);
        let label = store::cell_label("baseline", bench, seed);
        store::global_put(key, &label, store::RunStats::from_baseline(r.clone()));
        return r;
    }
    simulate_baseline(bench, seed, cfg, budget)
}

/// Runs (or recalls) a Flywheel-machine cell at an explicit seed. See
/// [`run_baseline_cfg`] for the store semantics.
pub fn run_flywheel_cfg(
    bench: Benchmark,
    seed: u64,
    cfg: FlywheelConfig,
    budget: SimBudget,
) -> FlywheelResult {
    if store::global_store_installed() {
        let key = store::flywheel_key(&cfg, bench, seed, budget);
        if let Some(r) = store::global_get(&key).and_then(|s| s.to_flywheel_result()) {
            return r;
        }
        let r = simulate_flywheel(bench, seed, cfg, budget);
        let label = store::cell_label("flywheel", bench, seed);
        store::global_put(key, &label, store::RunStats::from_flywheel(&r));
        return r;
    }
    simulate_flywheel(bench, seed, cfg, budget)
}

/// One row of a per-benchmark, per-configuration result table.
#[derive(Debug, Clone)]
pub struct Row {
    /// Benchmark name (paper label).
    pub bench: &'static str,
    /// One value per swept configuration.
    pub values: Vec<f64>,
}

/// Renders a table of rows plus their average row, Figure-style, to a string.
///
/// This is the single formatting path for figure tables: both the
/// `experiments` binary and the scenario engine's figure presets render
/// through it, which is what makes their outputs byte-comparable.
pub fn format_table(title: &str, columns: &[String], rows: &[Row]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "\n== {title} ==");
    let _ = write!(out, "{:<10}", "bench");
    for c in columns {
        let _ = write!(out, " {c:>10}");
    }
    let _ = writeln!(out);
    let mut sums = vec![0.0; columns.len()];
    for row in rows {
        let _ = write!(out, "{:<10}", row.bench);
        for (i, v) in row.values.iter().enumerate() {
            sums[i] += v;
            let _ = write!(out, " {v:>10.3}");
        }
        let _ = writeln!(out);
    }
    let _ = write!(out, "{:<10}", "average");
    for s in &sums {
        let _ = write!(out, " {:>10.3}", s / rows.len() as f64);
    }
    let _ = writeln!(out);
    out
}

/// Prints a table of rows plus their geometric-mean/average row, Figure-style.
pub fn print_table(title: &str, columns: &[String], rows: &[Row]) {
    print!("{}", format_table(title, columns, rows));
}

/// Applies `f` to every item on a pool of scoped worker threads and returns the
/// results in input order.
///
/// Experiment cells — one (benchmark, configuration) simulation each — are
/// deterministic and fully independent, so the figure sweeps scale across
/// cores. Work is handed out through a shared atomic cursor, which balances the
/// load even though cell runtimes differ by benchmark.
///
/// The container has no access to crates.io (no rayon), so this is a small
/// hand-rolled scoped-thread fan-out; `FLYWHEEL_JOBS` caps the worker count
/// (default: all available cores).
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_jobs(items, worker_count(), f)
}

/// [`parallel_map`] with an explicit worker count instead of the
/// `FLYWHEEL_JOBS`/core-count default.
///
/// Exposed so the scenario engine (and the parallel-identity tests) can pin
/// the worker count without mutating process-wide environment variables.
pub fn parallel_map_jobs<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let results = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    local.push((i, f(item)));
                }
                results
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .extend(local);
            });
        }
    });
    let mut indexed = results.into_inner().unwrap_or_else(PoisonError::into_inner);
    indexed.sort_by_key(|&(i, _)| i);
    debug_assert_eq!(indexed.len(), items.len());
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// The number of sweep worker threads [`parallel_map`] uses: the `FLYWHEEL_JOBS`
/// override if set, otherwise all available cores.
pub fn worker_count() -> usize {
    std::env::var("FLYWHEEL_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Simulator throughput in simulated MIPS: how many millions of simulated
/// instructions the kernel retires per second of host wall-clock time.
pub fn simulated_mips(instructions: u64, wall: std::time::Duration) -> f64 {
    let secs = wall.as_secs_f64();
    if secs <= 0.0 {
        0.0
    } else {
        instructions as f64 / secs / 1e6
    }
}

/// The default budget used by the quick benches (kept small so `cargo bench`
/// finishes in minutes; EXPERIMENTS.md records runs with the larger budget).
pub fn bench_budget() -> SimBudget {
    SimBudget::new(10_000, 40_000)
}

/// The budget used by the `experiments` binary unless overridden on the command
/// line.
pub fn experiment_budget() -> SimBudget {
    SimBudget::new(50_000, 250_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_a_tiny_experiment_end_to_end() {
        let budget = SimBudget::new(1_000, 5_000);
        let base = run_baseline(Benchmark::Micro, TechNode::N130, budget);
        let fly = run_flywheel(
            Benchmark::Micro,
            FlywheelConfig::paper_iso_clock(TechNode::N130),
            budget,
        );
        assert_eq!(base.instructions, fly.sim.instructions);
        assert!(fly.speedup_over(&base) > 0.2);
    }

    #[test]
    fn shared_recorded_trace_matches_direct_generation() {
        // The cached RecordedTrace replay must be bit-identical to handing the
        // simulator a live TraceGenerator, and escalating the budget (which
        // re-records a longer capture) must not change earlier results.
        use flywheel_workloads::TraceGenerator;
        let budget = SimBudget::new(1_000, 5_000);
        let program = Benchmark::Micro.synthesize(EXPERIMENT_SEED);
        let direct = BaselineSim::new(
            BaselineConfig::paper(TechNode::N130),
            TraceGenerator::new(&program, EXPERIMENT_SEED),
        )
        .run(budget);
        let cached = run_baseline(Benchmark::Micro, TechNode::N130, budget);
        assert_eq!(direct, cached);
        // Grow the cached capture, then re-run the small budget.
        let _ = shared_trace(
            Benchmark::Micro,
            EXPERIMENT_SEED,
            SimBudget::new(2_000, 10_000),
        );
        assert_eq!(
            direct,
            run_baseline(Benchmark::Micro, TechNode::N130, budget)
        );
    }

    #[test]
    fn shared_workloads_are_cached() {
        let budget = SimBudget::new(500, 2_000);
        let p1 = shared_program(Benchmark::Micro, EXPERIMENT_SEED);
        let p2 = shared_program(Benchmark::Micro, EXPERIMENT_SEED);
        assert!(Arc::ptr_eq(&p1, &p2), "program must be synthesized once");
        let t1 = shared_trace(Benchmark::Micro, EXPERIMENT_SEED, budget);
        let t2 = shared_trace(Benchmark::Micro, EXPERIMENT_SEED, budget);
        assert!(Arc::ptr_eq(&t1, &t2), "trace must be recorded once");
        assert!(t1.len() >= RecordedTrace::capture_len_for(budget.total()));
    }

    #[test]
    fn parallel_map_matches_serial_map_in_order() {
        let items: Vec<u64> = (0..100).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        let parallel = parallel_map(&items, |&x| x * x + 1);
        assert_eq!(serial, parallel);
        assert!(parallel_map::<u64, u64, _>(&[], |&x| x).is_empty());
        assert_eq!(parallel_map(&[7u64], |&x| x + 1), vec![8]);
    }

    #[test]
    fn parallel_sweep_results_match_serial_results() {
        // The sweep cells must be bitwise independent of scheduling: the same
        // simulation run on a worker thread gives the same result as inline.
        let budget = SimBudget::new(1_000, 4_000);
        let cells: Vec<(Benchmark, u32)> = vec![(Benchmark::Micro, 0), (Benchmark::Micro, 50)];
        let parallel = parallel_map(&cells, |&(b, fe)| {
            run_flywheel(b, FlywheelConfig::paper(TechNode::N130, fe, 50), budget)
        });
        for (i, &(b, fe)) in cells.iter().enumerate() {
            let serial = run_flywheel(b, FlywheelConfig::paper(TechNode::N130, fe, 50), budget);
            assert_eq!(
                serial, parallel[i],
                "cell {b}/FE{fe} diverged across threads"
            );
        }
    }

    #[test]
    fn simulated_mips_is_sane() {
        let mips = simulated_mips(2_000_000, std::time::Duration::from_secs(1));
        assert!((mips - 2.0).abs() < 1e-9);
        assert_eq!(simulated_mips(1, std::time::Duration::ZERO), 0.0);
    }

    #[test]
    fn clock_sweep_matches_the_paper_axes() {
        assert_eq!(CLOCK_SWEEP.len(), 5);
        assert!(CLOCK_SWEEP.iter().all(|(_, be)| *be == 50));
        assert_eq!(CLOCK_SWEEP[0].0, 0);
        assert_eq!(CLOCK_SWEEP[4].0, 100);
    }
}
