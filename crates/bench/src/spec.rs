//! Textual scenario specs: a [`Scenario`] serialized as one line of
//! `key=value` fields, round-trippable byte-for-byte through
//! [`scenario_to_spec`]/[`scenario_from_spec`].
//!
//! This is the wire format of the supervision layer: the supervisor hands a
//! worker process its grid as a spec string (one argv token, no files to
//! clean up), and `flywheel-serve` accepts the same string as a `POST /sweep`
//! body. Keeping it a pure function of the scenario — stable field order,
//! defaults written out explicitly — means equal scenarios produce equal
//! spec strings, which the determinism tests lean on.
//!
//! Grammar: semicolon-separated `key=value` fields; list-valued fields use
//! commas between elements and `:` inside pairs.
//!
//! ```text
//! name=smoke;benches=gzip,ptrchase,ststorm;machines=baseline,flywheel;
//! nodes=130;clocks=0:50,50:50;baseline-clock=0:0;windows=64:64,128:128;
//! ec=64,128;mem=100;seeds=12022;warmup=2000;measured=8000
//! ```
//!
//! A spec of the form `preset=NAME` (optionally with `warmup=`/`measured=`
//! overrides) expands to the named [`Scenario`] preset instead, so callers
//! can say `preset=smoke` without spelling out the grid.

use crate::scenario::{Machine, Scenario};
use flywheel_timing::TechNode;
use flywheel_uarch::SimBudget;
use flywheel_workloads::Benchmark;

/// Why a [`Scenario`] could not be serialized into the spec grammar.
///
/// The grammar has no escaping: `;` separates fields, `=` separates key from
/// value, and the spec travels as one argv token / HTTP-body line. A
/// free-form value carrying one of those bytes would serialize into a string
/// that parses as a *different* scenario (or a parse error) — so
/// serialization refuses it instead of corrupting it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The value contains a character the grammar reserves: `;`, `=`, or a
    /// newline.
    ReservedChar {
        /// The scenario field holding the hostile value.
        field: &'static str,
        /// The reserved character found.
        ch: char,
        /// The offending value.
        value: String,
    },
    /// The value starts or ends with whitespace, which the parser trims —
    /// it would not survive a round-trip byte-for-byte.
    UntrimmedValue {
        /// The scenario field holding the value.
        field: &'static str,
        /// The offending value.
        value: String,
    },
    /// The seed axis repeats a seed. A duplicate would silently
    /// double-weight one program in every multi-seed aggregate, so the spec
    /// layer refuses to carry it.
    DuplicateSeed {
        /// The repeated seed.
        seed: u64,
    },
    /// The seed axis is not sorted ascending. The axis is a set; an
    /// order-dependent spelling would make equal scenarios serialize to
    /// different specs (and different content, under a careless reader).
    UnsortedSeeds {
        /// The seed appearing out of order.
        prev: u64,
        /// The smaller seed that follows it.
        next: u64,
    },
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::ReservedChar { field, ch, value } => write!(
                f,
                "scenario field '{field}' contains reserved character {ch:?} \
                 and cannot be serialized: {value:?}"
            ),
            SpecError::UntrimmedValue { field, value } => write!(
                f,
                "scenario field '{field}' has leading or trailing whitespace \
                 and would not round-trip: {value:?}"
            ),
            SpecError::DuplicateSeed { seed } => write!(
                f,
                "scenario field 'seeds' repeats seed {seed}; each seed may \
                 appear only once"
            ),
            SpecError::UnsortedSeeds { prev, next } => write!(
                f,
                "scenario field 'seeds' is not sorted ascending ({prev} \
                 before {next})"
            ),
        }
    }
}

impl std::error::Error for SpecError {}

/// Rejects free-form values the grammar cannot carry (see [`SpecError`]).
fn check_free_form(field: &'static str, value: &str) -> Result<(), SpecError> {
    if let Some(ch) = value.chars().find(|c| matches!(c, ';' | '=' | '\n' | '\r')) {
        return Err(SpecError::ReservedChar {
            field,
            ch,
            value: value.to_owned(),
        });
    }
    if value.trim() != value {
        return Err(SpecError::UntrimmedValue {
            field,
            value: value.to_owned(),
        });
    }
    Ok(())
}

/// Rejects seed axes the spec (and the scenario layer) refuses to carry:
/// duplicates and unsorted lists (see the [`SpecError`] variants).
pub fn check_seed_axis(seeds: &[u64]) -> Result<(), SpecError> {
    for pair in seeds.windows(2) {
        if pair[1] == pair[0] {
            return Err(SpecError::DuplicateSeed { seed: pair[0] });
        }
        if pair[1] < pair[0] {
            return Err(SpecError::UnsortedSeeds {
                prev: pair[0],
                next: pair[1],
            });
        }
    }
    Ok(())
}

/// Serializes `s` into the spec grammar. Stable field order and explicit
/// defaults: equal scenarios yield equal strings. Free-form fields (only the
/// name today) are checked against the grammar's reserved characters rather
/// than corrupted into it.
pub fn scenario_to_spec(s: &Scenario) -> Result<String, SpecError> {
    check_free_form("name", &s.name)?;
    check_seed_axis(&s.seeds)?;
    let join = |items: Vec<String>| items.join(",");
    let pairs = |ps: &[(u32, u32)]| join(ps.iter().map(|(a, b)| format!("{a}:{b}")).collect());
    Ok(format!(
        "name={};benches={};machines={};nodes={};clocks={};baseline-clock={}:{};windows={};ec={};mem={};seeds={};warmup={};measured={}",
        s.name,
        join(s.benchmarks.iter().map(|b| b.name().to_owned()).collect()),
        join(s.machines.iter().map(|m| m.name().to_owned()).collect()),
        join(s.nodes.iter().map(|n| n.feature_nm().to_string()).collect()),
        pairs(&s.clocks),
        s.baseline_clock.0,
        s.baseline_clock.1,
        pairs(&s.windows),
        join(s.ec_kb.iter().map(u64::to_string).collect()),
        join(s.mem_cycles.iter().map(u32::to_string).collect()),
        join(s.seeds.iter().map(u64::to_string).collect()),
        s.budget.warmup_instructions,
        s.budget.measured_instructions,
    ))
}

/// Expands a `preset=NAME` spec into the named [`Scenario`] preset.
fn preset(name: &str, budget: SimBudget) -> Result<Scenario, String> {
    Ok(match name {
        "smoke" => {
            let mut s = Scenario::smoke();
            s.budget = budget;
            s
        }
        "fig2" => Scenario::fig2(budget),
        "fig11" => Scenario::fig11(budget),
        "fig12" => Scenario::fig12(budget),
        "stress" => Scenario::stress(budget),
        "leakage" => Scenario::leakage(budget),
        "multidomain" => Scenario::multidomain(budget),
        "dvfs" => Scenario::dvfs(budget),
        other => return Err(format!("unknown scenario preset '{other}'")),
    })
}

fn parse_pair(field: &str, value: &str) -> Result<(u32, u32), String> {
    let (a, b) = value
        .split_once(':')
        .ok_or_else(|| format!("spec field '{field}': '{value}' is not A:B"))?;
    let parse = |v: &str| {
        v.parse::<u32>()
            .map_err(|_| format!("spec field '{field}': '{v}' is not a number"))
    };
    Ok((parse(a)?, parse(b)?))
}

fn parse_list<T>(
    field: &str,
    value: &str,
    mut one: impl FnMut(&str) -> Result<T, String>,
) -> Result<Vec<T>, String> {
    value
        .split(',')
        .filter(|v| !v.is_empty())
        .map(|v| one(v.trim()).map_err(|e| format!("spec field '{field}': {e}")))
        .collect()
}

/// Parses the spec grammar back into a [`Scenario`].
///
/// `preset=NAME` expands the named preset first; any further fields override
/// the preset's values. The result is validated ([`Scenario::validate`])
/// before it is returned, so a syntactically fine but empty-axis spec is
/// still rejected.
pub fn scenario_from_spec(spec: &str) -> Result<Scenario, String> {
    let fields: Vec<(&str, &str)> = spec
        .split(';')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|part| {
            part.split_once('=')
                .ok_or_else(|| format!("spec field '{part}' is not key=value"))
        })
        .collect::<Result<_, _>>()?;

    let mut warmup: Option<u64> = None;
    let mut measured: Option<u64> = None;
    for &(key, value) in &fields {
        let n = || {
            value
                .parse::<u64>()
                .map_err(|_| format!("spec field '{key}': '{value}' is not a number"))
        };
        match key {
            "warmup" => warmup = Some(n()?),
            "measured" => measured = Some(n()?),
            _ => {}
        }
    }
    let budget = SimBudget::new(warmup.unwrap_or(2_000), measured.unwrap_or(8_000));

    let mut scenario = match fields.iter().find(|(k, _)| *k == "preset") {
        Some(&(_, name)) => preset(name, budget)?,
        None => {
            let mut s = Scenario::new("spec", budget);
            s.budget = budget;
            s
        }
    };
    scenario.budget = budget;

    for (key, value) in fields {
        match key {
            "preset" | "warmup" | "measured" => {}
            "name" => scenario.name = value.to_owned(),
            "benches" | "benchmarks" => {
                scenario.benchmarks = parse_list(key, value, |v| {
                    Benchmark::from_name(v).ok_or_else(|| format!("unknown benchmark '{v}'"))
                })?;
            }
            "machines" => {
                scenario.machines = parse_list(key, value, |v| {
                    Machine::from_name(v).ok_or_else(|| format!("unknown machine '{v}'"))
                })?;
            }
            "nodes" => {
                scenario.nodes = parse_list(key, value, |v| {
                    let nm: u32 = v
                        .parse()
                        .map_err(|_| format!("'{v}' is not a feature size"))?;
                    TechNode::all()
                        .iter()
                        .copied()
                        .find(|n| n.feature_nm() == nm)
                        .ok_or_else(|| format!("no {nm} nm technology node"))
                })?;
            }
            "clocks" => {
                scenario.clocks = parse_list(key, value, |v| parse_pair(key, v))?;
            }
            "baseline-clock" | "baseline_clock" => {
                scenario.baseline_clock = parse_pair(key, value)?;
            }
            "windows" => {
                scenario.windows = parse_list(key, value, |v| parse_pair(key, v))?;
            }
            "ec" | "ec-kb" | "ec_kb" => {
                scenario.ec_kb = parse_list(key, value, |v| {
                    v.parse::<u64>()
                        .map_err(|_| format!("'{v}' is not a number"))
                })?;
            }
            "mem" | "mem-cycles" | "mem_cycles" => {
                scenario.mem_cycles = parse_list(key, value, |v| {
                    v.parse::<u32>()
                        .map_err(|_| format!("'{v}' is not a number"))
                })?;
            }
            "seeds" => {
                scenario.seeds = parse_list(key, value, |v| {
                    v.parse::<u64>()
                        .map_err(|_| format!("'{v}' is not a number"))
                })?;
                // Reject hostile seed lists at the parse site with the typed
                // error's wording (Scenario::validate backstops this too).
                check_seed_axis(&scenario.seeds).map_err(|e| e.to_string())?;
            }
            other => return Err(format!("unknown spec field '{other}'")),
        }
    }
    scenario.validate()?;
    Ok(scenario)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flywheel_workloads::Benchmark;

    fn axes(s: &Scenario) -> impl std::fmt::Debug + PartialEq + '_ {
        (
            &s.name,
            &s.benchmarks,
            &s.machines,
            &s.nodes,
            &s.clocks,
            s.baseline_clock,
            &s.windows,
            &s.ec_kb,
            &s.mem_cycles,
            &s.seeds,
            s.budget,
        )
    }

    #[test]
    fn every_preset_round_trips() {
        let budget = SimBudget::new(2_000, 8_000);
        for s in [
            Scenario::smoke(),
            Scenario::fig2(budget),
            Scenario::fig11(budget),
            Scenario::fig12(budget),
            Scenario::stress(budget),
            Scenario::leakage(budget),
            Scenario::multidomain(budget),
            Scenario::dvfs(budget),
        ] {
            let spec = scenario_to_spec(&s).unwrap();
            let back = scenario_from_spec(&spec).unwrap();
            assert_eq!(axes(&s), axes(&back), "spec '{spec}' must round-trip");
            assert_eq!(
                spec,
                scenario_to_spec(&back).unwrap(),
                "serialization must be stable"
            );
        }
    }

    #[test]
    fn preset_key_expands_with_overrides() {
        let smoke = Scenario::smoke();
        let s = scenario_from_spec("preset=smoke").unwrap();
        assert_eq!(axes(&s), axes(&smoke));

        let s = scenario_from_spec("preset=smoke;benches=micro;seeds=1,2").unwrap();
        assert_eq!(s.benchmarks, vec![Benchmark::Micro]);
        assert_eq!(s.seeds, vec![1, 2]);
        assert_eq!(
            s.clocks,
            Scenario::smoke().clocks,
            "unset axes keep preset values"
        );

        let s = scenario_from_spec("preset=smoke;warmup=100;measured=500").unwrap();
        assert_eq!(s.budget, SimBudget::new(100, 500));
    }

    /// Deterministic xorshift64 — the tests need many inputs, not true
    /// randomness, and the container has no property-testing crates.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }

        fn pick<T: Copy>(&mut self, items: &[T]) -> T {
            items[(self.next() % items.len() as u64) as usize]
        }
    }

    #[test]
    fn random_valid_names_round_trip() {
        const SAFE: &[char] = &[
            'a', 'b', 'z', 'A', 'Z', '0', '9', '-', '_', '.', '/', '+', '#', '!', '(', ')', ':',
            ',', '@',
        ];
        let mut rng = Rng(2005);
        for _ in 0..300 {
            let len = 1 + (rng.next() % 24) as usize;
            let name: String = (0..len).map(|_| rng.pick(SAFE)).collect();
            let mut s = Scenario::smoke();
            s.name = name.clone();
            let spec = scenario_to_spec(&s).unwrap_or_else(|e| panic!("{name:?}: {e}"));
            let back = scenario_from_spec(&spec).unwrap_or_else(|e| panic!("{spec:?}: {e}"));
            assert_eq!(back.name, name, "name must survive the round-trip");
            assert_eq!(axes(&s), axes(&back), "spec '{spec}' must round-trip");
        }
    }

    #[test]
    fn hostile_names_are_rejected_not_corrupted() {
        const HOSTILE: &[char] = &[';', '=', '\n', '\r'];
        let mut rng = Rng(1971);
        for _ in 0..300 {
            let len = 1 + (rng.next() % 12) as usize;
            let mut name: Vec<char> = (0..len).map(|_| rng.pick(&['a', 'b', 'c', '7'])).collect();
            let ch = rng.pick(HOSTILE);
            let at = (rng.next() % (len as u64 + 1)) as usize;
            name.insert(at, ch);
            let name: String = name.into_iter().collect();
            let mut s = Scenario::smoke();
            s.name = name.clone();
            match scenario_to_spec(&s) {
                Err(SpecError::ReservedChar {
                    field,
                    ch: found,
                    value,
                }) => {
                    assert_eq!(field, "name");
                    assert_eq!(found, ch);
                    assert_eq!(value, name);
                }
                other => panic!("{name:?} must be a ReservedChar error, got {other:?}"),
            }
        }
        // Edge whitespace is trimmed by the parser: reject, don't corrupt.
        for name in [" x", "x ", "\tx", "x\t", " "] {
            let mut s = Scenario::smoke();
            s.name = name.to_owned();
            assert!(
                matches!(
                    scenario_to_spec(&s),
                    Err(SpecError::UntrimmedValue { field: "name", .. })
                ),
                "{name:?} must be an UntrimmedValue error"
            );
        }
    }

    #[test]
    fn random_sorted_seed_axes_round_trip() {
        let mut rng = Rng(0x5eed_11f7);
        for _ in 0..300 {
            // Build a strictly increasing seed list of 1..=8 entries.
            let len = 1 + (rng.next() % 8) as usize;
            let mut seeds = Vec::with_capacity(len);
            let mut next = rng.next() % 1_000;
            for _ in 0..len {
                seeds.push(next);
                next += 1 + rng.next() % 500;
            }
            let mut s = Scenario::smoke();
            s.seeds = seeds.clone();
            let spec = scenario_to_spec(&s).unwrap_or_else(|e| panic!("{seeds:?}: {e}"));
            let back = scenario_from_spec(&spec).unwrap_or_else(|e| panic!("{spec:?}: {e}"));
            assert_eq!(back.seeds, seeds, "seed axis must survive the round-trip");
        }
    }

    #[test]
    fn hostile_seed_axes_are_rejected_with_typed_errors() {
        let mut rng = Rng(0xbad_5eed5);
        for _ in 0..300 {
            let len = 2 + (rng.next() % 6) as usize;
            let mut seeds: Vec<u64> = Vec::with_capacity(len);
            let mut next = rng.next() % 1_000;
            for _ in 0..len {
                seeds.push(next);
                next += 1 + rng.next() % 500;
            }
            let mut s = Scenario::smoke();
            if rng.next().is_multiple_of(2) {
                // Duplicate one seed in place.
                let at = (rng.next() % (len as u64 - 1)) as usize;
                let dup = seeds[at];
                seeds.insert(at, dup);
                s.seeds = seeds;
                match scenario_to_spec(&s) {
                    Err(SpecError::DuplicateSeed { seed }) => assert_eq!(seed, dup),
                    other => panic!("duplicate {dup} must be typed, got {other:?}"),
                }
            } else {
                // Swap an adjacent pair out of order.
                let at = (rng.next() % (len as u64 - 1)) as usize;
                seeds.swap(at, at + 1);
                let (prev, next_s) = (seeds[at], seeds[at + 1]);
                s.seeds = seeds;
                match scenario_to_spec(&s) {
                    Err(SpecError::UnsortedSeeds { prev: p, next: n }) => {
                        // The first out-of-order adjacent pair is reported;
                        // for a single swap that is the swapped pair.
                        assert!(p > n, "reported pair must be inverted");
                        let _ = (prev, next_s);
                    }
                    other => panic!("unsorted list must be typed, got {other:?}"),
                }
            }
        }
        // The parser rejects the same lists with the same wording.
        let err = scenario_from_spec("preset=smoke;seeds=5,5").unwrap_err();
        assert!(err.contains("repeats seed 5"), "got: {err}");
        let err = scenario_from_spec("preset=smoke;seeds=9,4").unwrap_err();
        assert!(err.contains("not sorted ascending"), "got: {err}");
    }

    #[test]
    fn every_registered_family_name_round_trips_through_a_spec() {
        // The machines axis is registry-driven: a family registered in
        // `crate::executor` is spellable in a spec with zero parser edits,
        // and an unregistered name stays a typed error (see
        // `bad_specs_are_rejected_with_context`). Pin both the full list and
        // each name individually, so a registry rename breaks here first.
        let names: Vec<&str> = Machine::all().iter().map(|m| m.name()).collect();
        assert!(names.contains(&"multidomain") && names.contains(&"dvfs"));
        let mut s = Scenario::smoke();
        s.machines = Machine::all().to_vec();
        let spec = scenario_to_spec(&s).expect("all families must serialize");
        assert!(spec.contains(&format!("machines={}", names.join(","))));
        let back = scenario_from_spec(&spec).expect("all families must parse back");
        assert_eq!(back.machines, s.machines, "machines axis must round-trip");
        for name in names {
            let one = scenario_from_spec(&format!("name=x;machines={name}"))
                .unwrap_or_else(|e| panic!("machines={name}: {e}"));
            assert_eq!(one.machines, vec![Machine::from_name(name).unwrap()]);
        }
    }

    #[test]
    fn bad_specs_are_rejected_with_context() {
        for (spec, needle) in [
            ("preset=bogus", "unknown scenario preset"),
            ("name=x;benches=nosuch", "unknown benchmark"),
            ("machines=nosuch", "unknown machine"),
            ("nodes=131", "no 131 nm technology node"),
            ("clocks=50", "not A:B"),
            ("warmup=abc", "not a number"),
            ("frobnicate=1", "unknown spec field"),
            ("novalue", "not key=value"),
            ("name=x;benches=,", "axis 'benchmarks' is empty"),
        ] {
            let err = scenario_from_spec(spec).expect_err(spec);
            assert!(
                err.contains(needle),
                "'{spec}' should fail with '{needle}', got '{err}'"
            );
        }
    }
}
