//! Runs declarative scenario grids: figure presets, stress sweeps, or fully
//! custom axis products.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p flywheel-bench --bin scenarios -- <preset> [options]
//! cargo run --release -p flywheel-bench --bin scenarios -- custom [axes] [options]
//! ```
//!
//! Presets: `fig2`, `fig11`, `fig12` (tables byte-identical to the
//! `experiments` binary at the same budget), `smoke` (the CI grid), `stress`
//! (the stress-workload family over three config axes), `leakage` (technology
//! node x machine x Execution Cache capacity, the attributed-leakage sweep),
//! `multidomain` (the baseline against the LSQ-in-its-own-clock-domain
//! machine) and `dvfs` (the Flywheel against its governed-clock variant).
//!
//! `scenarios list-machines [--names]` prints the registered machine
//! families: name, power-model kind, which axes each family sweeps, its
//! preset tags and a one-line summary. `--names` emits bare names, one per
//! line, for shell iteration (the CI pluggability gate loops over it).
//!
//! Axes (comma-separated lists; `custom` starts from the paper's single-point
//! defaults):
//!
//! ```text
//! --benches gzip,ptrchase   --machines baseline,flywheel,regalloc
//! --nodes 130,90            --clocks 0:50,50:50      (FE%:BE%)
//! --windows 64:64,128:128   (IW:ROB)                 --ec 64,128  (KiB)
//! --mem 100,300             (baseline cycles)        --seeds 2005,7
//! ```
//!
//! Options: `--insts N` (measured instructions per cell with N/10 warm-up on
//! top, matching the `experiments` binary's budget argument — applies to every
//! preset, including `smoke`), `--check` (assert the machine invariants on
//! every cell), `--json PATH`, `--csv PATH`, `--store PATH` (memoize cells in
//! a persistent content-addressed result store: cells already present are
//! recalled bit-identically instead of simulated, so warm re-runs simulate
//! nothing and edited scenarios only simulate the cells they changed),
//! `--faults SPEC` (install a deterministic fault-injection plan, e.g.
//! `seed=7,panic=2,torn=3` — see `flywheel_bench::fault`), `--telemetry PATH`
//! (arm the in-kernel telemetry queue and drain it into a CRC-framed,
//! content-addressed event log at PATH; off by default, and a disarmed run is
//! byte-identical to one built without the flag).
//!
//! A panicking or runaway cell no longer aborts the sweep: it is retried a
//! bounded number of times and, if it keeps failing, reported in a
//! degraded-mode completion summary (and in the JSON/CSV failed-cell
//! manifest) while every other cell's results stand.
//!
//! `scenarios fsck [--store PATH]` verifies a result store and repairs any
//! damage (torn appends, flipped bits, previous-schema files): valid records
//! are kept, damaged lines are quarantined to `<store>.quarantine`, and a
//! one-line summary is printed. A clean store is left byte-untouched.
//!
//! `scenarios fsck-events <path>` verifies a telemetry event log: the schema
//! header and every CRC32 frame are checked and a one-line summary (event,
//! dropped and damaged-line counts) is printed; damage exits non-zero.
//!
//! `scenarios merge <A> <B> [--out C]` unions result stores: without `--out`,
//! B's records are appended into A; with it, A then B are merged into C and
//! the inputs are untouched. A same-key/different-stats conflict refuses the
//! merge with a per-key report and a non-zero exit.
//!
//! `scenarios sweep <preset|--spec SPEC> --store PATH [--shards N]` runs the
//! grid as a *supervised multi-process* sweep: N worker processes each sweep
//! a disjoint shard of cells into `<store>.shard-K`, heartbeating to status
//! files; the supervisor restarts crashed or stalled workers with capped
//! exponential backoff (restarted workers re-run only the cells their dead
//! predecessor never landed), then merges the shards into the main store.
//! A shard that exhausts its restart budget degrades the sweep to a
//! failed-cell manifest instead of aborting it. Knobs: `--max-restarts N`,
//! `--backoff-ms N`, `--stall-timeout-ms N`, `--deadline-ms N`,
//! `--status-dir D`, `--faults SPEC` (cell faults run inside workers;
//! `abort=`/`sigkill=`/`hang=` doom whole worker processes).
//!
//! `scenarios search [--objective max|min|both] [--seed S] [--generations G]
//! [--population P] [--children C] [--insts N] [--top K] [--store PATH]` runs
//! the deterministic adversarial workload search (see
//! `flywheel_bench::search`): an evolutionary loop over the stress-family
//! generator knobs that maximizes (`max`) or minimizes (`min`) the
//! Flywheel-vs-baseline speedup, printing the ranked frontier(s) and a
//! `frontier hash:` digest over the combined rendering. The hash is
//! byte-stable for a fixed seed, warm or cold — CI re-runs the search and
//! compares digests. With `--store`, evaluation legs are memoized in the
//! content-addressed result store, so repeated or widened searches only pay
//! for candidates they have not seen.
//!
//! Single-process sweeps fan out across all cores (`FLYWHEEL_JOBS` caps the
//! workers); results are byte-identical for any worker count.

use flywheel_bench::scenario::{Machine, Scenario};
use flywheel_bench::store::{MergeError, ResultStore};
use flywheel_bench::supervisor::{self, SupervisorConfig};
use flywheel_bench::{experiment_budget, fault, search, simulated_mips, spec, worker_count};
use flywheel_timing::TechNode;
use flywheel_uarch::SimBudget;
use flywheel_workloads::Benchmark;
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!(
        "usage: scenarios <fig2|fig11|fig12|smoke|stress|leakage|multidomain|dvfs|custom> \
         [--benches a,b] [--machines m,..] [--nodes 130,..] [--clocks FE:BE,..] \
         [--windows IW:ROB,..] [--ec KB,..] [--mem CYC,..] [--seeds S,..] \
         [--insts N] [--check] [--json PATH] [--csv PATH] [--store PATH] \
         [--faults SPEC] [--telemetry PATH]\
         \n       scenarios list-machines [--names]\n       scenarios fsck [--store PATH]\
         \n       scenarios fsck-events <path>\
         \n       scenarios merge <A> <B> [--out C]\
         \n       scenarios sweep <preset|--spec SPEC> [--store PATH] [--shards N] \
         [--insts N] [--max-restarts N] [--backoff-ms N] [--stall-timeout-ms N] \
         [--deadline-ms N] [--status-dir D] [--faults SPEC] [--telemetry PATH]\
         \n       scenarios search [--objective max|min|both] [--seed S] \
         [--generations G] [--population P] [--children C] [--insts N] \
         [--top K] [--store PATH]"
    );
    std::process::exit(1);
}

/// `scenarios list-machines [--names]`: print the registered machine
/// families. The default rendering is a human-readable table; `--names`
/// emits bare family names one per line so shell loops (notably the CI
/// pluggability gate) can iterate the registry without parsing.
fn list_machines(args: &[String]) -> ! {
    let mut names_only = false;
    for arg in args {
        match arg.as_str() {
            "--names" => names_only = true,
            _ => usage(),
        }
    }
    if names_only {
        for m in Machine::all() {
            println!("{}", m.name());
        }
        std::process::exit(0);
    }
    println!("{} registered machine families:", Machine::all().len());
    for m in Machine::all() {
        let f = m.family();
        let axes = match (f.uses_clock_axis, f.uses_ec_axis) {
            (true, true) => "clock+ec axes",
            (true, false) => "clock axis",
            (false, true) => "ec axis",
            (false, false) => "no swept axes",
        };
        println!(
            "  {:<22} kind={:<8?} {:<14} presets={:<28} {}",
            f.name,
            f.kind,
            axes,
            f.presets.join(","),
            f.summary,
        );
    }
    std::process::exit(0);
}

/// `scenarios merge <A> <B> [--out C]`: union stores, refuse conflicts with a
/// per-key report and exit 2.
fn merge_cmd(args: &[String]) -> ! {
    let mut inputs: Vec<String> = Vec::new();
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out = Some(it.next().cloned().unwrap_or_else(|| usage())),
            other if !other.starts_with('-') => inputs.push(other.to_owned()),
            _ => usage(),
        }
    }
    let [a, b] = inputs.as_slice() else { usage() };
    let open = |path: &str| {
        ResultStore::open(path).unwrap_or_else(|e| {
            eprintln!("merge: cannot open {path}: {e}");
            std::process::exit(1);
        })
    };
    // Without --out, B merges into A in place; with it, A then B merge into
    // a (possibly fresh) C and the inputs stay untouched.
    let (mut target, target_path, sources) = match &out {
        None => (open(a), a.clone(), vec![b.clone()]),
        Some(c) => (open(c), c.clone(), vec![a.clone(), b.clone()]),
    };
    for source in &sources {
        match target.merge(&open(source)) {
            Ok(outcome) => println!(
                "merged {source} into {target_path}: {} added, {} identical",
                outcome.added, outcome.identical
            ),
            Err(MergeError::Conflict { conflicts }) => {
                eprintln!(
                    "merge conflict: {} key(s) exist in both {target_path} and {source} \
                     with different stats; nothing was merged:",
                    conflicts.len()
                );
                for c in &conflicts {
                    eprintln!("  {} ('{}')", c.key.hex(), c.label);
                }
                std::process::exit(2);
            }
            Err(e) => {
                eprintln!("merge failed: {e}");
                std::process::exit(1);
            }
        }
    }
    println!("{target_path}: {} records total", target.len());
    std::process::exit(0);
}

/// `scenarios sweep ...`: run a grid as a supervised multi-process sharded
/// sweep (see the module docs).
fn sweep_cmd(args: &[String]) -> ! {
    let mut spec_arg: Option<String> = None;
    let mut preset: Option<String> = None;
    let mut store_path = "results.store".to_owned();
    let mut shards: Option<usize> = None;
    let mut insts: Option<u64> = None;
    let mut faults_spec: Option<String> = None;
    let mut telemetry_path: Option<String> = None;
    let mut status_dir: Option<String> = None;
    let mut max_restarts: Option<u32> = None;
    let mut backoff_ms: Option<u64> = None;
    let mut stall_timeout_ms: Option<u64> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || it.next().cloned().unwrap_or_else(|| usage());
        let num = |value: String| -> u64 { value.parse().unwrap_or_else(|_| usage()) };
        match arg.as_str() {
            "--spec" => spec_arg = Some(value()),
            "--store" => store_path = value(),
            "--shards" => shards = Some(num(value()) as usize),
            "--insts" => insts = Some(num(value())),
            "--faults" => faults_spec = Some(value()),
            "--telemetry" => telemetry_path = Some(value()),
            "--status-dir" => status_dir = Some(value()),
            "--max-restarts" => max_restarts = Some(num(value()) as u32),
            "--backoff-ms" => backoff_ms = Some(num(value())),
            "--stall-timeout-ms" => stall_timeout_ms = Some(num(value())),
            "--deadline-ms" => deadline_ms = Some(num(value())),
            other if !other.starts_with('-') && preset.is_none() => preset = Some(other.to_owned()),
            _ => usage(),
        }
    }
    let spec_text = match (&spec_arg, &preset) {
        (Some(s), None) => s.clone(),
        (None, Some(p)) => format!("preset={p}"),
        _ => usage(),
    };
    let mut scenario = spec::scenario_from_spec(&spec_text).unwrap_or_else(|e| {
        eprintln!("sweep: invalid spec: {e}");
        std::process::exit(1);
    });
    if let Some(n) = insts {
        scenario.budget = SimBudget::new(n / 10, n);
    }

    let faults = match &faults_spec {
        Some(s) => match fault::FaultPlan::parse(s) {
            Ok(plan) => {
                println!("fault injection enabled: {plan:?}");
                Some(plan)
            }
            Err(e) => {
                eprintln!("invalid --faults spec: {e}");
                std::process::exit(1);
            }
        },
        None => None,
    };

    let worker_exe = std::env::current_exe().unwrap_or_else(|e| {
        eprintln!("sweep: cannot determine worker executable: {e}");
        std::process::exit(1);
    });
    let status_dir =
        std::path::PathBuf::from(status_dir.unwrap_or_else(|| format!("{store_path}.status")));
    let shard_count = shards.unwrap_or_else(|| worker_count().clamp(1, 8));
    let mut cfg = SupervisorConfig::new(shard_count, worker_exe, status_dir);
    cfg.faults = faults;
    cfg.telemetry = telemetry_path.as_ref().map(std::path::PathBuf::from);
    if let Some(n) = max_restarts {
        cfg.max_restarts = n;
    }
    if let Some(n) = backoff_ms {
        cfg.backoff = Duration::from_millis(n);
    }
    if let Some(n) = stall_timeout_ms {
        cfg.stall_timeout = Duration::from_millis(n);
    }
    if let Some(n) = deadline_ms {
        cfg.shard_deadline = Duration::from_millis(n);
    }

    println!(
        "supervised sweep '{}': {} cells across {} shard workers into {store_path}",
        scenario.name,
        scenario.cell_count(),
        cfg.shards,
    );
    let start = Instant::now();
    let outcome =
        supervisor::run_supervised(&scenario, std::path::Path::new(&store_path), &cfg, |e| {
            println!("  {}", e.describe())
        })
        .unwrap_or_else(|e| {
            eprintln!("sweep failed: {e}");
            std::process::exit(1);
        });
    println!(
        "sweep done in {:.2} s: {} cells ({} warm, {} healed from shard stores, {} simulated), \
         {} restart{}",
        start.elapsed().as_secs_f64(),
        outcome.cells,
        outcome.warm_cells,
        outcome.hits,
        outcome.simulated,
        outcome.restarts,
        if outcome.restarts == 1 { "" } else { "s" },
    );
    if let Some(path) = &telemetry_path {
        match flywheel_bench::telemetry::TelemetryLog::read(std::path::Path::new(path)) {
            Ok(log) => println!("telemetry {path}: {}", log.describe()),
            Err(e) => println!("telemetry {path}: {e}"),
        }
    }
    if outcome.is_complete() {
        println!("complete: every cell has a record in {store_path}");
    } else {
        println!(
            "degraded-mode completion: {} of {} cells failed; sweep continued without them",
            outcome.failed_cells.len(),
            outcome.cells
        );
        for shard in &outcome.failed_shards {
            println!("  shard {shard}: restart budget exhausted");
        }
        for f in &outcome.failed_cells {
            println!("  failed cell {} [{}]: {}", f.label, f.kind, f.message);
        }
    }
    std::process::exit(0);
}

/// `scenarios fsck-events <path>`: verify a telemetry event log's schema
/// header and CRC framing, print a one-line summary, exit non-zero on damage.
fn fsck_events(args: &[String]) -> ! {
    let mut path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--log" => path = Some(it.next().cloned().unwrap_or_else(|| usage())),
            other if !other.starts_with('-') => path = Some(other.to_owned()),
            _ => usage(),
        }
    }
    let Some(path) = path else { usage() };
    match flywheel_bench::telemetry::TelemetryLog::read(std::path::Path::new(&path)) {
        Ok(log) => {
            println!("fsck-events {path}: {}", log.describe());
            std::process::exit(if log.is_clean() { 0 } else { 2 });
        }
        Err(e) => {
            eprintln!("fsck-events {path}: {e}");
            std::process::exit(1);
        }
    }
}

/// `scenarios fsck [--store PATH]`: verify/repair a store, print a summary.
fn fsck(args: &[String]) -> ! {
    let mut store_path = "results.store".to_owned();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--store" => store_path = it.next().cloned().unwrap_or_else(|| usage()),
            other if !other.starts_with('-') => store_path = other.to_owned(),
            _ => usage(),
        }
    }
    match ResultStore::open_recovering(&store_path) {
        Ok((_, report)) => {
            println!("fsck {store_path}: {}", report.describe());
            if report.quarantined_lines > 0 {
                println!("  damaged lines preserved in {store_path}.quarantine");
            }
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("fsck {store_path}: {e}");
            std::process::exit(1);
        }
    }
}

/// `scenarios search ...`: run the deterministic adversarial workload search
/// and print the ranked frontier(s) plus a byte-stable digest.
fn search_cmd(args: &[String]) -> ! {
    let mut objectives = vec![
        search::Objective::MaximizeGap,
        search::Objective::MinimizeGap,
    ];
    let mut cfg = search::SearchConfig::default();
    let mut store_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || it.next().cloned().unwrap_or_else(|| usage());
        let parse_u64 = |s: String| s.parse::<u64>().unwrap_or_else(|_| usage());
        match arg.as_str() {
            "--objective" => {
                objectives = match value().as_str() {
                    "both" => {
                        vec![
                            search::Objective::MaximizeGap,
                            search::Objective::MinimizeGap,
                        ]
                    }
                    name => vec![search::Objective::from_name(name).unwrap_or_else(|| usage())],
                }
            }
            "--seed" => cfg.seed = parse_u64(value()),
            "--generations" => cfg.generations = parse_u64(value()) as u32,
            "--population" => cfg.population = parse_u64(value()).max(1) as usize,
            "--children" => cfg.children_per_parent = parse_u64(value()).max(1) as usize,
            "--insts" => {
                let n = parse_u64(value());
                cfg.budget = SimBudget::new(n / 10, n);
            }
            "--top" => cfg.top = parse_u64(value()).max(1) as usize,
            "--store" => store_path = Some(value()),
            _ => usage(),
        }
    }

    let mut store = match &store_path {
        Some(path) => ResultStore::open(path).unwrap_or_else(|e| {
            eprintln!("could not open result store {path}: {e}");
            std::process::exit(1);
        }),
        None => ResultStore::in_memory(),
    };

    let start = Instant::now();
    let mut rendered = String::new();
    let mut outcomes = Vec::new();
    for objective in &objectives {
        let outcome = search::run_search(*objective, &cfg, &mut store);
        rendered.push_str(&search::render_frontier(&outcome));
        outcomes.push(outcome);
    }
    let simulated: usize = outcomes.iter().map(|o| o.simulated).sum();
    let recalled: usize = outcomes.iter().map(|o| o.recalled).sum();
    print!("{rendered}");
    println!("frontier hash: {}", search::frontier_hash(&rendered));
    // Promotion hints: the full parameter vector of each frontier head, for
    // freezing a discovered extreme into a named benchmark constructor.
    for outcome in &outcomes {
        if let Some(best) = outcome.frontier.first() {
            println!(
                "top {}-gap profile: {:?}",
                outcome.objective.name(),
                best.profile
            );
        }
    }
    println!(
        "search seed {}: {} legs simulated, {} recalled in {:.2} s",
        cfg.seed,
        simulated,
        recalled,
        start.elapsed().as_secs_f64()
    );
    if let Some(path) = &store_path {
        println!("store {path}: {} records total", store.len());
    }
    std::process::exit(0);
}

fn parse_list<T>(arg: &str, what: &str, parse: impl Fn(&str) -> Option<T>) -> Vec<T> {
    let items: Vec<T> = arg
        .split(',')
        .filter(|s| !s.is_empty())
        .filter_map(|s| {
            let v = parse(s);
            if v.is_none() {
                eprintln!("unknown {what} '{s}'");
                std::process::exit(1);
            }
            v
        })
        .collect();
    if items.is_empty() {
        eprintln!("empty {what} list '{arg}'");
        std::process::exit(1);
    }
    items
}

fn parse_pair(s: &str) -> Option<(u32, u32)> {
    let (a, b) = s.split_once(':')?;
    Some((a.parse().ok()?, b.parse().ok()?))
}

fn parse_node(s: &str) -> Option<TechNode> {
    TechNode::all()
        .iter()
        .copied()
        .find(|n| n.feature_nm().to_string() == s)
}

fn main() {
    // When spawned as a supervised shard worker, run the shard and exit.
    supervisor::maybe_run_shard_worker();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(which) = args.first() else { usage() };
    if which == "list-machines" {
        list_machines(&args[1..]);
    }
    if which == "fsck" {
        fsck(&args[1..]);
    }
    if which == "fsck-events" {
        fsck_events(&args[1..]);
    }
    if which == "merge" {
        merge_cmd(&args[1..]);
    }
    if which == "sweep" {
        sweep_cmd(&args[1..]);
    }
    if which == "search" {
        search_cmd(&args[1..]);
    }

    // Scan for --insts first: presets embed the budget at construction.
    let mut insts_override: Option<u64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--insts" {
            let n: u64 = it
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage());
            insts_override = Some(n);
        }
    }
    let budget = insts_override
        .map(|n| SimBudget::new(n / 10, n))
        .unwrap_or_else(experiment_budget);

    let mut scenario = match which.as_str() {
        "fig2" => Scenario::fig2(budget),
        "fig11" => Scenario::fig11(budget),
        "fig12" => Scenario::fig12(budget),
        "smoke" => {
            let mut s = Scenario::smoke();
            // The smoke preset keeps its own tiny default budget but still
            // honours an explicit --insts.
            if insts_override.is_some() {
                s.budget = budget;
            }
            s
        }
        "stress" => Scenario::stress(budget),
        "leakage" => Scenario::leakage(budget),
        "multidomain" => Scenario::multidomain(budget),
        "dvfs" => Scenario::dvfs(budget),
        "custom" => Scenario::new("custom", budget),
        _ => usage(),
    };

    let mut check = false;
    let mut json_path: Option<String> = None;
    let mut csv_path: Option<String> = None;
    let mut store_path: Option<String> = None;
    let mut faults_spec: Option<String> = None;
    let mut telemetry_path: Option<String> = None;
    let mut it = args.iter().skip(1);
    while let Some(arg) = it.next() {
        let mut value = || it.next().map(String::as_str).unwrap_or_else(|| usage());
        match arg.as_str() {
            "--benches" => {
                scenario.benchmarks = parse_list(value(), "benchmark", Benchmark::from_name)
            }
            "--machines" => scenario.machines = parse_list(value(), "machine", Machine::from_name),
            "--nodes" => scenario.nodes = parse_list(value(), "node", parse_node),
            "--clocks" => scenario.clocks = parse_list(value(), "clock pair", parse_pair),
            "--windows" => scenario.windows = parse_list(value(), "window pair", parse_pair),
            "--ec" => scenario.ec_kb = parse_list(value(), "EC size", |s| s.parse().ok()),
            "--mem" => {
                scenario.mem_cycles = parse_list(value(), "memory latency", |s| s.parse().ok())
            }
            "--seeds" => scenario.seeds = parse_list(value(), "seed", |s| s.parse().ok()),
            "--insts" => {
                let _ = value(); // already applied above
            }
            "--check" => check = true,
            "--json" => json_path = Some(value().to_owned()),
            "--csv" => csv_path = Some(value().to_owned()),
            "--store" => store_path = Some(value().to_owned()),
            "--faults" => faults_spec = Some(value().to_owned()),
            "--telemetry" => telemetry_path = Some(value().to_owned()),
            _ => usage(),
        }
    }

    if let Err(e) = scenario.validate() {
        eprintln!("invalid scenario: {e}");
        std::process::exit(1);
    }

    if let Some(spec) = &faults_spec {
        match fault::FaultPlan::parse(spec) {
            Ok(plan) => {
                println!("fault injection enabled: {plan:?}");
                fault::install(plan);
            }
            Err(e) => {
                eprintln!("invalid --faults spec: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(path) = &telemetry_path {
        let interval = flywheel_uarch::telemetry::DEFAULT_SAMPLE_INTERVAL;
        if let Err(e) = flywheel_bench::telemetry::install_global_telemetry(
            std::path::Path::new(path),
            interval,
        ) {
            eprintln!("could not install telemetry sink at {path}: {e}");
            std::process::exit(1);
        }
        println!("telemetry armed: event log {path} (sample interval {interval} cycles)");
    }

    let cell_count = scenario.cell_count();
    println!(
        "scenario '{}': {} cells x {} instructions on {} workers",
        scenario.name,
        cell_count,
        scenario.budget.total(),
        worker_count().min(cell_count.max(1)),
    );
    let start = Instant::now();
    let (run, summary) = match &store_path {
        Some(path) => {
            let mut store = flywheel_bench::store::ResultStore::open(path).unwrap_or_else(|e| {
                eprintln!("could not open result store {path}: {e}");
                std::process::exit(1);
            });
            let (run, summary) = scenario.run_with_store(&mut store);
            (run, Some((summary, store.len())))
        }
        None => (scenario.run(), None),
    };
    let wall = start.elapsed();
    let insts = scenario.simulated_instructions();
    println!(
        "[{}] {:.2} s wall, {} simulated instructions, {:.2} MIPS",
        scenario.name,
        wall.as_secs_f64(),
        insts,
        simulated_mips(insts, wall)
    );
    if let (Some(path), Some((summary, total))) = (&store_path, &summary) {
        println!(
            "store {path}: {} cells recalled, {} simulated, {} records total",
            summary.hits, summary.simulated, total
        );
    }
    if run.is_degraded() {
        println!(
            "degraded-mode completion: {} of {} cells failed; sweep continued without them",
            run.failed.len(),
            run.attempted()
        );
        for f in &run.failed {
            println!(
                "  failed cell {} [{}] after {} attempt{}: {}",
                f.cell.label(),
                f.cause.kind(),
                f.attempts,
                if f.attempts == 1 { "" } else { "s" },
                f.cause.message()
            );
        }
    }

    let table = match scenario.name.as_str() {
        "fig2" => Some(run.fig2_table()),
        "fig11" => Some(run.fig11_table()),
        "fig12" => Some(run.fig12_table()),
        _ => None,
    };
    match table {
        Some(Ok(t)) => print!("{t}"),
        // Axis overrides can strip cells a figure needs or move it off the
        // paper configuration; the run (and any requested artifacts) still
        // stand, only the figure table is refused.
        Some(Err(e)) => eprintln!("cannot render the figure table: {e}"),
        None => {}
    }

    // Artifacts are written before the invariant gate so a failing grid still
    // leaves its data behind for inspection.
    if let Some(path) = &csv_path {
        std::fs::write(path, run.to_csv()).unwrap_or_else(|e| {
            eprintln!("could not write {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote {path}");
    }
    if let Some(path) = &json_path {
        std::fs::write(path, run.to_json()).unwrap_or_else(|e| {
            eprintln!("could not write {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote {path}");
    }

    // The emitters above query live per-cell counts, so the sink is torn down
    // only after every artifact is on disk.
    if telemetry_path.is_some() {
        if let Some(summary) = flywheel_bench::telemetry::finish_global_telemetry() {
            println!(
                "telemetry: {} events logged to {}, {} dropped",
                summary.events,
                summary.path.display(),
                summary.dropped
            );
        }
    }

    if check {
        match run.check_invariants() {
            Ok(()) => println!(
                "invariants: all {} cells passed (retired budget, energy accounting, \
                 machine-aware leakage attribution, counter sanity, machine-specific stats)",
                run.cells.len()
            ),
            Err(e) => {
                eprintln!("invariant violation: {e}");
                std::process::exit(1);
            }
        }
    }
}
