//! Dumps a deterministic digest of simulation results across a matrix of
//! machines, benchmarks, and clock plans.
//!
//! Usage: `cargo run --release -p flywheel-bench --bin golden [> golden.txt]`
//!
//! Every line is the full Debug of one `SimResult`/`FlywheelResult` over the
//! seven original benchmarks, the four stress workloads and the two promoted
//! adversarial extremes (169 runs total: 117 for the five original machines,
//! then 52 for the multi-domain and DVFS families appended by PR 10 —
//! extending the digest appends lines, it never rewrites the existing ones).
//! Capturing
//! this output before and after a kernel refactor and diffing the two files
//! proves bit-identical simulation behaviour (the hot-path rework of the
//! in-flight table was validated this way; the recorded-trace subsystem was
//! proven against live generation the same way). CI re-runs this binary and
//! diffs it against the committed `golden.txt`, so bit-identity is enforced
//! continuously, not only during refactors.
//!
//! All nine configurations of a benchmark replay the same shared
//! [`flywheel_workloads::RecordedTrace`] through cheap cursors — the digest
//! thereby also certifies that recorded replay is equivalent to generating the
//! trace per run.

use flywheel_bench::shared_trace;
use flywheel_core::{DvfsConfig, FlywheelConfig, FlywheelSim};
use flywheel_timing::TechNode;
use flywheel_uarch::{BaselineConfig, BaselineSim, MultiDomainConfig, SimBudget};
use flywheel_workloads::Benchmark;

fn main() {
    let budget = SimBudget::new(5_000, 40_000);
    let benches = [
        Benchmark::Micro,
        Benchmark::Gzip,
        Benchmark::Ijpeg,
        Benchmark::Parser,
        Benchmark::Vortex,
        Benchmark::Equake,
        Benchmark::Mesa,
        // The stress family (PR 3): adversarial profiles whose digests pin the
        // machine paths — forwarding, squash recovery, EC eviction, idle
        // fast-forward — that the SPEC-like profiles barely exercise.
        Benchmark::PtrChase,
        Benchmark::BranchStorm,
        Benchmark::CodeBloat,
        Benchmark::StoreStorm,
        // The promoted adversarial extremes (discovered by `scenarios search`,
        // frozen in `flywheel_workloads::stress`): their digests pin the
        // discovered worst/best Flywheel-vs-baseline points so a regression
        // that moves either extreme is caught bit-exactly.
        Benchmark::EcWorst,
        Benchmark::FlyBest,
    ];
    for bench in benches {
        let trace = shared_trace(bench, 42, budget);
        let baseline_cfgs: Vec<(&str, BaselineConfig)> = vec![
            ("paper_default", BaselineConfig::paper_default()),
            ("paper_n130", BaselineConfig::paper(TechNode::N130)),
            (
                "extra_fe_stage",
                BaselineConfig::paper_default().with_extra_frontend_stage(),
            ),
            (
                "pipelined_wakeup",
                BaselineConfig::paper_default().with_pipelined_wakeup(),
            ),
            (
                "dual_clock_fe50",
                BaselineConfig::paper_default().with_dual_clock_frontend(50),
            ),
        ];
        for (name, cfg) in baseline_cfgs {
            let r = BaselineSim::new(cfg, trace.cursor()).run(budget);
            println!("baseline/{bench}/{name}: {r:?}");
        }
        let flywheel_cfgs: Vec<(&str, FlywheelConfig)> = vec![
            ("iso_clock", FlywheelConfig::paper_iso_clock(TechNode::N130)),
            ("fe50_be50", FlywheelConfig::paper(TechNode::N130, 50, 50)),
            ("fe100_be50", FlywheelConfig::paper(TechNode::N130, 100, 50)),
            (
                "reg_alloc_only",
                FlywheelConfig::register_allocation_only(TechNode::N130),
            ),
        ];
        for (name, cfg) in flywheel_cfgs {
            let r = FlywheelSim::new(cfg, trace.cursor()).run(budget);
            println!("flywheel/{bench}/{name}: {r:?}");
        }
    }
    // The machine families added by the executor-registry PR. Appended as a
    // second pass over the benchmarks so the 117 pre-existing lines above
    // keep their byte positions: extending the digest must never move them.
    for bench in benches {
        let trace = shared_trace(bench, 42, budget);
        let multidomain_cfgs: Vec<(&str, MultiDomainConfig)> = vec![
            ("paper_n130", MultiDomainConfig::paper(TechNode::N130)),
            (
                "fe50",
                MultiDomainConfig::paper_with_frontend(TechNode::N130, 50),
            ),
        ];
        for (name, cfg) in multidomain_cfgs {
            let r = BaselineSim::new_multi_domain(cfg, trace.cursor()).run(budget);
            println!("multidomain/{bench}/{name}: {r:?}");
        }
        let dvfs_cfgs: Vec<(&str, DvfsConfig)> = vec![
            ("iso_clock", DvfsConfig::paper(TechNode::N130, 0, 0)),
            ("fe50_be50", DvfsConfig::paper(TechNode::N130, 50, 50)),
        ];
        for (name, cfg) in dvfs_cfgs {
            let r = FlywheelSim::new_dvfs(cfg, trace.cursor()).run(budget);
            println!("dvfs/{bench}/{name}: {r:?}");
        }
    }
}
