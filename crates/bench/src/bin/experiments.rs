//! Regenerates the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p flywheel-bench --bin experiments -- [experiment] [measured-insts] [--store PATH]
//! ```
//!
//! where `experiment` is one of `table1`, `fig1`, `fig2`, `fig11`, `fig12`, `fig13`,
//! `fig14`, `fig15`, `ec_residency` or `all` (default). The optional second argument
//! overrides the measured instruction count per benchmark.
//!
//! With `--store PATH`, results are memoized in a persistent content-addressed
//! store (see `flywheel_bench::store`): cells whose full input — machine
//! configuration, workload, seed, budget, code-version salt — is already
//! stored are recalled instead of simulated, so a warm re-run performs zero
//! simulations and a run after touching one knob only simulates the affected
//! cells. The same store feeds the `report` binary (`flywheel-report`), which
//! regenerates RESULTS.md and the EXPERIMENTS.md figure tables from it.
//!
//! The simulation sweeps fan out across all cores (`FLYWHEEL_JOBS` caps the
//! worker count); every cell is an independent deterministic simulation, so the
//! tables are identical to a serial run. Besides the printed tables, the binary
//! reports per-experiment wall-clock and simulated-MIPS throughput and writes
//! them to `BENCH.json` so the performance trajectory of the simulator itself
//! can be tracked across commits.

use flywheel_bench::{
    experiment_budget, parallel_map, print_table, run_baseline, run_baseline_with, run_flywheel,
    simulated_mips, Row, CLOCK_SWEEP,
};
use flywheel_core::FlywheelConfig;
use flywheel_timing::{paper, ModuleFrequencies, StructureLatency, TechNode};
use flywheel_timing::{CacheGeometry, IssueWindowGeometry, RegFileGeometry};
use flywheel_uarch::{BaselineConfig, SimBudget};
use flywheel_workloads::Benchmark;
use std::time::Instant;

/// Wall-clock and throughput accounting for one experiment.
struct Report {
    name: &'static str,
    wall_s: f64,
    simulated_instructions: u64,
    mips: f64,
    /// True when every cell was answered from the result store — the entry
    /// then measures recall speed, not simulator throughput, and is excluded
    /// from the `total` trajectory line so it cannot deflate it.
    recalled: bool,
}

/// Runs `f` under a timer, charging it the instructions of the simulations it
/// *actually performed*: cells recalled from the result store count zero, so
/// throughput numbers always describe real simulator work (a fully warm sweep
/// honestly reports 0 instructions and 0 MIPS rather than absurd recall
/// speeds).
fn timed(name: &'static str, reports: &mut Vec<Report>, budget: SimBudget, f: impl FnOnce()) {
    let sims_before = flywheel_bench::simulations_performed();
    let start = Instant::now();
    f();
    let wall = start.elapsed();
    let simulated_instructions =
        (flywheel_bench::simulations_performed() - sims_before) * budget.total();
    let mips = simulated_mips(simulated_instructions, wall);
    let recalled = simulated_instructions == 0;
    println!(
        "[{name}] {:.2} s wall, {simulated_instructions} simulated instructions, {mips:.2} MIPS{}",
        wall.as_secs_f64(),
        if recalled { " (recalled)" } else { "" }
    );
    reports.push(Report {
        name,
        wall_s: wall.as_secs_f64(),
        simulated_instructions,
        mips,
        recalled,
    });
}

fn main() {
    let mut store_path: Option<String> = None;
    let mut telemetry_path: Option<String> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--store" {
            store_path = Some(args.next().unwrap_or_else(|| {
                eprintln!("--store needs a path");
                std::process::exit(1);
            }));
        } else if arg == "--telemetry" {
            telemetry_path = Some(args.next().unwrap_or_else(|| {
                eprintln!("--telemetry needs a path");
                std::process::exit(1);
            }));
        } else {
            positional.push(arg);
        }
    }
    let which = positional
        .first()
        .map(String::as_str)
        .unwrap_or("all")
        .to_owned();
    let mut budget = experiment_budget();
    if let Some(n) = positional.get(1).and_then(|s| s.parse::<u64>().ok()) {
        budget = SimBudget::new(n / 10, n);
    }
    if let Some(path) = &store_path {
        match flywheel_bench::store::ResultStore::open(path) {
            Ok(store) => {
                println!("store {path}: {} records", store.len());
                flywheel_bench::store::install_global_store(store);
            }
            Err(e) => {
                eprintln!("could not open result store {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(path) = &telemetry_path {
        let interval = flywheel_uarch::telemetry::DEFAULT_SAMPLE_INTERVAL;
        if let Err(e) = flywheel_bench::telemetry::install_global_telemetry(
            std::path::Path::new(path),
            interval,
        ) {
            eprintln!("could not install telemetry sink at {path}: {e}");
            std::process::exit(1);
        }
        println!("telemetry armed: event log {path} (sample interval {interval} cycles)");
    }

    let mut reports: Vec<Report> = Vec::new();
    let r = &mut reports;
    match which.as_str() {
        "table1" => table1(),
        "fig1" => fig1(),
        "fig2" => timed("fig2", r, budget, || fig2(budget)),
        "fig11" => timed("fig11", r, budget, || fig11(budget)),
        "fig12" => timed("fig12", r, budget, || {
            clock_sweep(
                &[("Figure 12: relative performance", Metric::Performance)],
                budget,
            )
        }),
        "fig13" => timed("fig13", r, budget, || {
            clock_sweep(&[("Figure 13: relative energy", Metric::Energy)], budget)
        }),
        "fig14" => timed("fig14", r, budget, || {
            clock_sweep(&[("Figure 14: relative power", Metric::Power)], budget)
        }),
        "fig15" => timed("fig15", r, budget, || fig15(budget)),
        "ec_residency" => timed("ec_residency", r, budget, || ec_residency(budget)),
        "all" => {
            table1();
            fig1();
            timed("fig2", r, budget, || fig2(budget));
            timed("fig11", r, budget, || fig11(budget));
            // Figures 12-14 plot three metrics of the same (benchmark, clock)
            // matrix; simulate it once and emit all three tables.
            timed("fig12-14", r, budget, || {
                clock_sweep(
                    &[
                        ("Figure 12: relative performance", Metric::Performance),
                        ("Figure 13: relative energy", Metric::Energy),
                        ("Figure 14: relative power", Metric::Power),
                    ],
                    budget,
                )
            });
            timed("fig15", r, budget, || fig15(budget));
            timed("ec_residency", r, budget, || ec_residency(budget));
        }
        other => {
            eprintln!("unknown experiment '{other}'");
            std::process::exit(1);
        }
    }

    if !reports.is_empty() {
        print_throughput_summary(&reports);
        // A fully warm sweep performed no simulator work: keep the committed
        // BENCH.json (the cold-run trajectory the docs embed) instead of
        // clobbering it with all-zero recall timings.
        if reports.iter().all(|r| r.recalled) {
            println!("BENCH.json left untouched (every cell was recalled from the store)");
        } else {
            match write_bench_json(&reports) {
                Ok(path) => println!("wrote {path}"),
                Err(e) => eprintln!("could not write BENCH.json: {e}"),
            }
        }
    }

    if telemetry_path.is_some() {
        if let Some(summary) = flywheel_bench::telemetry::finish_global_telemetry() {
            println!(
                "telemetry: {} events logged to {}, {} dropped",
                summary.events,
                summary.path.display(),
                summary.dropped
            );
        }
    }

    if store_path.is_some() {
        let (hits, misses) = flywheel_bench::store::global_store_counters();
        let store = flywheel_bench::store::take_global_store().expect("store was installed");
        println!(
            "store {}: {} recalled, {} simulated, {} records total",
            store
                .path()
                .map(|p| p.display().to_string())
                .unwrap_or_default(),
            hits,
            misses,
            store.len()
        );
    }
}

fn print_throughput_summary(reports: &[Report]) {
    println!("\n== Simulator throughput ==");
    println!(
        "{:<14} {:>9} {:>16} {:>9}",
        "experiment", "wall s", "sim insts", "MIPS"
    );
    let mut wall = 0.0;
    let mut insts = 0u64;
    for rep in reports {
        println!(
            "{:<14} {:>9.2} {:>16} {:>9.2}{}",
            rep.name,
            rep.wall_s,
            rep.simulated_instructions,
            rep.mips,
            if rep.recalled { "  (recalled)" } else { "" }
        );
        // A fully recalled experiment did no simulator work; folding its wall
        // time into the total would deflate the trajectory's MIPS.
        if !rep.recalled {
            wall += rep.wall_s;
            insts += rep.simulated_instructions;
        }
    }
    println!(
        "{:<14} {:>9.2} {:>16} {:>9.2}",
        "total",
        wall,
        insts,
        if wall > 0.0 {
            insts as f64 / wall / 1e6
        } else {
            0.0
        }
    );
}

/// Writes the machine-readable throughput report. The JSON is assembled by hand
/// (the build container has no registry access for serde_json); every value is a
/// number or a plain ASCII experiment name, so no escaping is needed.
fn write_bench_json(reports: &[Report]) -> std::io::Result<&'static str> {
    let jobs = flywheel_bench::worker_count();
    let mut s = String::from("{\n  \"schema\": \"flywheel-bench/1\",\n");
    s.push_str(&format!("  \"sweep_workers\": {jobs},\n"));
    s.push_str("  \"experiments\": [\n");
    for (i, r) in reports.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"wall_seconds\": {:.3}, \"simulated_instructions\": {}, \
             \"simulated_mips\": {:.2}, \"recalled\": {}}}{}\n",
            r.name,
            r.wall_s,
            r.simulated_instructions,
            r.mips,
            r.recalled,
            if i + 1 < reports.len() { "," } else { "" }
        ));
    }
    // Recalled entries measured store-recall speed, not simulation; the total
    // trajectory line charges only real simulator work.
    let simulated = || reports.iter().filter(|r| !r.recalled);
    let total_wall: f64 = simulated().map(|r| r.wall_s).sum();
    let total_insts: u64 = simulated().map(|r| r.simulated_instructions).sum();
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"total\": {{\"wall_seconds\": {:.3}, \"simulated_instructions\": {}, \
         \"simulated_mips\": {:.2}}}\n",
        total_wall,
        total_insts,
        if total_wall > 0.0 {
            total_insts as f64 / total_wall / 1e6
        } else {
            0.0
        }
    ));
    s.push_str("}\n");
    std::fs::write("BENCH.json", s)?;
    Ok("BENCH.json")
}

fn node() -> TechNode {
    TechNode::N130
}

/// Table 1: module clock frequencies per technology node, model vs paper.
fn table1() {
    println!("\n== Table 1: module clock frequencies (MHz), modelled vs published ==");
    let published = paper::published_table1();
    let modelled = paper::modeled_table1();
    print!("{:<34}", "module");
    for n in paper::TABLE1_NODES {
        print!(" {:>16}", n.to_string());
    }
    println!();
    for (p, m) in published.iter().zip(&modelled) {
        print!("{:<34}", p.module);
        for i in 0..4 {
            print!(" {:>7.0}/{:<8.0}", m.mhz[i], p.mhz[i]);
        }
        println!();
    }
    println!("(each cell: modelled / published)");
    for n in [TechNode::N180, TechNode::N60] {
        let f = ModuleFrequencies::for_node(n);
        println!(
            "{n}: max front-end speed-up {:.2}x, max back-end speed-up {:.2}x over the Issue Window clock",
            f.max_frontend_speedup(),
            f.max_backend_speedup()
        );
    }
}

/// Figure 1: latency scaling of issue windows, caches and register files.
fn fig1() {
    println!("\n== Figure 1: access latency (ps) across technology nodes ==");
    let structures: Vec<(&str, Box<dyn StructureLatency>)> = vec![
        (
            "IW 128-entry/6-way",
            Box::new(IssueWindowGeometry::new(128, 6)),
        ),
        (
            "IW 64-entry/4-way",
            Box::new(IssueWindowGeometry::new(64, 4)),
        ),
        (
            "Cache 64K/2w/1port",
            Box::new(CacheGeometry::new(64 * 1024, 2, 1, 64)),
        ),
        (
            "Cache 32K/4w/2port",
            Box::new(CacheGeometry::new(32 * 1024, 4, 2, 64)),
        ),
        ("RF 128 entries", Box::new(RegFileGeometry::new(128, 18))),
        ("RF 256 entries", Box::new(RegFileGeometry::new(256, 18))),
    ];
    print!("{:<22}", "structure");
    for n in TechNode::all() {
        print!(" {:>8}", n.to_string());
    }
    println!();
    for (name, s) in &structures {
        print!("{name:<22}");
        for n in TechNode::all() {
            print!(" {:>8.0}", s.latency_ps(*n));
        }
        println!();
    }
}

/// Figure 2: IPC degradation from an extra front-end stage vs pipelined
/// Wake-up/Select.
fn fig2(budget: SimBudget) {
    let columns = vec!["fetch+1 %".to_owned(), "wakeup/sel %".to_owned()];
    let benches = Benchmark::paper_suite();
    let rows: Vec<Row> = parallel_map(benches, |bench| {
        let base = run_baseline(*bench, node(), budget);
        let deeper = run_baseline_with(
            *bench,
            BaselineConfig::paper(node()).with_extra_frontend_stage(),
            budget,
        );
        let piped = run_baseline_with(
            *bench,
            BaselineConfig::paper(node()).with_pipelined_wakeup(),
            budget,
        );
        let degradation = |v: &flywheel_uarch::SimResult| {
            (v.elapsed_ps as f64 / base.elapsed_ps as f64 - 1.0) * 100.0
        };
        Row {
            bench: bench.name(),
            values: vec![degradation(&deeper), degradation(&piped)],
        }
    });
    print_table(
        "Figure 2: performance degradation (%) from pipeline-loop stretching",
        &columns,
        &rows,
    );
}

/// Figure 11: register-allocation machine and Flywheel at the baseline clock.
fn fig11(budget: SimBudget) {
    let columns = vec!["reg-alloc".to_owned(), "flywheel".to_owned()];
    let benches = Benchmark::paper_suite();
    let rows: Vec<Row> = parallel_map(benches, |bench| {
        let base = run_baseline(*bench, node(), budget);
        let regalloc = run_flywheel(
            *bench,
            FlywheelConfig::register_allocation_only(node()),
            budget,
        );
        let flywheel = run_flywheel(*bench, FlywheelConfig::paper_iso_clock(node()), budget);
        Row {
            bench: bench.name(),
            values: vec![regalloc.speedup_over(&base), flywheel.speedup_over(&base)],
        }
    });
    print_table(
        "Figure 11: performance at the baseline clock, normalized to the baseline",
        &columns,
        &rows,
    );
}

#[derive(Clone, Copy)]
enum Metric {
    Performance,
    Energy,
    Power,
}

/// Figures 12-14: sweep the front-end clock with the back-end at +50%. Every
/// requested metric is read off the same simulation results, so asking for all
/// three figures costs one matrix, not three.
fn clock_sweep(tables: &[(&str, Metric)], budget: SimBudget) {
    let columns: Vec<String> = CLOCK_SWEEP
        .iter()
        .map(|(fe, be)| format!("FE{fe}/BE{be}"))
        .collect();
    let benches = Benchmark::paper_suite();
    // Every (benchmark, clock point) cell is independent; fan the whole matrix
    // out at once rather than row by row.
    let baselines = parallel_map(benches, |bench| run_baseline(*bench, node(), budget));
    let cells: Vec<(usize, u32, u32)> = benches
        .iter()
        .enumerate()
        .flat_map(|(bi, _)| CLOCK_SWEEP.iter().map(move |&(fe, be)| (bi, fe, be)))
        .collect();
    let results = parallel_map(&cells, |&(bi, fe, be)| {
        run_flywheel(benches[bi], FlywheelConfig::paper(node(), fe, be), budget)
    });
    for &(title, metric) in tables {
        let rows: Vec<Row> = benches
            .iter()
            .enumerate()
            .map(|(bi, bench)| Row {
                bench: bench.name(),
                values: (bi * CLOCK_SWEEP.len()..(bi + 1) * CLOCK_SWEEP.len())
                    .map(|ci| match metric {
                        Metric::Performance => results[ci].speedup_over(&baselines[bi]),
                        Metric::Energy => results[ci].energy_ratio_over(&baselines[bi]),
                        Metric::Power => results[ci].power_ratio_over(&baselines[bi]),
                    })
                    .collect(),
            })
            .collect();
        print_table(title, &columns, &rows);
    }
}

/// Figure 15: relative energy of FE100/BE50 at 130, 90 and 60 nm.
fn fig15(budget: SimBudget) {
    let nodes = TechNode::power_study_nodes();
    let columns: Vec<String> = nodes.iter().map(|n| n.to_string()).collect();
    let benches = Benchmark::paper_suite();
    let cells: Vec<(usize, TechNode)> = benches
        .iter()
        .enumerate()
        .flat_map(|(bi, _)| nodes.iter().map(move |&n| (bi, n)))
        .collect();
    let values = parallel_map(&cells, |&(bi, n)| {
        let base = run_baseline(benches[bi], n, budget);
        let fly = run_flywheel(benches[bi], FlywheelConfig::paper(n, 100, 50), budget);
        fly.energy_ratio_over(&base)
    });
    let rows: Vec<Row> = benches
        .iter()
        .enumerate()
        .map(|(bi, bench)| Row {
            bench: bench.name(),
            values: values[bi * nodes.len()..(bi + 1) * nodes.len()].to_vec(),
        })
        .collect();
    print_table(
        "Figure 15: relative energy of Flywheel (FE100%, BE50%) per technology node",
        &columns,
        &rows,
    );
}

/// Section 5: fraction of execution time spent on the Execution Cache path.
fn ec_residency(budget: SimBudget) {
    let columns = vec!["residency".to_owned(), "ec hit rate".to_owned()];
    let benches = Benchmark::paper_suite();
    let rows: Vec<Row> = parallel_map(benches, |bench| {
        let fly = run_flywheel(*bench, FlywheelConfig::paper_iso_clock(node()), budget);
        Row {
            bench: bench.name(),
            values: vec![fly.flywheel.ec_residency, fly.flywheel.ec_hit_rate()],
        }
    });
    print_table(
        "Execution-path residency (paper reports an 88% average; vortex the lowest)",
        &columns,
        &rows,
    );
}
