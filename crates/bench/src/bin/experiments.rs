//! Regenerates the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p flywheel-bench --bin experiments -- [experiment] [measured-insts]
//! ```
//!
//! where `experiment` is one of `table1`, `fig1`, `fig2`, `fig11`, `fig12`, `fig13`,
//! `fig14`, `fig15`, `ec_residency` or `all` (default). The optional second argument
//! overrides the measured instruction count per benchmark.

use flywheel_bench::{
    experiment_budget, print_table, run_baseline, run_baseline_with, run_flywheel, Row,
    CLOCK_SWEEP,
};
use flywheel_core::FlywheelConfig;
use flywheel_timing::{paper, ModuleFrequencies, StructureLatency, TechNode};
use flywheel_timing::{CacheGeometry, IssueWindowGeometry, RegFileGeometry};
use flywheel_uarch::{BaselineConfig, SimBudget};
use flywheel_workloads::Benchmark;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("all").to_owned();
    let mut budget = experiment_budget();
    if let Some(n) = args.get(2).and_then(|s| s.parse::<u64>().ok()) {
        budget = SimBudget::new(n / 10, n);
    }

    match which.as_str() {
        "table1" => table1(),
        "fig1" => fig1(),
        "fig2" => fig2(budget),
        "fig11" => fig11(budget),
        "fig12" => clock_sweep("Figure 12: relative performance", budget, Metric::Performance),
        "fig13" => clock_sweep("Figure 13: relative energy", budget, Metric::Energy),
        "fig14" => clock_sweep("Figure 14: relative power", budget, Metric::Power),
        "fig15" => fig15(budget),
        "ec_residency" => ec_residency(budget),
        "all" => {
            table1();
            fig1();
            fig2(budget);
            fig11(budget);
            clock_sweep("Figure 12: relative performance", budget, Metric::Performance);
            clock_sweep("Figure 13: relative energy", budget, Metric::Energy);
            clock_sweep("Figure 14: relative power", budget, Metric::Power);
            fig15(budget);
            ec_residency(budget);
        }
        other => {
            eprintln!("unknown experiment '{other}'");
            std::process::exit(1);
        }
    }
}

fn node() -> TechNode {
    TechNode::N130
}

/// Table 1: module clock frequencies per technology node, model vs paper.
fn table1() {
    println!("\n== Table 1: module clock frequencies (MHz), modelled vs published ==");
    let published = paper::published_table1();
    let modelled = paper::modeled_table1();
    print!("{:<34}", "module");
    for n in paper::TABLE1_NODES {
        print!(" {:>16}", n.to_string());
    }
    println!();
    for (p, m) in published.iter().zip(&modelled) {
        print!("{:<34}", p.module);
        for i in 0..4 {
            print!(" {:>7.0}/{:<8.0}", m.mhz[i], p.mhz[i]);
        }
        println!();
    }
    println!("(each cell: modelled / published)");
    for n in [TechNode::N180, TechNode::N60] {
        let f = ModuleFrequencies::for_node(n);
        println!(
            "{n}: max front-end speed-up {:.2}x, max back-end speed-up {:.2}x over the Issue Window clock",
            f.max_frontend_speedup(),
            f.max_backend_speedup()
        );
    }
}

/// Figure 1: latency scaling of issue windows, caches and register files.
fn fig1() {
    println!("\n== Figure 1: access latency (ps) across technology nodes ==");
    let structures: Vec<(&str, Box<dyn StructureLatency>)> = vec![
        ("IW 128-entry/6-way", Box::new(IssueWindowGeometry::new(128, 6))),
        ("IW 64-entry/4-way", Box::new(IssueWindowGeometry::new(64, 4))),
        ("Cache 64K/2w/1port", Box::new(CacheGeometry::new(64 * 1024, 2, 1, 64))),
        ("Cache 32K/4w/2port", Box::new(CacheGeometry::new(32 * 1024, 4, 2, 64))),
        ("RF 128 entries", Box::new(RegFileGeometry::new(128, 18))),
        ("RF 256 entries", Box::new(RegFileGeometry::new(256, 18))),
    ];
    print!("{:<22}", "structure");
    for n in TechNode::all() {
        print!(" {:>8}", n.to_string());
    }
    println!();
    for (name, s) in &structures {
        print!("{name:<22}");
        for n in TechNode::all() {
            print!(" {:>8.0}", s.latency_ps(*n));
        }
        println!();
    }
}

/// Figure 2: IPC degradation from an extra front-end stage vs pipelined
/// Wake-up/Select.
fn fig2(budget: SimBudget) {
    let columns = vec!["fetch+1 %".to_owned(), "wakeup/sel %".to_owned()];
    let mut rows = Vec::new();
    for bench in Benchmark::paper_suite() {
        let base = run_baseline(*bench, node(), budget);
        let deeper = run_baseline_with(*bench, BaselineConfig::paper(node()).with_extra_frontend_stage(), budget);
        let piped = run_baseline_with(*bench, BaselineConfig::paper(node()).with_pipelined_wakeup(), budget);
        let degradation = |v: &flywheel_uarch::SimResult| (v.elapsed_ps as f64 / base.elapsed_ps as f64 - 1.0) * 100.0;
        rows.push(Row { bench: bench.name(), values: vec![degradation(&deeper), degradation(&piped)] });
    }
    print_table(
        "Figure 2: performance degradation (%) from pipeline-loop stretching",
        &columns,
        &rows,
    );
}

/// Figure 11: register-allocation machine and Flywheel at the baseline clock.
fn fig11(budget: SimBudget) {
    let columns = vec!["reg-alloc".to_owned(), "flywheel".to_owned()];
    let mut rows = Vec::new();
    for bench in Benchmark::paper_suite() {
        let base = run_baseline(*bench, node(), budget);
        let regalloc = run_flywheel(*bench, FlywheelConfig::register_allocation_only(node()), budget);
        let flywheel = run_flywheel(*bench, FlywheelConfig::paper_iso_clock(node()), budget);
        rows.push(Row {
            bench: bench.name(),
            values: vec![regalloc.speedup_over(&base), flywheel.speedup_over(&base)],
        });
    }
    print_table(
        "Figure 11: performance at the baseline clock, normalized to the baseline",
        &columns,
        &rows,
    );
}

enum Metric {
    Performance,
    Energy,
    Power,
}

/// Figures 12-14: sweep the front-end clock with the back-end at +50%.
fn clock_sweep(title: &str, budget: SimBudget, metric: Metric) {
    let columns: Vec<String> = CLOCK_SWEEP.iter().map(|(fe, be)| format!("FE{fe}/BE{be}")).collect();
    let mut rows = Vec::new();
    for bench in Benchmark::paper_suite() {
        let base = run_baseline(*bench, node(), budget);
        let mut values = Vec::new();
        for (fe, be) in CLOCK_SWEEP {
            let fly = run_flywheel(*bench, FlywheelConfig::paper(node(), fe, be), budget);
            values.push(match metric {
                Metric::Performance => fly.speedup_over(&base),
                Metric::Energy => fly.energy_ratio_over(&base),
                Metric::Power => fly.power_ratio_over(&base),
            });
        }
        rows.push(Row { bench: bench.name(), values });
    }
    print_table(title, &columns, &rows);
}

/// Figure 15: relative energy of FE100/BE50 at 130, 90 and 60 nm.
fn fig15(budget: SimBudget) {
    let columns: Vec<String> = TechNode::power_study_nodes().iter().map(|n| n.to_string()).collect();
    let mut rows = Vec::new();
    for bench in Benchmark::paper_suite() {
        let mut values = Vec::new();
        for n in TechNode::power_study_nodes() {
            let base = run_baseline(*bench, *n, budget);
            let fly = run_flywheel(*bench, FlywheelConfig::paper(*n, 100, 50), budget);
            values.push(fly.energy_ratio_over(&base));
        }
        rows.push(Row { bench: bench.name(), values });
    }
    print_table(
        "Figure 15: relative energy of Flywheel (FE100%, BE50%) per technology node",
        &columns,
        &rows,
    );
}

/// Section 5: fraction of execution time spent on the Execution Cache path.
fn ec_residency(budget: SimBudget) {
    let columns = vec!["residency".to_owned(), "ec hit rate".to_owned()];
    let mut rows = Vec::new();
    for bench in Benchmark::paper_suite() {
        let fly = run_flywheel(*bench, FlywheelConfig::paper_iso_clock(node()), budget);
        rows.push(Row {
            bench: bench.name(),
            values: vec![fly.flywheel.ec_residency, fly.flywheel.ec_hit_rate()],
        });
    }
    print_table(
        "Execution-path residency (paper reports an 88% average; vortex the lowest)",
        &columns,
        &rows,
    );
}
