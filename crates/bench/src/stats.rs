//! Small-sample statistics for multi-seed scenario sweeps.
//!
//! Hand-rolled (no registry dependencies): a Welford-style streaming
//! [`Aggregate`] carrying count / mean / M2 / min / max, plus the two-sided
//! 95% Student-t critical values needed to turn a sample standard deviation
//! into a confidence-interval half-width. Seeds in a scenario sweep are a
//! handful, not thousands, so the normal approximation would systematically
//! understate the interval; the t table is the honest choice at n = 3..30.
//!
//! Aggregation is deterministic: samples are always folded in grid order
//! (the scenario's seed axis order), so the same run produces bit-identical
//! aggregates regardless of how many worker threads or shard processes
//! produced the per-seed cells.

/// Streaming mean / variance accumulator (Welford's algorithm) with
/// min/max tracking and a parallel-merge rule (Chan et al.).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aggregate {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Aggregate {
    fn default() -> Self {
        Self::new()
    }
}

impl Aggregate {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Accumulates every sample of `samples`, in order.
    pub fn of<I: IntoIterator<Item = f64>>(samples: I) -> Self {
        let mut agg = Self::new();
        for x in samples {
            agg.add(x);
        }
        agg
    }

    /// Folds one sample into the accumulator.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Combines two partial aggregates into the aggregate of the
    /// concatenated sample sets.
    pub fn merge(&self, other: &Self) -> Self {
        if self.n == 0 {
            return *other;
        }
        if other.n == 0 {
            return *self;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        Self {
            n,
            mean,
            m2,
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Number of samples folded in so far.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Sample mean; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Smallest sample seen; 0.0 when empty.
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample seen; 0.0 when empty.
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Unbiased sample variance (divides by n-1); 0.0 below two samples.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            // Guard against tiny negative M2 from cancellation.
            (self.m2 / (self.n - 1) as f64).max(0.0)
        }
    }

    /// Unbiased sample standard deviation; 0.0 below two samples.
    pub fn sample_stddev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Half-width of the two-sided 95% confidence interval on the mean,
    /// `t_{0.975, n-1} * s / sqrt(n)`. Zero below two samples (a single
    /// observation carries no spread information) and exactly zero for a
    /// constant series.
    pub fn ci95_halfwidth(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        t95(self.n - 1) * self.sample_stddev() / (self.n as f64).sqrt()
    }
}

/// Two-sided 95% Student-t critical value for `df` degrees of freedom.
///
/// Exact table entries for df 1..=30, then the conventional step values at
/// 40 / 60 / 120 and the asymptotic normal quantile 1.960 beyond. `df = 0`
/// is treated as df 1 (the caller already reports zero width for n < 2).
pub fn t95(df: u64) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => TABLE[0],
        1..=30 => TABLE[df as usize - 1],
        31..=40 => 2.021,
        41..=60 => 2.000,
        61..=120 => 1.980,
        _ => 1.960,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// xorshift64 — the repo's stock dependency-free PRNG for property tests.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }

        fn unit(&mut self) -> f64 {
            (self.next() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    fn close(a: f64, b: f64) -> bool {
        let scale = a.abs().max(b.abs()).max(1.0);
        (a - b).abs() <= 1e-9 * scale
    }

    #[test]
    fn empty_and_singleton_are_degenerate() {
        let empty = Aggregate::new();
        assert_eq!(empty.n(), 0);
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.sample_stddev(), 0.0);
        assert_eq!(empty.ci95_halfwidth(), 0.0);

        let one = Aggregate::of([3.25]);
        assert_eq!(one.n(), 1);
        assert_eq!(one.mean(), 3.25);
        assert_eq!(one.min(), 3.25);
        assert_eq!(one.max(), 3.25);
        assert_eq!(one.sample_stddev(), 0.0);
        assert_eq!(one.ci95_halfwidth(), 0.0);
    }

    #[test]
    fn constant_series_has_zero_width_ci() {
        let mut rng = Rng(0x5eed_cafe);
        for _ in 0..100 {
            let value = rng.unit() * 1e6 - 5e5;
            let n = 2 + (rng.next() % 40) as usize;
            let agg = Aggregate::of(std::iter::repeat_n(value, n));
            assert_eq!(agg.n(), n as u64);
            assert!(close(agg.mean(), value), "mean {} vs {}", agg.mean(), value);
            assert_eq!(agg.sample_stddev(), 0.0);
            assert_eq!(agg.ci95_halfwidth(), 0.0);
            assert_eq!(agg.min(), value);
            assert_eq!(agg.max(), value);
        }
    }

    #[test]
    fn welford_matches_two_pass_reference_on_random_series() {
        let mut rng = Rng(0x900d_5eed);
        for _ in 0..200 {
            let n = 2 + (rng.next() % 60) as usize;
            let scale = 10f64.powi((rng.next() % 7) as i32 - 3);
            let samples: Vec<f64> = (0..n).map(|_| (rng.unit() - 0.5) * scale).collect();

            let agg = Aggregate::of(samples.iter().copied());

            // Two-pass closed-form reference.
            let mean = samples.iter().sum::<f64>() / n as f64;
            let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;

            assert!(close(agg.mean(), mean));
            assert!(close(agg.sample_variance(), var));
            let expect_hw = t95(n as u64 - 1) * var.sqrt() / (n as f64).sqrt();
            assert!(close(agg.ci95_halfwidth(), expect_hw));
            assert_eq!(
                agg.min(),
                samples.iter().copied().fold(f64::INFINITY, f64::min)
            );
            assert_eq!(
                agg.max(),
                samples.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            );
        }
    }

    #[test]
    fn merge_of_partials_equals_whole() {
        let mut rng = Rng(0xfeed_f00d);
        for _ in 0..200 {
            let n = 2 + (rng.next() % 50) as usize;
            let samples: Vec<f64> = (0..n).map(|_| (rng.unit() - 0.3) * 42.0).collect();
            let split = (rng.next() as usize) % (n + 1);

            let whole = Aggregate::of(samples.iter().copied());
            let left = Aggregate::of(samples[..split].iter().copied());
            let right = Aggregate::of(samples[split..].iter().copied());
            let merged = left.merge(&right);

            assert_eq!(merged.n(), whole.n());
            assert!(close(merged.mean(), whole.mean()));
            assert!(close(merged.sample_variance(), whole.sample_variance()));
            assert_eq!(merged.min(), whole.min());
            assert_eq!(merged.max(), whole.max());
        }
    }

    #[test]
    fn t_table_is_sane() {
        assert_eq!(t95(1), 12.706);
        assert_eq!(t95(4), 2.776);
        assert_eq!(t95(29), 2.045);
        assert_eq!(t95(1_000_000), 1.960);
        // Monotonically non-increasing toward the normal quantile.
        let mut prev = t95(1);
        for df in 2..200 {
            let t = t95(df);
            assert!(t <= prev, "t95({df}) = {t} rose above {prev}");
            assert!(t >= 1.960);
            prev = t;
        }
    }
}
