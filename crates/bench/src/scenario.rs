//! Declarative scenario engine: describe a sweep as axes, run it as a grid.
//!
//! The `experiments` binary hard-codes the paper's five figure sweeps. A
//! [`Scenario`] instead *describes* a sweep — which machines, which workloads,
//! which machine-configuration axes (technology node, clock-domain ratios,
//! issue-window/ROB sizes, Execution Cache geometry, memory latency), which
//! seeds and instruction budget — and the engine expands the description into a
//! grid of [`ScenarioCell`]s, runs every cell on the shared
//! [`parallel_map`](crate::parallel_map) driver against the process-wide
//! recorded-trace cache, and returns a [`ScenarioRun`] that can be checked
//! against machine invariants and emitted as JSON or CSV.
//!
//! The paper's figure sweeps are expressible as presets ([`Scenario::fig2`],
//! [`Scenario::fig11`], [`Scenario::fig12`]) whose rendered tables are
//! byte-identical to the `experiments` binary's output — the engine is a strict
//! generalisation, proven by the `scenario_figures` tests. The
//! [`Scenario::leakage`] preset sweeps technology node x machine x Execution
//! Cache capacity, exercising the attributed leakage model of PR 5 on every
//! cell ([`check_cell_invariants`] recomputes each cell's per-category leakage
//! from the machine-aware power model and rejects any disagreement).
//!
//! Every cell is a deterministic, independent simulation: the same scenario
//! always produces the same results regardless of worker count
//! ([`Scenario::run_with_jobs`] with 1 vs N workers is byte-identical; enforced
//! by the `parallel_identity` integration test).
//!
//! Execution is fault-tolerant: every cell runs under `catch_unwind` with an
//! armed watchdog budget (cycle cap plus optional wall-clock deadline), so a
//! panicking or runaway cell becomes a [`CellOutcome::Failed`] instead of
//! tearing down the whole sweep. Failed cells get a bounded number of retries
//! with deterministic backoff (recovering transient failures), and whatever
//! still fails lands in the run's failed-cell manifest
//! ([`ScenarioRun::failed`]), which flows into the CSV/JSON emission and the
//! report's "Degraded cells" section — a degraded sweep completes and says so,
//! rather than aborting. The `crate::fault` harness can inject all of these
//! failures deterministically to prove the recovery paths fire.

use crate::executor::{machines_for_preset, CellAxes, Executor};
use crate::fault;
use crate::stats::Aggregate;
use crate::store::{ResultStore, RunStats, StoreKey, StoreSummary};
use crate::{format_table, parallel_map_jobs, worker_count, Row, EXPERIMENT_SEED};
use flywheel_core::FlywheelStats;
use flywheel_power::{PowerModel, UnitCategory};
use flywheel_timing::TechNode;
use flywheel_uarch::watchdog::{self, WatchdogConfig, WatchdogTimeout};
use flywheel_uarch::{SimBudget, SimResult};
use flywheel_workloads::Benchmark;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

pub use crate::executor::Machine;

/// A declarative sweep description: the cartesian product of its axes is the
/// grid the engine runs.
///
/// Axes that a machine does not consume are not multiplied into its cells: a
/// baseline machine is not re-run per Execution Cache size or per point of the
/// clock sweep (it runs once per remaining axes at [`Scenario::baseline_clock`]).
///
/// # Example
///
/// ```
/// use flywheel_bench::scenario::Scenario;
/// use flywheel_uarch::SimBudget;
/// use flywheel_workloads::Benchmark;
///
/// let mut s = Scenario::new("doc", SimBudget::new(200, 1_000));
/// s.benchmarks = vec![Benchmark::Micro];
/// assert_eq!(s.cell_count(), 2); // one baseline cell, one Flywheel cell
/// let run = s.run();
/// run.check_invariants().unwrap();
/// assert_eq!(run.results[0].sim.instructions, 1_000);
/// ```
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (used in emitted files and reports).
    pub name: String,
    /// Workload axis.
    pub benchmarks: Vec<Benchmark>,
    /// Machine axis.
    pub machines: Vec<Machine>,
    /// Technology-node axis.
    pub nodes: Vec<TechNode>,
    /// Clock-domain axis as (front-end %, back-end %) speed-ups over the
    /// baseline clock — applies to machines with [`Machine::uses_clock_axis`].
    pub clocks: Vec<(u32, u32)>,
    /// The single clock point baseline-family machines run at (default: the
    /// synchronous paper clock, `(0, 0)`).
    pub baseline_clock: (u32, u32),
    /// Issue-window / ROB size axis as (iw_entries, rob_entries).
    pub windows: Vec<(u32, u32)>,
    /// Execution Cache capacity axis, in KiB (Flywheel machines only).
    pub ec_kb: Vec<u64>,
    /// Main-memory latency axis, in baseline cycles.
    pub mem_cycles: Vec<u32>,
    /// Workload seed axis (each seed is an independent program + trace).
    pub seeds: Vec<u64>,
    /// Instruction budget of every cell.
    pub budget: SimBudget,
}

impl Scenario {
    /// A scenario with the paper's default single-point axes: both machines,
    /// the paper suite, 0.13 µm, synchronous clocks, Table 2 window/EC/memory
    /// parameters and the experiment seed.
    pub fn new(name: &str, budget: SimBudget) -> Self {
        Scenario {
            name: name.to_owned(),
            benchmarks: Benchmark::paper_suite().to_vec(),
            machines: machines_for_preset("default"),
            nodes: vec![TechNode::N130],
            clocks: vec![(0, 0)],
            baseline_clock: (0, 0),
            windows: vec![(128, 128)],
            ec_kb: vec![128],
            mem_cycles: vec![100],
            seeds: vec![EXPERIMENT_SEED],
            budget,
        }
    }

    /// The Figure 2 preset: pipeline-loop stretching on the baseline machine.
    pub fn fig2(budget: SimBudget) -> Self {
        let mut s = Scenario::new("fig2", budget);
        s.machines = machines_for_preset("fig2");
        s
    }

    /// The Figure 11 preset: register-allocation machine and Flywheel at the
    /// baseline clock.
    pub fn fig11(budget: SimBudget) -> Self {
        let mut s = Scenario::new("fig11", budget);
        s.machines = machines_for_preset("fig11");
        s
    }

    /// The Figure 12 preset: the front-end clock sweep with the back-end at
    /// +50%, normalized to the synchronous baseline.
    pub fn fig12(budget: SimBudget) -> Self {
        let mut s = Scenario::new("fig12", budget);
        s.clocks = crate::CLOCK_SWEEP.to_vec();
        s
    }

    /// A small grid over the stress workloads used by CI as a smoke test: three
    /// config axes on both machines at a tiny budget.
    pub fn smoke() -> Self {
        let mut s = Scenario::new("smoke", SimBudget::new(2_000, 8_000));
        s.benchmarks = vec![Benchmark::Gzip, Benchmark::PtrChase, Benchmark::StoreStorm];
        s.clocks = vec![(0, 50), (50, 50)];
        s.windows = vec![(64, 64), (128, 128)];
        s.ec_kb = vec![64, 128];
        s
    }

    /// The stress preset: the full stress family plus the promoted
    /// adversarial extremes (`ecworst`, `flybest`) across clocks, window
    /// sizes and memory latencies on both machines.
    pub fn stress(budget: SimBudget) -> Self {
        let mut s = Scenario::new("stress", budget);
        s.benchmarks = Benchmark::stress_suite().to_vec();
        s.benchmarks
            .extend_from_slice(Benchmark::adversarial_suite());
        s.clocks = vec![(0, 0), (50, 50), (100, 50)];
        s.windows = vec![(64, 64), (128, 128)];
        s.mem_cycles = vec![100, 300];
        s
    }

    /// The leakage-attribution preset: technology node x machine x Execution
    /// Cache capacity, at the paper's Figure 15 clock point (FE +100 %,
    /// BE +50 %). Every cell's attributed leakage components are pinned by
    /// [`check_cell_invariants`] against the machine-aware power model, so this
    /// grid is the sweep that demonstrates (and guards) the widened
    /// baseline-vs-Flywheel leakage gap across nodes and EC geometries.
    pub fn leakage(budget: SimBudget) -> Self {
        let mut s = Scenario::new("leakage", budget);
        s.machines = machines_for_preset("default");
        s.nodes = TechNode::power_study_nodes().to_vec();
        s.clocks = vec![(100, 50)];
        s.ec_kb = vec![64, 128, 256];
        s
    }

    /// The multi-domain preset: the baseline against the machine whose
    /// LSQ/D-cache pipeline runs in its own, faster clock domain (Table 1
    /// gives the D-cache headroom over the Issue Window at every node), at
    /// the synchronous point and the paper's FE+50/BE+50 point.
    pub fn multidomain(budget: SimBudget) -> Self {
        let mut s = Scenario::new("multidomain", budget);
        s.machines = machines_for_preset("multidomain");
        s.clocks = vec![(0, 0), (50, 50)];
        s
    }

    /// The DVFS preset: baseline, fixed-clock Flywheel, and the governed
    /// Flywheel whose back-end clock is retuned at fixed intervals from the
    /// observed Execution Cache residency — from the synchronous starting
    /// point and from the paper's FE+50/BE+50 point.
    pub fn dvfs(budget: SimBudget) -> Self {
        let mut s = Scenario::new("dvfs", budget);
        s.machines = machines_for_preset("dvfs");
        s.clocks = vec![(0, 0), (50, 50)];
        s
    }

    /// Validates the scenario: every axis non-empty and every expanded cell's
    /// machine configuration internally consistent.
    pub fn validate(&self) -> Result<(), String> {
        for (axis, empty) in [
            ("benchmarks", self.benchmarks.is_empty()),
            ("machines", self.machines.is_empty()),
            ("nodes", self.nodes.is_empty()),
            ("clocks", self.clocks.is_empty()),
            ("windows", self.windows.is_empty()),
            ("ec_kb", self.ec_kb.is_empty()),
            ("mem_cycles", self.mem_cycles.is_empty()),
            ("seeds", self.seeds.is_empty()),
        ] {
            if empty {
                return Err(format!("scenario '{}': axis '{axis}' is empty", self.name));
            }
        }
        // The seed axis must be strictly increasing: duplicates would silently
        // double-weight one program in every aggregate, and an unsorted list
        // would make the emitted aggregates depend on axis spelling rather
        // than content.
        for pair in self.seeds.windows(2) {
            if pair[1] == pair[0] {
                return Err(format!(
                    "scenario '{}': duplicate seed {} in the seed axis",
                    self.name, pair[0]
                ));
            }
            if pair[1] < pair[0] {
                return Err(format!(
                    "scenario '{}': seed axis is not sorted ({} before {})",
                    self.name, pair[0], pair[1]
                ));
            }
        }
        for cell in self.expand() {
            cell.validate()
                .map_err(|e| format!("scenario '{}', cell {}: {e}", self.name, cell.label()))?;
        }
        Ok(())
    }

    /// Expands the axes into the grid of cells, in a deterministic order.
    pub fn expand(&self) -> Vec<ScenarioCell> {
        let mut cells = Vec::new();
        for &bench in &self.benchmarks {
            for &seed in &self.seeds {
                for &machine in &self.machines {
                    let clocks: &[(u32, u32)] = if machine.uses_clock_axis() {
                        &self.clocks
                    } else {
                        std::slice::from_ref(&self.baseline_clock)
                    };
                    // Machines that ignore the EC axis take only its first
                    // point, so a capacity sweep does not duplicate them. An
                    // empty axis expands to an empty grid (validate() reports
                    // it as an error) instead of panicking here.
                    let ecs: &[u64] = if machine.uses_ec_axis() {
                        &self.ec_kb
                    } else {
                        self.ec_kb.get(..1).unwrap_or(&[])
                    };
                    for &node in &self.nodes {
                        for &(fe_pct, be_pct) in clocks {
                            for &(iw_entries, rob_entries) in &self.windows {
                                for &ec_kb in ecs {
                                    for &mem_cycles in &self.mem_cycles {
                                        cells.push(ScenarioCell {
                                            bench,
                                            seed,
                                            machine,
                                            node,
                                            fe_pct,
                                            be_pct,
                                            iw_entries,
                                            rob_entries,
                                            ec_kb,
                                            mem_cycles,
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        cells
    }

    /// Number of cells the scenario expands to.
    pub fn cell_count(&self) -> usize {
        self.expand().len()
    }

    /// Total instructions the grid simulates (cells × per-cell budget).
    pub fn simulated_instructions(&self) -> u64 {
        self.cell_count() as u64 * self.budget.total()
    }

    /// Runs the grid across all available cores (`FLYWHEEL_JOBS` caps the
    /// worker count, exactly like the `experiments` sweeps).
    pub fn run(&self) -> ScenarioRun {
        self.run_with_jobs(worker_count())
    }

    /// Runs the grid on exactly `jobs` workers. Results are byte-identical for
    /// any worker count. Cells that fail (panic or watchdog timeout) after the
    /// bounded retries are reported in the run's failed-cell manifest; the
    /// sweep itself always completes.
    pub fn run_with_jobs(&self, jobs: usize) -> ScenarioRun {
        fault::maybe_install_from_env();
        let grid = self.expand();
        let budget = self.budget;
        let (slots, failed) = execute_cells(&grid, budget, jobs);
        let mut cells = Vec::with_capacity(grid.len());
        let mut results = Vec::with_capacity(grid.len());
        for (cell, slot) in grid.into_iter().zip(slots) {
            if let Some(r) = slot {
                cells.push(cell);
                results.push(r);
            }
        }
        ScenarioRun {
            scenario: self.clone(),
            cells,
            results,
            failed,
        }
    }

    /// Runs the grid incrementally against a result store: cells whose content
    /// address is already present are recalled without simulating (records
    /// round-trip bit-identically, so the returned run is byte-equal to a cold
    /// [`Scenario::run`]); only the missing cells are simulated — in parallel
    /// — and appended to the store.
    ///
    /// Returns the run plus a [`StoreSummary`] of how many cells were recalled
    /// versus simulated. A second run of an unchanged scenario against the
    /// same store therefore reports `simulated == 0`.
    pub fn run_with_store(&self, store: &mut ResultStore) -> (ScenarioRun, StoreSummary) {
        self.run_with_store_jobs(store, worker_count())
    }

    /// [`Scenario::run_with_store`] with an explicit worker count.
    pub fn run_with_store_jobs(
        &self,
        store: &mut ResultStore,
        jobs: usize,
    ) -> (ScenarioRun, StoreSummary) {
        fault::maybe_install_from_env();
        let grid = self.expand();
        let budget = self.budget;
        let keys: Vec<StoreKey> = grid.iter().map(|c| c.key(budget)).collect();
        // Keep each miss's already-computed key: deriving one renders the full
        // machine config, which is not worth doing twice per cell.
        let misses: Vec<(ScenarioCell, StoreKey)> = grid
            .iter()
            .zip(&keys)
            .filter(|(_, k)| !store.contains(k))
            .map(|(c, k)| (*c, *k))
            .collect();
        let miss_cells: Vec<ScenarioCell> = misses.iter().map(|(c, _)| *c).collect();
        let (slots, failed) = execute_cells(&miss_cells, budget, jobs);
        // Keep each computed miss result keyed: a failed disk append (bad
        // disk, dead appender) degrades to serving the in-memory result for
        // this run instead of panicking the worker.
        let mut computed: std::collections::HashMap<StoreKey, CellResult> =
            std::collections::HashMap::new();
        for ((cell, key), slot) in misses.iter().zip(&slots) {
            let Some(result) = slot else {
                continue; // failed cells are never inserted into the store
            };
            let stats = RunStats {
                sim: result.sim.clone(),
                flywheel: result.flywheel,
            };
            if let Err(e) = store.insert(*key, &cell.label(), stats) {
                eprintln!("warning: could not append to the result store: {e}");
            }
            computed.insert(*key, result.clone());
        }
        let failed_keys: std::collections::HashSet<StoreKey> = misses
            .iter()
            .zip(&slots)
            .filter(|(_, slot)| slot.is_none())
            .map(|((_, k), _)| *k)
            .collect();
        let mut cells = Vec::with_capacity(grid.len());
        let mut results = Vec::with_capacity(grid.len());
        for (cell, k) in grid.iter().zip(&keys) {
            if failed_keys.contains(k) {
                continue;
            }
            let r = match store.get(k) {
                Some(r) => CellResult {
                    sim: r.sim.clone(),
                    flywheel: r.flywheel,
                },
                // The store insert failed, so the key never landed; the
                // result computed by the miss sweep still stands.
                None => match computed.get(k) {
                    Some(r) => r.clone(),
                    None => continue,
                },
            };
            cells.push(*cell);
            results.push(r);
        }
        let summary = StoreSummary {
            hits: grid.len() - misses.len(),
            simulated: misses.len() - failed.len(),
        };
        (
            ScenarioRun {
                scenario: self.clone(),
                cells,
                results,
                failed,
            },
            summary,
        )
    }
}

/// How often a failing cell is attempted in total (one initial run plus
/// bounded retries — enough to recover any single-shot transient failure
/// without letting a persistent bug multiply the sweep's cost unboundedly).
pub const MAX_CELL_ATTEMPTS: u32 = 3;

/// Base backoff between retry rounds; round `n` waits `BACKOFF_MS << (n-1)`.
/// Deterministic (a fixed schedule, no jitter) so fault-injection runs are
/// exactly reproducible.
const RETRY_BACKOFF_MS: u64 = 25;

/// The watchdog budget a cell is armed with: a cycle cap orders of magnitude
/// above any reachable cycles-per-instruction (the worst memory-bound
/// configuration in the repo sustains a few hundred cycles per instruction;
/// the cap allows ten thousand), plus whatever wall-clock deadline or cap
/// override the installed fault plan requests. A healthy cell can never trip
/// it, so arming changes no simulated result — it only converts runaways into
/// typed failures.
fn cell_watchdog_config(budget: SimBudget) -> WatchdogConfig {
    let mut cfg = WatchdogConfig::cycles(
        budget
            .total()
            .saturating_mul(10_000)
            .saturating_add(10_000_000),
    );
    if fault::active() {
        if let Some(plan) = fault::plan() {
            if let Some(cap) = plan.max_cycles {
                cfg.max_be_cycles = cap;
            }
            if let Some(ms) = plan.timeout_ms {
                cfg = cfg.with_wall_timeout(Duration::from_millis(ms));
            }
        }
    }
    cfg
}

/// Runs one cell attempt in isolation: watchdog armed, panics caught.
fn run_cell_guarded(cell: &ScenarioCell, budget: SimBudget, attempt: u32) -> CellOutcome {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let _watchdog = watchdog::arm(cell_watchdog_config(budget));
        if fault::active() {
            inject_cell_fault(&cell.label(), attempt);
        }
        cell.run(budget)
    }));
    match outcome {
        Ok(result) => CellOutcome::Done(result),
        Err(payload) => CellOutcome::Failed {
            cause: FailCause::from_panic_payload(payload),
        },
    }
}

/// Applies the installed fault plan to a cell attempt (no-op without a plan).
fn inject_cell_fault(label: &str, attempt: u32) {
    match fault::cell_fault(label) {
        Some(fault::CellFault::Panic) => {
            panic!("fault injection: forced panic in cell {label} (attempt {attempt})")
        }
        Some(fault::CellFault::Transient) if attempt == 0 => {
            panic!("fault injection: transient panic in cell {label} (attempt {attempt})")
        }
        Some(fault::CellFault::Stall) => watchdog::stall_until_deadline(),
        _ => {}
    }
}

/// Runs one cell to completion with the executor's full panic isolation and
/// bounded-retry policy, *without* re-running the fault-plan cell assignment
/// (callers that sweep incrementally — the shard worker — assign once over
/// their whole label set, then run cells one at a time between heartbeats).
pub(crate) fn run_cell_with_retries(
    cell: &ScenarioCell,
    budget: SimBudget,
) -> Result<CellResult, FailedCell> {
    let mut last_cause = None;
    for attempt in 0..MAX_CELL_ATTEMPTS {
        if attempt > 0 {
            std::thread::sleep(Duration::from_millis(RETRY_BACKOFF_MS << (attempt - 1)));
        }
        match run_cell_guarded(cell, budget, attempt) {
            CellOutcome::Done(r) => return Ok(r),
            CellOutcome::Failed { cause } => last_cause = Some(cause),
        }
    }
    Err(FailedCell {
        cell: *cell,
        cause: last_cause
            .unwrap_or_else(|| FailCause::Panic("cell failed without a recorded cause".to_owned())),
        attempts: MAX_CELL_ATTEMPTS,
    })
}

/// Runs `cells` with panic isolation and bounded retries. Returns one slot per
/// input cell (`None` = failed after every attempt, in which case the second
/// vector carries its manifest entry, in grid order).
fn execute_cells(
    cells: &[ScenarioCell],
    budget: SimBudget,
    jobs: usize,
) -> (Vec<Option<CellResult>>, Vec<FailedCell>) {
    if fault::active() {
        let labels: Vec<String> = cells.iter().map(|c| c.label()).collect();
        fault::assign_cells(&labels);
    }
    let mut slots: Vec<Option<CellResult>> = vec![None; cells.len()];
    let mut last_cause: Vec<Option<FailCause>> = vec![None; cells.len()];
    let mut attempts_used: Vec<u32> = vec![0; cells.len()];
    let mut pending: Vec<usize> = (0..cells.len()).collect();
    for attempt in 0..MAX_CELL_ATTEMPTS {
        if pending.is_empty() {
            break;
        }
        if attempt > 0 {
            std::thread::sleep(Duration::from_millis(RETRY_BACKOFF_MS << (attempt - 1)));
        }
        let batch: Vec<ScenarioCell> = pending.iter().map(|&i| cells[i]).collect();
        let outcomes =
            parallel_map_jobs(&batch, jobs, |cell| run_cell_guarded(cell, budget, attempt));
        let mut still_failing = Vec::new();
        for (&i, outcome) in pending.iter().zip(outcomes) {
            attempts_used[i] = attempt + 1;
            match outcome {
                CellOutcome::Done(r) => slots[i] = Some(r),
                CellOutcome::Failed { cause } => {
                    last_cause[i] = Some(cause);
                    still_failing.push(i);
                }
            }
        }
        pending = still_failing;
    }
    let failed = (0..cells.len())
        .filter(|&i| slots[i].is_none())
        .map(|i| FailedCell {
            cell: cells[i],
            cause: last_cause[i].take().unwrap_or_else(|| {
                FailCause::Panic("cell failed without a recorded cause".to_owned())
            }),
            attempts: attempts_used[i],
        })
        .collect();
    (slots, failed)
}

/// One point of an expanded scenario grid: a (benchmark, seed, machine,
/// configuration) simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioCell {
    /// Workload.
    pub bench: Benchmark,
    /// Workload seed.
    pub seed: u64,
    /// Machine model.
    pub machine: Machine,
    /// Technology node.
    pub node: TechNode,
    /// Front-end clock speed-up over the baseline clock, percent.
    pub fe_pct: u32,
    /// Back-end clock speed-up over the baseline clock, percent.
    pub be_pct: u32,
    /// Issue Window entries.
    pub iw_entries: u32,
    /// Reorder-buffer entries.
    pub rob_entries: u32,
    /// Execution Cache capacity in KiB (unused by baseline-family machines).
    pub ec_kb: u64,
    /// Main-memory latency in baseline cycles.
    pub mem_cycles: u32,
}

impl ScenarioCell {
    /// A short human-readable cell label.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/s{}/{}nm/FE{}+BE{}/iw{}rob{}/ec{}K/mem{}",
            self.machine,
            self.bench,
            self.seed,
            self.node.feature_nm(),
            self.fe_pct,
            self.be_pct,
            self.iw_entries,
            self.rob_entries,
            self.ec_kb,
            self.mem_cycles
        )
    }

    /// The machine-independent coordinates of this cell (what a machine
    /// family's builder resolves into a concrete configuration).
    pub fn axes(&self) -> CellAxes {
        CellAxes {
            bench: self.bench,
            seed: self.seed,
            node: self.node,
            fe_pct: self.fe_pct,
            be_pct: self.be_pct,
            iw_entries: self.iw_entries,
            rob_entries: self.rob_entries,
            ec_kb: self.ec_kb,
            mem_cycles: self.mem_cycles,
        }
    }

    /// The executor for this cell: the cell's machine family resolved at the
    /// cell's axes, owning the full machine configuration. With every axis at
    /// its paper default the resolved configuration is exactly the paper
    /// machine (plus the family's structural knob), which is what makes the
    /// figure presets byte-identical to the `experiments` binary.
    pub fn executor(&self) -> Box<dyn Executor> {
        self.machine.family().builder.build(&self.axes())
    }

    /// Validates the cell's machine configuration.
    pub fn validate(&self) -> Result<(), String> {
        self.executor().validate()
    }

    /// The content address of this cell at `budget`: a hash of the machine
    /// family, its full configuration, workload, seed, budget, and the
    /// code-version salt (see [`crate::store`]).
    pub fn key(&self, budget: SimBudget) -> StoreKey {
        self.executor().key(budget)
    }

    /// Runs the cell against the shared recorded trace of its
    /// `(benchmark, seed)` pair (recalling it from the process-global result
    /// store instead, when one is installed).
    pub fn run(&self, budget: SimBudget) -> CellResult {
        let r = self.executor().run(budget);
        CellResult {
            sim: r.sim,
            flywheel: r.flywheel,
        }
    }
}

/// The result of one cell: the machine-independent simulation result plus the
/// Flywheel statistics when the cell ran the Flywheel machine.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Performance/energy/pipeline statistics.
    pub sim: SimResult,
    /// Flywheel-specific statistics (None for baseline-family machines).
    pub flywheel: Option<FlywheelStats>,
}

/// Why a cell failed (the `cause` of [`CellOutcome::Failed`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailCause {
    /// The simulation panicked — a simulator bug or an injected fault.
    Panic(String),
    /// The armed watchdog budget fired (cycle cap or wall-clock deadline).
    Timeout(String),
}

impl FailCause {
    /// Short machine-readable kind, used in the CSV `status` column.
    pub fn kind(&self) -> &'static str {
        match self {
            FailCause::Panic(_) => "panic",
            FailCause::Timeout(_) => "timeout",
        }
    }

    /// The human-readable failure description.
    pub fn message(&self) -> &str {
        match self {
            FailCause::Panic(m) | FailCause::Timeout(m) => m,
        }
    }

    /// Classifies a caught panic payload: a [`WatchdogTimeout`] is a typed
    /// timeout, anything else (including the kernels' no-progress panics) is a
    /// plain panic.
    fn from_panic_payload(payload: Box<dyn std::any::Any + Send>) -> FailCause {
        match payload.downcast::<WatchdogTimeout>() {
            Ok(timeout) => FailCause::Timeout(timeout.to_string()),
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&'static str>().copied())
                    .unwrap_or("non-string panic payload");
                FailCause::Panic(msg.to_owned())
            }
        }
    }
}

impl std::fmt::Display for FailCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind(), self.message())
    }
}

/// The outcome of running one cell under the guarded executor.
///
/// Short-lived: produced per attempt and destructured immediately by
/// `execute_cells`, so the variant size gap never sits in a collection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum CellOutcome {
    /// The cell completed and produced a result.
    Done(CellResult),
    /// The cell failed; the sweep continues without it.
    Failed {
        /// What took the cell down.
        cause: FailCause,
    },
}

/// One entry of a degraded run's failed-cell manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct FailedCell {
    /// The grid point that failed.
    pub cell: ScenarioCell,
    /// The final failure cause (after all retries).
    pub cause: FailCause,
    /// How many attempts were made (1..=[`MAX_CELL_ATTEMPTS`]).
    pub attempts: u32,
}

/// Per-metric statistics of one configuration point aggregated over the
/// scenario's seed axis (see [`ScenarioRun::seed_aggregates`]).
///
/// `n` counts only the seeds that actually succeeded at this point; when a
/// seed's cell failed, `n < expected_n` and the point is *reduced* — the
/// failure is never silently averaged away, it shrinks the sample and is
/// flagged as such in every emitter.
#[derive(Debug, Clone, PartialEq)]
pub struct SeedAggregate {
    /// The configuration point, represented by its cell at the scenario's
    /// first seed (the `seed` field is the collapsed axis, not a sample).
    pub cell: ScenarioCell,
    /// Seeds that succeeded at this point.
    pub n: usize,
    /// Seeds the scenario's axis asked for.
    pub expected_n: usize,
    /// Instructions-per-cycle across seeds.
    pub ipc: Aggregate,
    /// Elapsed wall-clock picoseconds across seeds.
    pub elapsed_ps: Aggregate,
    /// Total energy (pJ) across seeds.
    pub energy_pj: Aggregate,
    /// Average power (W) across seeds.
    pub power_w: Aggregate,
    /// Execution Cache residency across seeds (Flywheel-family cells only).
    pub ec_residency: Option<Aggregate>,
}

impl SeedAggregate {
    /// Whether at least one requested seed is missing from this point's
    /// sample (its cell failed and landed in the manifest instead).
    pub fn is_reduced(&self) -> bool {
        self.n < self.expected_n
    }

    /// The CSV/JSON status marker: `n=<got>/<want>`, prefixed with
    /// `reduced:` when seeds are missing.
    pub fn status(&self) -> String {
        if self.is_reduced() {
            format!("aggregate:reduced:n={}/{}", self.n, self.expected_n)
        } else {
            format!("aggregate:n={}/{}", self.n, self.expected_n)
        }
    }
}

/// Checks the machine invariants one cell's result must satisfy regardless of
/// configuration. Returns a description of the first violation.
pub fn check_cell_invariants(
    cell: &ScenarioCell,
    budget: SimBudget,
    r: &CellResult,
) -> Result<(), String> {
    let fail = |msg: String| Err(format!("cell {}: {msg}", cell.label()));
    let sim = &r.sim;
    // The simulator must retire exactly the measured budget.
    if sim.instructions != budget.measured_instructions {
        return fail(format!(
            "retired {} instructions, budget measured {}",
            sim.instructions, budget.measured_instructions
        ));
    }
    if sim.be_cycles == 0 || sim.fe_cycles == 0 || sim.elapsed_ps == 0 {
        return fail(format!(
            "degenerate counters: be {} fe {} elapsed {}",
            sim.be_cycles, sim.fe_cycles, sim.elapsed_ps
        ));
    }
    // Retirement bandwidth bounds the cycle count from below. The executor
    // owns the resolved machine configuration, so the checker never matches
    // on machine variants — any registered family is checkable as-is.
    let exec = cell.executor();
    let commit_width = exec.commit_width();
    if sim.instructions > sim.be_cycles * commit_width as u64 {
        return fail(format!(
            "{} instructions exceed the commit bandwidth of {} cycles x {}",
            sim.instructions, sim.be_cycles, commit_width
        ));
    }
    // Energy: every component finite and non-negative, and the reported total
    // must equal their sum (within f64 rounding of the summation order).
    let e = &sim.energy;
    let components = [
        ("frontend", e.frontend_pj),
        ("backend", e.backend_pj),
        ("flywheel", e.flywheel_pj),
        ("clock", e.clock_pj),
        ("leakage_frontend", e.leakage_frontend_pj),
        ("leakage_backend", e.leakage_backend_pj),
        ("leakage_flywheel", e.leakage_flywheel_pj),
    ];
    for (name, v) in components {
        if !v.is_finite() || v < 0.0 {
            return fail(format!("energy component {name} is {v}"));
        }
    }
    let sum: f64 = components.iter().map(|&(_, v)| v).sum();
    let total = e.total_pj();
    if (total - sum).abs() > 1e-6 * sum.max(1.0) {
        return fail(format!("energy total {total} != component sum {sum}"));
    }
    // Leakage attribution: each reported component must equal the machine-aware
    // power model's per-category leakage over the cell's elapsed time,
    // recomputed here from the cell's own machine configuration. This is the
    // invariant that makes machine-blind leakage accounting (the class of bug
    // fixed in PR 5: a baseline charged for Execution-Cache leakage it does not
    // instantiate) impossible to reintroduce silently in either kernel.
    let (power_cfg, kind) = exec.power_binding();
    let model = PowerModel::new(power_cfg);
    let elapsed_s = sim.elapsed_ps as f64 * 1.0e-12;
    for (cat, name, got) in [
        (UnitCategory::FrontEnd, "frontend", e.leakage_frontend_pj),
        (UnitCategory::BackEnd, "backend", e.leakage_backend_pj),
        (
            UnitCategory::FlywheelExtra,
            "flywheel",
            e.leakage_flywheel_pj,
        ),
    ] {
        let want = model.machine_leakage_w(kind, Some(cat)) * elapsed_s * 1.0e12;
        if (got - want).abs() > 1e-9 * want.max(1.0) {
            return fail(format!(
                "{name} leakage {got} pJ disagrees with the machine-aware model ({want} pJ)"
            ));
        }
    }
    // Average power must be consistent with total energy over elapsed time.
    let implied_w = total * 1.0e-12 / (sim.elapsed_ps as f64 * 1.0e-12);
    if (sim.average_power_w() - implied_w).abs() > 1e-9 * implied_w.max(1.0) {
        return fail(format!(
            "average power {} inconsistent with energy/time {}",
            sim.average_power_w(),
            implied_w
        ));
    }
    if !(0.0..=1.0).contains(&sim.gated_frontend_fraction) {
        return fail(format!(
            "gated front-end fraction {} outside [0, 1]",
            sim.gated_frontend_fraction
        ));
    }
    match (&r.flywheel, cell.machine.is_baseline()) {
        (Some(_), true) => return fail("baseline cell carries Flywheel stats".into()),
        (None, false) => return fail("Flywheel cell lost its stats".into()),
        (Some(f), false) => {
            // Every Flywheel-family machine instantiates at least the Register
            // Update stage (the RegAlloc variant's Execution Cache enters the
            // power geometry as zero bytes), so its Flywheel-category leakage
            // is strictly positive.
            if e.leakage_flywheel_pj <= 0.0 {
                return fail(format!(
                    "Flywheel machine reports {} pJ of Flywheel-structure leakage",
                    e.leakage_flywheel_pj
                ));
            }
            if f.ec_hits > f.ec_lookups {
                return fail(format!(
                    "EC hits {} exceed lookups {}",
                    f.ec_hits, f.ec_lookups
                ));
            }
            for (name, v) in [
                ("ec_residency", f.ec_residency),
                ("ec_utilization", f.ec_utilization),
            ] {
                if !(0.0..=1.0).contains(&v) {
                    return fail(format!("{name} {v} outside [0, 1]"));
                }
            }
            // A Flywheel-kind family that does not consume the EC axis (the
            // register-allocation machine) must never touch the EC.
            if !cell.machine.uses_ec_axis() && f.ec_lookups != 0 {
                return fail(format!(
                    "machine '{}' has no Execution Cache but performed {} EC lookups",
                    cell.machine, f.ec_lookups
                ));
            }
        }
        (None, true) => {
            // The baseline never gates its front-end clock and owns no
            // Flywheel-only units.
            if sim.gated_frontend_fraction != 0.0 {
                return fail("baseline gated its front-end clock".into());
            }
            if e.flywheel_pj != 0.0 {
                return fail(format!("baseline charged {} pJ to EC units", e.flywheel_pj));
            }
            if e.leakage_flywheel_pj != 0.0 {
                return fail(format!(
                    "baseline charged {} pJ of leakage to Flywheel-only structures",
                    e.leakage_flywheel_pj
                ));
            }
        }
    }
    Ok(())
}

/// The results of one executed scenario grid.
///
/// When every cell succeeds (the normal case), `cells` is the full expanded
/// grid and `failed` is empty — byte-identical to the pre-fault-tolerance
/// behaviour. When cells fail, the run is *degraded*: `cells`/`results` hold
/// only the succeeded grid points (still in grid order) and `failed` carries
/// the manifest of what was lost and why.
#[derive(Debug, Clone)]
pub struct ScenarioRun {
    /// The scenario that was run.
    pub scenario: Scenario,
    /// The succeeded grid points, in execution order.
    pub cells: Vec<ScenarioCell>,
    /// One result per succeeded cell, in the same order.
    pub results: Vec<CellResult>,
    /// Cells that failed after every retry, in grid order.
    pub failed: Vec<FailedCell>,
}

impl ScenarioRun {
    /// Whether the run completed degraded (at least one cell failed).
    pub fn is_degraded(&self) -> bool {
        !self.failed.is_empty()
    }

    /// Grid points attempted: succeeded plus failed.
    pub fn attempted(&self) -> usize {
        self.cells.len() + self.failed.len()
    }
    /// Runs [`check_cell_invariants`] over every cell, then
    /// [`check_aggregate_invariants`](Self::check_aggregate_invariants) over
    /// the seed-axis aggregates — per-seed invariants stay enforced on every
    /// sample that enters an aggregate.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (cell, r) in self.cells.iter().zip(&self.results) {
            check_cell_invariants(cell, self.scenario.budget, r)?;
        }
        self.check_aggregate_invariants()
    }

    /// Groups the succeeded cells by configuration point (every axis except
    /// the seed) and folds each point's per-seed metrics into a
    /// [`SeedAggregate`], in grid order.
    ///
    /// Deterministic for any worker or shard count: per-cell results are
    /// bit-identical however they were computed, and both the point order
    /// (first occurrence in the grid) and the per-point fold order (the seed
    /// axis order) are properties of the scenario, not of the execution.
    /// A point whose every seed failed does not appear at all — the
    /// failed-cell manifest is its record.
    pub fn seed_aggregates(&self) -> Vec<SeedAggregate> {
        let first_seed = self
            .scenario
            .seeds
            .first()
            .copied()
            .unwrap_or(EXPERIMENT_SEED);
        let expected_n = self.scenario.seeds.len();
        let mut aggs: Vec<SeedAggregate> = Vec::new();
        for (cell, r) in self.cells.iter().zip(&self.results) {
            let mut point = *cell;
            point.seed = first_seed;
            let agg = match aggs.iter_mut().find(|a| a.cell == point) {
                Some(a) => a,
                None => {
                    aggs.push(SeedAggregate {
                        cell: point,
                        n: 0,
                        expected_n,
                        ipc: Aggregate::new(),
                        elapsed_ps: Aggregate::new(),
                        energy_pj: Aggregate::new(),
                        power_w: Aggregate::new(),
                        ec_residency: None,
                    });
                    aggs.last_mut().expect("just pushed")
                }
            };
            agg.n += 1;
            agg.ipc.add(r.sim.ipc());
            agg.elapsed_ps.add(r.sim.elapsed_ps as f64);
            agg.energy_pj.add(r.sim.energy.total_pj());
            agg.power_w.add(r.sim.average_power_w());
            if let Some(f) = &r.flywheel {
                agg.ec_residency
                    .get_or_insert_with(Aggregate::new)
                    .add(f.ec_residency);
            }
        }
        aggs
    }

    /// Checks the seed-axis aggregates: sample counts must reconcile exactly
    /// with the grid and the failed-cell manifest (a missing seed is only
    /// ever explained by a manifest entry — never silently dropped), means
    /// must lie inside the observed sample range, and every confidence
    /// interval must be finite, non-negative, and zero exactly when the
    /// sample carries no spread information.
    pub fn check_aggregate_invariants(&self) -> Result<(), String> {
        let first_seed = self
            .scenario
            .seeds
            .first()
            .copied()
            .unwrap_or(EXPERIMENT_SEED);
        for a in self.seed_aggregates() {
            let fail = |msg: String| Err(format!("aggregate {}: {msg}", a.cell.label()));
            if a.n == 0 || a.n > a.expected_n {
                return fail(format!("{} samples of {} expected", a.n, a.expected_n));
            }
            let failed_here = self
                .failed
                .iter()
                .filter(|f| {
                    let mut p = f.cell;
                    p.seed = first_seed;
                    p == a.cell
                })
                .count();
            if a.expected_n - a.n != failed_here {
                return fail(format!(
                    "{} of {} seeds missing but {} failed cells recorded at this point",
                    a.expected_n - a.n,
                    a.expected_n,
                    failed_here
                ));
            }
            for (name, m) in [
                ("ipc", &a.ipc),
                ("elapsed_ps", &a.elapsed_ps),
                ("energy_pj", &a.energy_pj),
                ("power_w", &a.power_w),
            ] {
                if m.n() != a.n as u64 {
                    return fail(format!("metric {name} folded {} of {} samples", m.n(), a.n));
                }
                let (mean, hw) = (m.mean(), m.ci95_halfwidth());
                if !mean.is_finite() || !hw.is_finite() || hw < 0.0 {
                    return fail(format!("metric {name}: mean {mean}, ci95 {hw}"));
                }
                let slack = 1e-9 * m.max().abs().max(1.0);
                if mean < m.min() - slack || mean > m.max() + slack {
                    return fail(format!(
                        "metric {name}: mean {mean} outside sample range [{}, {}]",
                        m.min(),
                        m.max()
                    ));
                }
                let spreadless = a.n < 2 || m.sample_stddev() == 0.0;
                if spreadless != (hw == 0.0) {
                    return fail(format!(
                        "metric {name}: ci95 {hw} inconsistent with stddev {} at n = {}",
                        m.sample_stddev(),
                        a.n
                    ));
                }
            }
            if a.cell.machine.is_baseline() != a.ec_residency.is_none() {
                return fail("EC residency aggregate on the wrong machine family".into());
            }
        }
        Ok(())
    }

    /// The result of the first cell matching `(bench, machine, fe, be)`, if
    /// present in the grid.
    pub fn result_for(
        &self,
        bench: Benchmark,
        machine: Machine,
        fe_pct: u32,
        be_pct: u32,
    ) -> Option<&CellResult> {
        self.cells
            .iter()
            .position(|c| {
                c.bench == bench && c.machine == machine && c.fe_pct == fe_pct && c.be_pct == be_pct
            })
            .map(|i| &self.results[i])
    }

    /// Checks that the grid can support a figure table: every non-machine,
    /// non-clock axis must be pinned to the paper's single point (otherwise the
    /// rendered output would carry a paper-figure title while describing a
    /// different machine, or `result_for` would silently pick the first
    /// matching cell of a multi-point grid), and every machine the table reads
    /// must be in the grid.
    fn figure_grid_guard(&self, figure: &str, machines: &[Machine]) -> Result<(), String> {
        let s = &self.scenario;
        let paper = Scenario::new(&s.name, s.budget);
        let fmt_axis = |v: &dyn std::fmt::Debug| format!("{v:?}");
        for (axis, got, want) in [
            ("seeds", fmt_axis(&s.seeds), fmt_axis(&paper.seeds)),
            ("nodes", fmt_axis(&s.nodes), fmt_axis(&paper.nodes)),
            ("windows", fmt_axis(&s.windows), fmt_axis(&paper.windows)),
            ("ec_kb", fmt_axis(&s.ec_kb), fmt_axis(&paper.ec_kb)),
            (
                "mem_cycles",
                fmt_axis(&s.mem_cycles),
                fmt_axis(&paper.mem_cycles),
            ),
            (
                "baseline_clock",
                fmt_axis(&s.baseline_clock),
                fmt_axis(&paper.baseline_clock),
            ),
        ] {
            if got != want {
                return Err(format!(
                    "{figure} is defined at the paper configuration ('{axis}' = {want}); \
                     scenario '{}' has {got}",
                    s.name
                ));
            }
        }
        for m in machines {
            if !s.machines.contains(m) {
                return Err(format!(
                    "{figure} table needs machine '{m}', scenario '{}' does not run it",
                    s.name
                ));
            }
        }
        Ok(())
    }

    fn reference_baseline(&self, bench: Benchmark) -> Result<&SimResult, String> {
        let (fe, be) = self.scenario.baseline_clock;
        self.result_for(bench, Machine::Baseline, fe, be)
            .map(|r| &r.sim)
            .ok_or_else(|| format!("no baseline reference cell for '{bench}' in the grid"))
    }

    fn required(
        &self,
        bench: Benchmark,
        m: Machine,
        fe: u32,
        be: u32,
    ) -> Result<&SimResult, String> {
        self.result_for(bench, m, fe, be)
            .map(|r| &r.sim)
            .ok_or_else(|| format!("no ({bench}, {m}, FE{fe}/BE{be}) cell in the grid"))
    }

    /// Renders the Figure 2 table from a [`Scenario::fig2`] run — byte-identical
    /// to `experiments fig2` at the same budget. Fails (instead of mislabelling
    /// the output) when the grid lacks the cells the figure needs.
    pub fn fig2_table(&self) -> Result<String, String> {
        self.figure_grid_guard(
            "fig2",
            &[
                Machine::Baseline,
                Machine::BaselineExtraFe,
                Machine::BaselinePipedWakeup,
            ],
        )?;
        let columns = vec!["fetch+1 %".to_owned(), "wakeup/sel %".to_owned()];
        let (fe, be) = self.scenario.baseline_clock;
        let mut rows = Vec::new();
        for &bench in &self.scenario.benchmarks {
            let base = self.reference_baseline(bench)?;
            let degradation = |m: Machine| -> Result<f64, String> {
                let v = self.required(bench, m, fe, be)?;
                Ok((v.elapsed_ps as f64 / base.elapsed_ps as f64 - 1.0) * 100.0)
            };
            rows.push(Row {
                bench: bench.name(),
                values: vec![
                    degradation(Machine::BaselineExtraFe)?,
                    degradation(Machine::BaselinePipedWakeup)?,
                ],
            });
        }
        Ok(format_table(
            "Figure 2: performance degradation (%) from pipeline-loop stretching",
            &columns,
            &rows,
        ))
    }

    /// Renders the Figure 11 table from a [`Scenario::fig11`] run —
    /// byte-identical to `experiments fig11` at the same budget. Fails when the
    /// grid lacks the cells the figure needs (the machines at the baseline
    /// clock point `(0, 0)`).
    pub fn fig11_table(&self) -> Result<String, String> {
        self.figure_grid_guard(
            "fig11",
            &[Machine::Baseline, Machine::RegAlloc, Machine::Flywheel],
        )?;
        let columns = vec!["reg-alloc".to_owned(), "flywheel".to_owned()];
        let mut rows = Vec::new();
        for &bench in &self.scenario.benchmarks {
            let base = self.reference_baseline(bench)?;
            let speedup = |m: Machine| -> Result<f64, String> {
                Ok(self.required(bench, m, 0, 0)?.speedup_over(base))
            };
            rows.push(Row {
                bench: bench.name(),
                values: vec![speedup(Machine::RegAlloc)?, speedup(Machine::Flywheel)?],
            });
        }
        Ok(format_table(
            "Figure 11: performance at the baseline clock, normalized to the baseline",
            &columns,
            &rows,
        ))
    }

    /// Renders the Figure 12 table from a [`Scenario::fig12`] run —
    /// byte-identical to `experiments fig12` at the same budget (columns follow
    /// the scenario's clock axis). Fails when the grid lacks the cells the
    /// figure needs.
    pub fn fig12_table(&self) -> Result<String, String> {
        self.figure_grid_guard("fig12", &[Machine::Baseline, Machine::Flywheel])?;
        let columns: Vec<String> = self
            .scenario
            .clocks
            .iter()
            .map(|(fe, be)| format!("FE{fe}/BE{be}"))
            .collect();
        let mut rows = Vec::new();
        for &bench in &self.scenario.benchmarks {
            let base = self.reference_baseline(bench)?;
            let mut values = Vec::new();
            for &(fe, be) in &self.scenario.clocks {
                values.push(
                    self.required(bench, Machine::Flywheel, fe, be)?
                        .speedup_over(base),
                );
            }
            rows.push(Row {
                bench: bench.name(),
                values,
            });
        }
        Ok(format_table(
            "Figure 12: relative performance",
            &columns,
            &rows,
        ))
    }

    /// The scenario name as emitted into CSV/JSON: anything that could break
    /// the hand-assembled formats (quotes, commas, newlines, non-ASCII) is
    /// replaced by `_`. Preset names pass through unchanged.
    fn emitted_name(&self) -> String {
        self.scenario
            .name
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.' | ' ') {
                    c
                } else {
                    '_'
                }
            })
            .collect()
    }

    /// Telemetry events recorded for `cell` by the process-global sink (0
    /// when telemetry is off — the column then stays all-zero, keeping
    /// telemetry-off emissions byte-identical across runs).
    fn telemetry_events_for(&self, cell: &ScenarioCell) -> u64 {
        if !crate::telemetry::telemetry_installed() {
            return 0;
        }
        crate::telemetry::telemetry_count_matching(&cell.key(self.scenario.budget).hex())
    }

    /// Emits the run as CSV (one row per cell, header included).
    ///
    /// The trailing `status` column is `ok` for succeeded cells. A degraded
    /// run appends one row per failed cell after the succeeded rows: the
    /// configuration columns are filled, every metric column is empty, and
    /// `status` is `failed:<kind>` (`failed:panic` / `failed:timeout`).
    ///
    /// A multi-seed run additionally appends one row per configuration point
    /// (see [`ScenarioRun::seed_aggregates`]) after the failed rows: `seed`
    /// is the literal `agg`, the metric columns carry the per-seed means, the
    /// `*_ci95` columns carry the 95% confidence half-widths, and `status` is
    /// the aggregate's `n=<got>/<want>` marker (prefixed `reduced:` when a
    /// failed seed shrank the sample). Single-seed runs leave the `*_ci95`
    /// columns empty and append no aggregate rows.
    pub fn to_csv(&self) -> String {
        let mut s = String::from(
            "scenario,bench,seed,machine,node_nm,fe_pct,be_pct,iw,rob,ec_kb,mem_cycles,\
             instructions,be_cycles,fe_cycles,elapsed_ps,squashed,ipc,total_energy_pj,\
             avg_power_w,leak_frontend_pj,leak_backend_pj,leak_flywheel_pj,leak_fraction,\
             gated_fraction,ec_residency,ec_hit_rate,telemetry_events,\
             ipc_ci95,elapsed_ps_ci95,energy_pj_ci95,power_w_ci95,status\n",
        );
        let name = self.emitted_name();
        for (cell, r) in self.cells.iter().zip(&self.results) {
            let (res, hit) = match &r.flywheel {
                Some(f) => (
                    format!("{:.6}", f.ec_residency),
                    format!("{:.6}", f.ec_hit_rate()),
                ),
                None => (String::new(), String::new()),
            };
            s.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{:.6},{:.3},{:.6},\
                 {:.3},{:.3},{:.3},{:.6},{:.6},{},{},{},,,,,ok\n",
                name,
                cell.bench,
                cell.seed,
                cell.machine,
                cell.node.feature_nm(),
                cell.fe_pct,
                cell.be_pct,
                cell.iw_entries,
                cell.rob_entries,
                cell.ec_kb,
                cell.mem_cycles,
                r.sim.instructions,
                r.sim.be_cycles,
                r.sim.fe_cycles,
                r.sim.elapsed_ps,
                r.sim.squashed,
                r.sim.ipc(),
                r.sim.energy.total_pj(),
                r.sim.average_power_w(),
                r.sim.energy.leakage_frontend_pj,
                r.sim.energy.leakage_backend_pj,
                r.sim.energy.leakage_flywheel_pj,
                r.sim.energy.leakage_fraction(),
                r.sim.gated_frontend_fraction,
                res,
                hit,
                self.telemetry_events_for(cell),
            ));
        }
        for f in &self.failed {
            let cell = &f.cell;
            s.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},,,,,,,,,,,,,,,,,,,,,failed:{}\n",
                name,
                cell.bench,
                cell.seed,
                cell.machine,
                cell.node.feature_nm(),
                cell.fe_pct,
                cell.be_pct,
                cell.iw_entries,
                cell.rob_entries,
                cell.ec_kb,
                cell.mem_cycles,
                f.cause.kind(),
            ));
        }
        if self.scenario.seeds.len() > 1 {
            for a in self.seed_aggregates() {
                let cell = &a.cell;
                let res = match &a.ec_residency {
                    Some(m) => format!("{:.6}", m.mean()),
                    None => String::new(),
                };
                s.push_str(&format!(
                    "{},{},agg,{},{},{},{},{},{},{},{},,,,{:.3},,{:.6},{:.3},{:.6},\
                     ,,,,,{},,,{:.6},{:.3},{:.3},{:.6},{}\n",
                    name,
                    cell.bench,
                    cell.machine,
                    cell.node.feature_nm(),
                    cell.fe_pct,
                    cell.be_pct,
                    cell.iw_entries,
                    cell.rob_entries,
                    cell.ec_kb,
                    cell.mem_cycles,
                    a.elapsed_ps.mean(),
                    a.ipc.mean(),
                    a.energy_pj.mean(),
                    a.power_w.mean(),
                    res,
                    a.ipc.ci95_halfwidth(),
                    a.elapsed_ps.ci95_halfwidth(),
                    a.energy_pj.ci95_halfwidth(),
                    a.power_w.ci95_halfwidth(),
                    a.status(),
                ));
            }
        }
        s
    }

    /// Emits the run as JSON (hand-assembled: the container has no registry
    /// access for serde; every emitted string is sanitized plain ASCII, so no
    /// escaping is needed).
    pub fn to_json(&self) -> String {
        let b = self.scenario.budget;
        let mut s = String::from("{\n  \"schema\": \"flywheel-scenarios/3\",\n");
        s.push_str(&format!("  \"scenario\": \"{}\",\n", self.emitted_name()));
        s.push_str(&format!(
            "  \"budget\": {{\"warmup_instructions\": {}, \"measured_instructions\": {}}},\n",
            b.warmup_instructions, b.measured_instructions
        ));
        s.push_str(&format!("  \"cell_count\": {},\n", self.cells.len()));
        s.push_str(&format!("  \"failed_count\": {},\n", self.failed.len()));
        s.push_str(&format!(
            "  \"seeds\": [{}],\n",
            self.scenario
                .seeds
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        ));
        s.push_str("  \"cells\": [\n");
        for (i, (cell, r)) in self.cells.iter().zip(&self.results).enumerate() {
            s.push_str(&format!(
                "    {{\"bench\": \"{}\", \"seed\": {}, \"machine\": \"{}\", \"node_nm\": {}, \
                 \"fe_pct\": {}, \"be_pct\": {}, \"iw\": {}, \"rob\": {}, \"ec_kb\": {}, \
                 \"mem_cycles\": {}, \"instructions\": {}, \"be_cycles\": {}, \"fe_cycles\": {}, \
                 \"elapsed_ps\": {}, \"squashed\": {}, \"ipc\": {:.6}, \"total_energy_pj\": {:.3}, \
                 \"avg_power_w\": {:.6}, \"leak_frontend_pj\": {:.3}, \"leak_backend_pj\": {:.3}, \
                 \"leak_flywheel_pj\": {:.3}, \"leak_fraction\": {:.6}",
                cell.bench,
                cell.seed,
                cell.machine,
                cell.node.feature_nm(),
                cell.fe_pct,
                cell.be_pct,
                cell.iw_entries,
                cell.rob_entries,
                cell.ec_kb,
                cell.mem_cycles,
                r.sim.instructions,
                r.sim.be_cycles,
                r.sim.fe_cycles,
                r.sim.elapsed_ps,
                r.sim.squashed,
                r.sim.ipc(),
                r.sim.energy.total_pj(),
                r.sim.average_power_w(),
                r.sim.energy.leakage_frontend_pj,
                r.sim.energy.leakage_backend_pj,
                r.sim.energy.leakage_flywheel_pj,
                r.sim.energy.leakage_fraction(),
            ));
            if let Some(f) = &r.flywheel {
                s.push_str(&format!(
                    ", \"ec_residency\": {:.6}, \"ec_hit_rate\": {:.6}",
                    f.ec_residency,
                    f.ec_hit_rate()
                ));
            }
            s.push_str(&format!(
                ", \"telemetry_events\": {}",
                self.telemetry_events_for(cell)
            ));
            s.push_str(if i + 1 < self.cells.len() {
                "},\n"
            } else {
                "}\n"
            });
        }
        s.push_str("  ],\n");
        s.push_str("  \"failed_cells\": [\n");
        for (i, f) in self.failed.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"label\": \"{}\", \"cause\": \"{}\", \"attempts\": {}, \"detail\": \"{}\"}}",
                json_safe(&f.cell.label()),
                f.cause.kind(),
                f.attempts,
                json_safe(f.cause.message()),
            ));
            s.push_str(if i + 1 < self.failed.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ],\n");
        // Seed-axis aggregates (empty for single-seed runs, where a mean of
        // one sample would only restate the cell rows).
        s.push_str("  \"seed_aggregates\": [\n");
        let aggs = if self.scenario.seeds.len() > 1 {
            self.seed_aggregates()
        } else {
            Vec::new()
        };
        for (i, a) in aggs.iter().enumerate() {
            let cell = &a.cell;
            s.push_str(&format!(
                "    {{\"bench\": \"{}\", \"machine\": \"{}\", \"node_nm\": {}, \
                 \"fe_pct\": {}, \"be_pct\": {}, \"iw\": {}, \"rob\": {}, \"ec_kb\": {}, \
                 \"mem_cycles\": {}, \"n\": {}, \"expected_n\": {}, \"reduced\": {}, \
                 \"ipc_mean\": {:.6}, \"ipc_ci95\": {:.6}, \
                 \"elapsed_ps_mean\": {:.3}, \"elapsed_ps_ci95\": {:.3}, \
                 \"energy_pj_mean\": {:.3}, \"energy_pj_ci95\": {:.3}, \
                 \"power_w_mean\": {:.6}, \"power_w_ci95\": {:.6}",
                cell.bench,
                cell.machine,
                cell.node.feature_nm(),
                cell.fe_pct,
                cell.be_pct,
                cell.iw_entries,
                cell.rob_entries,
                cell.ec_kb,
                cell.mem_cycles,
                a.n,
                a.expected_n,
                a.is_reduced(),
                a.ipc.mean(),
                a.ipc.ci95_halfwidth(),
                a.elapsed_ps.mean(),
                a.elapsed_ps.ci95_halfwidth(),
                a.energy_pj.mean(),
                a.energy_pj.ci95_halfwidth(),
                a.power_w.mean(),
                a.power_w.ci95_halfwidth(),
            ));
            if let Some(m) = &a.ec_residency {
                s.push_str(&format!(
                    ", \"ec_residency_mean\": {:.6}, \"ec_residency_ci95\": {:.6}",
                    m.mean(),
                    m.ci95_halfwidth()
                ));
            }
            s.push_str(if i + 1 < aggs.len() { "},\n" } else { "}\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Makes an arbitrary string safe to embed in the hand-assembled JSON without
/// an escaper: anything that would need escaping (quotes, backslashes,
/// control characters, non-ASCII) becomes `_`. Cell labels are already plain
/// ASCII; this guards the free-form panic messages.
fn json_safe(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_ascii_graphic() && c != '"' && c != '\\' || c == ' ' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_baseline, run_baseline_with, run_flywheel};
    use flywheel_core::FlywheelConfig;
    use flywheel_uarch::BaselineConfig;

    fn tiny_budget() -> SimBudget {
        SimBudget::new(500, 2_000)
    }

    #[test]
    fn machines_round_trip_through_names() {
        for &m in Machine::all() {
            assert_eq!(Machine::from_name(m.name()), Some(m));
        }
        assert_eq!(Machine::from_name("nope"), None);
    }

    #[test]
    fn presets_validate_and_have_the_expected_cell_counts() {
        let b = tiny_budget();
        for (s, per_bench) in [
            (Scenario::fig2(b), 3),
            (Scenario::fig11(b), 3),
            (Scenario::fig12(b), 6),
        ] {
            s.validate().unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(s.cell_count(), s.benchmarks.len() * per_bench, "{}", s.name);
        }
        Scenario::smoke().validate().unwrap();
        Scenario::stress(b).validate().unwrap();
        Scenario::leakage(b).validate().unwrap();
        Scenario::multidomain(b).validate().unwrap();
        Scenario::dvfs(b).validate().unwrap();
    }

    #[test]
    fn new_family_presets_have_the_expected_grids() {
        let b = tiny_budget();
        // multidomain: baseline once, multi-domain machine per clock point.
        let s = Scenario::multidomain(b);
        assert_eq!(
            s.machines,
            vec![Machine::Baseline, Machine::MultiDomain],
            "preset machines come from the registry tags"
        );
        assert_eq!(s.cell_count(), s.benchmarks.len() * 3);
        // dvfs: baseline once, Flywheel and governed Flywheel per clock point.
        let s = Scenario::dvfs(b);
        assert_eq!(
            s.machines,
            vec![Machine::Baseline, Machine::Flywheel, Machine::Dvfs]
        );
        assert_eq!(s.cell_count(), s.benchmarks.len() * 5);
    }

    #[test]
    fn new_families_flow_through_the_whole_engine_unchanged() {
        // One multi-domain and one DVFS cell run through expansion, the
        // guarded executor, the invariant layer and both emitters without any
        // machine-specific handling in those layers.
        for mut s in [
            Scenario::multidomain(tiny_budget()),
            Scenario::dvfs(tiny_budget()),
        ] {
            s.benchmarks = vec![Benchmark::PtrChase];
            let run = s.run();
            assert_eq!(run.cells.len(), s.cell_count(), "no failed cells");
            run.check_invariants().unwrap_or_else(|e| panic!("{e}"));
            let csv = run.to_csv();
            assert_eq!(csv.lines().count(), run.cells.len() + 1);
            assert!(csv.contains(&format!(",{},", s.machines.last().unwrap())));
            let json = run.to_json();
            assert!(json.contains(&format!("\"machine\": \"{}\"", s.machines[1])));
        }
    }

    #[test]
    fn leakage_preset_sweeps_node_machine_and_ec() {
        let s = Scenario::leakage(tiny_budget());
        assert_eq!(s.nodes, TechNode::power_study_nodes().to_vec());
        assert_eq!(s.clocks, vec![(100, 50)]);
        assert_eq!(s.ec_kb, vec![64, 128, 256]);
        // Per (bench, seed): baseline runs once per node; the Flywheel machine
        // multiplies over nodes x EC capacities.
        let nodes = s.nodes.len();
        assert_eq!(
            s.cell_count(),
            s.benchmarks.len() * (nodes + nodes * s.ec_kb.len())
        );
    }

    #[test]
    fn baseline_cells_do_not_multiply_over_flywheel_axes() {
        let mut s = Scenario::new("t", tiny_budget());
        s.benchmarks = vec![Benchmark::Micro];
        s.clocks = vec![(0, 50), (50, 50)];
        s.ec_kb = vec![64, 128];
        let cells = s.expand();
        let baseline = cells.iter().filter(|c| c.machine.is_baseline()).count();
        let flywheel = cells.iter().filter(|c| !c.machine.is_baseline()).count();
        assert_eq!(baseline, 1, "one reference baseline");
        assert_eq!(flywheel, 4, "clock x EC grid on the Flywheel machine");
    }

    #[test]
    fn paper_default_cells_reproduce_the_paper_configs() {
        // The executor's config_debug() is the exact Debug rendering that
        // enters the store key, so comparing it against the paper constructors
        // pins both the resolved configuration and the key derivation.
        let s = Scenario::new("t", tiny_budget());
        let cells = s.expand();
        let base = cells
            .iter()
            .find(|c| c.machine == Machine::Baseline)
            .unwrap();
        assert_eq!(
            base.executor().config_debug(),
            format!("{:?}", BaselineConfig::paper(TechNode::N130))
        );
        let fly = cells
            .iter()
            .find(|c| c.machine == Machine::Flywheel)
            .unwrap();
        assert_eq!(
            fly.executor().config_debug(),
            format!("{:?}", FlywheelConfig::paper_iso_clock(TechNode::N130))
        );
        let fig11 = Scenario::fig11(tiny_budget());
        let ra = fig11
            .expand()
            .into_iter()
            .find(|c| c.machine == Machine::RegAlloc)
            .unwrap();
        assert_eq!(
            ra.executor().config_debug(),
            format!(
                "{:?}",
                FlywheelConfig::register_allocation_only(TechNode::N130)
            )
        );
    }

    #[test]
    fn scenario_run_matches_the_harness_runners_bitwise() {
        // The engine path (cell -> config -> shared trace) must agree exactly
        // with the run_* helpers the experiments binary uses.
        let budget = tiny_budget();
        let mut s = Scenario::new("t", budget);
        s.benchmarks = vec![Benchmark::Micro];
        s.clocks = vec![(50, 50)];
        let run = s.run();
        run.check_invariants().unwrap_or_else(|e| panic!("{e}"));
        let base = run
            .result_for(Benchmark::Micro, Machine::Baseline, 0, 0)
            .unwrap();
        assert_eq!(
            base.sim,
            run_baseline(Benchmark::Micro, TechNode::N130, budget)
        );
        let fly = run
            .result_for(Benchmark::Micro, Machine::Flywheel, 50, 50)
            .unwrap();
        let direct = run_flywheel(
            Benchmark::Micro,
            FlywheelConfig::paper(TechNode::N130, 50, 50),
            budget,
        );
        assert_eq!(fly.sim, direct.sim);
        assert_eq!(fly.flywheel, Some(direct.flywheel));
    }

    #[test]
    fn fig2_preset_table_is_byte_identical_to_the_experiments_path() {
        // Recompute the Figure 2 table exactly the way the experiments binary
        // does and compare the rendered bytes against the scenario preset.
        let budget = tiny_budget();
        let mut preset = Scenario::fig2(budget);
        preset.benchmarks = vec![Benchmark::Micro, Benchmark::Gzip];
        let table = preset.run().fig2_table().unwrap();

        let columns = vec!["fetch+1 %".to_owned(), "wakeup/sel %".to_owned()];
        let rows: Vec<Row> = preset
            .benchmarks
            .iter()
            .map(|&bench| {
                let base = run_baseline(bench, TechNode::N130, budget);
                let deeper = run_baseline_with(
                    bench,
                    BaselineConfig::paper(TechNode::N130).with_extra_frontend_stage(),
                    budget,
                );
                let piped = run_baseline_with(
                    bench,
                    BaselineConfig::paper(TechNode::N130).with_pipelined_wakeup(),
                    budget,
                );
                let degradation =
                    |v: &SimResult| (v.elapsed_ps as f64 / base.elapsed_ps as f64 - 1.0) * 100.0;
                Row {
                    bench: bench.name(),
                    values: vec![degradation(&deeper), degradation(&piped)],
                }
            })
            .collect();
        let expected = format_table(
            "Figure 2: performance degradation (%) from pipeline-loop stretching",
            &columns,
            &rows,
        );
        assert_eq!(table, expected);
    }

    #[test]
    fn fig12_preset_table_is_byte_identical_to_the_experiments_path() {
        let budget = tiny_budget();
        let mut preset = Scenario::fig12(budget);
        preset.benchmarks = vec![Benchmark::Micro, Benchmark::Gzip];
        let table = preset.run().fig12_table().unwrap();

        let columns: Vec<String> = crate::CLOCK_SWEEP
            .iter()
            .map(|(fe, be)| format!("FE{fe}/BE{be}"))
            .collect();
        let rows: Vec<Row> = preset
            .benchmarks
            .iter()
            .map(|&bench| {
                let base = run_baseline(bench, TechNode::N130, budget);
                Row {
                    bench: bench.name(),
                    values: crate::CLOCK_SWEEP
                        .iter()
                        .map(|&(fe, be)| {
                            run_flywheel(
                                bench,
                                FlywheelConfig::paper(TechNode::N130, fe, be),
                                budget,
                            )
                            .speedup_over(&base)
                        })
                        .collect(),
                }
            })
            .collect();
        let expected = format_table("Figure 12: relative performance", &columns, &rows);
        assert_eq!(table, expected);
    }

    #[test]
    fn fig11_preset_table_is_byte_identical_to_the_experiments_path() {
        let budget = tiny_budget();
        let mut preset = Scenario::fig11(budget);
        preset.benchmarks = vec![Benchmark::Micro, Benchmark::Gzip];
        let table = preset.run().fig11_table().unwrap();

        let columns = vec!["reg-alloc".to_owned(), "flywheel".to_owned()];
        let rows: Vec<Row> = preset
            .benchmarks
            .iter()
            .map(|&bench| {
                let base = run_baseline(bench, TechNode::N130, budget);
                let regalloc = run_flywheel(
                    bench,
                    FlywheelConfig::register_allocation_only(TechNode::N130),
                    budget,
                );
                let flywheel = run_flywheel(
                    bench,
                    FlywheelConfig::paper_iso_clock(TechNode::N130),
                    budget,
                );
                Row {
                    bench: bench.name(),
                    values: vec![regalloc.speedup_over(&base), flywheel.speedup_over(&base)],
                }
            })
            .collect();
        let expected = format_table(
            "Figure 11: performance at the baseline clock, normalized to the baseline",
            &columns,
            &rows,
        );
        assert_eq!(table, expected);
    }

    #[test]
    fn figure_tables_reject_grids_missing_their_cells() {
        // Rendering a figure from a grid that lacks the figure's machines or
        // collapses a multi-point axis must fail loudly, not mislabel output.
        let mut s = Scenario::fig2(tiny_budget());
        s.benchmarks = vec![Benchmark::Micro];
        s.machines = vec![Machine::Baseline]; // fig2 variants removed
        let run = s.run();
        let err = run.fig2_table().unwrap_err();
        assert!(err.contains("baseline-extra-fe"), "got: {err}");

        let mut s = Scenario::fig12(tiny_budget());
        s.benchmarks = vec![Benchmark::Micro];
        s.seeds = vec![1, 2]; // multi-point non-clock axis
        let run = s.run();
        let err = run.fig12_table().unwrap_err();
        assert!(err.contains("'seeds'"), "got: {err}");

        let mut s = Scenario::fig11(tiny_budget());
        s.benchmarks = vec![Benchmark::Micro];
        s.clocks = vec![(50, 50)]; // fig11 needs the (0, 0) point
        let run = s.run();
        assert!(run.fig11_table().is_err());
    }

    #[test]
    fn emitters_cover_every_cell() {
        let mut s = Scenario::smoke();
        s.benchmarks = vec![Benchmark::Micro];
        s.budget = tiny_budget();
        let run = s.run();
        let csv = run.to_csv();
        assert_eq!(csv.lines().count(), run.cells.len() + 1, "header + cells");
        let json = run.to_json();
        assert_eq!(json.matches("\"bench\"").count(), run.cells.len());
        assert!(json.contains("\"schema\": \"flywheel-scenarios/3\""));
        // A clean run advertises zero failures and an empty manifest.
        assert!(json.contains("\"failed_count\": 0"));
        assert!(json.contains("\"failed_cells\": [\n  ]"));
        // A single-seed run emits its seed axis but no aggregates.
        assert!(json.contains("\"seeds\": [2005]"));
        assert!(json.contains("\"seed_aggregates\": [\n  ]"));
        // Flywheel cells carry EC fields, baseline cells leave them empty.
        assert!(json.contains("\"ec_residency\""));
        // The leakage-attribution column family is emitted for every cell.
        assert!(json.contains("\"leak_flywheel_pj\""));
        let header = csv.lines().next().unwrap();
        assert!(header.contains("leak_flywheel_pj"));
        assert!(header.ends_with(
            ",telemetry_events,ipc_ci95,elapsed_ps_ci95,energy_pj_ci95,power_w_ci95,status"
        ));
        for line in csv.lines().skip(1) {
            assert_eq!(line.matches(',').count(), 31, "column count in {line}");
            assert!(line.ends_with(",ok"), "clean cells report ok: {line}");
            // Telemetry off: the event-count column stays zero, and a
            // single-seed run leaves the CI columns empty.
            assert!(line.ends_with(",0,,,,,ok"), "telemetry-off count in {line}");
        }
        assert!(json.contains("\"telemetry_events\": 0"));
        // A hostile scenario name must not break either format.
        let mut evil = s.clone();
        evil.name = "a\"b,c\nd".to_owned();
        let run = evil.run();
        assert!(run.to_json().contains("\"scenario\": \"a_b_c_d\""));
        for line in run.to_csv().lines().skip(1) {
            assert_eq!(line.matches(',').count(), 31, "column count in {line}");
        }
    }

    #[test]
    fn degraded_run_emits_failed_rows_and_manifest() {
        // Hand-build a degraded run (no fault plan needed): one succeeded
        // cell, one failed.
        let mut s = Scenario::new("t", tiny_budget());
        s.benchmarks = vec![Benchmark::Micro];
        let mut run = s.run_with_jobs(1);
        assert!(!run.is_degraded());
        let lost = run.cells.pop().unwrap();
        let lost_result = run.results.pop().unwrap();
        run.failed.push(FailedCell {
            cell: lost,
            cause: FailCause::Timeout("exceeded \"budget\"".to_owned()),
            attempts: 3,
        });
        assert!(run.is_degraded());
        assert_eq!(run.attempted(), run.cells.len() + 1);

        let csv = run.to_csv();
        let last = csv.lines().last().unwrap();
        assert!(last.ends_with(",failed:timeout"), "got: {last}");
        assert_eq!(last.matches(',').count(), 31, "column count in {last}");
        assert_eq!(
            csv.lines().filter(|l| l.ends_with(",ok")).count(),
            run.cells.len()
        );

        let json = run.to_json();
        assert!(json.contains("\"failed_count\": 1"));
        assert!(json.contains(&format!(
            "\"label\": \"{}\", \"cause\": \"timeout\", \"attempts\": 3",
            lost.label()
        )));
        // The free-form panic message is sanitized for the hand-built JSON.
        assert!(json.contains("\"detail\": \"exceeded _budget_\""));

        // Invariants still check the succeeded cells.
        run.check_invariants().unwrap();
        let _ = lost_result;
    }

    #[test]
    fn seed_axis_must_be_sorted_and_unique() {
        let mut s = Scenario::new("t", tiny_budget());
        s.benchmarks = vec![Benchmark::Micro];
        s.seeds = vec![1, 2, 2];
        let err = s.validate().unwrap_err();
        assert!(err.contains("duplicate seed 2"), "got: {err}");
        s.seeds = vec![2, 1];
        let err = s.validate().unwrap_err();
        assert!(err.contains("not sorted"), "got: {err}");
        s.seeds = vec![1, 2, 3];
        s.validate().unwrap();
    }

    #[test]
    fn multi_seed_runs_aggregate_per_configuration_point() {
        let mut s = Scenario::new("multiseed", tiny_budget());
        s.benchmarks = vec![Benchmark::Micro];
        s.seeds = vec![1, 2, 3];
        let run = s.run_with_jobs(1);
        run.check_invariants().unwrap();
        let aggs = run.seed_aggregates();
        assert_eq!(aggs.len(), 2, "one point per machine");
        for a in &aggs {
            assert_eq!((a.n, a.expected_n), (3, 3));
            assert!(!a.is_reduced());
            assert_eq!(a.ipc.n(), 3);
            assert!(a.ipc.ci95_halfwidth() >= 0.0);
        }
        // The aggregate is exactly the fold of the per-seed cell results.
        let mut by_hand = Aggregate::new();
        for (cell, r) in run.cells.iter().zip(&run.results) {
            if cell.machine == Machine::Baseline {
                by_hand.add(r.sim.ipc());
            }
        }
        let base = aggs
            .iter()
            .find(|a| a.cell.machine == Machine::Baseline)
            .unwrap();
        assert_eq!(base.ipc, by_hand);
        assert!(base.ec_residency.is_none());
        let fly = aggs
            .iter()
            .find(|a| a.cell.machine == Machine::Flywheel)
            .unwrap();
        assert_eq!(fly.ec_residency.as_ref().unwrap().n(), 3);

        // CSV: one aggregate row per point, CI columns filled, n marker set.
        let csv = run.to_csv();
        let agg_rows: Vec<&str> = csv.lines().filter(|l| l.contains(",agg,")).collect();
        assert_eq!(agg_rows.len(), 2);
        for line in &agg_rows {
            assert_eq!(line.matches(',').count(), 31, "column count in {line}");
            assert!(line.ends_with(",aggregate:n=3/3"), "got: {line}");
        }
        // JSON: the seed axis and one aggregate object per point.
        let json = run.to_json();
        assert!(json.contains("\"seeds\": [1, 2, 3]"));
        assert_eq!(json.matches("\"expected_n\": 3").count(), 2);
        assert_eq!(json.matches("\"reduced\": false").count(), 2);
        assert!(json.contains("\"ipc_mean\""));
        assert!(json.contains("\"ec_residency_ci95\""));
    }

    #[test]
    fn reduced_aggregates_exclude_failed_seeds_never_average_them() {
        let mut s = Scenario::new("reduced", tiny_budget());
        s.benchmarks = vec![Benchmark::Micro];
        s.seeds = vec![1, 2, 3];
        let mut run = s.run_with_jobs(1);
        // Fail one baseline seed by hand: the cell moves to the manifest.
        let idx = run
            .cells
            .iter()
            .position(|c| c.machine == Machine::Baseline && c.seed == 3)
            .unwrap();
        let lost = run.cells.remove(idx);
        run.results.remove(idx);
        run.failed.push(FailedCell {
            cell: lost,
            cause: FailCause::Panic("injected".to_owned()),
            attempts: 3,
        });
        run.check_invariants().unwrap();

        let aggs = run.seed_aggregates();
        let base = aggs
            .iter()
            .find(|a| a.cell.machine == Machine::Baseline)
            .unwrap();
        assert_eq!((base.n, base.expected_n), (2, 3));
        assert!(base.is_reduced());
        // The mean is over the two surviving seeds only.
        let mut survivors = Aggregate::new();
        for (cell, r) in run.cells.iter().zip(&run.results) {
            if cell.machine == Machine::Baseline {
                survivors.add(r.sim.ipc());
            }
        }
        assert_eq!(base.ipc, survivors);
        // Both emitters flag the reduced sample explicitly.
        assert!(run.to_csv().contains(",aggregate:reduced:n=2/3"));
        let json = run.to_json();
        assert!(json.contains("\"n\": 2, \"expected_n\": 3, \"reduced\": true"));

        // A seed that disappears *without* a manifest entry is a silent drop:
        // the aggregate invariants must reject it.
        run.failed.clear();
        let err = run.check_invariants().unwrap_err();
        assert!(err.contains("failed cells recorded"), "got: {err}");
    }

    #[test]
    fn invariant_checker_rejects_a_corrupted_cell() {
        let mut s = Scenario::new("t", tiny_budget());
        s.benchmarks = vec![Benchmark::Micro];
        let mut run = s.run();
        run.check_invariants().unwrap();
        run.results[0].sim.instructions += 1;
        assert!(run.check_invariants().is_err());
    }
}
