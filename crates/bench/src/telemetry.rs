//! The disk half of `flywheel-telemetry`: a background drain thread that
//! flushes the in-memory [`TelemetryQueue`]
//! into an append-only, CRC32-framed, content-addressed event log living
//! beside `results.store`.
//!
//! The split mirrors the store/query separation used elsewhere in the repo:
//! `flywheel-uarch` owns the queue and the kernel-side recorder (so both
//! kernels can append without new dependencies), this module owns
//! persistence, and `flywheel-report` owns querying/rendering.
//!
//! ## Event-log format (`flywheel-telemetry/1`)
//!
//! One plain header line, then one framed line per event, reusing the exact
//! `flywheel-store/3` per-record framing (`<len:08x> <crc:08x> <payload>`,
//! see [`crate::store`]), so the same fsck logic detects torn appends and bit
//! rot in both files. Two payload forms:
//!
//! ```text
//! <store-key-hex:32> <cell-label> <event wire form>   # one telemetry event
//! dropped <n>                                         # drop accounting
//! ```
//!
//! The leading store key is the *same* content address the result store files
//! the cell's record under, which is what makes the log content-addressed:
//! events join against `results.store` records by key, and a stale log
//! (written by a different code version) simply stops matching.
//!
//! Overflow never blocks a simulating thread; it is accounted in the queue's
//! dropped counter and written out as an explicit `dropped <n>` line when the
//! sink is finished, so a truncated view of a run is always visible as such.

use crate::store::{self, StoreKey};
use flywheel_uarch::telemetry::{
    self, TelemetryEvent, TelemetryGuard, TelemetryQueue, TelemetrySession,
};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// On-disk schema of the telemetry event log.
pub const TELEMETRY_SCHEMA: &str = "flywheel-telemetry/1";

/// Default bound of the in-memory event queue.
pub const DEFAULT_QUEUE_CAPACITY: usize = TelemetryQueue::DEFAULT_CAPACITY;

/// The conventional event-log path for a store at `store_path`:
/// `<store>.events`, beside the store itself.
pub fn event_log_path(store_path: &Path) -> PathBuf {
    PathBuf::from(format!("{}.events", store_path.display()))
}

/// One parsed event-log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryRecord {
    /// The cell's content address (same key as its `results.store` record).
    pub key: StoreKey,
    /// The cell's human-readable label (whitespace-free).
    pub label: String,
    /// The event itself.
    pub event: TelemetryEvent,
}

impl TelemetryRecord {
    fn render(&self) -> String {
        format!("{} {} {}", self.key.hex(), self.label, self.event.render())
    }

    fn parse(payload: &str) -> Option<TelemetryRecord> {
        let mut parts = payload.splitn(3, ' ');
        let key = StoreKey::from_hex(parts.next()?)?;
        let label = parts.next()?.to_owned();
        let event = TelemetryEvent::parse(parts.next()?)?;
        Some(TelemetryRecord { key, label, event })
    }
}

/// Everything a telemetry event log contained.
#[derive(Debug, Default)]
pub struct TelemetryLog {
    /// Every event record, in file (≈ drain) order.
    pub records: Vec<TelemetryRecord>,
    /// Sum of the log's `dropped <n>` accounting lines.
    pub dropped: u64,
    /// Lines that failed the framing or payload grammar.
    pub damaged_lines: usize,
}

impl TelemetryLog {
    /// Reads and validates the event log at `path`.
    ///
    /// Damaged lines are counted, not fatal (matching the store's recovery
    /// posture); an unknown header is.
    pub fn read(path: &Path) -> Result<TelemetryLog, String> {
        let bytes = std::fs::read(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        let mut log = TelemetryLog::default();
        let mut lines = bytes.split(|&b| b == b'\n');
        let header = lines.next().unwrap_or_default();
        if header != TELEMETRY_SCHEMA.as_bytes() {
            return Err(format!(
                "{}: not a {TELEMETRY_SCHEMA} event log",
                path.display()
            ));
        }
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let Some(payload) = store::unframe_line(line) else {
                log.damaged_lines += 1;
                continue;
            };
            if let Some(n) = payload.strip_prefix("dropped ") {
                match n.parse::<u64>() {
                    Ok(n) => log.dropped += n,
                    Err(_) => log.damaged_lines += 1,
                }
                continue;
            }
            match TelemetryRecord::parse(payload) {
                Some(r) => log.records.push(r),
                None => log.damaged_lines += 1,
            }
        }
        Ok(log)
    }

    /// Whether every line passed the framing and payload grammar.
    pub fn is_clean(&self) -> bool {
        self.damaged_lines == 0
    }

    /// `fsck`-style one-line verdict over the log's framing and grammar.
    pub fn describe(&self) -> String {
        if self.damaged_lines == 0 {
            format!(
                "clean ({} events, {} dropped, schema {TELEMETRY_SCHEMA})",
                self.records.len(),
                self.dropped
            )
        } else {
            format!(
                "damaged: {} bad line{} ({} events readable, {} dropped)",
                self.damaged_lines,
                if self.damaged_lines == 1 { "" } else { "s" },
                self.records.len(),
                self.dropped
            )
        }
    }
}

/// The process-global telemetry sink: queue + drain thread + log path.
struct GlobalSink {
    queue: Arc<TelemetryQueue>,
    sample_interval: u64,
    path: PathBuf,
    stop: Arc<AtomicBool>,
    drain: Option<std::thread::JoinHandle<u64>>,
}

static INSTALLED: AtomicBool = AtomicBool::new(false);

fn global_sink() -> &'static Mutex<Option<GlobalSink>> {
    static SINK: Mutex<Option<GlobalSink>> = Mutex::new(None);
    &SINK
}

/// What a finished telemetry sink flushed to disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetrySummary {
    /// Events written to the log.
    pub events: u64,
    /// Events dropped by the bounded queue (also recorded in the log).
    pub dropped: u64,
    /// The log path.
    pub path: PathBuf,
}

/// Installs the process-global telemetry sink: creates the event log at
/// `path` (truncating any previous run's log) and starts the drain thread.
/// Simulations run after this — on any thread — are recorded.
///
/// Errors if a sink is already installed or the log cannot be created.
pub fn install_global_telemetry(path: &Path, sample_interval: u64) -> Result<(), String> {
    let mut slot = global_sink().lock().unwrap_or_else(PoisonError::into_inner);
    if slot.is_some() {
        return Err("telemetry sink already installed".to_owned());
    }
    let mut file = std::fs::File::create(path)
        .map_err(|e| format!("creating event log {}: {e}", path.display()))?;
    file.write_all(format!("{TELEMETRY_SCHEMA}\n").as_bytes())
        .and_then(|()| file.flush())
        .map_err(|e| format!("writing event log {}: {e}", path.display()))?;

    let queue = Arc::new(TelemetryQueue::new(DEFAULT_QUEUE_CAPACITY));
    let stop = Arc::new(AtomicBool::new(false));
    let drain = {
        let queue = Arc::clone(&queue);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || drain_loop(&queue, &stop, file))
    };
    *slot = Some(GlobalSink {
        queue,
        sample_interval: sample_interval.max(1),
        path: path.to_path_buf(),
        stop,
        drain: Some(drain),
    });
    INSTALLED.store(true, Ordering::Release);
    Ok(())
}

/// The drain thread: periodically empties the queue into the log file; on
/// shutdown takes a final drain and writes the drop-accounting line. Returns
/// the number of events written.
fn drain_loop(queue: &TelemetryQueue, stop: &AtomicBool, mut file: std::fs::File) -> u64 {
    let mut written = 0u64;
    loop {
        let stopping = stop.load(Ordering::Acquire);
        for (tag, event) in queue.drain() {
            // The tag is "<key-hex> <label>"; the payload appends the event.
            let payload = format!("{tag} {}", event.render());
            let _ = writeln!(file, "{}", store::frame_payload(&payload));
            written += 1;
        }
        let _ = file.flush();
        if stopping {
            let dropped = queue.dropped();
            if dropped > 0 {
                let _ = writeln!(
                    file,
                    "{}",
                    store::frame_payload(&format!("dropped {dropped}"))
                );
            }
            let _ = file.flush();
            return written;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Whether a global telemetry sink is installed (one relaxed atomic load —
/// the disarmed fast path of the simulation choke points).
pub fn telemetry_installed() -> bool {
    INSTALLED.load(Ordering::Acquire)
}

/// Stops the drain thread, flushes everything (including the `dropped` line)
/// and uninstalls the sink. `None` when no sink was installed.
pub fn finish_global_telemetry() -> Option<TelemetrySummary> {
    let sink = {
        let mut slot = global_sink().lock().unwrap_or_else(PoisonError::into_inner);
        INSTALLED.store(false, Ordering::Release);
        slot.take()
    }?;
    sink.stop.store(true, Ordering::Release);
    let events = sink
        .drain
        .map(|h| h.join().unwrap_or_default())
        .unwrap_or_default();
    Some(TelemetrySummary {
        events,
        dropped: sink.queue.dropped(),
        path: sink.path,
    })
}

/// Events accepted so far for tags starting with `prefix` (normally a cell's
/// store-key hex). Zero when no sink is installed.
pub fn telemetry_count_matching(prefix: &str) -> u64 {
    let slot = global_sink().lock().unwrap_or_else(PoisonError::into_inner);
    slot.as_ref()
        .map(|s| s.queue.count_matching(prefix))
        .unwrap_or(0)
}

/// Arms the current thread's telemetry for one cell when a global sink is
/// installed; `tag_parts` (the cell's store key and label) is only computed
/// on the armed path. Called by the simulation choke points in the crate
/// root.
pub(crate) fn arm_cell(tag_parts: impl FnOnce() -> (StoreKey, String)) -> Option<TelemetryGuard> {
    if !telemetry_installed() {
        return None;
    }
    let (queue, sample_interval) = {
        let slot = global_sink().lock().unwrap_or_else(PoisonError::into_inner);
        let sink = slot.as_ref()?;
        (Arc::clone(&sink.queue), sink.sample_interval)
    };
    let (key, label) = tag_parts();
    let tag: Arc<str> = Arc::from(format!("{} {label}", key.hex()));
    Some(telemetry::arm(TelemetrySession {
        queue,
        tag,
        sample_interval,
    }))
}

/// Folds per-shard event logs (written by supervised sweep workers) into the
/// main log at `main_path`, preserving each record's framing byte-for-byte.
/// Missing shard logs are skipped; the main log is created (with a header)
/// if absent. Returns how many event lines were appended.
pub fn merge_telemetry_logs(main_path: &Path, shard_paths: &[PathBuf]) -> Result<u64, String> {
    let mut appended = 0u64;
    let mut out: Option<std::fs::File> = None;
    for shard in shard_paths {
        let log = match TelemetryLog::read(shard) {
            Ok(l) => l,
            Err(_) if !shard.exists() => continue,
            Err(e) => return Err(e),
        };
        if log.records.is_empty() && log.dropped == 0 {
            continue;
        }
        let out = match &mut out {
            Some(f) => f,
            None => {
                let exists = main_path.exists();
                let mut f = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(main_path)
                    .map_err(|e| format!("opening {}: {e}", main_path.display()))?;
                if !exists {
                    f.write_all(format!("{TELEMETRY_SCHEMA}\n").as_bytes())
                        .map_err(|e| format!("writing {}: {e}", main_path.display()))?;
                }
                out.insert(f)
            }
        };
        for r in &log.records {
            writeln!(out, "{}", store::frame_payload(&r.render()))
                .map_err(|e| format!("writing {}: {e}", main_path.display()))?;
            appended += 1;
        }
        if log.dropped > 0 {
            writeln!(
                out,
                "{}",
                store::frame_payload(&format!("dropped {}", log.dropped))
            )
            .map_err(|e| format!("writing {}: {e}", main_path.display()))?;
        }
    }
    if let Some(f) = &mut out {
        f.flush().map_err(|e| e.to_string())?;
    }
    Ok(appended)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("fw-tel-{}-{name}", std::process::id()))
    }

    fn sample_record(label: &str, be_cycle: u64) -> TelemetryRecord {
        TelemetryRecord {
            key: StoreKey::of_input(label),
            label: label.to_owned(),
            event: TelemetryEvent::EcEnter { be_cycle },
        }
    }

    #[test]
    fn records_round_trip_through_payload_form() {
        let r = TelemetryRecord {
            key: StoreKey::of_input("cell"),
            label: "flywheel/gzip/s2005".to_owned(),
            event: TelemetryEvent::Occupancy {
                be_cycle: 2048,
                iw: 12,
                rob: 97,
                frontend_q: 4,
                lsq: 31,
            },
        };
        assert_eq!(TelemetryRecord::parse(&r.render()), Some(r.clone()));
        assert_eq!(TelemetryRecord::parse("bogus"), None);
        assert_eq!(
            TelemetryRecord::parse(&format!("{} label", r.key.hex())),
            None
        );
    }

    #[test]
    fn log_reader_detects_damage_and_sums_drops() {
        let path = tmp("reader.events");
        let mut text = format!("{TELEMETRY_SCHEMA}\n");
        text.push_str(&store::frame_payload(&sample_record("a", 10).render()));
        text.push('\n');
        text.push_str(&store::frame_payload("dropped 3"));
        text.push('\n');
        text.push_str(&store::frame_payload("dropped 4"));
        text.push('\n');
        text.push_str("00000005 deadbeef torn!");
        text.push('\n');
        std::fs::write(&path, text).unwrap();
        let log = TelemetryLog::read(&path).unwrap();
        assert_eq!(log.records.len(), 1);
        assert_eq!(log.dropped, 7);
        assert_eq!(log.damaged_lines, 1);
        assert!(log.describe().starts_with("damaged: 1 bad line"));
        std::fs::remove_file(&path).unwrap();

        let bogus = tmp("bogus.events");
        std::fs::write(&bogus, "not-a-log\n").unwrap();
        assert!(TelemetryLog::read(&bogus).is_err());
        std::fs::remove_file(&bogus).unwrap();
    }

    #[test]
    fn shard_logs_merge_into_main_log() {
        let main = tmp("merged.events");
        let _ = std::fs::remove_file(&main);
        let shards: Vec<PathBuf> = (0..3).map(|k| tmp(&format!("shard{k}.events"))).collect();
        // Shard 0: one record. Shard 1: missing. Shard 2: record + drops.
        for (k, path) in shards.iter().enumerate() {
            if k == 1 {
                continue;
            }
            let mut text = format!("{TELEMETRY_SCHEMA}\n");
            text.push_str(&store::frame_payload(
                &sample_record(&format!("cell{k}"), k as u64).render(),
            ));
            text.push('\n');
            if k == 2 {
                text.push_str(&store::frame_payload("dropped 2"));
                text.push('\n');
            }
            std::fs::write(path, text).unwrap();
        }
        let appended = merge_telemetry_logs(&main, &shards).unwrap();
        assert_eq!(appended, 2);
        let log = TelemetryLog::read(&main).unwrap();
        assert_eq!(log.records.len(), 2);
        assert_eq!(log.dropped, 2);
        assert_eq!(log.damaged_lines, 0);
        assert!(log.describe().starts_with("clean (2 events"));
        for p in shards.iter().chain([&main]) {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn event_log_paths_sit_beside_the_store() {
        assert_eq!(
            event_log_path(Path::new("/tmp/results.store")),
            PathBuf::from("/tmp/results.store.events")
        );
    }
}
