//! Adversarial workload search: a deterministic evolutionary loop over the
//! stress-family workload generators that maximizes or minimizes the
//! Flywheel-vs-baseline performance gap.
//!
//! The paper's workloads are fixed points in the space of workload behaviours;
//! the interesting question for a microarchitecture reproduction is *where in
//! that space the mechanism stops paying off*. The search treats the
//! [`BenchmarkProfile`] knobs the stress family already exposes — branch
//! behaviour mix, memory locality fractions and strides, store density, code
//! footprint, dependency distance, register span — as a parameter vector,
//! starts from the four calibrated stress profiles, and hill-climbs with a
//! seeded xorshift mutator: each generation keeps the best `population`
//! candidates, spawns `children_per_parent` mutants of each, evaluates them,
//! and re-ranks. Two objectives are supported: [`Objective::MaximizeGap`]
//! (workloads Flywheel loves — `flybest`) and [`Objective::MinimizeGap`]
//! (workloads where the Execution Cache machinery does worst — `ecworst`).
//!
//! Everything is deterministic for a fixed search seed: mutation draws come
//! from a per-candidate xorshift stream, candidates are ranked with a total
//! order (score, then canonical parameter string), and evaluation itself is a
//! pair of deterministic simulations. The rendered frontier therefore hashes
//! to the same value on every run — CI holds the search to that.
//!
//! Evaluations are warm-store cached: each candidate's two legs (baseline and
//! Flywheel at the paper's 0.13 µm iso-clock configuration) are content
//! addressed by the code-version salt, the full machine configuration, the
//! canonical profile parameters, the synthesis seed and the budget, exactly
//! like scenario cells. Re-running a search — or widening one — recalls every
//! leg it has already paid for.

use crate::store::{code_version_salt, ResultStore, RunStats, StoreKey};
use crate::{parallel_map_jobs, worker_count};
use flywheel_core::{FlywheelConfig, FlywheelSim};
use flywheel_timing::TechNode;
use flywheel_uarch::{BaselineConfig, BaselineSim, SimBudget, SimResult};
use flywheel_workloads::{Benchmark, BenchmarkProfile, ProgramSynthesizer, RecordedTrace};

/// What the search optimizes the Flywheel-vs-baseline speedup toward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Find workloads where Flywheel gains the most over the baseline.
    MaximizeGap,
    /// Find workloads where Flywheel gains the least (or loses).
    MinimizeGap,
}

impl Objective {
    /// CLI name (`max` / `min`).
    pub fn name(&self) -> &'static str {
        match self {
            Objective::MaximizeGap => "max",
            Objective::MinimizeGap => "min",
        }
    }

    /// Parses a CLI objective name.
    pub fn from_name(name: &str) -> Option<Objective> {
        match name {
            "max" => Some(Objective::MaximizeGap),
            "min" => Some(Objective::MinimizeGap),
            _ => None,
        }
    }

    /// Whether `a` is strictly better than `b` under this objective.
    fn better(&self, a: f64, b: f64) -> bool {
        match self {
            Objective::MaximizeGap => a > b,
            Objective::MinimizeGap => a < b,
        }
    }
}

/// Parameters of one search run.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Seed of the mutation stream (and of workload synthesis).
    pub seed: u64,
    /// Evolution rounds after the initial evaluation of the starts.
    pub generations: u32,
    /// Candidates surviving each generation.
    pub population: usize,
    /// Mutants spawned per survivor per generation.
    pub children_per_parent: usize,
    /// Instruction budget of each evaluation leg.
    pub budget: SimBudget,
    /// Technology node of the evaluation machines.
    pub node: TechNode,
    /// Frontier length reported (and hashed).
    pub top: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            seed: crate::EXPERIMENT_SEED,
            generations: 4,
            population: 6,
            children_per_parent: 2,
            budget: SimBudget::new(800, 4_000),
            node: TechNode::N130,
            top: 8,
        }
    }
}

/// One evaluated point of the search space.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The workload parameter vector.
    pub profile: BenchmarkProfile,
    /// Flywheel speedup over the baseline at the evaluation configuration.
    pub speedup: f64,
}

/// The ranked result of one search run.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The optimized objective.
    pub objective: Objective,
    /// Best candidates first (under the objective), at most `top` entries.
    pub frontier: Vec<Candidate>,
    /// Candidate legs simulated (store misses).
    pub simulated: usize,
    /// Candidate legs recalled from the store.
    pub recalled: usize,
}

/// xorshift64 — deterministic, dependency-free mutation stream.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        // Avoid the all-zero fixed point without disturbing other seeds.
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform draw in [0, 1).
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw from 0..n.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// The canonical parameter string of a profile: its `Debug` rendering with
/// the free-form name pinned, so two candidates with identical knobs share
/// one content address regardless of how they were labelled.
pub fn canonical_params(profile: &BenchmarkProfile) -> String {
    let mut p = profile.clone();
    p.name = "search".to_owned();
    format!("{p:?}")
}

/// Moves `delta` of probability mass from `from` to `to`, clamped so both
/// fractions stay non-negative (the pair's sum — and therefore the whole
/// distribution's — is preserved).
fn shift_mass(from: &mut f64, to: &mut f64, delta: f64) {
    let d = delta.min(*from);
    *from -= d;
    *to += d;
}

/// Applies one random mutation operator to `profile`. Every operator
/// preserves [`BenchmarkProfile::validate`] by construction: probability
/// shifts conserve mass, scalar knobs are clamped to their legal ranges.
fn mutate(profile: &BenchmarkProfile, rng: &mut Rng) -> BenchmarkProfile {
    let mut p = profile.clone();
    let d = 0.02 + rng.unit() * 0.13; // probability-mass step
    match rng.below(15) {
        0 => shift_mass(&mut p.branches.biased, &mut p.branches.random, d),
        1 => shift_mass(&mut p.branches.random, &mut p.branches.biased, d),
        2 => shift_mass(&mut p.branches.patterned, &mut p.branches.random, d),
        3 => p.branches.bias = (p.branches.bias + (rng.unit() - 0.5) * 0.2).clamp(0.55, 0.99),
        4 => shift_mass(&mut p.memory.streaming, &mut p.memory.scattered, d),
        5 => shift_mass(&mut p.memory.scattered, &mut p.memory.hot_set, d),
        6 => {
            const STRIDES: [u64; 6] = [4, 8, 16, 32, 64, 128];
            p.memory.stream_stride = STRIDES[rng.below(STRIDES.len() as u64) as usize];
        }
        7 => {
            p.memory.hot_set_bytes = if rng.below(2) == 0 {
                (p.memory.hot_set_bytes / 2).max(4 * 1024)
            } else {
                (p.memory.hot_set_bytes * 2).min(512 * 1024)
            };
        }
        8 => {
            // Store density: mass between stores and the implicit ALU
            // remainder. Clamped so the mix stays a sub-distribution.
            let delta = (rng.unit() - 0.5) * 0.12;
            p.mix.store = (p.mix.store + delta).clamp(0.02, 0.38);
            let used = p.mix.load + p.mix.store + p.mix.int_muldiv + p.mix.fp_add + p.mix.fp_muldiv;
            if used > 1.0 {
                p.mix.store -= used - 1.0;
            }
        }
        9 => {
            let delta = (rng.unit() - 0.5) * 0.12;
            p.mix.load = (p.mix.load + delta).clamp(0.05, 0.42);
            let used = p.mix.load + p.mix.store + p.mix.int_muldiv + p.mix.fp_add + p.mix.fp_muldiv;
            if used > 1.0 {
                p.mix.load -= used - 1.0;
            }
        }
        10 => {
            // Code footprint (I-cache / Execution Cache pressure).
            p.functions = if rng.below(2) == 0 {
                (p.functions / 2).max(2)
            } else {
                (p.functions * 2).min(1024)
            };
        }
        11 => {
            let step = 1 + rng.below(3) as u32;
            p.avg_block_len = if rng.below(2) == 0 {
                p.avg_block_len.saturating_sub(step).max(2)
            } else {
                (p.avg_block_len + step).min(18)
            };
        }
        12 => {
            let f = 0.75 + rng.unit() * 0.6;
            p.dependency_distance = (p.dependency_distance * f).clamp(1.0, 8.0);
        }
        13 => {
            let step = 1 + rng.below(4) as u32;
            p.dest_register_span = if rng.below(2) == 0 {
                p.dest_register_span.saturating_sub(step).max(2)
            } else {
                (p.dest_register_span + step).min(22)
            };
        }
        _ => {
            let f = 0.6 + rng.unit() * 0.9;
            p.loops.mean_trip_count = (p.loops.mean_trip_count * f).clamp(2.0, 96.0);
        }
    }
    p
}

/// The content address of one evaluation leg.
fn leg_key(family: &str, cfg_debug: &str, canon: &str, seed: u64, budget: SimBudget) -> StoreKey {
    StoreKey::of_input(&format!(
        "salt={:016x}\nmachine=search-{family}\nconfig={cfg_debug}\nprofile={canon}\nseed={seed}\n\
         warmup={}\nmeasured={}\n",
        code_version_salt(),
        budget.warmup_instructions,
        budget.measured_instructions,
    ))
}

/// Simulates both legs of one candidate (no store involved).
fn simulate_pair(profile: &BenchmarkProfile, cfg: &SearchConfig) -> (SimResult, SimResult) {
    let program = ProgramSynthesizer::new(profile.clone()).synthesize(cfg.seed);
    let trace = RecordedTrace::record(
        &program,
        cfg.seed,
        RecordedTrace::capture_len_for(cfg.budget.total()),
    );
    let base = BaselineSim::new(BaselineConfig::paper(cfg.node), trace.cursor()).run(cfg.budget);
    let fly = FlywheelSim::new(FlywheelConfig::paper(cfg.node, 0, 0), trace.cursor())
        .run(cfg.budget)
        .sim;
    (base, fly)
}

/// Evaluates `profiles` against the warm store: cached legs are recalled,
/// missing candidates are simulated in parallel and their legs appended to
/// the store. Returns one speedup per profile, plus (simulated, recalled)
/// leg counts.
fn evaluate_all(
    profiles: &[BenchmarkProfile],
    cfg: &SearchConfig,
    store: &mut ResultStore,
) -> (Vec<f64>, usize, usize) {
    let base_cfg_debug = format!("{:?}", BaselineConfig::paper(cfg.node));
    let fly_cfg_debug = format!("{:?}", FlywheelConfig::paper(cfg.node, 0, 0));
    let keys: Vec<(StoreKey, StoreKey)> = profiles
        .iter()
        .map(|p| {
            let canon = canonical_params(p);
            (
                leg_key("baseline", &base_cfg_debug, &canon, cfg.seed, cfg.budget),
                leg_key("flywheel", &fly_cfg_debug, &canon, cfg.seed, cfg.budget),
            )
        })
        .collect();
    let miss_idx: Vec<usize> = (0..profiles.len())
        .filter(|&i| !store.contains(&keys[i].0) || !store.contains(&keys[i].1))
        .collect();
    let miss_profiles: Vec<BenchmarkProfile> =
        miss_idx.iter().map(|&i| profiles[i].clone()).collect();
    let pairs = parallel_map_jobs(&miss_profiles, worker_count(), |p| simulate_pair(p, cfg));
    let simulated = 2 * pairs.len();
    let recalled = 2 * profiles.len() - simulated;
    for (&i, (base, fly)) in miss_idx.iter().zip(&pairs) {
        let (bk, fk) = keys[i];
        let label = format!("search/{}", profiles[i].name);
        if !store.contains(&bk) {
            if let Err(e) = store.insert(bk, &label, RunStats::from_baseline(base.clone())) {
                eprintln!("warning: could not append to the result store: {e}");
            }
        }
        if !store.contains(&fk) {
            let stats = RunStats {
                sim: fly.clone(),
                flywheel: None,
            };
            if let Err(e) = store.insert(fk, &label, stats) {
                eprintln!("warning: could not append to the result store: {e}");
            }
        }
    }
    let speedups = keys
        .iter()
        .map(|(bk, fk)| {
            let base = &store.get(bk).expect("leg simulated or recalled").sim;
            let fly = &store.get(fk).expect("leg simulated or recalled").sim;
            fly.speedup_over(base)
        })
        .collect();
    (speedups, simulated, recalled)
}

/// Ranks candidates best-first under `objective` with a total, deterministic
/// order: score first, canonical parameter string as the tie-break.
fn rank(candidates: &mut Vec<Candidate>, objective: Objective) {
    candidates.sort_by(|a, b| {
        if objective.better(a.speedup, b.speedup) {
            std::cmp::Ordering::Less
        } else if objective.better(b.speedup, a.speedup) {
            std::cmp::Ordering::Greater
        } else {
            canonical_params(&a.profile).cmp(&canonical_params(&b.profile))
        }
    });
    candidates.dedup_by_key(|c| canonical_params(&c.profile));
}

/// Runs the evolutionary search for `objective` against `store`.
///
/// Deterministic for a fixed [`SearchConfig`]: the same seed produces the
/// same frontier byte-for-byte, warm or cold.
pub fn run_search(
    objective: Objective,
    cfg: &SearchConfig,
    store: &mut ResultStore,
) -> SearchOutcome {
    // Per-objective mutation stream, so max- and min-searches explore
    // independently even at the same seed.
    let mut rng = Rng::new(cfg.seed.wrapping_mul(2).wrapping_add(match objective {
        Objective::MaximizeGap => 1,
        Objective::MinimizeGap => 2,
    }));
    let mut simulated = 0;
    let mut recalled = 0;

    let start_profiles: Vec<BenchmarkProfile> = Benchmark::stress_suite()
        .iter()
        .map(|b| b.profile())
        .collect();
    let (scores, sim0, rec0) = evaluate_all(&start_profiles, cfg, store);
    simulated += sim0;
    recalled += rec0;
    let mut population: Vec<Candidate> = start_profiles
        .into_iter()
        .zip(scores)
        .map(|(profile, speedup)| Candidate { profile, speedup })
        .collect();
    rank(&mut population, objective);
    population.truncate(cfg.population);

    for _generation in 0..cfg.generations {
        let mut children = Vec::new();
        for parent in &population {
            for _ in 0..cfg.children_per_parent {
                let child = mutate(&parent.profile, &mut rng);
                debug_assert!(child.validate().is_ok());
                children.push(child);
            }
        }
        let (scores, sim_n, rec_n) = evaluate_all(&children, cfg, store);
        simulated += sim_n;
        recalled += rec_n;
        population.extend(
            children
                .into_iter()
                .zip(scores)
                .map(|(profile, speedup)| Candidate { profile, speedup }),
        );
        rank(&mut population, objective);
        population.truncate(cfg.population);
    }

    population.truncate(cfg.top);
    SearchOutcome {
        objective,
        frontier: population,
        simulated,
        recalled,
    }
}

/// One frontier line: the candidate's score and its full parameter vector in
/// a compact fixed format (every knob the mutator can move is shown, so two
/// distinct candidates always render distinct lines).
fn frontier_line(rank: usize, c: &Candidate) -> String {
    let p = &c.profile;
    format!(
        "{rank:>2}. speedup={:.6} br[{:.3}/{:.3}/{:.3} bias={:.3}] \
         mem[{:.3}/{:.3}/{:.3} stride={} hot={}K scat={}K] \
         mix[ld={:.3} st={:.3}] code[fn={} blk={} dep={:.3} span={} call={:.3}] \
         loop[trip={:.2}]",
        c.speedup,
        p.branches.biased,
        p.branches.patterned,
        p.branches.random,
        p.branches.bias,
        p.memory.streaming,
        p.memory.hot_set,
        p.memory.scattered,
        p.memory.stream_stride,
        p.memory.hot_set_bytes / 1024,
        p.memory.scattered_bytes / 1024,
        p.mix.load,
        p.mix.store,
        p.functions,
        p.avg_block_len,
        p.dependency_distance,
        p.dest_register_span,
        p.call_probability,
        p.loops.mean_trip_count,
    )
}

/// Renders the ranked frontier of one search outcome.
pub fn render_frontier(outcome: &SearchOutcome) -> String {
    let mut s = format!(
        "== adversarial search: {}-gap frontier ==\n",
        outcome.objective.name()
    );
    for (i, c) in outcome.frontier.iter().enumerate() {
        s.push_str(&frontier_line(i + 1, c));
        s.push('\n');
    }
    s
}

/// The deterministic digest CI pins the search to: the FNV content hash of
/// the rendered frontier(s).
pub fn frontier_hash(rendered: &str) -> String {
    StoreKey::of_input(rendered).hex()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> SearchConfig {
        SearchConfig {
            seed: 7,
            generations: 1,
            population: 3,
            children_per_parent: 1,
            budget: SimBudget::new(200, 1_000),
            top: 4,
            ..SearchConfig::default()
        }
    }

    #[test]
    fn mutations_always_validate() {
        let mut rng = Rng::new(0xdead_beef);
        for b in Benchmark::stress_suite() {
            let mut p = b.profile();
            for step in 0..400 {
                p = mutate(&p, &mut rng);
                p.validate()
                    .unwrap_or_else(|e| panic!("step {step} from {}: {e}", b.name()));
            }
        }
    }

    #[test]
    fn search_is_deterministic_and_warm_cached() {
        let cfg = tiny_cfg();
        let mut store = ResultStore::in_memory();
        let cold = run_search(Objective::MinimizeGap, &cfg, &mut store);
        assert!(!cold.frontier.is_empty());
        assert!(cold.simulated > 0);
        let cold_text = render_frontier(&cold);

        // Same store, same seed: everything recalls, frontier identical.
        let warm = run_search(Objective::MinimizeGap, &cfg, &mut store);
        assert_eq!(warm.simulated, 0, "warm search must not simulate");
        assert!(warm.recalled > 0);
        assert_eq!(render_frontier(&warm), cold_text);
        assert_eq!(
            frontier_hash(&render_frontier(&warm)),
            frontier_hash(&cold_text)
        );

        // Fresh store, same seed: byte-identical frontier from cold.
        let mut store2 = ResultStore::in_memory();
        let again = run_search(Objective::MinimizeGap, &cfg, &mut store2);
        assert_eq!(render_frontier(&again), cold_text);
    }

    #[test]
    fn objectives_rank_in_opposite_directions() {
        let cfg = tiny_cfg();
        let mut store = ResultStore::in_memory();
        let max = run_search(Objective::MaximizeGap, &cfg, &mut store);
        let min = run_search(Objective::MinimizeGap, &cfg, &mut store);
        let best_max = max.frontier.first().unwrap().speedup;
        let best_min = min.frontier.first().unwrap().speedup;
        assert!(
            best_max >= best_min,
            "max-gap frontier head {best_max} below min-gap head {best_min}"
        );
        // Frontiers are internally sorted under their objectives.
        for w in max.frontier.windows(2) {
            assert!(w[0].speedup >= w[1].speedup);
        }
        for w in min.frontier.windows(2) {
            assert!(w[0].speedup <= w[1].speedup);
        }
    }
}
