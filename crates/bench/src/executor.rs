//! Machine-family executor registry: every machine the scenario engine can
//! place in a cell, described as *data* (a [`MachineFamily`]) plus a
//! *builder* (an [`ExecutorBuilder`]), instead of a hard-coded enum with
//! per-variant dispatch scattered across the engine.
//!
//! A family descriptor carries the machine's stable name (which enters store
//! keys and every emitted artifact), its capability flags (which scenario
//! axes it consumes), its [`MachineKind`] power binding, and the preset tags
//! that place it in the scenario presets. The builder turns one grid point's
//! machine-independent [`CellAxes`] into a boxed [`Executor`] that owns the
//! fully-resolved machine configuration and knows how to validate it, derive
//! its content address, and run (or replay) it.
//!
//! [`Machine`] is a thin copyable handle over a registered family. The
//! associated constants ([`Machine::Baseline`], [`Machine::Flywheel`], …)
//! keep the enum-era spelling working everywhere — scenario specs, CLI
//! flags, tests — while the engine itself never matches on the machine: it
//! asks the family for capabilities and the executor for behaviour, so a new
//! family drops into scenarios, the result store, reports, invariants and
//! telemetry with zero changes in those layers.
//!
//! Store-key compatibility is load-bearing: for the pre-registry families
//! the executor derives byte-for-byte the same content address the old
//! `baseline_key`/`flywheel_key` paths produced (pinned by tests here and in
//! [`crate::store`]), so generalizing the dispatch moved no stored result.

use crate::store::{self, RunStats, StoreKey};
use crate::telemetry;
use flywheel_core::{DvfsConfig, FlywheelConfig, FlywheelSim};
use flywheel_power::{MachineKind, PowerConfig};
use flywheel_timing::{ClockPlan, TechNode};
use flywheel_uarch::{BaselineConfig, BaselineSim, MultiDomainConfig, SimBudget};
use flywheel_workloads::{Benchmark, TraceCursor};

/// The machine-independent coordinates of one scenario grid point: everything
/// a [`MachineFamily`]'s builder needs to resolve its concrete configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellAxes {
    /// Workload.
    pub bench: Benchmark,
    /// Workload seed.
    pub seed: u64,
    /// Technology node.
    pub node: TechNode,
    /// Front-end clock speed-up over the baseline clock, percent.
    pub fe_pct: u32,
    /// Back-end clock speed-up over the baseline clock, percent.
    pub be_pct: u32,
    /// Issue Window entries.
    pub iw_entries: u32,
    /// Reorder-buffer entries.
    pub rob_entries: u32,
    /// Execution Cache capacity in KiB (ignored by families without an EC).
    pub ec_kb: u64,
    /// Main-memory latency in baseline cycles.
    pub mem_cycles: u32,
}

/// Builds an [`Executor`] for one grid point of this machine family.
///
/// Builders are zero-state descriptors referenced by the static
/// [`MachineFamily`] table, so the trait is `Sync` by construction.
pub trait ExecutorBuilder: Sync {
    /// Resolves `axes` into a boxed executor owning the concrete machine
    /// configuration of this family at that grid point.
    fn build(&self, axes: &CellAxes) -> Box<dyn Executor>;
}

/// One grid point of one machine family, with its configuration fully
/// resolved: the single object the scenario engine talks to instead of
/// matching on machine variants.
pub trait Executor {
    /// The registered family name (enters store keys, labels and emitters).
    fn family_name(&self) -> &'static str;

    /// The grid point this executor was built for.
    fn axes(&self) -> &CellAxes;

    /// Validates the resolved machine configuration.
    fn validate(&self) -> Result<(), String>;

    /// The `Debug` rendering of the resolved configuration — exactly the
    /// string that enters this cell's store key (see [`store::family_input`]).
    fn config_debug(&self) -> String;

    /// The power-model geometry and [`MachineKind`] leakage binding of this
    /// machine (what the invariant layer rebuilds to cross-check attributed
    /// leakage).
    fn power_binding(&self) -> (PowerConfig, MachineKind);

    /// The machine's commit width (bounds retirement bandwidth).
    fn commit_width(&self) -> u32;

    /// Runs the simulator directly on an explicit trace cursor, bypassing
    /// every store and cache. The identity tests use this to prove restarted
    /// cursors replay bit-identically.
    fn replay(&self, cursor: TraceCursor<'_>, budget: SimBudget) -> RunStats;

    /// The content address of this cell at `budget`: a hash of the family
    /// name, the full machine configuration, workload, seed, budget and the
    /// code-version salt (see [`crate::store`]).
    fn key(&self, budget: SimBudget) -> StoreKey {
        let a = self.axes();
        store::family_key(
            self.family_name(),
            &self.config_debug(),
            a.bench,
            a.seed,
            budget,
        )
    }

    /// Runs the cell against the shared recorded trace of its
    /// `(benchmark, seed)` pair, recalling it from the process-global result
    /// store instead when one is installed (records round-trip
    /// bit-identically, so callers cannot tell the difference).
    fn run(&self, budget: SimBudget) -> RunStats {
        if store::global_store_installed() {
            let key = self.key(budget);
            if let Some(hit) = store::global_get(&key) {
                return hit;
            }
            let r = self.simulate(budget);
            let a = self.axes();
            let label = store::cell_label(self.family_name(), a.bench, a.seed);
            store::global_put(key, &label, r.clone());
            return r;
        }
        self.simulate(budget)
    }

    /// Simulates the cell against the shared recorded trace, bypassing every
    /// store: the single choke point through which this family's simulations
    /// run (and are counted, and telemetry-tagged).
    fn simulate(&self, budget: SimBudget) -> RunStats {
        store::count_simulation();
        let a = *self.axes();
        let trace = crate::shared_trace(a.bench, a.seed, budget);
        // When a telemetry sink is installed, arm the thread-local recorder
        // for this cell, tagged with the same content address the store files
        // the cell under. Disarmed cost: one atomic load.
        let _telemetry = telemetry::arm_cell(|| {
            (
                self.key(budget),
                store::cell_label(self.family_name(), a.bench, a.seed),
            )
        });
        self.replay(trace.cursor(), budget)
    }
}

/// A registered machine family: stable identity, capability flags, power
/// binding, preset placement, and the builder that resolves grid points into
/// executors.
pub struct MachineFamily {
    /// Stable name, as used by the `scenarios` CLI, the store labels and the
    /// emitters. Renaming a family orphans its stored results — don't.
    pub name: &'static str,
    /// One-line human description (the `list-machines` subcommand prints it).
    pub summary: &'static str,
    /// Which power-model machine kind the family's energy account binds to
    /// (what structures it instantiates and leaks from).
    pub kind: MachineKind,
    /// Whether the family sweeps the scenario's clock axis. Families that
    /// don't run once at the scenario's `baseline_clock` instead, so a clock
    /// sweep does not multiply the reference runs.
    pub uses_clock_axis: bool,
    /// Whether the family's behaviour depends on the Execution Cache axis.
    pub uses_ec_axis: bool,
    /// Scenario preset tags this family participates in (see
    /// [`machines_for_preset`]).
    pub presets: &'static [&'static str],
    /// Resolves grid points into executors for this family.
    pub builder: &'static dyn ExecutorBuilder,
}

const BASELINE: MachineFamily = MachineFamily {
    name: "baseline",
    summary: "the paper's synchronous out-of-order baseline (Table 2)",
    kind: MachineKind::Baseline,
    uses_clock_axis: false,
    uses_ec_axis: false,
    presets: &["default", "fig2", "fig11", "multidomain", "dvfs"],
    builder: &BaselineBuilder {
        name: "baseline",
        variant: BaselineVariant::Plain,
    },
};

const BASELINE_EXTRA_FE: MachineFamily = MachineFamily {
    name: "baseline-extra-fe",
    summary: "baseline with one extra front-end stage (Figure 2, light bars)",
    kind: MachineKind::Baseline,
    uses_clock_axis: false,
    uses_ec_axis: false,
    presets: &["fig2"],
    builder: &BaselineBuilder {
        name: "baseline-extra-fe",
        variant: BaselineVariant::ExtraFe,
    },
};

const BASELINE_PIPED_WAKEUP: MachineFamily = MachineFamily {
    name: "baseline-piped-wakeup",
    summary: "baseline with Wake-up/Select pipelined over two cycles (Figure 2, dark bars)",
    kind: MachineKind::Baseline,
    uses_clock_axis: false,
    uses_ec_axis: false,
    presets: &["fig2"],
    builder: &BaselineBuilder {
        name: "baseline-piped-wakeup",
        variant: BaselineVariant::PipedWakeup,
    },
};

const REGALLOC: MachineFamily = MachineFamily {
    name: "regalloc",
    summary: "Figure 11's Register Allocation machine: dual-clock IW + pool renaming, no EC",
    kind: MachineKind::Flywheel,
    uses_clock_axis: true,
    uses_ec_axis: false,
    presets: &["fig11"],
    builder: &FlywheelBuilder {
        name: "regalloc",
        execution_cache: false,
    },
};

const FLYWHEEL: MachineFamily = MachineFamily {
    name: "flywheel",
    summary: "the full Flywheel machine (dual-clock IW, Execution Cache, pool renaming)",
    kind: MachineKind::Flywheel,
    uses_clock_axis: true,
    uses_ec_axis: true,
    presets: &["default", "fig11", "dvfs"],
    builder: &FlywheelBuilder {
        name: "flywheel",
        execution_cache: true,
    },
};

const MULTIDOMAIN: MachineFamily = MachineFamily {
    name: "multidomain",
    summary: "baseline with the LSQ/D-cache pipeline in its own, faster clock domain",
    kind: MachineKind::Baseline,
    uses_clock_axis: true,
    uses_ec_axis: false,
    presets: &["multidomain"],
    builder: &MultiDomainBuilder,
};

const DVFS: MachineFamily = MachineFamily {
    name: "dvfs",
    summary: "Flywheel with a governor retuning the back-end clock from observed EC residency",
    kind: MachineKind::Flywheel,
    uses_clock_axis: true,
    uses_ec_axis: true,
    presets: &["dvfs"],
    builder: &DvfsBuilder,
};

/// A machine model a scenario can place in a cell: a thin copyable handle
/// over a registered [`MachineFamily`].
///
/// Equality, hashing and formatting all go through the family's stable name,
/// so handles behave exactly like the enum variants they replaced.
#[derive(Clone, Copy)]
pub struct Machine(&'static MachineFamily);

#[allow(non_upper_case_globals)]
impl Machine {
    /// The paper's synchronous baseline (Table 2).
    pub const Baseline: Machine = Machine(&BASELINE);
    /// Baseline with one extra front-end stage (Figure 2, light bars).
    pub const BaselineExtraFe: Machine = Machine(&BASELINE_EXTRA_FE);
    /// Baseline with Wake-up/Select pipelined over two cycles (Figure 2, dark
    /// bars).
    pub const BaselinePipedWakeup: Machine = Machine(&BASELINE_PIPED_WAKEUP);
    /// The "Register Allocation" machine of Figure 11: Dual-Clock Issue Window
    /// and pool renaming without the Execution Cache.
    pub const RegAlloc: Machine = Machine(&REGALLOC);
    /// The full Flywheel machine.
    pub const Flywheel: Machine = Machine(&FLYWHEEL);
    /// The multi-domain baseline: LSQ/D-cache access in its own clock domain.
    pub const MultiDomain: Machine = Machine(&MULTIDOMAIN);
    /// The DVFS-governed Flywheel: the back-end clock is retuned at fixed
    /// intervals from the observed Execution Cache residency.
    pub const Dvfs: Machine = Machine(&DVFS);

    /// All registered machines, in a stable order.
    pub fn all() -> &'static [Machine] {
        &[
            Machine::Baseline,
            Machine::BaselineExtraFe,
            Machine::BaselinePipedWakeup,
            Machine::RegAlloc,
            Machine::Flywheel,
            Machine::MultiDomain,
            Machine::Dvfs,
        ]
    }

    /// The machine's name as used by the `scenarios` CLI and the emitters.
    pub fn name(&self) -> &'static str {
        self.0.name
    }

    /// Parses a machine from its [`Machine::name`].
    pub fn from_name(name: &str) -> Option<Machine> {
        Machine::all().iter().copied().find(|m| m.name() == name)
    }

    /// Whether this is a baseline-kind machine: it carries no Flywheel
    /// statistics and its energy account binds to [`MachineKind::Baseline`].
    pub fn is_baseline(&self) -> bool {
        self.0.kind == MachineKind::Baseline
    }

    /// Whether the machine sweeps the scenario's clock axis (see
    /// [`MachineFamily::uses_clock_axis`]).
    pub fn uses_clock_axis(&self) -> bool {
        self.0.uses_clock_axis
    }

    /// Whether the machine's behaviour depends on the Execution Cache axis.
    pub fn uses_ec_axis(&self) -> bool {
        self.0.uses_ec_axis
    }

    /// The family's power-model machine kind.
    pub fn kind(&self) -> MachineKind {
        self.0.kind
    }

    /// The full family descriptor.
    pub fn family(&self) -> &'static MachineFamily {
        self.0
    }
}

impl PartialEq for Machine {
    fn eq(&self, other: &Self) -> bool {
        // By name, not by pointer: const promotion may duplicate descriptor
        // allocations across codegen units.
        self.0.name == other.0.name
    }
}

impl Eq for Machine {}

impl std::hash::Hash for Machine {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.name.hash(state);
    }
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0.name)
    }
}

impl std::fmt::Display for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0.name)
    }
}

/// The machines tagged with scenario preset `tag`, in registry order (this is
/// the single source the presets draw their machine lists from — there is no
/// second hand-maintained list to drift).
pub fn machines_for_preset(tag: &str) -> Vec<Machine> {
    Machine::all()
        .iter()
        .copied()
        .filter(|m| m.family().presets.contains(&tag))
        .collect()
}

/// Which structural variant a [`BaselineBuilder`] applies on top of the paper
/// baseline (the Figure 2 pipeline-loop study knobs).
#[derive(Clone, Copy)]
enum BaselineVariant {
    Plain,
    ExtraFe,
    PipedWakeup,
}

struct BaselineBuilder {
    name: &'static str,
    variant: BaselineVariant,
}

/// Applies the clock axes to a baseline-core config. A clocked-up baseline
/// core needs the Dual-Clock Issue Window's synchronization latencies, as in
/// `BaselineConfig::with_dual_clock_frontend`.
fn apply_clock_axes(cfg: &mut BaselineConfig, axes: &CellAxes) {
    if axes.fe_pct > 0 || axes.be_pct > 0 {
        cfg.clocks = ClockPlan::with_speedups(axes.node, axes.fe_pct, axes.be_pct);
        cfg.sync_latency_be_cycles = 1;
        cfg.redirect_sync_fe_cycles = 1;
    }
}

fn apply_window_axes(cfg: &mut BaselineConfig, axes: &CellAxes) {
    cfg.iw_entries = axes.iw_entries;
    cfg.rob_entries = axes.rob_entries;
    cfg.mem_cycles = axes.mem_cycles;
}

impl ExecutorBuilder for BaselineBuilder {
    fn build(&self, axes: &CellAxes) -> Box<dyn Executor> {
        let mut cfg = BaselineConfig::paper(axes.node);
        match self.variant {
            BaselineVariant::Plain => {}
            BaselineVariant::ExtraFe => cfg = cfg.with_extra_frontend_stage(),
            BaselineVariant::PipedWakeup => cfg = cfg.with_pipelined_wakeup(),
        }
        apply_clock_axes(&mut cfg, axes);
        apply_window_axes(&mut cfg, axes);
        Box::new(BaselineExec {
            name: self.name,
            axes: *axes,
            cfg,
        })
    }
}

struct BaselineExec {
    name: &'static str,
    axes: CellAxes,
    cfg: BaselineConfig,
}

impl Executor for BaselineExec {
    fn family_name(&self) -> &'static str {
        self.name
    }
    fn axes(&self) -> &CellAxes {
        &self.axes
    }
    fn validate(&self) -> Result<(), String> {
        self.cfg.validate()
    }
    fn config_debug(&self) -> String {
        format!("{:?}", self.cfg)
    }
    fn power_binding(&self) -> (PowerConfig, MachineKind) {
        (self.cfg.power_config(), MachineKind::Baseline)
    }
    fn commit_width(&self) -> u32 {
        self.cfg.commit_width
    }
    fn replay(&self, cursor: TraceCursor<'_>, budget: SimBudget) -> RunStats {
        RunStats::from_baseline(BaselineSim::new(self.cfg.clone(), cursor).run(budget))
    }
}

struct FlywheelBuilder {
    name: &'static str,
    execution_cache: bool,
}

impl ExecutorBuilder for FlywheelBuilder {
    fn build(&self, axes: &CellAxes) -> Box<dyn Executor> {
        let mut cfg = FlywheelConfig::paper(axes.node, axes.fe_pct, axes.be_pct);
        cfg.execution_cache = self.execution_cache;
        cfg.base.iw_entries = axes.iw_entries;
        cfg.base.rob_entries = axes.rob_entries;
        cfg.base.mem_cycles = axes.mem_cycles;
        cfg.ec.size_bytes = axes.ec_kb * 1024;
        Box::new(FlywheelExec {
            name: self.name,
            axes: *axes,
            cfg,
        })
    }
}

struct FlywheelExec {
    name: &'static str,
    axes: CellAxes,
    cfg: FlywheelConfig,
}

impl Executor for FlywheelExec {
    fn family_name(&self) -> &'static str {
        self.name
    }
    fn axes(&self) -> &CellAxes {
        &self.axes
    }
    fn validate(&self) -> Result<(), String> {
        self.cfg.validate()
    }
    fn config_debug(&self) -> String {
        format!("{:?}", self.cfg)
    }
    fn power_binding(&self) -> (PowerConfig, MachineKind) {
        (self.cfg.power_config(), MachineKind::Flywheel)
    }
    fn commit_width(&self) -> u32 {
        self.cfg.base.commit_width
    }
    fn replay(&self, cursor: TraceCursor<'_>, budget: SimBudget) -> RunStats {
        RunStats::from_flywheel(&FlywheelSim::new(self.cfg.clone(), cursor).run(budget))
    }
}

struct MultiDomainBuilder;

impl ExecutorBuilder for MultiDomainBuilder {
    fn build(&self, axes: &CellAxes) -> Box<dyn Executor> {
        let mut cfg = MultiDomainConfig::paper(axes.node);
        apply_clock_axes(&mut cfg.base, axes);
        apply_window_axes(&mut cfg.base, axes);
        Box::new(MultiDomainExec { axes: *axes, cfg })
    }
}

struct MultiDomainExec {
    axes: CellAxes,
    cfg: MultiDomainConfig,
}

impl Executor for MultiDomainExec {
    fn family_name(&self) -> &'static str {
        "multidomain"
    }
    fn axes(&self) -> &CellAxes {
        &self.axes
    }
    fn validate(&self) -> Result<(), String> {
        self.cfg.validate()
    }
    fn config_debug(&self) -> String {
        format!("{:?}", self.cfg)
    }
    fn power_binding(&self) -> (PowerConfig, MachineKind) {
        (self.cfg.power_config(), MachineKind::Baseline)
    }
    fn commit_width(&self) -> u32 {
        self.cfg.base.commit_width
    }
    fn replay(&self, cursor: TraceCursor<'_>, budget: SimBudget) -> RunStats {
        RunStats::from_baseline(BaselineSim::new_multi_domain(self.cfg.clone(), cursor).run(budget))
    }
}

struct DvfsBuilder;

impl ExecutorBuilder for DvfsBuilder {
    fn build(&self, axes: &CellAxes) -> Box<dyn Executor> {
        let mut cfg = DvfsConfig::paper(axes.node, axes.fe_pct, axes.be_pct);
        cfg.fly.base.iw_entries = axes.iw_entries;
        cfg.fly.base.rob_entries = axes.rob_entries;
        cfg.fly.base.mem_cycles = axes.mem_cycles;
        cfg.fly.ec.size_bytes = axes.ec_kb * 1024;
        Box::new(DvfsExec { axes: *axes, cfg })
    }
}

struct DvfsExec {
    axes: CellAxes,
    cfg: DvfsConfig,
}

impl Executor for DvfsExec {
    fn family_name(&self) -> &'static str {
        "dvfs"
    }
    fn axes(&self) -> &CellAxes {
        &self.axes
    }
    fn validate(&self) -> Result<(), String> {
        self.cfg.validate()
    }
    fn config_debug(&self) -> String {
        format!("{:?}", self.cfg)
    }
    fn power_binding(&self) -> (PowerConfig, MachineKind) {
        (self.cfg.power_config(), MachineKind::Flywheel)
    }
    fn commit_width(&self) -> u32 {
        self.cfg.fly.base.commit_width
    }
    fn replay(&self, cursor: TraceCursor<'_>, budget: SimBudget) -> RunStats {
        RunStats::from_flywheel(&FlywheelSim::new_dvfs(self.cfg.clone(), cursor).run(budget))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_axes() -> CellAxes {
        CellAxes {
            bench: Benchmark::Micro,
            seed: 42,
            node: TechNode::N130,
            fe_pct: 0,
            be_pct: 0,
            iw_entries: 128,
            rob_entries: 128,
            ec_kb: 128,
            mem_cycles: 100,
        }
    }

    #[test]
    fn registry_names_are_unique_and_round_trip() {
        let mut seen = std::collections::HashSet::new();
        for &m in Machine::all() {
            assert!(seen.insert(m.name()), "duplicate family '{}'", m.name());
            assert_eq!(Machine::from_name(m.name()), Some(m));
            assert_eq!(format!("{m}"), m.name());
            assert_eq!(format!("{m:?}"), m.name());
        }
        assert_eq!(Machine::from_name("nope"), None);
        assert_eq!(Machine::all().len(), 7);
    }

    #[test]
    fn preset_tags_resolve_in_registry_order() {
        let names = |tag: &str| -> Vec<&'static str> {
            machines_for_preset(tag).iter().map(|m| m.name()).collect()
        };
        assert_eq!(names("default"), ["baseline", "flywheel"]);
        assert_eq!(
            names("fig2"),
            ["baseline", "baseline-extra-fe", "baseline-piped-wakeup"]
        );
        assert_eq!(names("fig11"), ["baseline", "regalloc", "flywheel"]);
        assert_eq!(names("multidomain"), ["baseline", "multidomain"]);
        assert_eq!(names("dvfs"), ["baseline", "flywheel", "dvfs"]);
        assert!(names("no-such-tag").is_empty());
    }

    #[test]
    fn capability_flags_bind_kind_and_axes() {
        assert!(Machine::MultiDomain.is_baseline());
        assert!(Machine::MultiDomain.uses_clock_axis());
        assert!(!Machine::MultiDomain.uses_ec_axis());
        assert_eq!(Machine::Dvfs.kind(), MachineKind::Flywheel);
        assert!(Machine::Dvfs.uses_ec_axis());
        assert!(Machine::RegAlloc.uses_clock_axis());
        assert!(!Machine::RegAlloc.uses_ec_axis());
        // The enum-era invariant — baseline-kind machines don't sweep the EC
        // axis — must hold for every registered family.
        for &m in Machine::all() {
            if m.is_baseline() {
                assert!(!m.uses_ec_axis(), "{m}: a baseline-kind family has no EC");
            }
        }
    }

    #[test]
    fn every_family_builds_a_valid_paper_point_executor() {
        let axes = paper_axes();
        for &m in Machine::all() {
            let exec = m.family().builder.build(&axes);
            assert_eq!(exec.family_name(), m.name());
            assert_eq!(exec.axes(), &axes);
            exec.validate()
                .unwrap_or_else(|e| panic!("{}: invalid paper point: {e}", m.name()));
            assert!(exec.commit_width() > 0);
            let (_, kind) = exec.power_binding();
            assert_eq!(kind, m.kind());
        }
    }

    #[test]
    fn executor_keys_pin_the_legacy_derivation() {
        let axes = paper_axes();
        let budget = SimBudget::new(500, 2_000);
        let base = Machine::Baseline.family().builder.build(&axes);
        assert_eq!(
            base.key(budget),
            store::baseline_key(
                &BaselineConfig::paper(TechNode::N130),
                axes.bench,
                42,
                budget
            ),
        );
        let fly = Machine::Flywheel.family().builder.build(&axes);
        assert_eq!(
            fly.key(budget),
            store::flywheel_key(
                &FlywheelConfig::paper_iso_clock(TechNode::N130),
                axes.bench,
                42,
                budget,
            ),
        );
        // Every family derives a distinct key at the same grid point.
        let keys: std::collections::HashSet<StoreKey> = Machine::all()
            .iter()
            .map(|m| m.family().builder.build(&axes).key(budget))
            .collect();
        assert_eq!(keys.len(), Machine::all().len());
    }

    #[test]
    fn new_families_run_and_differ_from_their_parents() {
        let mut axes = paper_axes();
        axes.bench = Benchmark::PtrChase; // load-latency sensitive
        let budget = SimBudget::new(500, 2_000);
        let base = Machine::Baseline.family().builder.build(&axes).run(budget);
        let multi = Machine::MultiDomain
            .family()
            .builder
            .build(&axes)
            .run(budget);
        assert!(base.flywheel.is_none() && multi.flywheel.is_none());
        assert_ne!(
            base.sim, multi.sim,
            "the LSQ domain must change load timing on a pointer chase"
        );
        let dvfs = Machine::Dvfs.family().builder.build(&axes).run(budget);
        assert!(dvfs.flywheel.is_some(), "DVFS is a Flywheel-kind machine");
    }
}
