//! Persistent, content-addressed store of simulation results.
//!
//! Every evaluation cell — one (machine configuration, workload, seed, budget)
//! simulation — is fully deterministic, so its result is a pure function of its
//! inputs. This module gives that function a durable memo table:
//!
//! * [`StoreKey`] — a 128-bit FNV-1a hash of the cell's *complete* input: the
//!   machine family, the full machine configuration (via its canonical `Debug`
//!   rendering, which covers every structural/clocking knob), the workload and
//!   seed, the instruction budget, and a code-version salt derived from the
//!   committed `golden.txt` digest. Touch any input — or change simulator
//!   behaviour (which regenerates `golden.txt`) — and the key changes, so stale
//!   records can never be served.
//! * [`RunStats`] — the serializable record of one run: the full [`SimResult`]
//!   plus the [`FlywheelStats`] when the cell ran a Flywheel-family machine.
//!   Floats are stored as IEEE-754 bit patterns, so a record read back from
//!   disk is *bit-identical* to the freshly simulated result.
//! * [`ResultStore`] — an append-only, line-oriented on-disk store
//!   (hand-rolled serialization; the build container has no registry access
//!   for serde, mirroring `flywheel-rng`'s approach to `rand`).
//!
//! The `scenarios` and `experiments` binaries consult a store before
//! simulating (`--store PATH`), so a re-run after touching one workload only
//! simulates the affected cells; the `flywheel-report` crate regenerates the
//! Markdown figure tables byte-identically from the same records.

use flywheel_core::{FlywheelResult, FlywheelStats};
use flywheel_uarch::{BaselineConfig, SimBudget, SimResult};
use flywheel_workloads::Benchmark;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// Why a store operation failed. Every fallible store entry point returns this
/// instead of panicking (or leaking a bare [`std::io::Error`]), so a bad disk
/// surfaces to sweep executors and workers as a recoverable, reportable value —
/// a worker process can degrade or retry instead of dying.
#[derive(Debug)]
pub enum StoreError {
    /// A filesystem operation on the backing file failed.
    Io {
        /// What the store was doing (`open`, `append`, `rewrite`, …).
        op: &'static str,
        /// The file involved.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The file carries a schema header this build does not understand — a
    /// foreign file that should be noticed, never repaired or overwritten.
    UnknownSchema {
        /// The offending file.
        path: PathBuf,
        /// The header line that was found.
        found: String,
    },
}

impl StoreError {
    pub(crate) fn io(op: &'static str, path: &Path) -> impl FnOnce(std::io::Error) -> StoreError {
        let path = path.to_path_buf();
        move |source| StoreError::Io { op, path, source }
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { op, path, source } => {
                write!(f, "store {} failed on {}: {source}", op, path.display())
            }
            StoreError::UnknownSchema { path, found } => write!(
                f,
                "store {}: unknown schema '{found}' (expected '{STORE_SCHEMA}')",
                path.display()
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::UnknownSchema { .. } => None,
        }
    }
}

/// On-disk schema version. Bump when the record line format changes; a store
/// written by an unknown schema is rejected at [`ResultStore::open`] time
/// (the immediately preceding version is migrated in place instead).
///
/// v2: `EnergyBreakdown` leakage is attributed — the single `leakage_pj` field
/// became three per-category components (front-end, back-end, Flywheel-only).
///
/// v3: per-record framing — every record line carries its payload length and
/// CRC32 (`<len:08x> <crc:08x> <payload>`), so a torn append or a flipped bit
/// is detected at open time and quarantined instead of poisoning the store.
pub const STORE_SCHEMA: &str = "flywheel-store/3";

/// The previous schema, accepted read-only: a v2 store is migrated to v3 (an
/// atomic full rewrite) the first time it is opened. The v2 record payload is
/// byte-identical to v3's, so migration only adds the framing prefix.
const STORE_SCHEMA_V2: &str = "flywheel-store/2";

/// The committed golden digest, compiled in so the code-version salt tracks
/// simulator behaviour: regenerating `golden.txt` (the required step whenever
/// simulation results legitimately change) automatically invalidates every
/// stored key.
const GOLDEN_DIGEST: &str = include_str!("../../../golden.txt");

/// The code-version salt mixed into every [`StoreKey`]: an FNV-1a hash of the
/// committed `golden.txt`. Two builds whose simulators behave differently
/// cannot share store records.
pub fn code_version_salt() -> u64 {
    static SALT: AtomicU64 = AtomicU64::new(0);
    let cached = SALT.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let salt = fnv1a64(FNV_OFFSET, GOLDEN_DIGEST.as_bytes()) | 1;
    SALT.store(salt, Ordering::Relaxed);
    salt
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a64(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// FNV-1a with a caller-supplied seed folded into the offset basis; the fault
/// harness uses it to rank cell labels deterministically per plan seed.
pub(crate) fn fnv1a64_seeded(seed: u64, bytes: &[u8]) -> u64 {
    fnv1a64(FNV_OFFSET ^ seed, bytes)
}

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320), hand-rolled like the
/// rest of the serialization because the build container has no registry
/// access. Matches the ubiquitous zlib/`cksum -o3` definition, so a store can
/// be checked with external tooling too.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

/// Wraps a record payload in the v3 per-record framing:
/// `<payload-len:08x> <payload-crc32:08x> <payload>`.
///
/// Shared with the telemetry event log ([`crate::telemetry`]), which frames
/// its lines identically so one fsck routine understands both files.
pub(crate) fn frame_payload(payload: &str) -> String {
    format!(
        "{:08x} {:08x} {payload}",
        payload.len(),
        crc32(payload.as_bytes())
    )
}

/// Validates and strips the v3 framing from one record line (without its
/// newline), returning the payload. `None` means the line is damaged: too
/// short, malformed hex, a length mismatch (torn write) or a CRC mismatch
/// (bit rot / flipped bits).
pub(crate) fn unframe_line(line: &[u8]) -> Option<&str> {
    if line.len() < 18 || line[8] != b' ' || line[17] != b' ' {
        return None;
    }
    let len = u32::from_str_radix(std::str::from_utf8(&line[..8]).ok()?, 16).ok()?;
    let crc = u32::from_str_radix(std::str::from_utf8(&line[9..17]).ok()?, 16).ok()?;
    let payload = &line[18..];
    if payload.len() as u32 != len || crc32(payload) != crc {
        return None;
    }
    std::str::from_utf8(payload).ok()
}

/// Parses a record payload (`<key-hex> <label> <fields…>`) common to v2 lines
/// and v3 payloads.
fn parse_payload(payload: &str) -> Option<(StoreKey, &str, RunStats)> {
    let mut fields = payload.split_whitespace();
    let key = StoreKey::from_hex(fields.next()?)?;
    let label = fields.next()?;
    let stats = RunStats::parse_fields(&mut fields)?;
    Some((key, label, stats))
}

/// A 128-bit content address of one simulation's complete input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StoreKey(pub u64, pub u64);

impl StoreKey {
    /// Hashes a canonical input string into a key (two independent FNV-1a
    /// streams; 128 bits make collisions implausible at any realistic store
    /// size).
    pub fn of_input(input: &str) -> StoreKey {
        let lo = fnv1a64(FNV_OFFSET, input.as_bytes());
        // Second lane: different offset basis (the first lane's output folded
        // in) so the two halves are independent functions of the input.
        let hi = fnv1a64(
            FNV_OFFSET ^ lo.rotate_left(32) ^ 0x9e37_79b9_7f4a_7c15,
            input.as_bytes(),
        );
        StoreKey(hi, lo)
    }

    /// The key as fixed-width hex (32 characters).
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.0, self.1)
    }

    /// Parses a key from its [`StoreKey::hex`] form.
    pub fn from_hex(s: &str) -> Option<StoreKey> {
        if s.len() != 32 {
            return None;
        }
        let hi = u64::from_str_radix(&s[..16], 16).ok()?;
        let lo = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(StoreKey(hi, lo))
    }
}

/// The canonical input string hashed into a baseline-machine cell key.
///
/// The configuration enters through its `Debug` rendering: it is exhaustive
/// (every public knob appears), deterministic, and changes whenever the config
/// structure itself changes — exactly the invalidation behaviour a
/// content-addressed key needs.
pub fn baseline_input(
    cfg: &BaselineConfig,
    bench: Benchmark,
    seed: u64,
    budget: SimBudget,
) -> String {
    family_input("baseline", &format!("{cfg:?}"), bench, seed, budget)
}

/// The canonical input string hashed into a Flywheel-machine cell key.
pub fn flywheel_input(
    cfg: &flywheel_core::FlywheelConfig,
    bench: Benchmark,
    seed: u64,
    budget: SimBudget,
) -> String {
    family_input("flywheel", &format!("{cfg:?}"), bench, seed, budget)
}

/// The canonical input string hashed into a cell key for any machine family.
///
/// `family` is the registered [family name](crate::executor::MachineFamily) and
/// `config_debug` the `Debug` rendering of that family's configuration. For
/// the pre-existing families this formats byte-for-byte what
/// [`baseline_input`]/[`flywheel_input`] always produced, so generalizing the
/// key derivation moved no stored key.
pub fn family_input(
    family: &str,
    config_debug: &str,
    bench: Benchmark,
    seed: u64,
    budget: SimBudget,
) -> String {
    format!(
        "salt={:016x}\nmachine={family}\nconfig={config_debug}\nbench={}\nseed={seed}\nwarmup={}\nmeasured={}\n",
        code_version_salt(),
        bench.name(),
        budget.warmup_instructions,
        budget.measured_instructions,
    )
}

/// The content address of a cell for any machine family (see [`family_input`]).
pub fn family_key(
    family: &str,
    config_debug: &str,
    bench: Benchmark,
    seed: u64,
    budget: SimBudget,
) -> StoreKey {
    StoreKey::of_input(&family_input(family, config_debug, bench, seed, budget))
}

/// The content address of a baseline-machine cell.
pub fn baseline_key(
    cfg: &BaselineConfig,
    bench: Benchmark,
    seed: u64,
    budget: SimBudget,
) -> StoreKey {
    StoreKey::of_input(&baseline_input(cfg, bench, seed, budget))
}

/// The content address of a Flywheel-machine cell.
pub fn flywheel_key(
    cfg: &flywheel_core::FlywheelConfig,
    bench: Benchmark,
    seed: u64,
    budget: SimBudget,
) -> StoreKey {
    StoreKey::of_input(&flywheel_input(cfg, bench, seed, budget))
}

/// One stored simulation record: the machine-independent result plus the
/// Flywheel statistics when the run was a Flywheel-family machine.
///
/// Round-trips through the store bit-identically (floats are serialized as
/// their IEEE-754 bit patterns).
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Performance/energy/pipeline statistics.
    pub sim: SimResult,
    /// Flywheel-specific statistics (`None` for baseline-family machines).
    pub flywheel: Option<FlywheelStats>,
}

impl RunStats {
    /// Wraps a baseline result.
    pub fn from_baseline(sim: SimResult) -> Self {
        RunStats {
            sim,
            flywheel: None,
        }
    }

    /// Wraps a Flywheel result.
    pub fn from_flywheel(r: &FlywheelResult) -> Self {
        RunStats {
            sim: r.sim.clone(),
            flywheel: Some(r.flywheel),
        }
    }

    /// Reassembles a [`FlywheelResult`] (when the record holds Flywheel stats).
    pub fn to_flywheel_result(&self) -> Option<FlywheelResult> {
        self.flywheel.as_ref().map(|f| FlywheelResult {
            sim: self.sim.clone(),
            flywheel: *f,
        })
    }

    fn serialize_into(&self, out: &mut String) {
        let s = &self.sim;
        let u = |out: &mut String, v: u64| {
            let _ = write!(out, " {v}");
        };
        let f = |out: &mut String, v: f64| {
            let _ = write!(out, " f{:016x}", v.to_bits());
        };
        u(out, s.instructions);
        u(out, s.be_cycles);
        u(out, s.fe_cycles);
        u(out, s.elapsed_ps);
        u(out, s.squashed);
        u(out, s.bpred.cond_predictions);
        u(out, s.bpred.cond_mispredicts);
        u(out, s.bpred.target_mispredicts);
        u(out, s.bpred.total_ctrl);
        u(out, s.caches.l1i.0);
        u(out, s.caches.l1i.1);
        u(out, s.caches.l1d.0);
        u(out, s.caches.l1d.1);
        u(out, s.caches.l2.0);
        u(out, s.caches.l2.1);
        f(out, s.energy.frontend_pj);
        f(out, s.energy.backend_pj);
        f(out, s.energy.flywheel_pj);
        f(out, s.energy.clock_pj);
        f(out, s.energy.leakage_frontend_pj);
        f(out, s.energy.leakage_backend_pj);
        f(out, s.energy.leakage_flywheel_pj);
        u(out, s.energy.elapsed_ps);
        f(out, s.gated_frontend_fraction);
        if let Some(w) = &self.flywheel {
            out.push_str(" F");
            u(out, w.exec_mode_ps);
            u(out, w.creation_mode_ps);
            f(out, w.ec_residency);
            u(out, w.ec_lookups);
            u(out, w.ec_hits);
            u(out, w.traces_stored);
            f(out, w.ec_utilization);
            u(out, w.trace_switches);
            u(out, w.trace_divergences);
            u(out, w.pool_stalls);
            u(out, w.redistributions);
        } else {
            out.push_str(" B");
        }
    }

    fn parse_fields(fields: &mut std::str::SplitWhitespace<'_>) -> Option<RunStats> {
        fn u(fields: &mut std::str::SplitWhitespace<'_>) -> Option<u64> {
            fields.next()?.parse().ok()
        }
        fn f(fields: &mut std::str::SplitWhitespace<'_>) -> Option<f64> {
            let s = fields.next()?.strip_prefix('f')?;
            Some(f64::from_bits(u64::from_str_radix(s, 16).ok()?))
        }
        let mut sim = SimResult {
            instructions: u(fields)?,
            be_cycles: u(fields)?,
            fe_cycles: u(fields)?,
            elapsed_ps: u(fields)?,
            squashed: u(fields)?,
            bpred: Default::default(),
            caches: Default::default(),
            energy: Default::default(),
            gated_frontend_fraction: 0.0,
        };
        sim.bpred.cond_predictions = u(fields)?;
        sim.bpred.cond_mispredicts = u(fields)?;
        sim.bpred.target_mispredicts = u(fields)?;
        sim.bpred.total_ctrl = u(fields)?;
        sim.caches.l1i = (u(fields)?, u(fields)?);
        sim.caches.l1d = (u(fields)?, u(fields)?);
        sim.caches.l2 = (u(fields)?, u(fields)?);
        sim.energy.frontend_pj = f(fields)?;
        sim.energy.backend_pj = f(fields)?;
        sim.energy.flywheel_pj = f(fields)?;
        sim.energy.clock_pj = f(fields)?;
        sim.energy.leakage_frontend_pj = f(fields)?;
        sim.energy.leakage_backend_pj = f(fields)?;
        sim.energy.leakage_flywheel_pj = f(fields)?;
        sim.energy.elapsed_ps = u(fields)?;
        sim.gated_frontend_fraction = f(fields)?;
        let flywheel = match fields.next()? {
            "B" => None,
            "F" => Some(FlywheelStats {
                exec_mode_ps: u(fields)?,
                creation_mode_ps: u(fields)?,
                ec_residency: f(fields)?,
                ec_lookups: u(fields)?,
                ec_hits: u(fields)?,
                traces_stored: u(fields)?,
                ec_utilization: f(fields)?,
                trace_switches: u(fields)?,
                trace_divergences: u(fields)?,
                pool_stalls: u(fields)?,
                redistributions: u(fields)?,
            }),
            _ => return None,
        };
        if fields.next().is_some() {
            return None; // trailing garbage
        }
        Some(RunStats { sim, flywheel })
    }
}

/// A persistent, append-only map from [`StoreKey`] to [`RunStats`].
///
/// The on-disk format is one header line ([`STORE_SCHEMA`]) followed by one
/// framed record per line: `<len:08x> <crc:08x> <key-hex> <label> <fields…>`,
/// where the length and CRC32 cover the payload after them. The label is
/// informational only (a human-readable cell description); lookups go by key.
/// Records are only ever appended — a re-run with changed inputs appends new
/// keys and the old records simply stop being addressed. Damage (torn
/// appends, flipped bits) is detected by the framing at open time and
/// recovered, not fatal; see [`ResultStore::open_recovering`].
///
/// ```
/// use flywheel_bench::store::{ResultStore, RunStats, StoreKey};
/// # use flywheel_uarch::SimResult;
/// let mut store = ResultStore::in_memory();
/// let key = StoreKey::of_input("example");
/// assert!(store.get(&key).is_none());
/// let stats = RunStats::from_baseline(SimResult {
///     instructions: 1, be_cycles: 1, fe_cycles: 1, elapsed_ps: 1, squashed: 0,
///     bpred: Default::default(), caches: Default::default(),
///     energy: Default::default(), gated_frontend_fraction: 0.0,
/// });
/// store.insert(key, "doc/example", stats.clone()).unwrap();
/// assert_eq!(store.get(&key), Some(&stats));
/// ```
#[derive(Debug)]
pub struct ResultStore {
    records: HashMap<StoreKey, RunStats>,
    /// The (sanitized) label each key was last stored under — informational,
    /// preserved across reopen so merges and fsck can name records.
    labels: HashMap<StoreKey, String>,
    /// Opened lazily on the first insert, so read-only users (the `report
    /// --check` gate) never create or touch the backing file.
    appender: Option<BufWriter<File>>,
    /// Set when fault injection simulated an appender crash (torn write); the
    /// store keeps answering from memory but writes nothing further to disk.
    appender_dead: bool,
    /// Whether the schema header still has to be written before the first
    /// appended record (the backing file was absent or empty at open).
    needs_header: bool,
    path: Option<PathBuf>,
}

/// What [`ResultStore::open_recovering`] found and did. A healthy store
/// reports [`RecoveryReport::is_clean`] and guarantees no file was written.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Addressable records after the open (duplicates collapsed, latest wins).
    pub records: usize,
    /// Record lines that passed framing and parsed.
    pub valid_lines: usize,
    /// Damaged lines moved to the `.quarantine` file.
    pub quarantined_lines: usize,
    /// Total bytes of the quarantined lines.
    pub quarantined_bytes: usize,
    /// The store carried the previous schema and was rewritten as v3.
    pub migrated: bool,
    /// The backing file was rewritten (migration, quarantine, or torn tail).
    pub repaired: bool,
}

impl RecoveryReport {
    /// Whether the store was healthy: nothing quarantined, nothing rewritten.
    pub fn is_clean(&self) -> bool {
        self.quarantined_lines == 0 && !self.repaired
    }

    /// One-line human-readable summary (used by `fsck` and open warnings).
    pub fn describe(&self) -> String {
        if self.is_clean() {
            return format!("clean ({} records, schema {STORE_SCHEMA})", self.records);
        }
        let mut s = format!(
            "repaired: kept {} records ({} valid lines)",
            self.records, self.valid_lines
        );
        if self.quarantined_lines > 0 {
            let _ = write!(
                s,
                ", quarantined {} damaged line{} ({} bytes)",
                self.quarantined_lines,
                if self.quarantined_lines == 1 { "" } else { "s" },
                self.quarantined_bytes
            );
        }
        if self.migrated {
            let _ = write!(s, ", migrated from {STORE_SCHEMA_V2}");
        }
        s
    }
}

impl ResultStore {
    /// An unbacked store: lookups and inserts work, nothing touches the disk.
    /// Useful for tests and for running with memoization but no persistence.
    pub fn in_memory() -> Self {
        ResultStore {
            records: HashMap::new(),
            labels: HashMap::new(),
            appender: None,
            appender_dead: false,
            needs_header: false,
            path: None,
        }
    }

    /// Opens the store at `path`, recovering from damage instead of failing;
    /// prints a one-line notice to stderr when recovery had to act. See
    /// [`ResultStore::open_recovering`] for the exact semantics.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let (store, report) = Self::open_recovering(&path)?;
        if !report.is_clean() {
            eprintln!("store {}: {}", path.as_ref().display(), report.describe());
        }
        Ok(store)
    }

    /// Opens the store at `path` and loads every record, reporting what
    /// recovery (if any) was performed. A missing file is an empty store;
    /// nothing is created or written until the first [`ResultStore::insert`],
    /// so read-only use of a *healthy* store has no side effects.
    ///
    /// A damaged store is repaired rather than rejected — the normal failure
    /// mode of an append-only file is a crash mid-append, and losing every
    /// warm record to one torn line would defeat the store's purpose:
    ///
    /// * Record lines that fail their length/CRC framing (torn tail, flipped
    ///   bits) are appended verbatim to `<path>.quarantine` for post-mortems,
    ///   and the store is atomically rewritten (write temp, then rename) with
    ///   only the valid lines — equivalent to truncating to the last valid
    ///   record when the damage is a torn tail.
    /// * A previous-schema (`flywheel-store/2`) store is migrated: same
    ///   payloads, v3 framing.
    /// * A file that is a bare torn prefix of a schema header (a crash before
    ///   the first record of a brand-new store) recovers to an empty store.
    ///
    /// Only an unknown schema header or a real I/O error still fails (as a
    /// typed [`StoreError`]): a foreign file should be noticed, not destroyed.
    pub fn open_recovering(path: impl AsRef<Path>) -> Result<(Self, RecoveryReport), StoreError> {
        let path = path.as_ref().to_path_buf();
        let mut report = RecoveryReport::default();
        let mut records = HashMap::new();
        let mut labels = HashMap::new();
        if !path.exists() {
            let store = ResultStore {
                records,
                labels,
                appender: None,
                appender_dead: false,
                needs_header: true,
                path: Some(path),
            };
            return Ok((store, report));
        }

        let data = std::fs::read(&path).map_err(StoreError::io("read", &path))?;
        // Valid record payloads in original file order (append-only history,
        // duplicates included) and damaged raw lines, for the rewrite.
        let mut kept: Vec<&str> = Vec::new();
        let mut damaged: Vec<&[u8]> = Vec::new();
        let mut fresh = data.is_empty();
        if let Some(header_chunk) = data.split_inclusive(|&b| b == b'\n').next() {
            let chunks = data.split_inclusive(|&b| b == b'\n').skip(1);
            let header_complete = header_chunk.ends_with(b"\n");
            let header_len = header_chunk.len() - usize::from(header_complete);
            let header = std::str::from_utf8(&header_chunk[..header_len]).ok();
            let v2 = match header {
                Some(STORE_SCHEMA) if header_complete => false,
                Some(STORE_SCHEMA_V2) if header_complete => {
                    report.migrated = true;
                    true
                }
                // A torn prefix of a header (necessarily the file's only
                // line: no newline means no further chunks) is a crash while
                // creating a brand-new store — recover to empty.
                Some(h)
                    if !header_complete
                        && (STORE_SCHEMA.starts_with(h) || STORE_SCHEMA_V2.starts_with(h)) =>
                {
                    report.quarantined_lines += 1;
                    report.quarantined_bytes += header_len;
                    damaged.push(&header_chunk[..header_len]);
                    report.repaired = true;
                    fresh = true;
                    false
                }
                _ => {
                    return Err(StoreError::UnknownSchema {
                        path,
                        found: header.unwrap_or("<non-utf8>").to_owned(),
                    });
                }
            };
            for chunk in chunks {
                let complete = chunk.ends_with(b"\n");
                let line = &chunk[..chunk.len() - usize::from(complete)];
                if line.is_empty() {
                    continue;
                }
                // A line without its newline is a torn append even if its
                // payload happens to check out: the writer emits the record
                // and its newline in one write.
                let payload = if !complete {
                    None
                } else if v2 {
                    std::str::from_utf8(line).ok()
                } else {
                    unframe_line(line)
                };
                match payload.and_then(|p| parse_payload(p).map(|r| (p, r))) {
                    Some((payload, (key, label, stats))) => {
                        report.valid_lines += 1;
                        kept.push(payload);
                        // Append-only updates: the latest record for a key wins.
                        records.insert(key, stats);
                        labels.insert(key, label.to_owned());
                    }
                    None => {
                        report.quarantined_lines += 1;
                        report.quarantined_bytes += line.len();
                        damaged.push(line);
                    }
                }
            }
        }

        report.records = records.len();
        if report.quarantined_lines > 0 || report.migrated {
            report.repaired = true;
            // Preserve the damaged bytes first, then atomically replace the
            // store, so no interleaving of crashes can lose information. (A
            // pure migration has nothing to quarantine and creates no file.)
            if !damaged.is_empty() {
                let quarantine_path = PathBuf::from(format!("{}.quarantine", path.display()));
                let q_err = |e| StoreError::io("quarantine", &quarantine_path)(e);
                let mut quarantine = BufWriter::new(
                    OpenOptions::new()
                        .create(true)
                        .append(true)
                        .open(&quarantine_path)
                        .map_err(q_err)?,
                );
                for line in &damaged {
                    quarantine.write_all(line).map_err(q_err)?;
                    quarantine.write_all(b"\n").map_err(q_err)?;
                }
                quarantine.flush().map_err(q_err)?;
            }
            let tmp_path = PathBuf::from(format!("{}.tmp", path.display()));
            {
                let w_err = |e| StoreError::io("rewrite", &tmp_path)(e);
                let mut tmp = BufWriter::new(File::create(&tmp_path).map_err(w_err)?);
                writeln!(tmp, "{STORE_SCHEMA}").map_err(w_err)?;
                for payload in &kept {
                    writeln!(tmp, "{}", frame_payload(payload)).map_err(w_err)?;
                }
                tmp.flush().map_err(w_err)?;
                tmp.get_ref().sync_all().map_err(w_err)?;
            }
            std::fs::rename(&tmp_path, &path).map_err(StoreError::io("rename", &path))?;
            fresh = false;
        }

        let store = ResultStore {
            records,
            labels,
            appender: None,
            appender_dead: false,
            needs_header: fresh,
            path: Some(path),
        };
        Ok((store, report))
    }

    /// The backing file, if the store is disk-backed.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Number of addressable records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The record stored under `key`, if present.
    pub fn get(&self, key: &StoreKey) -> Option<&RunStats> {
        self.records.get(key)
    }

    /// Whether a record is stored under `key`.
    pub fn contains(&self, key: &StoreKey) -> bool {
        self.records.contains_key(key)
    }

    /// Inserts (and, when disk-backed, durably appends) a record.
    ///
    /// `label` is a human-readable cell description written next to the key
    /// for store debugging; whitespace is replaced (and an empty label gets a
    /// `-` placeholder) so the line always parses back as one field.
    pub fn insert(
        &mut self,
        key: StoreKey,
        label: &str,
        stats: RunStats,
    ) -> Result<(), StoreError> {
        let label = if label.is_empty() {
            "-".to_owned()
        } else {
            label
                .chars()
                .map(|c| if c.is_whitespace() { '_' } else { c })
                .collect()
        };
        if let Some(path) = &self.path {
            let a_err = StoreError::io("append", path);
            if self.appender.is_none() && !self.appender_dead {
                let mut appender = BufWriter::new(
                    OpenOptions::new()
                        .create(true)
                        .append(true)
                        .open(path)
                        .map_err(a_err)?,
                );
                if self.needs_header {
                    writeln!(appender, "{STORE_SCHEMA}").map_err(StoreError::io("append", path))?;
                    self.needs_header = false;
                }
                self.appender = Some(appender);
            }
        }
        if let (Some(appender), Some(path)) = (&mut self.appender, &self.path) {
            let a_err = |e| StoreError::io("append", path)(e);
            let mut payload = key.hex();
            payload.push(' ');
            payload.push_str(&label);
            stats.serialize_into(&mut payload);
            let line = frame_payload(&payload);
            match crate::fault::store_insert_fault() {
                Some(crate::fault::InsertFault::Torn) => {
                    // Simulate a crash mid-append: half a line hits the disk
                    // and nothing ever again (as after a real process death).
                    appender
                        .write_all(&line.as_bytes()[..line.len() / 2])
                        .map_err(a_err)?;
                    appender.flush().map_err(a_err)?;
                    self.appender = None;
                    self.appender_dead = true;
                    eprintln!(
                        "fault injection: tore the store append for '{label}' and crashed the appender"
                    );
                }
                Some(crate::fault::InsertFault::BitFlip) => {
                    // Flip one payload bit *after* the CRC was computed, so
                    // the record reads back damaged. Avoid manufacturing a
                    // newline, which would split the line in two.
                    let mut bytes = line.into_bytes();
                    let idx = 18 + (bytes.len() - 18) / 2;
                    let flip = if bytes[idx] ^ 1 == b'\n' { 2 } else { 1 };
                    bytes[idx] ^= flip;
                    appender.write_all(&bytes).map_err(a_err)?;
                    appender.write_all(b"\n").map_err(a_err)?;
                    appender.flush().map_err(a_err)?;
                    eprintln!("fault injection: flipped a bit in the stored record for '{label}'");
                }
                None => {
                    writeln!(appender, "{line}").map_err(a_err)?;
                    appender.flush().map_err(a_err)?;
                }
            }
        }
        self.records.insert(key, stats);
        self.labels.insert(key, label);
        Ok(())
    }

    /// The label `key` was last stored under, or `-` when unknown.
    pub fn label_of(&self, key: &StoreKey) -> &str {
        self.labels.get(key).map(String::as_str).unwrap_or("-")
    }

    /// Merges every record of `other` into this store.
    ///
    /// All-or-nothing: conflicts are detected before anything is written. Two
    /// stores conflict when they hold the *same key with different stats* —
    /// since a key content-addresses the complete simulation input (including
    /// the code-version salt), a conflict means one side's records are wrong
    /// (or hand-edited) and silently picking a winner would hide it. Mirrors
    /// `EnergyAccumulator::merge`'s typed-conflict contract.
    pub fn merge(&mut self, other: &ResultStore) -> Result<MergeOutcome, MergeError> {
        let mut keys: Vec<&StoreKey> = other.records.keys().collect();
        keys.sort();
        let mut conflicts = Vec::new();
        for key in &keys {
            if let Some(mine) = self.records.get(key) {
                if mine != &other.records[*key] {
                    conflicts.push(MergeConflict {
                        key: **key,
                        label: other.label_of(key).to_owned(),
                    });
                }
            }
        }
        if !conflicts.is_empty() {
            return Err(MergeError::Conflict { conflicts });
        }
        let mut outcome = MergeOutcome::default();
        for key in keys {
            if self.records.contains_key(key) {
                outcome.identical += 1;
            } else {
                self.insert(*key, other.label_of(key), other.records[key].clone())
                    .map_err(MergeError::Store)?;
                outcome.added += 1;
            }
        }
        Ok(outcome)
    }

    /// Recalls a baseline-machine cell by content address.
    pub fn recall_baseline(
        &self,
        cfg: &BaselineConfig,
        bench: Benchmark,
        seed: u64,
        budget: SimBudget,
    ) -> Option<SimResult> {
        self.get(&baseline_key(cfg, bench, seed, budget))
            .map(|r| r.sim.clone())
    }

    /// Records a baseline-machine cell under its content address.
    pub fn record_baseline(
        &mut self,
        cfg: &BaselineConfig,
        bench: Benchmark,
        seed: u64,
        budget: SimBudget,
        sim: &SimResult,
    ) -> Result<(), StoreError> {
        self.insert(
            baseline_key(cfg, bench, seed, budget),
            &cell_label("baseline", bench, seed),
            RunStats::from_baseline(sim.clone()),
        )
    }

    /// Recalls a Flywheel-machine cell by content address.
    pub fn recall_flywheel(
        &self,
        cfg: &flywheel_core::FlywheelConfig,
        bench: Benchmark,
        seed: u64,
        budget: SimBudget,
    ) -> Option<FlywheelResult> {
        self.get(&flywheel_key(cfg, bench, seed, budget))
            .and_then(RunStats::to_flywheel_result)
    }

    /// Records a Flywheel-machine cell under its content address.
    pub fn record_flywheel(
        &mut self,
        cfg: &flywheel_core::FlywheelConfig,
        bench: Benchmark,
        seed: u64,
        budget: SimBudget,
        r: &FlywheelResult,
    ) -> Result<(), StoreError> {
        self.insert(
            flywheel_key(cfg, bench, seed, budget),
            &cell_label("flywheel", bench, seed),
            RunStats::from_flywheel(r),
        )
    }
}

/// The human-readable label written next to a harness cell's record.
pub fn cell_label(family: &str, bench: Benchmark, seed: u64) -> String {
    format!("{family}/{}/s{seed}", bench.name())
}

/// What a conflict-free [`ResultStore::merge`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MergeOutcome {
    /// Records the other store had and this one did not.
    pub added: usize,
    /// Records both stores held bit-identically.
    pub identical: usize,
}

/// One key both sides of a refused [`ResultStore::merge`] hold with
/// different stats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeConflict {
    /// The conflicting content address.
    pub key: StoreKey,
    /// The incoming store's label for the record.
    pub label: String,
}

/// Why a [`ResultStore::merge`] was refused or failed.
#[derive(Debug)]
pub enum MergeError {
    /// Both stores hold at least one same key with different stats. Keys
    /// address the complete simulation input, so this means at least one
    /// side's record does not come from the deterministic simulator it claims
    /// to. Carries *every* conflicting key (sorted) so callers can report the
    /// full damage in one pass.
    Conflict {
        /// All conflicting keys, in sorted key order.
        conflicts: Vec<MergeConflict>,
    },
    /// Appending a merged record to the backing file failed.
    Store(StoreError),
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::Conflict { conflicts } => {
                write!(
                    f,
                    "merge conflict: {} key(s) exist in both stores with different stats",
                    conflicts.len()
                )?;
                for c in conflicts {
                    write!(f, "\n  {} ('{}')", c.key.hex(), c.label)?;
                }
                Ok(())
            }
            MergeError::Store(e) => write!(f, "merge failed to append: {e}"),
        }
    }
}

impl std::error::Error for MergeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MergeError::Conflict { .. } => None,
            MergeError::Store(e) => Some(e),
        }
    }
}

/// Outcome of running a sweep against a store: how many cells were served
/// from memo records and how many had to be simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreSummary {
    /// Cells answered from the store without simulating.
    pub hits: usize,
    /// Cells simulated (and inserted into the store).
    pub simulated: usize,
}

// ---------------------------------------------------------------------------
// Process-global store (used by the binaries' `--store` flag) and the
// simulation counter.
// ---------------------------------------------------------------------------

static GLOBAL_STORE: Mutex<Option<ResultStore>> = Mutex::new(None);
static GLOBAL_HITS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_MISSES: AtomicU64 = AtomicU64::new(0);
static SIMULATIONS: AtomicU64 = AtomicU64::new(0);

/// Installs `store` as the process-global store consulted by
/// [`crate::run_baseline_cfg`]/[`crate::run_flywheel_cfg`] (and therefore by
/// every harness runner and scenario cell). Resets the hit/miss counters.
///
/// All global-store accessors recover from a poisoned lock rather than
/// panicking: a worker that died mid-cell (now an isolated, reported failure)
/// must not cascade into every later store access. The store's own state
/// stays consistent across a poisoning because record/label inserts happen
/// only after the disk append completed.
pub fn install_global_store(store: ResultStore) {
    GLOBAL_HITS.store(0, Ordering::Relaxed);
    GLOBAL_MISSES.store(0, Ordering::Relaxed);
    *GLOBAL_STORE.lock().unwrap_or_else(PoisonError::into_inner) = Some(store);
}

/// Removes and returns the process-global store.
pub fn take_global_store() -> Option<ResultStore> {
    GLOBAL_STORE
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .take()
}

/// Whether a process-global store is installed.
pub fn global_store_installed() -> bool {
    GLOBAL_STORE
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .is_some()
}

/// (hits, misses) of the process-global store since it was installed.
pub fn global_store_counters() -> (u64, u64) {
    (
        GLOBAL_HITS.load(Ordering::Relaxed),
        GLOBAL_MISSES.load(Ordering::Relaxed),
    )
}

pub(crate) fn global_get(key: &StoreKey) -> Option<RunStats> {
    let guard = GLOBAL_STORE.lock().unwrap_or_else(PoisonError::into_inner);
    let store = guard.as_ref()?;
    let hit = store.get(key).cloned();
    match &hit {
        Some(_) => GLOBAL_HITS.fetch_add(1, Ordering::Relaxed),
        None => GLOBAL_MISSES.fetch_add(1, Ordering::Relaxed),
    };
    hit
}

pub(crate) fn global_put(key: StoreKey, label: &str, stats: RunStats) {
    let mut guard = GLOBAL_STORE.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(store) = guard.as_mut() {
        if let Err(e) = store.insert(key, label, stats) {
            eprintln!("warning: could not append to the result store: {e}");
        }
    }
}

/// Total simulations actually executed by this process (store hits do not
/// count). Monotone; read deltas around a sweep to see how much work the
/// store saved.
pub fn simulations_performed() -> u64 {
    SIMULATIONS.load(Ordering::Relaxed)
}

pub(crate) fn count_simulation() {
    SIMULATIONS.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(instructions: u64, fly: bool) -> RunStats {
        let mut sim = SimResult {
            instructions,
            be_cycles: instructions / 2 + 1,
            fe_cycles: instructions / 3 + 1,
            elapsed_ps: instructions * 250,
            squashed: 7,
            bpred: Default::default(),
            caches: Default::default(),
            energy: Default::default(),
            gated_frontend_fraction: 0.25,
        };
        sim.bpred.total_ctrl = 11;
        sim.caches.l1d = (100, 3);
        sim.energy.frontend_pj = 1.5e7 + 0.1; // not exactly representable in decimal
        sim.energy.leakage_backend_pj = f64::MIN_POSITIVE; // subnormal-adjacent round-trip
        sim.energy.leakage_flywheel_pj = 0.25;
        sim.energy.elapsed_ps = sim.elapsed_ps;
        RunStats {
            sim,
            flywheel: fly.then_some(FlywheelStats {
                exec_mode_ps: 5,
                creation_mode_ps: 9,
                ec_residency: 0.1 + 0.2, // 0.30000000000000004
                ec_lookups: 4,
                ec_hits: 2,
                traces_stored: 1,
                ec_utilization: 0.875,
                trace_switches: 3,
                trace_divergences: 1,
                pool_stalls: 0,
                redistributions: 2,
            }),
        }
    }

    #[test]
    fn record_lines_round_trip_bit_exactly() {
        for fly in [false, true] {
            let original = stats(1000, fly);
            let mut line = String::new();
            original.serialize_into(&mut line);
            let parsed = RunStats::parse_fields(&mut line.split_whitespace()).unwrap();
            assert_eq!(parsed, original);
            assert_eq!(
                parsed.sim.energy.frontend_pj.to_bits(),
                original.sim.energy.frontend_pj.to_bits()
            );
        }
    }

    #[test]
    fn parse_rejects_truncated_and_trailing_input() {
        let mut line = String::new();
        stats(10, true).serialize_into(&mut line);
        let truncated = &line[..line.len() - 2];
        assert!(RunStats::parse_fields(&mut truncated.split_whitespace()).is_none());
        let extended = format!("{line} 9");
        assert!(RunStats::parse_fields(&mut extended.split_whitespace()).is_none());
    }

    #[test]
    fn keys_are_stable_hex_round_trips() {
        let k = StoreKey::of_input("hello");
        assert_eq!(StoreKey::from_hex(&k.hex()), Some(k));
        assert_eq!(StoreKey::from_hex("zz"), None);
        assert_ne!(StoreKey::of_input("hello"), StoreKey::of_input("hello!"));
        // The two 64-bit lanes must not be copies of each other.
        assert_ne!(k.0, k.1);
    }

    #[test]
    fn in_memory_store_inserts_and_overwrites() {
        let mut s = ResultStore::in_memory();
        let k = StoreKey::of_input("a");
        assert!(s.is_empty());
        s.insert(k, "label with spaces", stats(5, false)).unwrap();
        assert_eq!(s.len(), 1);
        assert!(s.contains(&k));
        s.insert(k, "l", stats(6, true)).unwrap();
        assert_eq!(s.len(), 1, "same key overwrites");
        assert_eq!(s.get(&k).unwrap().sim.instructions, 6);
        assert!(s.path().is_none());
    }

    #[test]
    fn salt_is_nonzero_and_stable() {
        assert_ne!(code_version_salt(), 0);
        assert_eq!(code_version_salt(), code_version_salt());
    }

    #[test]
    fn family_inputs_pin_the_legacy_key_derivation() {
        // The generic family derivation must format byte-for-byte what the
        // baseline/flywheel-specific derivations produced before the machine
        // registry existed; otherwise every stored key silently moves.
        use flywheel_timing::TechNode;
        let budget = SimBudget::new(5_000, 40_000);
        let bench = flywheel_workloads::Benchmark::Micro;
        let base = BaselineConfig::paper(TechNode::N130);
        assert_eq!(
            baseline_input(&base, bench, 42, budget),
            family_input("baseline", &format!("{base:?}"), bench, 42, budget),
        );
        let fly = flywheel_core::FlywheelConfig::paper(TechNode::N130, 50, 50);
        assert_eq!(
            flywheel_input(&fly, bench, 42, budget),
            family_input("flywheel", &format!("{fly:?}"), bench, 42, budget),
        );
        assert_eq!(
            flywheel_key(&fly, bench, 42, budget),
            family_key("flywheel", &format!("{fly:?}"), bench, 42, budget),
        );
        // Distinct families with identical configs must not collide.
        let dbg = format!("{base:?}");
        assert_ne!(
            family_key("baseline", &dbg, bench, 42, budget),
            family_key("multidomain", &dbg, bench, 42, budget),
        );
    }

    #[test]
    fn crc32_matches_the_ieee_reference_vector() {
        // The canonical check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn framing_round_trips_and_rejects_damage() {
        let payload = "deadbeef a-label 1 2 3";
        let line = frame_payload(payload);
        assert_eq!(unframe_line(line.as_bytes()), Some(payload));
        // Torn tail: any strict prefix fails the length check.
        for cut in 0..line.len() {
            assert_eq!(unframe_line(&line.as_bytes()[..cut]), None, "cut at {cut}");
        }
        // Single flipped bit anywhere: caught by CRC (or the hex framing).
        for i in 0..line.len() {
            let mut bytes = line.clone().into_bytes();
            bytes[i] ^= 1;
            assert_eq!(unframe_line(&bytes), None, "flip at byte {i}");
        }
    }

    #[test]
    fn merge_adds_missing_detects_identical_and_refuses_conflicts() {
        let mut a = ResultStore::in_memory();
        let mut b = ResultStore::in_memory();
        let shared = StoreKey::of_input("shared");
        let only_b = StoreKey::of_input("only-b");
        a.insert(shared, "shared", stats(10, false)).unwrap();
        b.insert(shared, "shared", stats(10, false)).unwrap();
        b.insert(only_b, "extra cell", stats(20, true)).unwrap();

        let outcome = a.merge(&b).unwrap();
        assert_eq!(
            outcome,
            MergeOutcome {
                added: 1,
                identical: 1
            }
        );
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(&only_b), b.get(&only_b));
        assert_eq!(
            a.label_of(&only_b),
            "extra_cell",
            "labels travel (sanitized)"
        );

        // Same key, different stats: typed conflict (reporting every bad
        // key), nothing merged.
        let mut c = ResultStore::in_memory();
        c.insert(shared, "shared", stats(11, false)).unwrap();
        c.insert(only_b, "extra cell", stats(21, true)).unwrap();
        let before = a.len();
        match a.merge(&c) {
            Err(MergeError::Conflict { conflicts }) => {
                let mut expected = vec![
                    MergeConflict {
                        key: shared,
                        label: "shared".to_owned(),
                    },
                    MergeConflict {
                        key: only_b,
                        label: "extra_cell".to_owned(),
                    },
                ];
                expected.sort_by_key(|c| c.key);
                assert_eq!(conflicts, expected, "every conflicting key reported");
            }
            other => panic!("expected a conflict, got {other:?}"),
        }
        assert_eq!(a.len(), before, "a failed merge must not mutate the store");
    }

    #[test]
    fn merge_is_idempotent() {
        let mut a = ResultStore::in_memory();
        let mut b = ResultStore::in_memory();
        b.insert(StoreKey::of_input("x"), "x", stats(5, true))
            .unwrap();
        a.merge(&b).unwrap();
        let again = a.merge(&b).unwrap();
        assert_eq!(
            again,
            MergeOutcome {
                added: 0,
                identical: 1
            }
        );
    }
}
