//! Persistent, content-addressed store of simulation results.
//!
//! Every evaluation cell — one (machine configuration, workload, seed, budget)
//! simulation — is fully deterministic, so its result is a pure function of its
//! inputs. This module gives that function a durable memo table:
//!
//! * [`StoreKey`] — a 128-bit FNV-1a hash of the cell's *complete* input: the
//!   machine family, the full machine configuration (via its canonical `Debug`
//!   rendering, which covers every structural/clocking knob), the workload and
//!   seed, the instruction budget, and a code-version salt derived from the
//!   committed `golden.txt` digest. Touch any input — or change simulator
//!   behaviour (which regenerates `golden.txt`) — and the key changes, so stale
//!   records can never be served.
//! * [`RunStats`] — the serializable record of one run: the full [`SimResult`]
//!   plus the [`FlywheelStats`] when the cell ran a Flywheel-family machine.
//!   Floats are stored as IEEE-754 bit patterns, so a record read back from
//!   disk is *bit-identical* to the freshly simulated result.
//! * [`ResultStore`] — an append-only, line-oriented on-disk store
//!   (hand-rolled serialization; the build container has no registry access
//!   for serde, mirroring `flywheel-rng`'s approach to `rand`).
//!
//! The `scenarios` and `experiments` binaries consult a store before
//! simulating (`--store PATH`), so a re-run after touching one workload only
//! simulates the affected cells; the `flywheel-report` crate regenerates the
//! Markdown figure tables byte-identically from the same records.

use flywheel_core::{FlywheelResult, FlywheelStats};
use flywheel_uarch::{BaselineConfig, SimBudget, SimResult};
use flywheel_workloads::Benchmark;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// On-disk schema version. Bump when the record line format changes; a store
/// written by a different schema is rejected at [`ResultStore::open`] time.
///
/// v2: `EnergyBreakdown` leakage is attributed — the single `leakage_pj` field
/// became three per-category components (front-end, back-end, Flywheel-only).
pub const STORE_SCHEMA: &str = "flywheel-store/2";

/// The committed golden digest, compiled in so the code-version salt tracks
/// simulator behaviour: regenerating `golden.txt` (the required step whenever
/// simulation results legitimately change) automatically invalidates every
/// stored key.
const GOLDEN_DIGEST: &str = include_str!("../../../golden.txt");

/// The code-version salt mixed into every [`StoreKey`]: an FNV-1a hash of the
/// committed `golden.txt`. Two builds whose simulators behave differently
/// cannot share store records.
pub fn code_version_salt() -> u64 {
    static SALT: AtomicU64 = AtomicU64::new(0);
    let cached = SALT.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let salt = fnv1a64(FNV_OFFSET, GOLDEN_DIGEST.as_bytes()) | 1;
    SALT.store(salt, Ordering::Relaxed);
    salt
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a64(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// A 128-bit content address of one simulation's complete input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StoreKey(pub u64, pub u64);

impl StoreKey {
    /// Hashes a canonical input string into a key (two independent FNV-1a
    /// streams; 128 bits make collisions implausible at any realistic store
    /// size).
    pub fn of_input(input: &str) -> StoreKey {
        let lo = fnv1a64(FNV_OFFSET, input.as_bytes());
        // Second lane: different offset basis (the first lane's output folded
        // in) so the two halves are independent functions of the input.
        let hi = fnv1a64(
            FNV_OFFSET ^ lo.rotate_left(32) ^ 0x9e37_79b9_7f4a_7c15,
            input.as_bytes(),
        );
        StoreKey(hi, lo)
    }

    /// The key as fixed-width hex (32 characters).
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.0, self.1)
    }

    /// Parses a key from its [`StoreKey::hex`] form.
    pub fn from_hex(s: &str) -> Option<StoreKey> {
        if s.len() != 32 {
            return None;
        }
        let hi = u64::from_str_radix(&s[..16], 16).ok()?;
        let lo = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(StoreKey(hi, lo))
    }
}

/// The canonical input string hashed into a baseline-machine cell key.
///
/// The configuration enters through its `Debug` rendering: it is exhaustive
/// (every public knob appears), deterministic, and changes whenever the config
/// structure itself changes — exactly the invalidation behaviour a
/// content-addressed key needs.
pub fn baseline_input(
    cfg: &BaselineConfig,
    bench: Benchmark,
    seed: u64,
    budget: SimBudget,
) -> String {
    format!(
        "salt={:016x}\nmachine=baseline\nconfig={cfg:?}\nbench={}\nseed={seed}\nwarmup={}\nmeasured={}\n",
        code_version_salt(),
        bench.name(),
        budget.warmup_instructions,
        budget.measured_instructions,
    )
}

/// The canonical input string hashed into a Flywheel-machine cell key.
pub fn flywheel_input(
    cfg: &flywheel_core::FlywheelConfig,
    bench: Benchmark,
    seed: u64,
    budget: SimBudget,
) -> String {
    format!(
        "salt={:016x}\nmachine=flywheel\nconfig={cfg:?}\nbench={}\nseed={seed}\nwarmup={}\nmeasured={}\n",
        code_version_salt(),
        bench.name(),
        budget.warmup_instructions,
        budget.measured_instructions,
    )
}

/// The content address of a baseline-machine cell.
pub fn baseline_key(
    cfg: &BaselineConfig,
    bench: Benchmark,
    seed: u64,
    budget: SimBudget,
) -> StoreKey {
    StoreKey::of_input(&baseline_input(cfg, bench, seed, budget))
}

/// The content address of a Flywheel-machine cell.
pub fn flywheel_key(
    cfg: &flywheel_core::FlywheelConfig,
    bench: Benchmark,
    seed: u64,
    budget: SimBudget,
) -> StoreKey {
    StoreKey::of_input(&flywheel_input(cfg, bench, seed, budget))
}

/// One stored simulation record: the machine-independent result plus the
/// Flywheel statistics when the run was a Flywheel-family machine.
///
/// Round-trips through the store bit-identically (floats are serialized as
/// their IEEE-754 bit patterns).
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Performance/energy/pipeline statistics.
    pub sim: SimResult,
    /// Flywheel-specific statistics (`None` for baseline-family machines).
    pub flywheel: Option<FlywheelStats>,
}

impl RunStats {
    /// Wraps a baseline result.
    pub fn from_baseline(sim: SimResult) -> Self {
        RunStats {
            sim,
            flywheel: None,
        }
    }

    /// Wraps a Flywheel result.
    pub fn from_flywheel(r: &FlywheelResult) -> Self {
        RunStats {
            sim: r.sim.clone(),
            flywheel: Some(r.flywheel),
        }
    }

    /// Reassembles a [`FlywheelResult`] (when the record holds Flywheel stats).
    pub fn to_flywheel_result(&self) -> Option<FlywheelResult> {
        self.flywheel.as_ref().map(|f| FlywheelResult {
            sim: self.sim.clone(),
            flywheel: *f,
        })
    }

    fn serialize_into(&self, out: &mut String) {
        let s = &self.sim;
        let u = |out: &mut String, v: u64| {
            let _ = write!(out, " {v}");
        };
        let f = |out: &mut String, v: f64| {
            let _ = write!(out, " f{:016x}", v.to_bits());
        };
        u(out, s.instructions);
        u(out, s.be_cycles);
        u(out, s.fe_cycles);
        u(out, s.elapsed_ps);
        u(out, s.squashed);
        u(out, s.bpred.cond_predictions);
        u(out, s.bpred.cond_mispredicts);
        u(out, s.bpred.target_mispredicts);
        u(out, s.bpred.total_ctrl);
        u(out, s.caches.l1i.0);
        u(out, s.caches.l1i.1);
        u(out, s.caches.l1d.0);
        u(out, s.caches.l1d.1);
        u(out, s.caches.l2.0);
        u(out, s.caches.l2.1);
        f(out, s.energy.frontend_pj);
        f(out, s.energy.backend_pj);
        f(out, s.energy.flywheel_pj);
        f(out, s.energy.clock_pj);
        f(out, s.energy.leakage_frontend_pj);
        f(out, s.energy.leakage_backend_pj);
        f(out, s.energy.leakage_flywheel_pj);
        u(out, s.energy.elapsed_ps);
        f(out, s.gated_frontend_fraction);
        if let Some(w) = &self.flywheel {
            out.push_str(" F");
            u(out, w.exec_mode_ps);
            u(out, w.creation_mode_ps);
            f(out, w.ec_residency);
            u(out, w.ec_lookups);
            u(out, w.ec_hits);
            u(out, w.traces_stored);
            f(out, w.ec_utilization);
            u(out, w.trace_switches);
            u(out, w.trace_divergences);
            u(out, w.pool_stalls);
            u(out, w.redistributions);
        } else {
            out.push_str(" B");
        }
    }

    fn parse_fields(fields: &mut std::str::SplitWhitespace<'_>) -> Option<RunStats> {
        fn u(fields: &mut std::str::SplitWhitespace<'_>) -> Option<u64> {
            fields.next()?.parse().ok()
        }
        fn f(fields: &mut std::str::SplitWhitespace<'_>) -> Option<f64> {
            let s = fields.next()?.strip_prefix('f')?;
            Some(f64::from_bits(u64::from_str_radix(s, 16).ok()?))
        }
        let mut sim = SimResult {
            instructions: u(fields)?,
            be_cycles: u(fields)?,
            fe_cycles: u(fields)?,
            elapsed_ps: u(fields)?,
            squashed: u(fields)?,
            bpred: Default::default(),
            caches: Default::default(),
            energy: Default::default(),
            gated_frontend_fraction: 0.0,
        };
        sim.bpred.cond_predictions = u(fields)?;
        sim.bpred.cond_mispredicts = u(fields)?;
        sim.bpred.target_mispredicts = u(fields)?;
        sim.bpred.total_ctrl = u(fields)?;
        sim.caches.l1i = (u(fields)?, u(fields)?);
        sim.caches.l1d = (u(fields)?, u(fields)?);
        sim.caches.l2 = (u(fields)?, u(fields)?);
        sim.energy.frontend_pj = f(fields)?;
        sim.energy.backend_pj = f(fields)?;
        sim.energy.flywheel_pj = f(fields)?;
        sim.energy.clock_pj = f(fields)?;
        sim.energy.leakage_frontend_pj = f(fields)?;
        sim.energy.leakage_backend_pj = f(fields)?;
        sim.energy.leakage_flywheel_pj = f(fields)?;
        sim.energy.elapsed_ps = u(fields)?;
        sim.gated_frontend_fraction = f(fields)?;
        let flywheel = match fields.next()? {
            "B" => None,
            "F" => Some(FlywheelStats {
                exec_mode_ps: u(fields)?,
                creation_mode_ps: u(fields)?,
                ec_residency: f(fields)?,
                ec_lookups: u(fields)?,
                ec_hits: u(fields)?,
                traces_stored: u(fields)?,
                ec_utilization: f(fields)?,
                trace_switches: u(fields)?,
                trace_divergences: u(fields)?,
                pool_stalls: u(fields)?,
                redistributions: u(fields)?,
            }),
            _ => return None,
        };
        if fields.next().is_some() {
            return None; // trailing garbage
        }
        Some(RunStats { sim, flywheel })
    }
}

/// A persistent, append-only map from [`StoreKey`] to [`RunStats`].
///
/// The on-disk format is one header line ([`STORE_SCHEMA`]) followed by one
/// record per line: `<key-hex> <label> <fields…>`. The label is informational
/// only (a human-readable cell description); lookups go by key. Records are
/// only ever appended — a re-run with changed inputs appends new keys and the
/// old records simply stop being addressed.
///
/// ```
/// use flywheel_bench::store::{ResultStore, RunStats, StoreKey};
/// # use flywheel_uarch::SimResult;
/// let mut store = ResultStore::in_memory();
/// let key = StoreKey::of_input("example");
/// assert!(store.get(&key).is_none());
/// let stats = RunStats::from_baseline(SimResult {
///     instructions: 1, be_cycles: 1, fe_cycles: 1, elapsed_ps: 1, squashed: 0,
///     bpred: Default::default(), caches: Default::default(),
///     energy: Default::default(), gated_frontend_fraction: 0.0,
/// });
/// store.insert(key, "doc/example", stats.clone()).unwrap();
/// assert_eq!(store.get(&key), Some(&stats));
/// ```
#[derive(Debug)]
pub struct ResultStore {
    records: HashMap<StoreKey, RunStats>,
    /// Opened lazily on the first insert, so read-only users (the `report
    /// --check` gate) never create or touch the backing file.
    appender: Option<BufWriter<File>>,
    /// Whether the schema header still has to be written before the first
    /// appended record (the backing file was absent or empty at open).
    needs_header: bool,
    path: Option<PathBuf>,
}

impl ResultStore {
    /// An unbacked store: lookups and inserts work, nothing touches the disk.
    /// Useful for tests and for running with memoization but no persistence.
    pub fn in_memory() -> Self {
        ResultStore {
            records: HashMap::new(),
            appender: None,
            needs_header: false,
            path: None,
        }
    }

    /// Opens the store at `path` and loads every record. A missing file is an
    /// empty store; nothing is created or written until the first
    /// [`ResultStore::insert`], so read-only use has no side effects.
    ///
    /// Fails on I/O errors, on an unknown schema header, or on a corrupt
    /// record line — a damaged store should be noticed, not silently
    /// recomputed around.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let corrupt = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        let mut records = HashMap::new();
        let mut fresh = true;
        if path.exists() {
            let mut text = String::new();
            File::open(&path)?.read_to_string(&mut text)?;
            let mut lines = text.lines();
            if let Some(header) = lines.next() {
                fresh = false;
                if header != STORE_SCHEMA {
                    return Err(corrupt(format!(
                        "store {}: unknown schema '{header}' (expected '{STORE_SCHEMA}')",
                        path.display()
                    )));
                }
                for (i, line) in lines.enumerate() {
                    if line.is_empty() {
                        continue;
                    }
                    let mut fields = line.split_whitespace();
                    let key = fields.next().and_then(StoreKey::from_hex).ok_or_else(|| {
                        corrupt(format!(
                            "store {}: bad key on line {}",
                            path.display(),
                            i + 2
                        ))
                    })?;
                    let _label = fields.next().ok_or_else(|| {
                        corrupt(format!(
                            "store {}: missing label on line {}",
                            path.display(),
                            i + 2
                        ))
                    })?;
                    let stats = RunStats::parse_fields(&mut fields).ok_or_else(|| {
                        corrupt(format!(
                            "store {}: corrupt record on line {}",
                            path.display(),
                            i + 2
                        ))
                    })?;
                    // Append-only updates: the latest record for a key wins.
                    records.insert(key, stats);
                }
            }
        }
        Ok(ResultStore {
            records,
            appender: None,
            needs_header: fresh,
            path: Some(path),
        })
    }

    /// The backing file, if the store is disk-backed.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Number of addressable records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The record stored under `key`, if present.
    pub fn get(&self, key: &StoreKey) -> Option<&RunStats> {
        self.records.get(key)
    }

    /// Whether a record is stored under `key`.
    pub fn contains(&self, key: &StoreKey) -> bool {
        self.records.contains_key(key)
    }

    /// Inserts (and, when disk-backed, durably appends) a record.
    ///
    /// `label` is a human-readable cell description written next to the key
    /// for store debugging; whitespace is replaced (and an empty label gets a
    /// `-` placeholder) so the line always parses back as one field.
    pub fn insert(&mut self, key: StoreKey, label: &str, stats: RunStats) -> std::io::Result<()> {
        if let Some(path) = &self.path {
            if self.appender.is_none() {
                let mut appender =
                    BufWriter::new(OpenOptions::new().create(true).append(true).open(path)?);
                if self.needs_header {
                    writeln!(appender, "{STORE_SCHEMA}")?;
                    self.needs_header = false;
                }
                self.appender = Some(appender);
            }
        }
        if let Some(appender) = &mut self.appender {
            let mut line = key.hex();
            line.push(' ');
            if label.is_empty() {
                line.push('-');
            } else {
                line.extend(
                    label
                        .chars()
                        .map(|c| if c.is_whitespace() { '_' } else { c }),
                );
            }
            stats.serialize_into(&mut line);
            writeln!(appender, "{line}")?;
            appender.flush()?;
        }
        self.records.insert(key, stats);
        Ok(())
    }

    /// Recalls a baseline-machine cell by content address.
    pub fn recall_baseline(
        &self,
        cfg: &BaselineConfig,
        bench: Benchmark,
        seed: u64,
        budget: SimBudget,
    ) -> Option<SimResult> {
        self.get(&baseline_key(cfg, bench, seed, budget))
            .map(|r| r.sim.clone())
    }

    /// Records a baseline-machine cell under its content address.
    pub fn record_baseline(
        &mut self,
        cfg: &BaselineConfig,
        bench: Benchmark,
        seed: u64,
        budget: SimBudget,
        sim: &SimResult,
    ) -> std::io::Result<()> {
        self.insert(
            baseline_key(cfg, bench, seed, budget),
            &cell_label("baseline", bench, seed),
            RunStats::from_baseline(sim.clone()),
        )
    }

    /// Recalls a Flywheel-machine cell by content address.
    pub fn recall_flywheel(
        &self,
        cfg: &flywheel_core::FlywheelConfig,
        bench: Benchmark,
        seed: u64,
        budget: SimBudget,
    ) -> Option<FlywheelResult> {
        self.get(&flywheel_key(cfg, bench, seed, budget))
            .and_then(RunStats::to_flywheel_result)
    }

    /// Records a Flywheel-machine cell under its content address.
    pub fn record_flywheel(
        &mut self,
        cfg: &flywheel_core::FlywheelConfig,
        bench: Benchmark,
        seed: u64,
        budget: SimBudget,
        r: &FlywheelResult,
    ) -> std::io::Result<()> {
        self.insert(
            flywheel_key(cfg, bench, seed, budget),
            &cell_label("flywheel", bench, seed),
            RunStats::from_flywheel(r),
        )
    }
}

/// The human-readable label written next to a harness cell's record.
pub fn cell_label(family: &str, bench: Benchmark, seed: u64) -> String {
    format!("{family}/{}/s{seed}", bench.name())
}

/// Outcome of running a sweep against a store: how many cells were served
/// from memo records and how many had to be simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreSummary {
    /// Cells answered from the store without simulating.
    pub hits: usize,
    /// Cells simulated (and inserted into the store).
    pub simulated: usize,
}

// ---------------------------------------------------------------------------
// Process-global store (used by the binaries' `--store` flag) and the
// simulation counter.
// ---------------------------------------------------------------------------

static GLOBAL_STORE: Mutex<Option<ResultStore>> = Mutex::new(None);
static GLOBAL_HITS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_MISSES: AtomicU64 = AtomicU64::new(0);
static SIMULATIONS: AtomicU64 = AtomicU64::new(0);

/// Installs `store` as the process-global store consulted by
/// [`crate::run_baseline_cfg`]/[`crate::run_flywheel_cfg`] (and therefore by
/// every harness runner and scenario cell). Resets the hit/miss counters.
pub fn install_global_store(store: ResultStore) {
    GLOBAL_HITS.store(0, Ordering::Relaxed);
    GLOBAL_MISSES.store(0, Ordering::Relaxed);
    *GLOBAL_STORE.lock().expect("store lock poisoned") = Some(store);
}

/// Removes and returns the process-global store.
pub fn take_global_store() -> Option<ResultStore> {
    GLOBAL_STORE.lock().expect("store lock poisoned").take()
}

/// Whether a process-global store is installed.
pub fn global_store_installed() -> bool {
    GLOBAL_STORE.lock().expect("store lock poisoned").is_some()
}

/// (hits, misses) of the process-global store since it was installed.
pub fn global_store_counters() -> (u64, u64) {
    (
        GLOBAL_HITS.load(Ordering::Relaxed),
        GLOBAL_MISSES.load(Ordering::Relaxed),
    )
}

pub(crate) fn global_get(key: &StoreKey) -> Option<RunStats> {
    let guard = GLOBAL_STORE.lock().expect("store lock poisoned");
    let store = guard.as_ref()?;
    let hit = store.get(key).cloned();
    match &hit {
        Some(_) => GLOBAL_HITS.fetch_add(1, Ordering::Relaxed),
        None => GLOBAL_MISSES.fetch_add(1, Ordering::Relaxed),
    };
    hit
}

pub(crate) fn global_put(key: StoreKey, label: &str, stats: RunStats) {
    let mut guard = GLOBAL_STORE.lock().expect("store lock poisoned");
    if let Some(store) = guard.as_mut() {
        if let Err(e) = store.insert(key, label, stats) {
            eprintln!("warning: could not append to the result store: {e}");
        }
    }
}

/// Total simulations actually executed by this process (store hits do not
/// count). Monotone; read deltas around a sweep to see how much work the
/// store saved.
pub fn simulations_performed() -> u64 {
    SIMULATIONS.load(Ordering::Relaxed)
}

pub(crate) fn count_simulation() {
    SIMULATIONS.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(instructions: u64, fly: bool) -> RunStats {
        let mut sim = SimResult {
            instructions,
            be_cycles: instructions / 2 + 1,
            fe_cycles: instructions / 3 + 1,
            elapsed_ps: instructions * 250,
            squashed: 7,
            bpred: Default::default(),
            caches: Default::default(),
            energy: Default::default(),
            gated_frontend_fraction: 0.25,
        };
        sim.bpred.total_ctrl = 11;
        sim.caches.l1d = (100, 3);
        sim.energy.frontend_pj = 1.5e7 + 0.1; // not exactly representable in decimal
        sim.energy.leakage_backend_pj = f64::MIN_POSITIVE; // subnormal-adjacent round-trip
        sim.energy.leakage_flywheel_pj = 0.25;
        sim.energy.elapsed_ps = sim.elapsed_ps;
        RunStats {
            sim,
            flywheel: fly.then_some(FlywheelStats {
                exec_mode_ps: 5,
                creation_mode_ps: 9,
                ec_residency: 0.1 + 0.2, // 0.30000000000000004
                ec_lookups: 4,
                ec_hits: 2,
                traces_stored: 1,
                ec_utilization: 0.875,
                trace_switches: 3,
                trace_divergences: 1,
                pool_stalls: 0,
                redistributions: 2,
            }),
        }
    }

    #[test]
    fn record_lines_round_trip_bit_exactly() {
        for fly in [false, true] {
            let original = stats(1000, fly);
            let mut line = String::new();
            original.serialize_into(&mut line);
            let parsed = RunStats::parse_fields(&mut line.split_whitespace()).unwrap();
            assert_eq!(parsed, original);
            assert_eq!(
                parsed.sim.energy.frontend_pj.to_bits(),
                original.sim.energy.frontend_pj.to_bits()
            );
        }
    }

    #[test]
    fn parse_rejects_truncated_and_trailing_input() {
        let mut line = String::new();
        stats(10, true).serialize_into(&mut line);
        let truncated = &line[..line.len() - 2];
        assert!(RunStats::parse_fields(&mut truncated.split_whitespace()).is_none());
        let extended = format!("{line} 9");
        assert!(RunStats::parse_fields(&mut extended.split_whitespace()).is_none());
    }

    #[test]
    fn keys_are_stable_hex_round_trips() {
        let k = StoreKey::of_input("hello");
        assert_eq!(StoreKey::from_hex(&k.hex()), Some(k));
        assert_eq!(StoreKey::from_hex("zz"), None);
        assert_ne!(StoreKey::of_input("hello"), StoreKey::of_input("hello!"));
        // The two 64-bit lanes must not be copies of each other.
        assert_ne!(k.0, k.1);
    }

    #[test]
    fn in_memory_store_inserts_and_overwrites() {
        let mut s = ResultStore::in_memory();
        let k = StoreKey::of_input("a");
        assert!(s.is_empty());
        s.insert(k, "label with spaces", stats(5, false)).unwrap();
        assert_eq!(s.len(), 1);
        assert!(s.contains(&k));
        s.insert(k, "l", stats(6, true)).unwrap();
        assert_eq!(s.len(), 1, "same key overwrites");
        assert_eq!(s.get(&k).unwrap().sim.instructions, 6);
        assert!(s.path().is_none());
    }

    #[test]
    fn salt_is_nonzero_and_stable() {
        assert_ne!(code_version_salt(), 0);
        assert_eq!(code_version_salt(), code_version_salt());
    }
}
