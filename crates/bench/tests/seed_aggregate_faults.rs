//! Regression drill: a fault-injected seed must land in the degraded-cells
//! manifest and be *excluded* from its point's seed aggregate with an
//! explicit reduced-n marker — never silently averaged into the statistics.
//!
//! Fault plans are process-global, so this drill lives in its own test
//! binary instead of alongside `fault_injection.rs`.

use flywheel_bench::fault::{self, FaultPlan};
use flywheel_bench::scenario::{Machine, Scenario, MAX_CELL_ATTEMPTS};
use flywheel_bench::stats::Aggregate;
use flywheel_uarch::SimBudget;
use flywheel_workloads::Benchmark;

/// Clears the plan even when an assertion panics mid-test.
struct ClearOnDrop;
impl Drop for ClearOnDrop {
    fn drop(&mut self) {
        fault::clear();
    }
}

#[test]
fn a_failed_seed_reduces_the_aggregate_instead_of_polluting_it() {
    let _clear = ClearOnDrop;
    let mut s = Scenario::new("reduced-drill", SimBudget::new(300, 1_200));
    s.benchmarks = vec![Benchmark::Micro];
    s.machines = vec![Machine::Baseline, Machine::Flywheel];
    s.seeds = vec![21, 22, 23];

    fault::install(FaultPlan {
        seed: 5,
        panic_cells: 1,
        ..FaultPlan::default()
    });
    let run = s.run();
    fault::clear();

    // Exactly one seed cell failed, after exhausting its retries, and the
    // run still satisfies the aggregate invariants (a seed missing *without*
    // a manifest entry would be rejected there).
    assert_eq!(run.failed.len(), 1, "{:?}", run.failed);
    let failed = &run.failed[0];
    assert_eq!(failed.cause.kind(), "panic");
    assert_eq!(failed.attempts, MAX_CELL_ATTEMPTS);
    run.check_invariants().unwrap();

    // The failed seed's point is reduced; the sibling machine's point keeps
    // its full sample.
    let aggs = run.seed_aggregates();
    assert_eq!(aggs.len(), 2, "one point per machine");
    let hit = aggs
        .iter()
        .find(|a| a.cell.machine == failed.cell.machine)
        .unwrap();
    let clean = aggs
        .iter()
        .find(|a| a.cell.machine != failed.cell.machine)
        .unwrap();
    assert!(hit.is_reduced());
    assert_eq!((hit.n, hit.expected_n), (2, 3));
    assert!(!clean.is_reduced());
    assert_eq!((clean.n, clean.expected_n), (3, 3));

    // The reduced point is the survivors-only fold: the failed seed is not
    // in `run.cells` at all, so no placeholder value can be averaged in.
    let mut survivors = Aggregate::new();
    for (cell, r) in run.cells.iter().zip(&run.results) {
        if cell.machine == failed.cell.machine {
            assert_ne!(
                cell.seed, failed.cell.seed,
                "a failed cell must not appear among the survivors"
            );
            survivors.add(r.sim.ipc());
        }
    }
    assert_eq!(survivors.n(), 2);
    assert_eq!(hit.ipc, survivors);

    // Both emitters carry the explicit markers: the manifest row for the
    // failed cell and the reduced-n marker on its aggregate row.
    let csv = run.to_csv();
    assert_eq!(csv.matches(",failed:panic").count(), 1);
    assert!(csv.contains(",aggregate:reduced:n=2/3"), "{csv}");
    assert!(csv.contains(",aggregate:n=3/3"), "{csv}");
    let json = run.to_json();
    assert!(json.contains("\"failed_count\": 1,"));
    assert!(json.contains("\"n\": 2, \"expected_n\": 3, \"reduced\": true"));
    assert!(json.contains("\"n\": 3, \"expected_n\": 3, \"reduced\": false"));
}
