//! Differential invariant layer over randomized scenario grids.
//!
//! The golden digest proves bit-identity of the 117 runs the figures happen to
//! exercise; this layer guards the *rest* of the config/workload space the
//! scenario engine opened up. A seeded RNG draws machine-config axes, the grid
//! runs on both machines over SPEC-like and stress workloads, and every cell is
//! checked against invariants that must hold for any configuration:
//!
//! * the simulator retires exactly the measured instruction budget,
//! * per-unit energy components are finite, non-negative and sum to the
//!   reported total (power consistent with energy over time),
//! * leakage is attributed machine-aware: every cell's per-category leakage
//!   components are recomputed from the cell's own machine configuration and
//!   machine kind (baseline cells carry exactly zero Flywheel-structure
//!   leakage; Flywheel-family cells leak strictly more than the baseline at
//!   the same node),
//! * cycle/time counters are sane per cell and monotone in the budget,
//! * machine-specific stats stay in range (EC residency/hit rate, no Flywheel
//!   energy or front-end gating on the baseline).
//!
//! The axes are drawn through `flywheel-rng`, so any failure reproduces
//! exactly from the printed scenario description.

use flywheel_bench::scenario::{check_cell_invariants, Machine, Scenario};
use flywheel_rng::SimRng;
use flywheel_timing::TechNode;
use flywheel_uarch::SimBudget;
use flywheel_workloads::Benchmark;

/// Draws a randomized scenario over ≥3 config axes mixing stress and SPEC-like
/// workloads.
fn random_scenario(rng: &mut SimRng) -> Scenario {
    let mut s = Scenario::new("randomized", SimBudget::new(1_000, 5_000));
    // Two stress workloads plus one SPEC-like profile per draw.
    let mut stress = Benchmark::stress_suite().to_vec();
    let spec = [Benchmark::Gzip, Benchmark::Vortex, Benchmark::Equake];
    s.benchmarks = vec![
        stress.remove(rng.range_usize(0, stress.len())),
        stress.remove(rng.range_usize(0, stress.len())),
        spec[rng.range_usize(0, spec.len())],
    ];
    s.machines = vec![Machine::Baseline, Machine::RegAlloc, Machine::Flywheel];
    s.nodes = vec![[TechNode::N130, TechNode::N90][rng.range_usize(0, 2)]];
    let clock_points = [(0, 0), (0, 50), (50, 50), (100, 50)];
    let a = rng.range_usize(0, clock_points.len());
    let b = (a + 1 + rng.range_usize(0, clock_points.len() - 1)) % clock_points.len();
    s.clocks = vec![clock_points[a], clock_points[b]];
    let windows = [(64u32, 64u32), (64, 128), (128, 128), (256, 256)];
    s.windows = vec![windows[rng.range_usize(0, windows.len())]];
    s.ec_kb = vec![[32u64, 64, 128][rng.range_usize(0, 3)]];
    s.mem_cycles = vec![[60u32, 100, 250][rng.range_usize(0, 3)]];
    s.seeds = vec![rng.range_u64(1, 1 << 40)];
    s
}

#[test]
fn randomized_grids_satisfy_the_machine_invariants() {
    let mut rng = SimRng::seed_from_u64(0x5ce7a210);
    for round in 0..3 {
        let s = random_scenario(&mut rng);
        s.validate()
            .unwrap_or_else(|e| panic!("round {round}: {e}"));
        let run = s.run();
        run.check_invariants()
            .unwrap_or_else(|e| panic!("round {round}, scenario {s:?}: {e}"));
        // Same grid, same results: the whole run must be deterministic.
        let again = s.run();
        assert_eq!(
            run.results, again.results,
            "round {round} not deterministic"
        );
    }
}

#[test]
fn flywheel_leakage_strictly_exceeds_baseline_on_randomized_cells() {
    // The differential form of the PR 5 bugfix, checked over a randomized grid:
    // the baseline pays zero Flywheel-structure leakage, and every
    // Flywheel-family cell at the same (bench, seed, node) leaks strictly more
    // *power* (leakage energy over elapsed time) than its baseline reference —
    // the Execution Cache, Register Update and 512-entry register file all
    // leak, whatever the clock plan does to wall-clock time.
    let mut rng = SimRng::seed_from_u64(0xf10c_8a6e);
    let s = random_scenario(&mut rng);
    let run = s.run();
    run.check_invariants().unwrap_or_else(|e| panic!("{e}"));
    let leak_w = |r: &flywheel_bench::scenario::CellResult| {
        r.sim.energy.leakage_pj() / r.sim.elapsed_ps as f64
    };
    let mut compared = 0;
    for (bc, br) in run
        .cells
        .iter()
        .zip(&run.results)
        .filter(|(c, _)| c.machine == Machine::Baseline)
    {
        assert_eq!(
            br.sim.energy.leakage_flywheel_pj,
            0.0,
            "{}: baseline charged Flywheel-structure leakage",
            bc.label()
        );
        for (fc, fr) in run
            .cells
            .iter()
            .zip(&run.results)
            .filter(|(c, _)| !c.machine.is_baseline())
        {
            if fc.bench == bc.bench && fc.seed == bc.seed && fc.node == bc.node {
                assert!(
                    leak_w(fr) > leak_w(br),
                    "{} leaks {} pJ/ps, not above baseline {} pJ/ps",
                    fc.label(),
                    leak_w(fr),
                    leak_w(br)
                );
                compared += 1;
            }
        }
    }
    assert!(compared > 0, "grid produced no comparable machine pairs");
}

#[test]
fn cycle_and_time_counters_are_monotone_in_the_budget() {
    // A longer run of the same cell can only accumulate more cycles, time and
    // energy — on both machines, at stress-heavy and paper configs alike.
    let mut rng = SimRng::seed_from_u64(0xb06e7);
    let s = random_scenario(&mut rng);
    let cells = s.expand();
    let small = SimBudget::new(1_000, 3_000);
    let large = SimBudget::new(1_000, 9_000);
    // One cell per machine kind keeps the test fast while covering both
    // kernels plus the no-EC Flywheel variant.
    for machine in [Machine::Baseline, Machine::RegAlloc, Machine::Flywheel] {
        let cell = cells
            .iter()
            .find(|c| c.machine == machine)
            .expect("machine present in grid");
        let a = cell.run(small);
        let b = cell.run(large);
        check_cell_invariants(cell, small, &a).unwrap_or_else(|e| panic!("{e}"));
        check_cell_invariants(cell, large, &b).unwrap_or_else(|e| panic!("{e}"));
        assert!(
            b.sim.be_cycles > a.sim.be_cycles,
            "{}: be_cycles {} !> {}",
            cell.label(),
            b.sim.be_cycles,
            a.sim.be_cycles
        );
        assert!(
            b.sim.fe_cycles >= a.sim.fe_cycles,
            "{}: fe_cycles {} !>= {}",
            cell.label(),
            b.sim.fe_cycles,
            a.sim.fe_cycles
        );
        assert!(
            b.sim.elapsed_ps > a.sim.elapsed_ps,
            "{}: elapsed {} !> {}",
            cell.label(),
            b.sim.elapsed_ps,
            a.sim.elapsed_ps
        );
        assert!(
            b.sim.energy.total_pj() > a.sim.energy.total_pj(),
            "{}: energy not monotone",
            cell.label()
        );
    }
}

#[test]
fn stress_workloads_run_deterministically_on_both_machines() {
    // The acceptance grid: all four stress workloads x both machines x three
    // config axes (clocks, windows, memory latency), deterministic under
    // repetition, all invariants passing.
    let mut s = Scenario::stress(SimBudget::new(500, 2_000));
    s.clocks = vec![(0, 0), (50, 50)];
    s.windows = vec![(64, 64), (128, 128)];
    s.mem_cycles = vec![100, 250];
    s.validate().unwrap_or_else(|e| panic!("{e}"));
    let run = s.run();
    run.check_invariants().unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(
        run.cells.len(),
        // per benchmark: baseline 1x2x2 + flywheel 2x2x2
        s.benchmarks.len() * (4 + 8),
    );
    let again = s.run();
    assert_eq!(run.results, again.results, "stress grid not deterministic");
    // The stress family must actually stress: a pointer-chase cell at 250-cycle
    // memory must run at far lower IPC than the same machine on gzip-like
    // codes; brstorm must squash heavily.
    let chase = run
        .cells
        .iter()
        .zip(&run.results)
        .find(|(c, _)| {
            c.bench == Benchmark::PtrChase && c.machine == Machine::Baseline && c.mem_cycles == 250
        })
        .map(|(_, r)| r)
        .expect("ptrchase baseline cell");
    assert!(
        chase.sim.ipc() < 0.5,
        "ptrchase should be memory-bound, got IPC {}",
        chase.sim.ipc()
    );
    let result_of = |bench| {
        run.cells
            .iter()
            .zip(&run.results)
            .find(|(c, _)| {
                c.bench == bench && c.machine == Machine::Baseline && c.mem_cycles == 100
            })
            .map(|(_, r)| r)
            .expect("baseline cell")
    };
    let storm = result_of(Benchmark::BranchStorm);
    assert!(
        storm.sim.bpred.cond_mispredict_rate() > 0.15,
        "brstorm should defeat gshare, got mispredict rate {}",
        storm.sim.bpred.cond_mispredict_rate()
    );
}
