//! End-to-end tests of the supervision layer: real worker *processes*
//! (the `scenarios` binary via `CARGO_BIN_EXE_scenarios`), real fault
//! injection, and byte-level assertions on the merged stores.
//!
//! The determinism contract under test: for a fixed (scenario, config, fault
//! plan), each shard's event *kind* sequence and the merged store bytes are
//! pure functions of the inputs — crashes, restarts and healing included.

use flywheel_bench::fault::FaultPlan;
use flywheel_bench::scenario::Scenario;
use flywheel_bench::spec::scenario_from_spec;
use flywheel_bench::store::ResultStore;
use flywheel_bench::supervisor::{run_supervised, SupervisorConfig, SupervisorEvent};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Duration;

fn scenarios_exe() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_scenarios"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fw-sup-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A supervisor config tuned for test latency: fast restarts, generous
/// stall/deadline windows (the cells are milliseconds; only real hangs or
/// kills should trip them).
fn cfg(dir: &Path, shards: usize) -> SupervisorConfig {
    let mut c = SupervisorConfig::new(shards, scenarios_exe(), dir.join("status"));
    c.backoff = Duration::from_millis(10);
    c.backoff_cap = Duration::from_millis(100);
    c.stall_timeout = Duration::from_secs(20);
    c.shard_deadline = Duration::from_secs(120);
    c
}

fn smoke() -> Scenario {
    scenario_from_spec("preset=smoke;warmup=200;measured=600").unwrap()
}

/// Store payload lines (header dropped) in file order.
fn store_lines(path: &Path) -> Vec<String> {
    std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
        .lines()
        .skip(1)
        .map(str::to_owned)
        .collect()
}

fn kinds_by_shard(events: &[SupervisorEvent]) -> BTreeMap<usize, Vec<&'static str>> {
    let mut map: BTreeMap<usize, Vec<&'static str>> = BTreeMap::new();
    for e in events {
        map.entry(e.shard()).or_default().push(e.kind());
    }
    map
}

#[test]
fn faulted_sweep_degrades_then_heals_to_fault_free_bytes() {
    let dir = temp_dir("heal");
    let scenario = smoke();
    let cells = scenario.expand().len();

    // Fault-free reference sweep.
    let ff = dir.join("fault-free.store");
    let outcome = run_supervised(&scenario, &ff, &cfg(&dir, 4), |_| {}).unwrap();
    assert!(outcome.is_complete(), "{:?}", outcome.failed_cells);
    assert_eq!(outcome.cells, cells);
    let ff_lines = store_lines(&ff);
    assert_eq!(ff_lines.len(), cells);

    // Same sweep with one SIGKILLed worker and one persistently doomed cell.
    let mut faulted_cfg = cfg(&dir, 4);
    faulted_cfg.status_dir = dir.join("status-faulted");
    faulted_cfg.faults = Some(FaultPlan::parse("seed=7,panic=1,sigkill=1").unwrap());
    let faulted = dir.join("faulted.store");
    let outcome = run_supervised(&scenario, &faulted, &faulted_cfg, |_| {}).unwrap();
    assert!(outcome.restarts >= 1, "the SIGKILLed worker must restart");
    assert!(
        outcome.failed_shards.is_empty(),
        "no shard may exhaust its budget"
    );
    assert_eq!(outcome.failed_cells.len(), 1, "{:?}", outcome.failed_cells);
    let failed = &outcome.failed_cells[0];
    assert_eq!(failed.kind, "panic");

    // Degraded-mode byte contract: the faulted store is the fault-free store
    // minus exactly the manifested failed cell's record.
    let expected: Vec<String> = ff_lines
        .iter()
        .filter(|l| !l.contains(&failed.label))
        .cloned()
        .collect();
    assert_eq!(
        expected.len(),
        ff_lines.len() - 1,
        "failed label must match exactly one record"
    );
    assert_eq!(
        store_lines(&faulted),
        expected,
        "faulted != fault-free minus failed cell"
    );

    // Healing: re-sweeping the same store without faults simulates only the
    // missing cell and completes.
    let outcome = run_supervised(
        &scenario,
        &faulted,
        &faulted_cfg_without_faults(&dir),
        |_| {},
    )
    .unwrap();
    assert!(outcome.is_complete(), "{:?}", outcome.failed_cells);
    assert_eq!(outcome.warm_cells, cells - 1);
    let mut healed = store_lines(&faulted);
    let mut reference = ff_lines.clone();
    healed.sort();
    reference.sort();
    assert_eq!(
        healed, reference,
        "healed store must hold the fault-free records"
    );

    // Fully warm: no workers are spawned at all.
    let outcome = run_supervised(&scenario, &faulted, &cfg(&dir, 4), |_| {}).unwrap();
    assert_eq!(outcome.warm_cells, cells);
    assert!(outcome.events.is_empty(), "{:?}", outcome.events);

    std::fs::remove_dir_all(&dir).unwrap();
}

fn faulted_cfg_without_faults(dir: &Path) -> SupervisorConfig {
    let mut c = cfg(dir, 4);
    c.status_dir = dir.join("status-heal");
    c
}

#[test]
fn same_seed_and_faults_give_identical_restarts_and_bytes() {
    let dir = temp_dir("determinism");
    let scenario = smoke();
    let run = |tag: &str| {
        let mut c = cfg(&dir, 4);
        c.status_dir = dir.join(format!("status-{tag}"));
        c.faults = Some(FaultPlan::parse("seed=7,panic=1,sigkill=1").unwrap());
        let store = dir.join(format!("{tag}.store"));
        let outcome = run_supervised(&scenario, &store, &c, |_| {}).unwrap();
        (outcome, store)
    };
    let (a, store_a) = run("a");
    let (b, store_b) = run("b");

    assert_eq!(
        kinds_by_shard(&a.events),
        kinds_by_shard(&b.events),
        "per-shard event kind sequences must be deterministic"
    );
    let labels = |o: &flywheel_bench::supervisor::SweepOutcome| {
        o.failed_cells
            .iter()
            .map(|f| f.label.clone())
            .collect::<Vec<_>>()
    };
    assert_eq!(labels(&a), labels(&b), "the same cells must fail");
    assert_eq!(
        std::fs::read(&store_a).unwrap(),
        std::fs::read(&store_b).unwrap(),
        "merged stores must be byte-identical across runs"
    );

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn persistent_proc_fault_exhausts_budget_and_degrades() {
    let dir = temp_dir("persist");
    let scenario = smoke();
    let cells = scenario.expand().len();
    let mut c = cfg(&dir, 4);
    c.max_restarts = 1;
    c.faults = Some(FaultPlan::parse("seed=3,abort=1,persist-proc=1").unwrap());
    let store = dir.join("degraded.store");
    let outcome = run_supervised(&scenario, &store, &c, |_| {}).unwrap();

    assert_eq!(outcome.failed_shards.len(), 1, "{:?}", outcome.events);
    let bad = outcome.failed_shards[0];
    let kinds = kinds_by_shard(&outcome.events);
    let bad_kinds = &kinds[&bad];
    assert_eq!(bad_kinds.last(), Some(&"failed"));
    assert_eq!(
        bad_kinds.iter().filter(|k| **k == "spawned").count(),
        2,
        "max_restarts=1 allows exactly two incarnations: {bad_kinds:?}"
    );
    assert!(!outcome.failed_cells.is_empty());
    for f in &outcome.failed_cells {
        assert_eq!(f.shard, bad);
        assert_eq!(f.kind, "shard-failed");
    }

    // Partial preservation: every record the doomed shard landed before its
    // abort point (and all other shards' records) survives the merge.
    let lines = store_lines(&store);
    assert_eq!(lines.len(), cells - outcome.failed_cells.len());
    assert!(
        outcome.failed_cells.len() < cells / 4 + 1,
        "the abort fires mid-shard, so the shard's first half must have landed"
    );

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn shard_merges_are_order_stable_and_content_associative() {
    let dir = temp_dir("assoc");
    let scenario = smoke();
    let store = dir.join("main.store");
    let outcome = run_supervised(&scenario, &store, &cfg(&dir, 4), |_| {}).unwrap();
    assert!(outcome.is_complete());
    let shards: Vec<ResultStore> = outcome
        .shard_stores
        .iter()
        .map(|p| ResultStore::open(p).unwrap())
        .collect();

    // Merging the shard stores in shard order is byte-deterministic.
    let direct = |path: &Path| {
        let mut m = ResultStore::open(path).unwrap();
        for s in &shards {
            m.merge(s).unwrap();
        }
    };
    let m1 = dir.join("m1.store");
    let m2 = dir.join("m2.store");
    direct(&m1);
    direct(&m2);
    assert_eq!(
        std::fs::read(&m1).unwrap(),
        std::fs::read(&m2).unwrap(),
        "same merge order must give identical bytes"
    );

    // Pairwise grouping reaches the same record set (content associativity;
    // byte order may differ because each merge call appends in sorted-key
    // runs).
    let x_path = dir.join("x.store");
    let y_path = dir.join("y.store");
    let m3 = dir.join("m3.store");
    let mut x = ResultStore::open(&x_path).unwrap();
    x.merge(&shards[0]).unwrap();
    x.merge(&shards[1]).unwrap();
    let mut y = ResultStore::open(&y_path).unwrap();
    y.merge(&shards[2]).unwrap();
    y.merge(&shards[3]).unwrap();
    drop((x, y));
    let mut m = ResultStore::open(&m3).unwrap();
    m.merge(&ResultStore::open(&x_path).unwrap()).unwrap();
    m.merge(&ResultStore::open(&y_path).unwrap()).unwrap();
    drop(m);

    let sorted = |p: &Path| {
        let mut lines = store_lines(p);
        lines.sort();
        lines
    };
    assert_eq!(sorted(&m3), sorted(&m1), "groupings must agree on content");
    assert_eq!(
        sorted(&m1),
        sorted(&store),
        "merges must reproduce the main store"
    );

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn merge_cli_reports_conflicts_and_refuses() {
    let dir = temp_dir("conflict");
    let spec = "name=conflict;benches=micro;machines=flywheel;nodes=130;clocks=0:0;\
                baseline-clock=0:0;windows=64:64;ec=128;mem=100;seeds=1;warmup=50;measured=150";
    let scenario = scenario_from_spec(spec).unwrap();
    let grid = scenario.expand();
    assert_eq!(
        grid.len(),
        1,
        "the conflict fixture wants a single-cell grid"
    );
    let key = grid[0].key(scenario.budget);
    let label = grid[0].label();

    let a = dir.join("a.store");
    let outcome = run_supervised(&scenario, &a, &cfg(&dir, 1), |_| {}).unwrap();
    assert!(outcome.is_complete());

    // Forge a store holding the same key with different stats. (Tampering
    // with the file itself cannot produce a conflict — the CRC framing would
    // quarantine the line — so this goes through the API.)
    let stats = ResultStore::open(&a).unwrap().get(&key).unwrap().clone();
    let b = dir.join("b.store");
    let mut forged = stats.clone();
    forged.sim.instructions += 1;
    ResultStore::open(&b)
        .unwrap()
        .insert(key, &label, forged)
        .unwrap();

    let merge = |args: &[&Path]| {
        let mut cmd = Command::new(scenarios_exe());
        cmd.arg("merge");
        for a in args {
            cmd.arg(a);
        }
        cmd.output().unwrap()
    };

    let out = merge(&[&a, &b]);
    assert_eq!(out.status.code(), Some(2), "conflicts must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("merge conflict"), "{stderr}");
    assert!(stderr.contains(&key.hex()), "{stderr}");
    assert!(stderr.contains(&label), "{stderr}");
    // The refused merge must not have touched the target.
    assert_eq!(
        ResultStore::open(&a).unwrap().get(&key).unwrap(),
        &stats,
        "a refused merge must leave the target untouched"
    );

    // Clean merges exit 0; --out leaves the inputs alone.
    let c = dir.join("c.store");
    let out = {
        let mut cmd = Command::new(scenarios_exe());
        cmd.arg("merge").arg(&a).arg(&a).arg("--out").arg(&c);
        cmd.output().unwrap()
    };
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    assert_eq!(ResultStore::open(&c).unwrap().len(), 1);

    std::fs::remove_dir_all(&dir).unwrap();
}
