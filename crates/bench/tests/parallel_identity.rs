//! Parallel sweeps must be byte-identical to serial ones, and recorded-trace
//! cursors must replay identically when restarted mid-grid.
//!
//! The sweep driver hands cells to worker threads through an atomic cursor, so
//! the *assignment* of cells to workers is racy by design — the *results* must
//! not be. These tests pin the worker count explicitly
//! ([`Scenario::run_with_jobs`]) instead of mutating `FLYWHEEL_JOBS`, which
//! would race with other tests in the process.

use flywheel_bench::scenario::{Machine, Scenario};
use flywheel_bench::shared_trace;
use flywheel_uarch::SimBudget;
use flywheel_workloads::Benchmark;

fn grid() -> Scenario {
    let mut s = Scenario::new("parallel-identity", SimBudget::new(500, 2_000));
    s.benchmarks = vec![Benchmark::Micro, Benchmark::StoreStorm, Benchmark::PtrChase];
    s.machines = vec![Machine::Baseline, Machine::Flywheel];
    s.clocks = vec![(0, 50), (50, 50)];
    s.windows = vec![(64, 64), (128, 128)];
    s
}

#[test]
fn parallel_grid_is_byte_identical_to_serial() {
    let s = grid();
    let serial = s.run_with_jobs(1);
    for jobs in [2, 4, 8] {
        let parallel = s.run_with_jobs(jobs);
        assert_eq!(serial.cells, parallel.cells, "{jobs} jobs reordered cells");
        assert_eq!(
            serial.results, parallel.results,
            "{jobs} jobs changed results"
        );
        // The emitted artifacts are part of the contract too.
        assert_eq!(serial.to_csv(), parallel.to_csv(), "{jobs} jobs: CSV drift");
        assert_eq!(
            serial.to_json(),
            parallel.to_json(),
            "{jobs} jobs: JSON drift"
        );
    }
}

#[test]
fn trace_cursor_restart_replays_identically_mid_grid() {
    // Run a grid (which populates and exercises the shared trace cache), then
    // re-run single cells from partially consumed, restarted cursors of the
    // same shared traces: the results must match the grid's bit for bit.
    let s = grid();
    let run = s.run();
    let budget = s.budget;
    for (i, cell) in run.cells.iter().enumerate() {
        if i % 3 != 0 {
            continue; // a sample of cells keeps the test fast
        }
        let trace = shared_trace(cell.bench, cell.seed, budget);
        let mut cursor = trace.cursor();
        // Consume an arbitrary prefix, as an interrupted cell would have, then
        // rewind.
        let consumed = (i * 97) % 1_500;
        assert_eq!(cursor.by_ref().take(consumed).count(), consumed);
        cursor.restart();
        // The executor replays the cell's machine directly on the restarted
        // cursor, bypassing every store and cache — any registered family,
        // with no machine dispatch here.
        let replayed = cell.executor().replay(cursor, budget);
        assert_eq!(
            replayed.sim,
            run.results[i].sim,
            "cell {} diverged after cursor restart",
            cell.label()
        );
    }
}
