//! Integration tests of the content-addressed result store: on-disk
//! round-trips, key stability, and the incremental-sweep guarantee that a
//! warm store performs zero simulations for unchanged cells.

use flywheel_bench::scenario::{Machine, Scenario, ScenarioCell};
use flywheel_bench::store::{baseline_key, flywheel_key, ResultStore, StoreKey};
use flywheel_core::FlywheelConfig;
use flywheel_timing::TechNode;
use flywheel_uarch::{BaselineConfig, SimBudget};
use flywheel_workloads::Benchmark;
use std::path::PathBuf;

/// A unique throwaway path under the system temp dir (no tempfile crate in
/// the container; the process id plus a per-test tag keeps runs disjoint).
fn temp_store(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("flywheel-{}-{tag}.store", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

fn tiny_scenario() -> Scenario {
    let mut s = Scenario::new("roundtrip", SimBudget::new(300, 1_200));
    s.benchmarks = vec![Benchmark::Micro, Benchmark::PtrChase];
    s.clocks = vec![(0, 50), (50, 50)];
    s.mem_cycles = vec![100, 300];
    s
}

#[test]
fn warm_store_simulates_zero_cells_and_replays_bit_identically() {
    let path = temp_store("warm");
    let scenario = tiny_scenario();
    let cold_reference = scenario.run();

    let mut store = ResultStore::open(&path).unwrap();
    let (cold, first) = scenario.run_with_store(&mut store);
    assert_eq!(first.hits, 0);
    assert_eq!(first.simulated, scenario.cell_count());
    assert_eq!(
        cold.results, cold_reference.results,
        "store-mediated run must equal the direct run bitwise"
    );
    drop(store);

    // Re-open the store from disk in a "second process" and re-run: every
    // cell must be recalled, none simulated, and the results must round-trip
    // bit-identically (floats are stored as IEEE-754 bit patterns).
    let mut store = ResultStore::open(&path).unwrap();
    assert_eq!(store.len(), scenario.cell_count());
    let (warm, second) = scenario.run_with_store(&mut store);
    assert_eq!(
        second.simulated, 0,
        "warm store must perform zero simulations"
    );
    assert_eq!(second.hits, scenario.cell_count());
    assert_eq!(warm.results, cold_reference.results);
    assert_eq!(warm.to_csv(), cold_reference.to_csv());
    assert_eq!(warm.to_json(), cold_reference.to_json());
    warm.check_invariants().unwrap();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn touching_one_axis_only_resimulates_the_affected_cells() {
    let path = temp_store("incremental");
    let scenario = tiny_scenario();
    let mut store = ResultStore::open(&path).unwrap();
    let (_, first) = scenario.run_with_store(&mut store);
    assert_eq!(first.simulated, scenario.cell_count());

    // Add one memory latency point: the existing cells stay warm and only the
    // new latency's cells are simulated.
    let mut edited = scenario.clone();
    edited.mem_cycles = vec![100, 300, 200];
    let (run, second) = edited.run_with_store(&mut store);
    let new_cells = edited.cell_count() - scenario.cell_count();
    assert!(new_cells > 0);
    assert_eq!(second.hits, scenario.cell_count());
    assert_eq!(second.simulated, new_cells);
    run.check_invariants().unwrap();

    // Changing the budget changes every key: nothing is reused.
    let mut rebudgeted = scenario.clone();
    rebudgeted.budget = SimBudget::new(300, 1_300);
    let (_, third) = rebudgeted.run_with_store(&mut store);
    assert_eq!(third.hits, 0);
    assert_eq!(third.simulated, rebudgeted.cell_count());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn keys_cover_the_full_cell_input() {
    let budget = SimBudget::new(500, 2_000);
    let cell = ScenarioCell {
        bench: Benchmark::Micro,
        seed: 7,
        machine: Machine::Flywheel,
        node: TechNode::N130,
        fe_pct: 50,
        be_pct: 50,
        iw_entries: 128,
        rob_entries: 128,
        ec_kb: 128,
        mem_cycles: 100,
    };
    let base = cell.key(budget);
    let mutations: Vec<ScenarioCell> = vec![
        ScenarioCell {
            bench: Benchmark::Gzip,
            ..cell
        },
        ScenarioCell { seed: 8, ..cell },
        ScenarioCell {
            machine: Machine::RegAlloc,
            ..cell
        },
        ScenarioCell {
            node: TechNode::N90,
            ..cell
        },
        ScenarioCell { fe_pct: 75, ..cell },
        ScenarioCell {
            iw_entries: 64,
            ..cell
        },
        ScenarioCell { ec_kb: 64, ..cell },
        ScenarioCell {
            mem_cycles: 300,
            ..cell
        },
    ];
    for m in mutations {
        assert_ne!(m.key(budget), base, "key must depend on {m:?}");
    }
    assert_ne!(cell.key(SimBudget::new(500, 2_001)), base);
    assert_ne!(cell.key(SimBudget::new(501, 2_000)), base);
    // Same inputs, fresh derivation: the address is a pure function.
    assert_eq!(cell.key(budget), base);
}

#[test]
fn baseline_and_flywheel_families_never_share_keys() {
    let budget = SimBudget::test();
    let b = baseline_key(
        &BaselineConfig::paper(TechNode::N130),
        Benchmark::Micro,
        42,
        budget,
    );
    let f = flywheel_key(
        &FlywheelConfig::paper_iso_clock(TechNode::N130),
        Benchmark::Micro,
        42,
        budget,
    );
    assert_ne!(b, f);
}

#[test]
fn key_derivation_is_stable_across_processes() {
    // The key is a pure function of the canonical input string — no process
    // state (addresses, hash seeds, iteration order) enters it. Pin the hash
    // of a fixed input: if this assertion ever fails, the key function itself
    // changed and every committed store is invalidated (which must be a
    // deliberate, documented decision — see crates/bench/src/store.rs).
    let k = StoreKey::of_input("flywheel-store-stability-probe");
    assert_eq!(k.hex(), "f6a6454aa462e530fac5a831b1b8669c");
}

#[test]
fn read_only_open_has_no_side_effects() {
    // `report --check` opens the store without writing; a missing file must
    // stay missing (no stray header-only store at a wrong path).
    let path = temp_store("readonly");
    let store = ResultStore::open(&path).unwrap();
    assert!(store.is_empty());
    assert!(!path.exists(), "open must not create the backing file");
}

#[test]
fn empty_and_hostile_labels_round_trip_through_disk() {
    use flywheel_bench::store::RunStats;
    let path = temp_store("labels");
    let scenario = tiny_scenario();
    let cell = scenario.expand()[0];
    let sim = cell.run(scenario.budget).sim;
    let mut store = ResultStore::open(&path).unwrap();
    for (i, label) in ["", "a b\tc", "-"].iter().enumerate() {
        let key = StoreKey(1, i as u64);
        store
            .insert(key, label, RunStats::from_baseline(sim.clone()))
            .unwrap();
    }
    let reopened = ResultStore::open(&path).unwrap();
    assert_eq!(reopened.len(), 3, "every label shape must parse back");
    assert_eq!(reopened.get(&StoreKey(1, 0)).unwrap().sim, sim);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn store_rejects_corruption_and_unknown_schemas() {
    let path = temp_store("corrupt");
    std::fs::write(&path, "flywheel-store/999\n").unwrap();
    assert!(ResultStore::open(&path).is_err(), "unknown schema");
    std::fs::write(&path, "flywheel-store/1\ndeadbeef not-a-record B\n").unwrap();
    assert!(ResultStore::open(&path).is_err(), "corrupt record");
    let _ = std::fs::remove_file(&path);
}
