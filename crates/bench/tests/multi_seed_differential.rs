//! Differential tests for the multi-seed statistics layer: the aggregated
//! JSON/CSV artifacts of a multi-seed scenario must be byte-identical for
//! any worker count and for single-process vs supervised sharded execution
//! (the `scenarios` binary via `CARGO_BIN_EXE_scenarios`).
//!
//! This is the execution-strategy half of the seed-aggregation contract: the
//! statistics in `seed_aggregates()` are a fold over bit-identical per-cell
//! results in grid order, so *how* the cells were computed — one thread,
//! eight threads, three worker processes — must be unobservable in the
//! emitted artifacts.

use flywheel_bench::scenario::{Machine, Scenario};
use flywheel_bench::spec::scenario_to_spec;
use flywheel_bench::store::ResultStore;
use flywheel_uarch::SimBudget;
use flywheel_workloads::Benchmark;
use std::path::{Path, PathBuf};
use std::process::Command;

fn scenarios_exe() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_scenarios"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fw-msd-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A 24-cell grid with a 3-entry seed axis (8 configuration points × 3
/// seeds) that runs in well under a second.
fn multi_seed_scenario() -> Scenario {
    let mut s = Scenario::new("multiseed-diff", SimBudget::new(300, 1_200));
    s.benchmarks = vec![Benchmark::Micro, Benchmark::PtrChase];
    s.machines = vec![Machine::Baseline, Machine::Flywheel];
    s.mem_cycles = vec![100, 300];
    s.seeds = vec![11, 12, 13];
    s
}

#[test]
fn seed_aggregates_are_identical_for_any_worker_count() {
    let scenario = multi_seed_scenario();
    let lone = scenario.run_with_jobs(1);
    let wide = scenario.run_with_jobs(4);
    lone.check_invariants().unwrap();

    // One aggregate per configuration point, each over the full seed axis.
    let aggs = lone.seed_aggregates();
    assert_eq!(aggs.len(), 8, "2 benches × 2 machines × 2 mem latencies");
    for a in &aggs {
        assert_eq!((a.n, a.expected_n), (3, 3));
        assert!(!a.is_reduced());
    }

    // The emitted artifacts — per-seed rows, aggregate rows with CI columns,
    // the seed axis itself — must not betray the worker count.
    assert_eq!(lone.to_json(), wide.to_json());
    assert_eq!(lone.to_csv(), wide.to_csv());
    assert_eq!(lone.to_csv().matches(",aggregate:n=3/3").count(), 8);
}

#[test]
fn sharded_sweep_and_single_process_agree_byte_for_byte() {
    let dir = temp_dir("shards");
    let scenario = multi_seed_scenario();
    let spec = scenario_to_spec(&scenario).unwrap();
    let cells = scenario.cell_count();

    // Single-process store-backed reference run.
    let single_path = dir.join("single.store");
    let mut single = ResultStore::open(&single_path).unwrap();
    let (reference, summary) = scenario.run_with_store(&mut single);
    assert_eq!(summary.simulated, cells);
    assert!(!reference.is_degraded());
    drop(single);

    // The same grid as a supervised 3-shard multi-process sweep.
    let sharded_path = dir.join("sharded.store");
    let out = Command::new(scenarios_exe())
        .arg("sweep")
        .arg("--spec")
        .arg(&spec)
        .arg("--store")
        .arg(&sharded_path)
        .arg("--shards")
        .arg("3")
        .current_dir(&dir)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "sweep failed:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );

    // Replaying against the sweep's merged store must recall every cell warm
    // (zero re-simulation) and emit artifacts byte-identical to the
    // single-process run, seed aggregates included.
    let mut sharded = ResultStore::open(&sharded_path).unwrap();
    let (replay, warm) = scenario.run_with_store_jobs(&mut sharded, 1);
    assert_eq!(warm.hits, cells, "the sweep must have landed every cell");
    assert_eq!(warm.simulated, 0);
    assert_eq!(replay.to_json(), reference.to_json());
    assert_eq!(replay.to_csv(), reference.to_csv());

    // And the two stores hold the same record content (byte order differs:
    // shard merges append in sorted-key runs).
    let sorted_lines = |p: &Path| {
        let mut lines: Vec<String> = std::fs::read_to_string(p)
            .unwrap()
            .lines()
            .skip(1)
            .map(str::to_owned)
            .collect();
        lines.sort();
        lines
    };
    assert_eq!(sorted_lines(&single_path).len(), cells);
    assert_eq!(sorted_lines(&single_path), sorted_lines(&sharded_path));

    std::fs::remove_dir_all(&dir).unwrap();
}
