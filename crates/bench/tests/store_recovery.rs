//! Crash-safety tests of the result store: the property that truncating the
//! file at *every* byte offset recovers exactly the records written before
//! the cut, single-record quarantine on bit flips, v2 -> v3 migration, and
//! on-disk merge.

use flywheel_bench::store::{ResultStore, RunStats, StoreKey, STORE_SCHEMA};
use flywheel_uarch::SimBudget;
use std::path::{Path, PathBuf};

/// A unique throwaway path under the system temp dir (no tempfile crate in
/// the container; the process id plus a per-test tag keeps runs disjoint).
fn temp_store(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("flywheel-rec-{}-{tag}.store", std::process::id()));
    cleanup(&p);
    p
}

fn quarantine_of(path: &Path) -> PathBuf {
    PathBuf::from(format!("{}.quarantine", path.display()))
}

fn cleanup(path: &Path) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(quarantine_of(path));
}

/// One real simulation result to replicate under synthetic keys (framing and
/// recovery only care about bytes, not where the stats came from).
fn sample_stats() -> RunStats {
    use flywheel_bench::scenario::{Machine, Scenario};
    use flywheel_workloads::Benchmark;
    let mut s = Scenario::new("recovery-sample", SimBudget::new(100, 400));
    s.benchmarks = vec![Benchmark::Micro];
    s.machines = vec![Machine::Baseline];
    let cell = s.expand()[0];
    RunStats::from_baseline(cell.run(s.budget).sim)
}

/// Writes `n` records under distinct keys and returns the file bytes.
fn populated_store_bytes(path: &Path, n: u64) -> Vec<u8> {
    let stats = sample_stats();
    let mut store = ResultStore::open(path).unwrap();
    for i in 0..n {
        store
            .insert(StoreKey(0xbeef, i), &format!("cell-{i}"), stats.clone())
            .unwrap();
    }
    drop(store);
    std::fs::read(path).unwrap()
}

#[test]
fn truncating_at_every_byte_recovers_exactly_the_records_before_the_cut() {
    let path = temp_store("truncate");
    let data = populated_store_bytes(&path, 5);

    // End offset (exclusive, newline included) of every line in the file;
    // the first is the schema header, the rest are record lines.
    let line_ends: Vec<usize> = data
        .iter()
        .enumerate()
        .filter(|(_, &b)| b == b'\n')
        .map(|(i, _)| i + 1)
        .collect();
    assert_eq!(line_ends.len(), 6, "header plus five records");

    for cut in 0..=data.len() {
        cleanup(&path);
        std::fs::write(&path, &data[..cut]).unwrap();
        let (store, report) = ResultStore::open_recovering(&path)
            .unwrap_or_else(|e| panic!("cut at byte {cut} must recover, got: {e}"));

        // A record survives iff its full line (newline included) fits before
        // the cut; a line missing its newline is a torn append by definition.
        let expected: usize = line_ends.iter().skip(1).filter(|&&end| end <= cut).count();
        assert_eq!(store.len(), expected, "records after cut at byte {cut}");
        assert_eq!(report.records, expected);
        for i in 0..expected as u64 {
            assert!(
                store.contains(&StoreKey(0xbeef, i)),
                "record {i} must survive cut at byte {cut}"
            );
        }

        // A cut on a line boundary (or the empty file) is a healthy store:
        // recovery must not rewrite anything. Any other cut tears exactly one
        // line, which must be quarantined and the file repaired.
        if cut == 0 || data[..cut].ends_with(b"\n") {
            assert!(report.is_clean(), "cut at byte {cut} is a clean store");
            assert_eq!(std::fs::read(&path).unwrap(), &data[..cut]);
        } else {
            assert!(report.repaired, "cut at byte {cut} must repair");
            assert_eq!(report.quarantined_lines, 1, "cut at byte {cut}");
            assert!(quarantine_of(&path).exists());
            // Repair converges: the rewritten store reopens clean with the
            // same records.
            let (again, second) = ResultStore::open_recovering(&path).unwrap();
            assert!(second.is_clean(), "repair at byte {cut} must converge");
            assert_eq!(again.len(), expected);
        }
    }
    cleanup(&path);
}

#[test]
fn bit_flip_quarantines_only_the_damaged_record() {
    let path = temp_store("bitflip");
    let mut data = populated_store_bytes(&path, 4);

    // Flip one low bit in the middle of the third record line (header is
    // line 0). Store bytes are printable ASCII, so a low-bit flip can never
    // fabricate a newline, and the line CRC catches any single-bit change.
    let line_starts: Vec<usize> = std::iter::once(0)
        .chain(
            data.iter()
                .enumerate()
                .filter(|(_, &b)| b == b'\n')
                .map(|(i, _)| i + 1),
        )
        .collect();
    let (start, end) = (line_starts[3], line_starts[4]);
    let mid = start + (end - start) / 2;
    data[mid] ^= 1;
    std::fs::write(&path, &data).unwrap();

    let (store, report) = ResultStore::open_recovering(&path).unwrap();
    assert_eq!(report.quarantined_lines, 1);
    assert!(report.repaired);
    assert_eq!(store.len(), 3, "only the flipped record is lost");
    let stats = sample_stats();
    for i in [0u64, 1, 3] {
        assert_eq!(
            store.get(&StoreKey(0xbeef, i)),
            Some(&stats),
            "undamaged record {i} must survive bit-for-bit"
        );
    }
    assert!(!store.contains(&StoreKey(0xbeef, 2)));

    // The damaged line is preserved verbatim (minus framing validity) for
    // post-mortems, and the repaired store reopens clean.
    let quarantined = std::fs::read(quarantine_of(&path)).unwrap();
    assert_eq!(quarantined, &data[start..end]);
    let (_, second) = ResultStore::open_recovering(&path).unwrap();
    assert!(second.is_clean());
    cleanup(&path);
}

#[test]
fn v2_stores_migrate_to_v3_on_open() {
    let path = temp_store("migrate");
    let data = populated_store_bytes(&path, 3);

    // Rebuild the file in the previous schema: same payloads, no per-line
    // framing. The v3 line format is `<len:08x> <crc:08x> <payload>`, so the
    // payload of a record line starts at byte 18.
    let text = std::str::from_utf8(&data).unwrap();
    let mut v2 = String::from("flywheel-store/2\n");
    for line in text.lines().skip(1) {
        v2.push_str(&line[18..]);
        v2.push('\n');
    }
    std::fs::write(&path, &v2).unwrap();

    let (store, report) = ResultStore::open_recovering(&path).unwrap();
    assert!(report.migrated);
    assert!(report.repaired);
    assert_eq!(
        report.quarantined_lines, 0,
        "a healthy v2 store loses nothing"
    );
    assert!(
        !quarantine_of(&path).exists(),
        "a pure migration has nothing to quarantine"
    );
    assert_eq!(store.len(), 3);
    let stats = sample_stats();
    for i in 0..3u64 {
        assert_eq!(store.get(&StoreKey(0xbeef, i)), Some(&stats));
        assert_eq!(store.label_of(&StoreKey(0xbeef, i)), format!("cell-{i}"));
    }

    // The migrated file is a byte-identical v3 store: framed lines, current
    // header, clean on the next open.
    assert_eq!(std::fs::read(&path).unwrap(), data);
    let migrated = std::fs::read_to_string(&path).unwrap();
    assert!(migrated.starts_with(&format!("{STORE_SCHEMA}\n")));
    let (_, second) = ResultStore::open_recovering(&path).unwrap();
    assert!(second.is_clean());
    cleanup(&path);
}

#[test]
fn merge_combines_disk_stores_and_survives_reopen() {
    let a_path = temp_store("merge-a");
    let b_path = temp_store("merge-b");
    let stats = sample_stats();

    let mut a = ResultStore::open(&a_path).unwrap();
    a.insert(StoreKey(1, 1), "a-only", stats.clone()).unwrap();
    a.insert(StoreKey(1, 2), "shared", stats.clone()).unwrap();
    let mut b = ResultStore::open(&b_path).unwrap();
    b.insert(StoreKey(1, 2), "shared", stats.clone()).unwrap();
    b.insert(StoreKey(1, 3), "b-only", stats.clone()).unwrap();

    let outcome = a.merge(&b).unwrap();
    assert_eq!(outcome.added, 1);
    assert_eq!(outcome.identical, 1);

    // The merged records are durable: a fresh open sees the union.
    drop(a);
    let merged = ResultStore::open(&a_path).unwrap();
    assert_eq!(merged.len(), 3);
    for (k, label) in [
        (StoreKey(1, 1), "a-only"),
        (StoreKey(1, 2), "shared"),
        (StoreKey(1, 3), "b-only"),
    ] {
        assert_eq!(merged.get(&k), Some(&stats));
        assert_eq!(merged.label_of(&k), label);
    }
    cleanup(&a_path);
    cleanup(&b_path);
}
