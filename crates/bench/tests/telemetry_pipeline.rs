//! End-to-end `flywheel-telemetry` pipeline: install the process-global sink,
//! simulate cells on both kernels, finish, and read the event log back.
//!
//! Kept in its own integration-test binary: the telemetry sink is
//! process-global (one drain thread, one log), so this must not share a
//! process with tests that arm their own sessions or count events.

use flywheel_bench::telemetry::{
    finish_global_telemetry, install_global_telemetry, telemetry_installed, TelemetryLog,
};
use flywheel_bench::{run_baseline_cfg, run_flywheel_cfg, store};
use flywheel_core::FlywheelConfig;
use flywheel_timing::TechNode;
use flywheel_uarch::telemetry::TelemetryEvent;
use flywheel_uarch::{BaselineConfig, SimBudget};
use flywheel_workloads::Benchmark;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fw-telemetry-e2e-{}-{name}", std::process::id()))
}

#[test]
fn armed_runs_flush_a_clean_content_addressed_event_log() {
    let budget = SimBudget::new(500, 20_000);
    let bcfg = BaselineConfig::paper(TechNode::N130);
    let fcfg = FlywheelConfig::paper_iso_clock(TechNode::N130);

    // Disarmed process: no sink, kernels must record nothing.
    assert!(!telemetry_installed());
    let disarmed = run_flywheel_cfg(Benchmark::Micro, 42, fcfg.clone(), budget);

    let path = tmp("log.events");
    install_global_telemetry(&path, 256).expect("sink installs");
    assert!(telemetry_installed());
    assert!(
        install_global_telemetry(&path, 256).is_err(),
        "double install must be rejected"
    );

    let _armed_b = run_baseline_cfg(Benchmark::Micro, 42, bcfg.clone(), budget);
    let armed_f = run_flywheel_cfg(Benchmark::Micro, 42, fcfg.clone(), budget);
    // Telemetry is observational only: armed and disarmed runs simulate
    // identical machines.
    assert_eq!(armed_f.sim, disarmed.sim);
    assert_eq!(armed_f.flywheel, disarmed.flywheel);

    let summary = finish_global_telemetry().expect("sink was installed");
    assert!(!telemetry_installed());
    assert!(finish_global_telemetry().is_none(), "already finished");
    assert_eq!(summary.path, path);
    assert!(summary.events > 0, "armed cells must emit events");
    assert_eq!(summary.dropped, 0, "nothing should drop at this volume");

    let log = TelemetryLog::read(&path).expect("log reads back");
    assert!(log.is_clean(), "log must be CRC-clean: {}", log.describe());
    assert_eq!(log.records.len() as u64, summary.events);
    assert_eq!(log.dropped, 0);

    // Content addressing: every record's key is one of the two cells' store
    // keys, paired with that cell's label.
    let bkey = store::baseline_key(&bcfg, Benchmark::Micro, 42, budget);
    let fkey = store::flywheel_key(&fcfg, Benchmark::Micro, 42, budget);
    let blabel = store::cell_label("baseline", Benchmark::Micro, 42);
    let flabel = store::cell_label("flywheel", Benchmark::Micro, 42);
    let mut baseline_events = 0u64;
    let mut flywheel_events = 0u64;
    for r in &log.records {
        if r.key == bkey {
            assert_eq!(r.label, blabel);
            baseline_events += 1;
        } else if r.key == fkey {
            assert_eq!(r.label, flabel);
            flywheel_events += 1;
        } else {
            panic!("record with unknown key {}: {:?}", r.key.hex(), r);
        }
    }
    assert!(baseline_events > 0, "baseline cell must sample occupancy");
    assert!(flywheel_events > 0, "flywheel cell must emit events");

    // The flywheel cell reaches Execution-Cache mode on the micro benchmark:
    // its residency timeline must be reconstructible (enters ≥ exits, and at
    // least one front-end gating interval accompanies the visits).
    let enters = log
        .records
        .iter()
        .filter(|r| matches!(r.event, TelemetryEvent::EcEnter { .. }))
        .count();
    let exits = log
        .records
        .iter()
        .filter(|r| matches!(r.event, TelemetryEvent::EcExit { .. }))
        .count();
    let gated = log
        .records
        .iter()
        .filter(|r| matches!(r.event, TelemetryEvent::GatedInterval { .. }))
        .count();
    assert!(enters > 0, "flywheel cell never entered the EC");
    assert!(enters >= exits, "more exits than enters");
    assert!(gated > 0, "EC visits must produce gating intervals");

    std::fs::remove_file(&path).unwrap();
}
