//! End-to-end fault-injection drills: every recovery path of the
//! fault-tolerant executor and the crash-safe store, driven by deterministic
//! seeded plans.
//!
//! The fault plan is process-global state, so every test here serializes on
//! one gate mutex and clears the plan before releasing it.

use flywheel_bench::fault::{self, FaultPlan};
use flywheel_bench::scenario::{Machine, Scenario, MAX_CELL_ATTEMPTS};
use flywheel_bench::store::ResultStore;
use flywheel_uarch::SimBudget;
use flywheel_workloads::Benchmark;
use std::path::PathBuf;
use std::sync::{Mutex, PoisonError};

/// Serializes the tests in this file: fault plans are process-global.
static GATE: Mutex<()> = Mutex::new(());

/// Clears the plan even when an assertion panics mid-test, so one failure
/// does not cascade fault state into the next test.
struct ClearOnDrop;
impl Drop for ClearOnDrop {
    fn drop(&mut self) {
        fault::clear();
    }
}

fn temp_store(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("flywheel-fi-{}-{tag}.store", std::process::id()));
    let _ = std::fs::remove_file(&p);
    let _ = std::fs::remove_file(format!("{}.quarantine", p.display()));
    p
}

/// A small grid (8 cells) that runs in well under a second.
fn tiny_scenario() -> Scenario {
    let mut s = Scenario::new("fault-drill", SimBudget::new(300, 1_200));
    s.benchmarks = vec![Benchmark::Micro, Benchmark::PtrChase];
    s.machines = vec![Machine::Baseline, Machine::Flywheel];
    s.mem_cycles = vec![100, 300];
    s
}

#[test]
fn injected_panics_and_torn_append_yield_a_recoverable_degraded_run() {
    let _gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    let _clear = ClearOnDrop;
    let path = temp_store("panic-torn");
    let scenario = tiny_scenario();
    let cell_count = scenario.cell_count();

    fault::install(FaultPlan {
        seed: 7,
        panic_cells: 2,
        torn_insert: Some(3),
        ..FaultPlan::default()
    });
    let mut store = ResultStore::open(&path).unwrap();
    let (run, summary) = scenario.run_with_store(&mut store);
    drop(store);

    // Degraded-mode completion: the sweep finished, the two doomed cells are
    // in the manifest (after exhausting every attempt), everything else stands.
    assert!(run.is_degraded());
    assert_eq!(run.failed.len(), 2);
    assert_eq!(run.attempted(), cell_count);
    assert_eq!(run.cells.len(), cell_count - 2);
    assert_eq!(summary.simulated, cell_count - 2);
    for f in &run.failed {
        assert_eq!(f.cause.kind(), "panic");
        assert_eq!(f.attempts, MAX_CELL_ATTEMPTS);
        assert!(f.cause.message().contains("fault injection"));
    }

    // The manifest flows into both emitters.
    let csv = run.to_csv();
    assert_eq!(csv.matches(",failed:panic").count(), 2);
    let json = run.to_json();
    assert!(json.contains("\"failed_count\": 2,"));
    assert_eq!(json.matches("\"cause\": \"panic\"").count(), 2);

    // Target selection is a pure function of (seed, label set): the same plan
    // dooms the same cells on a rerun.
    let failed_labels: Vec<String> = run.failed.iter().map(|f| f.cell.label()).collect();
    fault::install(FaultPlan {
        seed: 7,
        panic_cells: 2,
        ..FaultPlan::default()
    });
    let rerun = scenario.run();
    let rerun_labels: Vec<String> = rerun.failed.iter().map(|f| f.cell.label()).collect();
    assert_eq!(failed_labels, rerun_labels);
    fault::clear();

    // The torn third append crashed the appender: two records made it to
    // disk, the third line is torn. Recovery keeps both valid records (zero
    // valid records lost), quarantines the torn line, and the store is
    // immediately usable.
    let (recovered, report) = ResultStore::open_recovering(&path).unwrap();
    assert_eq!(report.quarantined_lines, 1);
    assert_eq!(recovered.len(), 2, "every fully-appended record survives");

    // With faults cleared, a rerun over the recovered store completes the
    // grid: the surviving records are recalled, nothing fails, and the next
    // open is clean.
    let mut recovered = recovered;
    let (healed, second) = scenario.run_with_store(&mut recovered);
    assert!(!healed.is_degraded());
    assert_eq!(second.hits, 2);
    assert_eq!(second.simulated, cell_count - 2);
    assert_eq!(recovered.len(), cell_count);
    drop(recovered);
    let (_, third) = ResultStore::open_recovering(&path).unwrap();
    assert!(third.is_clean());
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(format!("{}.quarantine", path.display()));
}

#[test]
fn transient_faults_are_recovered_by_retry_bit_identically() {
    let _gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    let _clear = ClearOnDrop;
    let scenario = tiny_scenario();
    let reference = scenario.run();
    assert!(!reference.is_degraded());

    fault::install(FaultPlan {
        transient_cells: 2,
        ..FaultPlan::default()
    });
    let run = scenario.run();
    fault::clear();

    // First-attempt-only panics must be absorbed by the bounded retry: the
    // run completes undegraded and every result is bit-identical to the
    // fault-free reference (the retry re-simulates from scratch).
    assert!(!run.is_degraded());
    assert_eq!(run.results, reference.results);
    assert_eq!(run.to_csv(), reference.to_csv());
}

#[test]
fn stalled_cells_trip_the_wall_clock_watchdog_as_timeouts() {
    let _gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    let _clear = ClearOnDrop;
    let scenario = tiny_scenario();

    fault::install(FaultPlan {
        stall_cells: 1,
        timeout_ms: Some(50),
        ..FaultPlan::default()
    });
    let run = scenario.run();
    fault::clear();

    assert_eq!(run.failed.len(), 1);
    let f = &run.failed[0];
    assert_eq!(f.cause.kind(), "timeout");
    assert_eq!(f.attempts, MAX_CELL_ATTEMPTS);
    assert!(
        f.cause.message().contains("watchdog"),
        "timeout must carry the watchdog diagnosis, got: {}",
        f.cause.message()
    );
    assert_eq!(run.cells.len(), scenario.cell_count() - 1);
}

#[test]
fn a_cycle_cap_converts_every_runaway_into_a_typed_timeout() {
    let _gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    let _clear = ClearOnDrop;
    let mut scenario = tiny_scenario();
    scenario.benchmarks = vec![Benchmark::Micro];
    scenario.machines = vec![Machine::Baseline];
    scenario.mem_cycles = vec![100];

    // A one-cycle cap makes every cell a "runaway": the sweep must still
    // complete, with the whole grid in the failed manifest as timeouts.
    fault::install(FaultPlan {
        max_cycles: Some(1),
        ..FaultPlan::default()
    });
    let run = scenario.run();
    fault::clear();

    assert_eq!(run.failed.len(), scenario.cell_count());
    assert!(run.cells.is_empty());
    for f in &run.failed {
        assert_eq!(f.cause.kind(), "timeout");
    }
    // Degraded emitters still work with zero surviving cells.
    assert!(run.to_json().contains("\"cause\": \"timeout\""));
    run.check_invariants().unwrap();
}
