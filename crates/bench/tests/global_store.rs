//! The process-global store path the binaries' `--store` flag uses.
//!
//! Kept in its own integration-test binary: the global store memoizes *every*
//! harness runner in the process, so this must not share a process with tests
//! that count simulations.

use flywheel_bench::store::{self, ResultStore};
use flywheel_bench::{run_baseline_cfg, run_flywheel_cfg, simulations_performed};
use flywheel_core::FlywheelConfig;
use flywheel_timing::TechNode;
use flywheel_uarch::{BaselineConfig, SimBudget};
use flywheel_workloads::Benchmark;

#[test]
fn global_store_memoizes_the_harness_runners() {
    let budget = SimBudget::new(200, 800);
    let bcfg = BaselineConfig::paper(TechNode::N130);
    let fcfg = FlywheelConfig::paper_iso_clock(TechNode::N130);
    store::install_global_store(ResultStore::in_memory());
    assert!(store::global_store_installed());

    let cold_b = run_baseline_cfg(Benchmark::Micro, 42, bcfg.clone(), budget);
    let cold_f = run_flywheel_cfg(Benchmark::Micro, 42, fcfg.clone(), budget);
    let sims_after_cold = simulations_performed();
    assert_eq!(sims_after_cold, 2, "both cold cells simulate");

    let warm_b = run_baseline_cfg(Benchmark::Micro, 42, bcfg, budget);
    let warm_f = run_flywheel_cfg(Benchmark::Micro, 42, fcfg, budget);
    assert_eq!(
        simulations_performed(),
        sims_after_cold,
        "warm cells must be recalled, not simulated"
    );
    assert_eq!(cold_b, warm_b);
    assert_eq!(cold_f.sim, warm_f.sim);
    assert_eq!(cold_f.flywheel, warm_f.flywheel);

    let (hits, misses) = store::global_store_counters();
    assert_eq!((hits, misses), (2, 2));
    let taken = store::take_global_store().expect("store was installed");
    assert_eq!(taken.len(), 2);
    assert!(!store::global_store_installed());
}
