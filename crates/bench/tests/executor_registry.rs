//! The machine-family registry must reproduce the pinned golden digest.
//!
//! `golden.txt` is produced by the `golden` binary, which constructs the five
//! pre-existing machine configurations *by hand* (named `BaselineConfig` /
//! `FlywheelConfig` constructors) and prints the full Debug of every result.
//! This test rebuilds the same configuration points *through the executor
//! registry* — family name + grid axes, the way scenario sweeps resolve cells
//! — replays them, and demands the rendered lines match the committed golden
//! file byte for byte. Any drift between the registry's resolution of a grid
//! point and the hand-built paper configurations is caught here, not in a
//! store key miss three layers up.

use flywheel_bench::executor::{CellAxes, Machine};
use flywheel_bench::shared_trace;
use flywheel_timing::TechNode;
use flywheel_uarch::SimBudget;
use flywheel_workloads::Benchmark;

const GOLDEN: &str = include_str!("../../../golden.txt");

/// The golden digest's budget (see `crates/bench/src/bin/golden.rs`).
fn golden_budget() -> SimBudget {
    SimBudget::new(5_000, 40_000)
}

fn axes(bench: Benchmark, fe: u32, be: u32) -> CellAxes {
    CellAxes {
        bench,
        seed: 42,
        node: TechNode::N130,
        fe_pct: fe,
        be_pct: be,
        iw_entries: 128,
        rob_entries: 128,
        ec_kb: 128,
        mem_cycles: 100,
    }
}

/// Renders one registry-resolved cell in the golden binary's line format.
fn render(machine: Machine, bench: Benchmark, golden_name: &str, fe: u32, be: u32) -> String {
    let exec = machine.family().builder.build(&axes(bench, fe, be));
    exec.validate()
        .unwrap_or_else(|e| panic!("{}/{golden_name}: invalid config: {e}", machine.name()));
    let trace = shared_trace(bench, 42, golden_budget());
    let stats = exec.replay(trace.cursor(), golden_budget());
    match stats.to_flywheel_result() {
        Some(r) => format!("flywheel/{bench}/{golden_name}: {r:?}"),
        None => format!("baseline/{bench}/{golden_name}: {:?}", stats.sim),
    }
}

#[test]
fn registry_executors_reproduce_the_golden_digest_byte_identically() {
    // One golden configuration point per pre-existing machine family, plus
    // the extra clock points the digest pins. `paper_default` and
    // `paper_n130` are the same machine at the same grid point — the golden
    // file pins that equivalence with two lines, so both appear here.
    let points: &[(Machine, &str, u32, u32)] = &[
        (Machine::Baseline, "paper_default", 0, 0),
        (Machine::Baseline, "paper_n130", 0, 0),
        (Machine::BaselineExtraFe, "extra_fe_stage", 0, 0),
        (Machine::BaselinePipedWakeup, "pipelined_wakeup", 0, 0),
        (Machine::Baseline, "dual_clock_fe50", 50, 0),
        (Machine::Flywheel, "iso_clock", 0, 0),
        (Machine::Flywheel, "fe50_be50", 50, 50),
        (Machine::Flywheel, "fe100_be50", 100, 50),
        (Machine::RegAlloc, "reg_alloc_only", 0, 0),
    ];
    // Two benches keep the test fast while still covering a SPEC-like profile
    // and an adversarial stress profile.
    for bench in [Benchmark::Micro, Benchmark::PtrChase] {
        for &(machine, golden_name, fe, be) in points {
            let line = render(machine, bench, golden_name, fe, be);
            let prefix = line.split_once(": ").expect("rendered line has ': '").0;
            let expected = GOLDEN
                .lines()
                .find(|l| l.starts_with(prefix) && l.as_bytes()[prefix.len()] == b':')
                .unwrap_or_else(|| panic!("golden.txt has no line for '{prefix}'"));
            assert_eq!(
                line,
                expected,
                "registry-built {} diverged from the hand-built golden configuration",
                machine.name()
            );
        }
    }
}

#[test]
fn every_golden_machine_line_is_covered_by_a_registered_family() {
    // The inverse direction: every machine/config label appearing in
    // golden.txt must be resolvable to a registered family, so the digest
    // can never silently pin a machine the registry no longer offers.
    let known_families: Vec<&str> = Machine::all().iter().map(|m| m.name()).collect();
    for line in GOLDEN.lines().filter(|l| !l.is_empty()) {
        let kind = line.split('/').next().unwrap();
        let family_exists = match kind {
            // The golden digest's `baseline/` and `flywheel/` prefixes are
            // power-model kinds covering several families; per-family
            // prefixes (e.g. `multidomain/`) name the family directly.
            "baseline" | "flywheel" => true,
            name => known_families.contains(&name),
        };
        assert!(
            family_exists,
            "golden line with unregistered family: {line}"
        );
    }
}
