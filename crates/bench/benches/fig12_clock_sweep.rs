//! Figure 12: relative performance of the Flywheel machine while sweeping the
//! front-end clock (back-end fixed at +50%).

use criterion::{criterion_group, criterion_main, Criterion};
use flywheel_bench::{bench_budget, run_baseline, run_flywheel, CLOCK_SWEEP};
use flywheel_core::FlywheelConfig;
use flywheel_timing::TechNode;
use flywheel_uarch::SimBudget;
use flywheel_workloads::Benchmark;

fn fig12(c: &mut Criterion) {
    let budget = bench_budget();
    let node = TechNode::N130;
    for bench in [Benchmark::Ijpeg, Benchmark::Mesa, Benchmark::Vortex] {
        let base = run_baseline(bench, node, budget);
        print!("fig12 {bench}:");
        for (fe, be) in CLOCK_SWEEP {
            let fly = run_flywheel(bench, FlywheelConfig::paper(node, fe, be), budget);
            print!(" FE{fe}/BE{be}={:.3}", fly.speedup_over(&base));
        }
        println!();
    }

    let mut group = c.benchmark_group("fig12_clock_sweep");
    group.sample_size(10);
    group.bench_function("flywheel_fe50_be50_micro", |b| {
        b.iter(|| {
            criterion::black_box(run_flywheel(
                Benchmark::Micro,
                FlywheelConfig::paper(node, 50, 50),
                SimBudget::new(1_000, 5_000),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, fig12);
criterion_main!(benches);
