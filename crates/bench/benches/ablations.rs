//! Ablation studies for the design choices called out in DESIGN.md: the Speculative
//! Remapping Table, the Execution Cache block size and the Dual-Clock synchronization
//! latency.

use criterion::{criterion_group, criterion_main, Criterion};
use flywheel_bench::{bench_budget, run_baseline, run_flywheel};
use flywheel_core::FlywheelConfig;
use flywheel_timing::TechNode;
use flywheel_uarch::SimBudget;
use flywheel_workloads::Benchmark;

fn ablations(c: &mut Criterion) {
    let budget = bench_budget();
    let node = TechNode::N130;
    let bench = Benchmark::Gzip;
    let base = run_baseline(bench, node, budget);

    // Speculative Remapping Table on/off.
    let with_srt = run_flywheel(bench, FlywheelConfig::paper(node, 50, 50), budget);
    let mut no_srt_cfg = FlywheelConfig::paper(node, 50, 50);
    no_srt_cfg.srt = false;
    let without_srt = run_flywheel(bench, no_srt_cfg, budget);
    println!(
        "ablation srt {bench}: with {:.3}, without {:.3} (normalized performance)",
        with_srt.speedup_over(&base),
        without_srt.speedup_over(&base)
    );

    // Execution Cache block size sweep (8 in the paper).
    for block in [4u32, 8, 16] {
        let mut cfg = FlywheelConfig::paper(node, 50, 50);
        cfg.ec.block_insts = block;
        let r = run_flywheel(bench, cfg, budget);
        println!(
            "ablation ec_block {bench}: {block}-instruction blocks -> {:.3} perf, residency {:.2}",
            r.speedup_over(&base),
            r.flywheel.ec_residency
        );
    }

    // Dual-Clock Issue Window synchronization latency.
    for sync in [0u32, 1, 2] {
        let mut cfg = FlywheelConfig::paper(node, 50, 50);
        cfg.base.sync_latency_be_cycles = sync;
        let r = run_flywheel(bench, cfg, budget);
        println!(
            "ablation sync_latency {bench}: {sync} cycles -> {:.3} perf",
            r.speedup_over(&base)
        );
    }

    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("flywheel_gzip_short", |b| {
        b.iter(|| {
            criterion::black_box(run_flywheel(
                Benchmark::Gzip,
                FlywheelConfig::paper(node, 50, 50),
                SimBudget::new(1_000, 5_000),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, ablations);
criterion_main!(benches);
