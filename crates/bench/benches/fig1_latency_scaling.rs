//! Figure 1 / Table 1: latency and frequency scaling of the pipeline structures.
//! The analytic model is cheap; the bench measures it and prints the figure data.

use criterion::{criterion_group, criterion_main, Criterion};
use flywheel_timing::{
    CacheGeometry, IssueWindowGeometry, ModuleFrequencies, RegFileGeometry, StructureLatency,
    TechNode,
};

fn fig1(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_latency_scaling");
    group.bench_function("table1_model", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for node in TechNode::all() {
                let f = ModuleFrequencies::for_node(*node);
                total += f.issue_window_mhz + f.icache_mhz + f.dcache_mhz;
                total += IssueWindowGeometry::new(64, 4).latency_ps(*node);
                total += CacheGeometry::new(32 * 1024, 4, 2, 64).latency_ps(*node);
                total += RegFileGeometry::new(256, 18).latency_ps(*node);
            }
            criterion::black_box(total)
        })
    });
    group.finish();

    // Print the series the figure plots (who scales how).
    for node in TechNode::all() {
        let iw = IssueWindowGeometry::paper_baseline().latency_ps(*node);
        let cache = CacheGeometry::paper_icache().latency_ps(*node);
        println!(
            "fig1 {node}: IW128 {iw:.0} ps, 64K cache {cache:.0} ps, ratio {:.2}",
            cache / iw
        );
    }
}

criterion_group!(benches, fig1);
criterion_main!(benches);
