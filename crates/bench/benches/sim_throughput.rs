//! Simulator-kernel throughput: how many simulated instructions per wall-clock
//! second each machine model sustains.
//!
//! This is the bench guarding the hot-path optimisations (slab-indexed in-flight
//! table, ready-list wakeup, allocation-free cycle loop): any regression in the
//! per-cycle bookkeeping shows up directly as lower simulated-MIPS here.

use criterion::{criterion_group, criterion_main, Criterion};
use flywheel_bench::{run_baseline, run_flywheel, simulated_mips};
use flywheel_core::FlywheelConfig;
use flywheel_timing::TechNode;
use flywheel_uarch::SimBudget;
use flywheel_workloads::Benchmark;
use std::time::Instant;

fn sim_throughput(c: &mut Criterion) {
    let node = TechNode::N130;
    let budget = SimBudget::new(10_000, 200_000);

    // Headline numbers: simulated MIPS for one representative run of each kernel.
    type Runner = Box<dyn Fn() -> u64>;
    let headline: Vec<(&str, Runner)> = vec![
        (
            "baseline/gzip",
            Box::new(move || run_baseline(Benchmark::Gzip, node, budget).instructions),
        ),
        (
            "flywheel/gzip",
            Box::new(move || {
                run_flywheel(
                    Benchmark::Gzip,
                    FlywheelConfig::paper_iso_clock(node),
                    budget,
                )
                .sim
                .instructions
            }),
        ),
    ];
    for (name, run) in headline {
        let start = Instant::now();
        let measured = run();
        let wall = start.elapsed();
        println!(
            "sim_throughput {name}: {:.2} simulated MIPS ({} simulated instructions, {measured} \
             measured, in {:.3} s)",
            simulated_mips(budget.total(), wall),
            budget.total(),
            wall.as_secs_f64()
        );
    }

    let mut group = c.benchmark_group("sim_throughput");
    group.sample_size(10);
    group.bench_function("baseline_gzip_210k", |b| {
        b.iter(|| criterion::black_box(run_baseline(Benchmark::Gzip, node, budget)))
    });
    group.bench_function("baseline_equake_210k", |b| {
        b.iter(|| criterion::black_box(run_baseline(Benchmark::Equake, node, budget)))
    });
    group.bench_function("flywheel_iso_gzip_210k", |b| {
        b.iter(|| {
            criterion::black_box(run_flywheel(
                Benchmark::Gzip,
                FlywheelConfig::paper_iso_clock(node),
                budget,
            ))
        })
    });
    group.bench_function("flywheel_fe50_be50_ijpeg_210k", |b| {
        b.iter(|| {
            criterion::black_box(run_flywheel(
                Benchmark::Ijpeg,
                FlywheelConfig::paper(node, 50, 50),
                budget,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, sim_throughput);
criterion_main!(benches);
