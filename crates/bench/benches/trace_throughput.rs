//! Trace-supply throughput: one-shot generation through [`TraceGenerator`]
//! versus recorded replay through a [`RecordedTrace`] cursor.
//!
//! This is the bench guarding the recorded-trace subsystem: capture cost must
//! stay a small one-time multiple of generation, and replay must be much faster
//! than generation (it is the per-cell cost every sweep pays after the first).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use flywheel_workloads::{Benchmark, RecordedTrace, TraceGenerator};
use std::time::Instant;

const TRACE_INSTS: usize = 210_000;

fn trace_throughput(c: &mut Criterion) {
    // Headline numbers: million instructions per second of trace supply, for a
    // loop-dominated benchmark and for the largest-footprint one.
    for bench in [Benchmark::Gzip, Benchmark::Vortex] {
        let program = bench.synthesize(1);
        let start = Instant::now();
        let trace = RecordedTrace::record(&program, 1, TRACE_INSTS);
        let record_wall = start.elapsed();

        let start = Instant::now();
        let generated = TraceGenerator::new(&program, 1).take(TRACE_INSTS).count();
        let generate_wall = start.elapsed();

        let start = Instant::now();
        let replayed = trace.cursor().count();
        let replay_wall = start.elapsed();

        assert_eq!(generated, replayed);
        let mips = |wall: std::time::Duration| TRACE_INSTS as f64 / wall.as_secs_f64() / 1e6;
        println!(
            "trace_throughput {bench}: generate {:.1} Minst/s, record {:.1} Minst/s, \
             replay {:.1} Minst/s ({} insts, arena {} KiB)",
            mips(generate_wall),
            mips(record_wall),
            mips(replay_wall),
            TRACE_INSTS,
            trace.arena_bytes() / 1024,
        );
    }

    let program = Benchmark::Gzip.synthesize(1);
    let recorded = RecordedTrace::record(&program, 1, TRACE_INSTS);
    let mut group = c.benchmark_group("trace_throughput");
    group.sample_size(10);
    group.bench_function("generate_gzip_210k", |b| {
        b.iter(|| {
            black_box(
                TraceGenerator::new(&program, 1)
                    .take(TRACE_INSTS)
                    .map(|d| d.pc.addr())
                    .sum::<u64>(),
            )
        })
    });
    group.bench_function("record_gzip_210k", |b| {
        b.iter(|| black_box(RecordedTrace::record(&program, 1, TRACE_INSTS).len()))
    });
    group.bench_function("replay_gzip_210k", |b| {
        b.iter(|| black_box(recorded.cursor().map(|d| d.pc.addr()).sum::<u64>()))
    });
    group.finish();
}

criterion_group!(benches, trace_throughput);
criterion_main!(benches);
