//! Figure 15: relative energy of the Flywheel machine at 130, 90 and 60 nm.

use criterion::{criterion_group, criterion_main, Criterion};
use flywheel_bench::{bench_budget, run_baseline, run_flywheel};
use flywheel_core::FlywheelConfig;
use flywheel_timing::TechNode;
use flywheel_uarch::SimBudget;
use flywheel_workloads::Benchmark;

fn fig15(c: &mut Criterion) {
    let budget = bench_budget();
    for bench in [Benchmark::Gcc, Benchmark::Bzip2, Benchmark::Equake] {
        print!("fig15 {bench}:");
        for node in TechNode::power_study_nodes() {
            let base = run_baseline(bench, *node, budget);
            let fly = run_flywheel(bench, FlywheelConfig::paper(*node, 100, 50), budget);
            print!(" {}={:.3}", node, fly.energy_ratio_over(&base));
        }
        println!(" (relative energy)");
    }

    let mut group = c.benchmark_group("fig15_technology");
    group.sample_size(10);
    group.bench_function("flywheel_60nm_micro", |b| {
        b.iter(|| {
            criterion::black_box(run_flywheel(
                Benchmark::Micro,
                FlywheelConfig::paper(TechNode::N60, 100, 50),
                SimBudget::new(1_000, 5_000),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, fig15);
criterion_main!(benches);
