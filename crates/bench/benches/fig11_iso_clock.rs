//! Figure 11: the register-allocation machine and the Flywheel machine at the
//! baseline clock, normalized to the baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use flywheel_bench::{bench_budget, run_baseline, run_flywheel};
use flywheel_core::FlywheelConfig;
use flywheel_timing::TechNode;
use flywheel_uarch::SimBudget;
use flywheel_workloads::Benchmark;

fn fig11(c: &mut Criterion) {
    let budget = bench_budget();
    let node = TechNode::N130;
    for bench in [
        Benchmark::Ijpeg,
        Benchmark::Gzip,
        Benchmark::Vpr,
        Benchmark::Vortex,
    ] {
        let base = run_baseline(bench, node, budget);
        let regalloc = run_flywheel(
            bench,
            FlywheelConfig::register_allocation_only(node),
            budget,
        );
        let flywheel = run_flywheel(bench, FlywheelConfig::paper_iso_clock(node), budget);
        println!(
            "fig11 {bench}: reg-alloc {:.3}, flywheel {:.3} (normalized performance)",
            regalloc.speedup_over(&base),
            flywheel.speedup_over(&base)
        );
    }

    let mut group = c.benchmark_group("fig11_iso_clock");
    group.sample_size(10);
    group.bench_function("flywheel_iso_micro", |b| {
        b.iter(|| {
            criterion::black_box(run_flywheel(
                Benchmark::Micro,
                FlywheelConfig::paper_iso_clock(node),
                SimBudget::new(1_000, 5_000),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, fig11);
criterion_main!(benches);
