//! Figure 13: relative energy of the Flywheel machine over the clock sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use flywheel_bench::{bench_budget, run_baseline, run_flywheel, CLOCK_SWEEP};
use flywheel_core::FlywheelConfig;
use flywheel_timing::TechNode;
use flywheel_uarch::SimBudget;
use flywheel_workloads::Benchmark;

fn fig13(c: &mut Criterion) {
    let budget = bench_budget();
    let node = TechNode::N130;
    for bench in [Benchmark::Gcc, Benchmark::Equake, Benchmark::Vortex] {
        let base = run_baseline(bench, node, budget);
        print!("fig13 {bench}:");
        for (fe, be) in CLOCK_SWEEP {
            let fly = run_flywheel(bench, FlywheelConfig::paper(node, fe, be), budget);
            print!(" FE{fe}={:.3}", fly.energy_ratio_over(&base));
        }
        println!(" (relative energy)");
    }

    let mut group = c.benchmark_group("fig13_energy");
    group.sample_size(10);
    group.bench_function("energy_accounting_micro", |b| {
        b.iter(|| {
            criterion::black_box(
                run_flywheel(
                    Benchmark::Micro,
                    FlywheelConfig::paper(node, 0, 50),
                    SimBudget::new(1_000, 5_000),
                )
                .sim
                .energy
                .total_pj(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, fig13);
criterion_main!(benches);
