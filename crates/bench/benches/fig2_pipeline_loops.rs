//! Figure 2: cost of stretching the Fetch/Mispredict loop vs the Wake-up/Select loop.

use criterion::{criterion_group, criterion_main, Criterion};
use flywheel_bench::{bench_budget, run_baseline, run_baseline_with};
use flywheel_timing::TechNode;
use flywheel_uarch::BaselineConfig;
use flywheel_workloads::Benchmark;

fn fig2(c: &mut Criterion) {
    let budget = bench_budget();
    let node = TechNode::N130;
    for bench in [
        Benchmark::Gzip,
        Benchmark::Gcc,
        Benchmark::Mesa,
        Benchmark::Vortex,
    ] {
        let base = run_baseline(bench, node, budget);
        let deeper = run_baseline_with(
            bench,
            BaselineConfig::paper(node).with_extra_frontend_stage(),
            budget,
        );
        let piped = run_baseline_with(
            bench,
            BaselineConfig::paper(node).with_pipelined_wakeup(),
            budget,
        );
        println!(
            "fig2 {bench}: fetch+1 {:+.1}%, wakeup/select {:+.1}%",
            (deeper.elapsed_ps as f64 / base.elapsed_ps as f64 - 1.0) * 100.0,
            (piped.elapsed_ps as f64 / base.elapsed_ps as f64 - 1.0) * 100.0
        );
    }

    let mut group = c.benchmark_group("fig2_pipeline_loops");
    group.sample_size(10);
    group.bench_function("baseline_gzip", |b| {
        b.iter(|| {
            criterion::black_box(run_baseline(
                Benchmark::Gzip,
                node,
                flywheel_uarch::SimBudget::new(1_000, 5_000),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, fig2);
criterion_main!(benches);
