//! Per-access energy, leakage and clock-grid models.

use crate::{MachineKind, Unit, UnitCategory};
use flywheel_timing::TechNode;

/// Structural parameters of the modelled processor that matter for energy.
///
/// Defaults follow the paper's Table 2. The Flywheel-only structures (Execution
/// Cache, 512-entry register file, remapping tables) are included so the same config
/// can describe both machines; the baseline simply never exercises them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerConfig {
    /// Process technology node.
    pub node: TechNode,
    /// Issue Window entries.
    pub iw_entries: u32,
    /// Issue width.
    pub iw_width: u32,
    /// Fetch width (instructions per I-cache access).
    pub fetch_width: u32,
    /// Baseline physical register file entries.
    pub rf_entries: u32,
    /// Flywheel physical register file entries.
    pub flywheel_rf_entries: u32,
    /// I-cache capacity in bytes.
    pub icache_bytes: u64,
    /// D-cache capacity in bytes.
    pub dcache_bytes: u64,
    /// L2 capacity in bytes.
    pub l2_bytes: u64,
    /// Execution Cache capacity in bytes.
    pub ec_bytes: u64,
    /// Reorder buffer entries.
    pub rob_entries: u32,
    /// Load/store queue entries.
    pub lsq_entries: u32,
    /// Branch predictor entries.
    pub bpred_entries: u32,
}

impl PowerConfig {
    /// The paper's Table 2 configuration at the given technology node.
    pub fn paper(node: TechNode) -> Self {
        PowerConfig {
            node,
            iw_entries: 128,
            iw_width: 6,
            fetch_width: 4,
            rf_entries: 192,
            flywheel_rf_entries: 512,
            icache_bytes: 64 * 1024,
            dcache_bytes: 64 * 1024,
            l2_bytes: 512 * 1024,
            ec_bytes: 128 * 1024,
            rob_entries: 128,
            lsq_entries: 64,
            bpred_entries: 2048,
        }
    }
}

impl Default for PowerConfig {
    fn default() -> Self {
        PowerConfig::paper(TechNode::N130)
    }
}

/// Reference supply voltage (0.18 µm) used to normalize the per-access energies.
const VDD_REF: f64 = 1.6;

/// Wattch-style energy model: per-access dynamic energy for every [`Unit`], per-cycle
/// clock-grid energy for each clock domain, and per-unit leakage power.
///
/// Energies are expressed in picojoules at the configured technology node; absolute
/// values are calibrated to be plausible for an aggressive out-of-order core of the
/// era, but only *ratios* matter for the paper's normalized results. Dynamic energy
/// scales with switched capacitance (structure geometry and feature size) and with
/// `Vdd²`; leakage power scales with the per-device leakage current and `Vdd`
/// (Butts-Sohi style), using the Table 2 technology parameters.
///
/// ```
/// use flywheel_power::{PowerConfig, PowerModel, Unit};
/// use flywheel_timing::TechNode;
///
/// let model = PowerModel::new(PowerConfig::paper(TechNode::N130));
/// // The wake-up CAM broadcast is one of the most expensive per-event operations.
/// assert!(model.access_energy_pj(Unit::IssueWindowWakeup) > model.access_energy_pj(Unit::Decode));
/// ```
#[derive(Debug, Clone)]
pub struct PowerModel {
    config: PowerConfig,
    access_pj: Vec<f64>,
    leakage_w: Vec<f64>,
    /// Register-file array leakage at the Flywheel geometry
    /// (`flywheel_rf_entries`); the `leakage_w` table carries the baseline
    /// (`rf_entries`) geometry.
    flywheel_rf_leakage_w: f64,
    clock_frontend_pj: f64,
    clock_backend_pj: f64,
}

impl PowerModel {
    /// Builds the energy model for `config`.
    pub fn new(config: PowerConfig) -> Self {
        let node = config.node;
        let cap = node.capacitance_scale();
        let volt = (node.vdd() / VDD_REF).powi(2);
        let dyn_scale = cap * volt;

        // Reference per-access energies at 0.18um, in pJ. Array-like structures are
        // derived from their geometry (sqrt-of-capacity bit-line/word-line proxy),
        // CAMs additionally pay for the tag broadcast across every entry.
        let array = |bytes: u64, ports: f64| 1.8 * (bytes as f64).sqrt() * (0.6 + 0.4 * ports);
        let small_array = |entries: u32, width_bits: f64, ports: f64| {
            0.045 * entries as f64 * width_bits.sqrt() * (0.6 + 0.4 * ports)
        };

        let iw_wakeup = 3.2 * config.iw_entries as f64 * (0.5 + 0.5 * config.iw_width as f64 / 6.0);
        let iw_select = 0.9 * config.iw_entries as f64 * 0.85;

        let rf_read = small_array(config.rf_entries, 64.0, 1.0);
        let rf_write = rf_read * 1.25;
        let fly_scale = (config.flywheel_rf_entries as f64 / config.rf_entries as f64).sqrt();

        let mut access_pj = vec![0.0; Unit::all().len()];
        let mut set = |u: Unit, pj_ref: f64| access_pj[u.index()] = pj_ref * dyn_scale;

        set(Unit::ICache, array(config.icache_bytes, 1.0));
        set(
            Unit::BranchPredictor,
            small_array(config.bpred_entries, 2.0, 1.0) + 25.0,
        );
        set(Unit::Decode, 40.0);
        set(Unit::Rename, 90.0);
        set(Unit::IssueWindowInsert, 80.0);
        set(Unit::IssueWindowWakeup, iw_wakeup);
        set(Unit::IssueWindowSelect, iw_select);
        set(Unit::Rob, small_array(config.rob_entries, 96.0, 1.5));
        set(Unit::Lsq, small_array(config.lsq_entries, 80.0, 1.5) + 30.0);
        set(Unit::RegFileRead, rf_read);
        set(Unit::RegFileWrite, rf_write);
        set(Unit::FuIntAlu, 100.0);
        set(Unit::FuIntMulDiv, 300.0);
        set(Unit::FuFpAdd, 250.0);
        set(Unit::FuFpMulDiv, 400.0);
        set(Unit::DCache, array(config.dcache_bytes, 2.0));
        set(Unit::L2, array(config.l2_bytes, 1.0) * 1.4);
        set(Unit::ResultBus, 65.0);
        set(Unit::Retire, 40.0);
        // Execution Cache: the tag array is small; each data-array access reads or
        // writes a wide block (several issue units), so it is comparatively
        // expensive per access but amortized over many instructions. Unused banks
        // are kept disabled (paper §3.3), which the block-granular access already
        // reflects.
        set(Unit::EcTagLookup, 0.25 * array(config.ec_bytes, 1.0));
        set(Unit::EcDataRead, 0.85 * array(config.ec_bytes, 1.0));
        set(Unit::EcDataWrite, 0.95 * array(config.ec_bytes, 1.0));
        // Remapping tables are indexed (not associative), one entry per architected
        // register: comparable to the rename table read.
        set(Unit::RegisterUpdate, 60.0);
        // The Flywheel register file is larger; the size penalty is folded into the
        // read/write energies at account time (both machines share the same Unit
        // ids; `EnergyAccumulator::finish` applies `flywheel_regfile_factor` for
        // Flywheel-kind accounts), and the same geometry choice drives the
        // register-file leakage below.
        let _ = fly_scale;

        // Clock grids, Alpha 21264-style: a global grid plus local grids per domain.
        // Charged per clock edge of the respective domain.
        let clock_frontend_pj = 420.0 * dyn_scale;
        let clock_backend_pj = 610.0 * dyn_scale;

        // Leakage: proportional to a device-count proxy per unit, the per-device
        // leakage current and Vdd. The global constant is calibrated so that leakage
        // is ~10% of typical total power at 0.13um and grows to >35% at 0.06um
        // (Butts-Sohi trend with the Table 2 currents).
        let leak_scale = node.leakage_na_per_device() * node.vdd() * 1.0e-9;
        let device_proxy = |u: Unit| -> f64 {
            match u {
                Unit::ICache => config.icache_bytes as f64 * 6.5,
                Unit::DCache => config.dcache_bytes as f64 * 6.5,
                Unit::L2 => config.l2_bytes as f64 * 6.2,
                Unit::EcDataRead => config.ec_bytes as f64 * 6.5,
                Unit::EcTagLookup | Unit::EcDataWrite => 0.0, // counted once under EcDataRead
                Unit::BranchPredictor => config.bpred_entries as f64 * 14.0,
                Unit::IssueWindowWakeup => config.iw_entries as f64 * 3200.0,
                Unit::IssueWindowSelect | Unit::IssueWindowInsert => 0.0, // folded into wakeup
                Unit::Rob => config.rob_entries as f64 * 800.0,
                Unit::Lsq => config.lsq_entries as f64 * 900.0,
                Unit::RegFileRead => config.rf_entries as f64 * 900.0,
                Unit::RegFileWrite => 0.0, // same array as RegFileRead
                Unit::Rename | Unit::RegisterUpdate => 28_000.0,
                Unit::Decode => 60_000.0,
                Unit::Retire | Unit::ResultBus => 30_000.0,
                Unit::FuIntAlu => 160_000.0,
                Unit::FuIntMulDiv => 120_000.0,
                Unit::FuFpAdd => 140_000.0,
                Unit::FuFpMulDiv => 160_000.0,
            }
        };
        // 0.32 is the effective (width / leakage-state) factor per modelled device;
        // it calibrates total leakage to ~0.2 W at 0.13 µm for this configuration.
        let leakage_w: Vec<f64> = Unit::all()
            .iter()
            .map(|u| device_proxy(*u) * leak_scale * 0.32)
            .collect();
        // The Flywheel register file is the same array at 512 entries: its leakage
        // follows the same geometry selection as the dynamic read/write energy.
        let flywheel_rf_leakage_w = config.flywheel_rf_entries as f64 * 900.0 * leak_scale * 0.32;

        PowerModel {
            config,
            access_pj,
            leakage_w,
            flywheel_rf_leakage_w,
            clock_frontend_pj,
            clock_backend_pj,
        }
    }

    /// The configuration the model was built from.
    pub fn config(&self) -> &PowerConfig {
        &self.config
    }

    /// Dynamic energy of one access to `unit`, in picojoules.
    pub fn access_energy_pj(&self, unit: Unit) -> f64 {
        self.access_pj[unit.index()]
    }

    /// Extra multiplicative factor applied to register-file read/write energy when
    /// the machine uses the large Flywheel register file instead of the baseline one.
    pub fn flywheel_regfile_factor(&self) -> f64 {
        (self.config.flywheel_rf_entries as f64 / self.config.rf_entries as f64).sqrt()
    }

    /// Clock-grid energy charged per front-end clock edge, in picojoules.
    ///
    /// When the front-end is clock gated (trace-execution mode) the grid still sees
    /// a small residual toggle; pass `gated = true` to get that residual.
    pub fn clock_frontend_pj(&self, gated: bool) -> f64 {
        if gated {
            self.clock_frontend_pj * 0.08
        } else {
            self.clock_frontend_pj
        }
    }

    /// Clock-grid energy charged per back-end clock edge, in picojoules.
    pub fn clock_backend_pj(&self) -> f64 {
        self.clock_backend_pj
    }

    /// Leakage power of `unit` in watts at the *baseline* register-file geometry
    /// (consumed continuously, clock gating does not remove it).
    ///
    /// This is machine-blind: it reports what the modelled structure would leak if
    /// present. Use [`PowerModel::leakage_w_for`] to account a concrete machine,
    /// which zeroes the categories the machine does not instantiate and selects
    /// the 512-entry register-file geometry for Flywheel-kind machines.
    pub fn leakage_w(&self, unit: Unit) -> f64 {
        self.leakage_w[unit.index()]
    }

    /// Leakage power of `unit` in watts as paid by a machine of kind `machine`:
    /// zero for categories the machine does not instantiate
    /// ([`MachineKind::instantiates`]), and the `flywheel_rf_entries` register-file
    /// geometry when the machine uses the large Flywheel register file — mirroring
    /// the geometry selection [`PowerModel::flywheel_regfile_factor`] applies to
    /// dynamic register-file energy.
    pub fn leakage_w_for(&self, unit: Unit, machine: MachineKind) -> f64 {
        if !machine.instantiates(unit.category()) {
            return 0.0;
        }
        // RegFileWrite carries no leakage of its own (same array as RegFileRead),
        // so the geometry switch only applies to the read entry.
        if unit == Unit::RegFileRead && machine.flywheel_regfile() {
            return self.flywheel_rf_leakage_w;
        }
        self.leakage_w[unit.index()]
    }

    /// Total leakage power in watts paid by a machine of kind `machine`,
    /// optionally restricted to one category. The per-category sums are exactly
    /// what [`crate::EnergyAccumulator::finish`] turns into the attributed
    /// leakage components of an [`crate::EnergyBreakdown`].
    pub fn machine_leakage_w(&self, machine: MachineKind, category: Option<UnitCategory>) -> f64 {
        Unit::all()
            .iter()
            .filter(|u| category.map(|c| u.category() == c).unwrap_or(true))
            .map(|u| self.leakage_w_for(*u, machine))
            .sum()
    }

    /// Machine-blind total leakage power in watts, optionally restricted to one
    /// category: the sum over *every modelled unit* at the baseline register-file
    /// geometry, regardless of whether any concrete machine instantiates it.
    ///
    /// Useful for technology-trend comparisons of the model itself; for run
    /// accounting use [`PowerModel::machine_leakage_w`], which is what the
    /// simulators charge.
    pub fn total_leakage_w(&self, category: Option<UnitCategory>) -> f64 {
        Unit::all()
            .iter()
            .filter(|u| category.map(|c| u.category() == c).unwrap_or(true))
            .map(|u| self.leakage_w(*u))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(node: TechNode) -> PowerModel {
        PowerModel::new(PowerConfig::paper(node))
    }

    #[test]
    fn caches_and_wakeup_dominate_per_access_energy() {
        let m = model(TechNode::N130);
        let big = [
            Unit::ICache,
            Unit::DCache,
            Unit::IssueWindowWakeup,
            Unit::L2,
        ];
        let small = [Unit::Decode, Unit::Rename, Unit::Retire, Unit::ResultBus];
        for b in big {
            for s in small {
                assert!(
                    m.access_energy_pj(b) > m.access_energy_pj(s),
                    "{b} should cost more than {s}"
                );
            }
        }
    }

    #[test]
    fn dynamic_energy_shrinks_with_technology() {
        for unit in Unit::all() {
            let e130 = model(TechNode::N130).access_energy_pj(*unit);
            let e60 = model(TechNode::N60).access_energy_pj(*unit);
            assert!(e60 < e130, "{unit}: {e60} !< {e130}");
        }
    }

    #[test]
    fn leakage_grows_with_technology() {
        let l130 = model(TechNode::N130).total_leakage_w(None);
        let l90 = model(TechNode::N90).total_leakage_w(None);
        let l60 = model(TechNode::N60).total_leakage_w(None);
        assert!(l90 > 2.0 * l130, "90nm leakage {l90} vs 130nm {l130}");
        // Same per-device current at 60nm and 90nm, lower Vdd at 60nm (Table 2).
        assert!(l60 < l90 && l60 > l130);
    }

    #[test]
    fn leakage_fraction_matches_expected_regime() {
        // With a representative dynamic energy per cycle (~2 nJ at 0.13um scaled by
        // node) leakage should be around 10% of total power at 0.13um and approach
        // a third of it at 0.06um — the effect behind Figure 15. The bands describe
        // the *baseline* machine, which (correctly) pays no Execution-Cache or
        // Register-Update leakage.
        for (node, period_ps, lo, hi) in [
            (TechNode::N130, 870.0, 0.04, 0.20),
            (TechNode::N60, 513.0, 0.25, 0.60),
        ] {
            let m = model(node);
            // Representative per-cycle dynamic energy: one fetch, the wake-up
            // broadcast, a D-cache access, some per-instruction overheads and the
            // clock grids.
            let dyn_pj = m.access_energy_pj(Unit::ICache)
                + m.access_energy_pj(Unit::IssueWindowWakeup)
                + m.access_energy_pj(Unit::IssueWindowSelect)
                + m.access_energy_pj(Unit::DCache) * 0.4
                + m.access_energy_pj(Unit::FuIntAlu) * 1.5
                + m.access_energy_pj(Unit::RegFileRead) * 3.0
                + 300.0
                + m.clock_frontend_pj(false)
                + m.clock_backend_pj();
            let dyn_w = dyn_pj * 1e-12 / (period_ps * 1e-12);
            // The regime describes the baseline core of the figure, so charge it
            // the baseline machine's leakage (no Flywheel-only structures).
            let leak_w = m.machine_leakage_w(MachineKind::Baseline, None);
            let fraction = leak_w / (leak_w + dyn_w);
            assert!(
                (lo..hi).contains(&fraction),
                "{node}: leakage fraction {fraction:.3} outside [{lo}, {hi}] (dyn {dyn_w:.2} W, leak {leak_w:.2} W)"
            );
        }
    }

    #[test]
    fn front_end_is_a_large_share_of_dynamic_energy() {
        // The energy the Flywheel machine saves comes from gating the front-end; the
        // per-access energies must make that share substantial (the paper reports
        // ~30% total savings with 88% trace-execution residency).
        let m = model(TechNode::N130);
        // Per-cycle activity of a 4-wide machine at IPC ~1.3.
        let ipc = 1.3;
        let fe = m.access_energy_pj(Unit::ICache)
            + m.access_energy_pj(Unit::BranchPredictor)
            + ipc
                * (m.access_energy_pj(Unit::Decode)
                    + m.access_energy_pj(Unit::Rename)
                    + m.access_energy_pj(Unit::IssueWindowInsert))
            + m.access_energy_pj(Unit::IssueWindowWakeup)
            + m.access_energy_pj(Unit::IssueWindowSelect)
            + m.clock_frontend_pj(false);
        let be = ipc
            * (m.access_energy_pj(Unit::Rob)
                + m.access_energy_pj(Unit::Retire)
                + 2.0 * m.access_energy_pj(Unit::RegFileRead)
                + 0.9 * m.access_energy_pj(Unit::RegFileWrite)
                + m.access_energy_pj(Unit::FuIntAlu)
                + m.access_energy_pj(Unit::ResultBus)
                + 0.35 * (m.access_energy_pj(Unit::DCache) + m.access_energy_pj(Unit::Lsq)))
            + m.clock_backend_pj();
        let share = fe / (fe + be);
        assert!(
            (0.35..0.60).contains(&share),
            "front-end dynamic share {share:.3} outside the expected band"
        );
    }

    #[test]
    fn clock_gating_reduces_front_end_clock_energy() {
        let m = model(TechNode::N90);
        assert!(m.clock_frontend_pj(true) < 0.2 * m.clock_frontend_pj(false));
    }

    #[test]
    fn flywheel_register_file_is_more_expensive() {
        let m = model(TechNode::N130);
        assert!(m.flywheel_regfile_factor() > 1.3);
    }

    #[test]
    fn machine_leakage_follows_the_instantiated_categories() {
        for node in TechNode::all() {
            let m = model(*node);
            // The baseline pays nothing for Flywheel-only structures…
            assert_eq!(
                m.machine_leakage_w(MachineKind::Baseline, Some(UnitCategory::FlywheelExtra)),
                0.0
            );
            for u in [Unit::EcDataRead, Unit::RegisterUpdate, Unit::EcTagLookup] {
                assert_eq!(m.leakage_w_for(u, MachineKind::Baseline), 0.0, "{u}");
            }
            // …while the Flywheel machine pays for all three categories, so its
            // total strictly exceeds the baseline's at every node.
            let base = m.machine_leakage_w(MachineKind::Baseline, None);
            let fly = m.machine_leakage_w(MachineKind::Flywheel, None);
            assert!(fly > base, "{node}: flywheel {fly} !> baseline {base}");
            // And the machine-blind model sum is not what either machine pays.
            assert!(m.total_leakage_w(None) > base);
        }
    }

    #[test]
    fn register_file_leakage_follows_the_machine_geometry() {
        let m = model(TechNode::N90);
        let base_rf = m.leakage_w_for(Unit::RegFileRead, MachineKind::Baseline);
        let fly_rf = m.leakage_w_for(Unit::RegFileRead, MachineKind::Flywheel);
        // 512 vs 192 entries: leakage scales linearly with the array size.
        let want = 512.0 / 192.0;
        assert!(
            (fly_rf / base_rf - want).abs() < 1e-9,
            "RF leakage ratio {} != entry ratio {want}",
            fly_rf / base_rf
        );
        // The write port shares the array: no double counting on either machine.
        assert_eq!(
            m.leakage_w_for(Unit::RegFileWrite, MachineKind::Flywheel),
            0.0
        );
    }
}
