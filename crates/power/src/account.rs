//! Activity accounting and energy/power reports.

use crate::{MachineKind, PowerModel, Unit, UnitCategory};

/// Records the activity of one simulation run: per-unit access counts and per-domain
/// clock edges, on behalf of one concrete machine.
///
/// The simulators in `flywheel-uarch` and `flywheel-core` call
/// [`EnergyAccumulator::record`] as events happen and the clock-tick methods once per
/// domain edge; at the end, [`EnergyAccumulator::finish`] turns the counts into an
/// [`EnergyBreakdown`] using a [`PowerModel`].
///
/// The accumulator knows its [`MachineKind`], so *it* — not the call sites —
/// decides which unit categories exist on the die: leakage is charged only for
/// instantiated categories (the baseline never pays Execution-Cache or
/// Register-Update leakage), and register-file events use the geometry the
/// machine actually has (512 entries on the Flywheel family).
#[derive(Debug, Clone)]
pub struct EnergyAccumulator {
    counts: Vec<u64>,
    frontend_cycles: u64,
    frontend_gated_cycles: u64,
    backend_cycles: u64,
    /// The machine family this account describes; selects the instantiated unit
    /// categories and the register-file geometry.
    machine: MachineKind,
}

impl Default for EnergyAccumulator {
    fn default() -> Self {
        EnergyAccumulator::new(MachineKind::Baseline)
    }
}

impl EnergyAccumulator {
    /// Creates an empty accumulator for a machine of kind `machine`.
    pub fn new(machine: MachineKind) -> Self {
        EnergyAccumulator {
            counts: vec![0; Unit::all().len()],
            frontend_cycles: 0,
            frontend_gated_cycles: 0,
            backend_cycles: 0,
            machine,
        }
    }

    /// The machine family this account describes.
    pub fn machine(&self) -> MachineKind {
        self.machine
    }

    /// Records `n` accesses to `unit`.
    pub fn record(&mut self, unit: Unit, n: u64) {
        self.counts[unit.index()] += n;
    }

    /// Number of accesses recorded for `unit`.
    pub fn count(&self, unit: Unit) -> u64 {
        self.counts[unit.index()]
    }

    /// Records one front-end clock edge; `gated` selects whether the front-end was
    /// clock gated (trace-execution mode) on that edge.
    pub fn tick_frontend(&mut self, gated: bool) {
        self.tick_frontend_n(gated, 1);
    }

    /// Records `n` front-end clock edges at once (used when the simulator
    /// fast-forwards over provably idle cycles).
    pub fn tick_frontend_n(&mut self, gated: bool, n: u64) {
        if gated {
            self.frontend_gated_cycles += n;
        } else {
            self.frontend_cycles += n;
        }
    }

    /// Records one back-end clock edge.
    pub fn tick_backend(&mut self) {
        self.tick_backend_n(1);
    }

    /// Records `n` back-end clock edges at once (used when the simulator
    /// fast-forwards over provably idle cycles).
    pub fn tick_backend_n(&mut self, n: u64) {
        self.backend_cycles += n;
    }

    /// Front-end clock edges recorded (active, gated).
    pub fn frontend_cycles(&self) -> (u64, u64) {
        (self.frontend_cycles, self.frontend_gated_cycles)
    }

    /// Back-end clock edges recorded.
    pub fn backend_cycles(&self) -> u64 {
        self.backend_cycles
    }

    /// Merges the counts of another accumulator into this one.
    ///
    /// # Panics
    ///
    /// Panics when the accumulators describe different machine kinds: merging a
    /// Flywheel account into a baseline one (or vice versa) would silently
    /// mis-attribute leakage and register-file geometry, which is exactly the
    /// class of bug this subsystem exists to make impossible.
    pub fn merge(&mut self, other: &EnergyAccumulator) {
        assert_eq!(
            self.machine, other.machine,
            "cannot merge a {} account into a {} account",
            other.machine, self.machine
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.frontend_cycles += other.frontend_cycles;
        self.frontend_gated_cycles += other.frontend_gated_cycles;
        self.backend_cycles += other.backend_cycles;
    }

    /// Computes the energy breakdown of the run given the power model and the total
    /// elapsed wall-clock time of the simulated execution, in picoseconds.
    ///
    /// Dynamic energy follows the recorded counts; leakage is attributed per
    /// [`UnitCategory`] from the machine kind — only instantiated categories leak,
    /// and the register file leaks at the geometry the machine actually has.
    ///
    /// # Panics
    ///
    /// Panics when activity was recorded for a unit the machine does not
    /// instantiate (e.g. an Execution-Cache access on a baseline account): such a
    /// count is a machine-blind accounting bug at the call site.
    pub fn finish(&self, model: &PowerModel, elapsed_ps: u64) -> EnergyBreakdown {
        let rf_factor = if self.machine.flywheel_regfile() {
            model.flywheel_regfile_factor()
        } else {
            1.0
        };

        let mut frontend_pj = 0.0;
        let mut backend_pj = 0.0;
        let mut flywheel_pj = 0.0;
        for unit in Unit::all() {
            let n = self.counts[unit.index()];
            assert!(
                n == 0 || self.machine.instantiates(unit.category()),
                "{n} accesses recorded to {unit}, which a {} machine does not instantiate",
                self.machine
            );
            let mut e = n as f64 * model.access_energy_pj(*unit);
            if matches!(unit, Unit::RegFileRead | Unit::RegFileWrite) {
                e *= rf_factor;
            }
            match unit.category() {
                UnitCategory::FrontEnd => frontend_pj += e,
                UnitCategory::BackEnd => backend_pj += e,
                UnitCategory::FlywheelExtra => flywheel_pj += e,
            }
        }

        let clock_pj = self.frontend_cycles as f64 * model.clock_frontend_pj(false)
            + self.frontend_gated_cycles as f64 * model.clock_frontend_pj(true)
            + self.backend_cycles as f64 * model.clock_backend_pj();

        let elapsed_s = elapsed_ps as f64 * 1.0e-12;
        let leak_pj = |category: UnitCategory| {
            model.machine_leakage_w(self.machine, Some(category)) * elapsed_s * 1.0e12
        };

        EnergyBreakdown {
            frontend_pj,
            backend_pj,
            flywheel_pj,
            clock_pj,
            leakage_frontend_pj: leak_pj(UnitCategory::FrontEnd),
            leakage_backend_pj: leak_pj(UnitCategory::BackEnd),
            leakage_flywheel_pj: leak_pj(UnitCategory::FlywheelExtra),
            elapsed_ps,
        }
    }
}

/// The energy consumed by one simulation run, split by source.
///
/// Version 2 of the record: leakage is *attributed* — split into one component
/// per [`UnitCategory`], so every consumer (stores, scenario emitters, report
/// tables) can see which structures a machine leaks through. A baseline run has
/// `leakage_flywheel_pj == 0` by construction.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Dynamic energy of front-end units (fetch, decode, rename, Issue Window), pJ.
    pub frontend_pj: f64,
    /// Dynamic energy of back-end units (register file, FUs, memory hierarchy), pJ.
    pub backend_pj: f64,
    /// Dynamic energy of Flywheel-only structures (Execution Cache, Register
    /// Update), pJ.
    pub flywheel_pj: f64,
    /// Clock-grid energy, pJ.
    pub clock_pj: f64,
    /// Leakage of the front-end units over the whole run, pJ.
    pub leakage_frontend_pj: f64,
    /// Leakage of the back-end units over the whole run, pJ.
    pub leakage_backend_pj: f64,
    /// Leakage of the Flywheel-only structures over the whole run, pJ (zero on
    /// baseline-family machines, which do not instantiate them).
    pub leakage_flywheel_pj: f64,
    /// Simulated execution time, ps.
    pub elapsed_ps: u64,
}

impl EnergyBreakdown {
    /// Total leakage energy over the whole run, pJ (sum of the per-category
    /// attribution).
    pub fn leakage_pj(&self) -> f64 {
        self.leakage_frontend_pj + self.leakage_backend_pj + self.leakage_flywheel_pj
    }

    /// Total energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.frontend_pj + self.backend_pj + self.flywheel_pj + self.clock_pj + self.leakage_pj()
    }

    /// Total energy in millijoules.
    pub fn total_mj(&self) -> f64 {
        self.total_pj() * 1.0e-9
    }

    /// Average power over the run, in watts.
    ///
    /// Returns zero for a zero-length run.
    pub fn average_power_w(&self) -> f64 {
        if self.elapsed_ps == 0 {
            return 0.0;
        }
        self.total_pj() * 1.0e-12 / (self.elapsed_ps as f64 * 1.0e-12)
    }

    /// Fraction of the total energy that is leakage.
    pub fn leakage_fraction(&self) -> f64 {
        let total = self.total_pj();
        if total == 0.0 {
            0.0
        } else {
            self.leakage_pj() / total
        }
    }

    /// Fraction of the total energy leaked by Flywheel-only structures
    /// (Execution Cache and Register Update); zero on baseline machines.
    pub fn flywheel_leakage_fraction(&self) -> f64 {
        let total = self.total_pj();
        if total == 0.0 {
            0.0
        } else {
            self.leakage_flywheel_pj / total
        }
    }

    /// Energy-delay product of the run, in joule-seconds.
    ///
    /// The paper's trade-off — spend energy on extra structures to buy clock
    /// speed — is exactly what EDP ranks: a machine only wins on EDP when its
    /// energy overhead is outweighed by its speedup.
    pub fn energy_delay_product_js(&self) -> f64 {
        self.total_pj() * 1.0e-12 * (self.elapsed_ps as f64 * 1.0e-12)
    }

    /// Energy-delay-squared product of the run, in joule-seconds² (weights
    /// performance twice, the usual high-performance metric).
    pub fn energy_delay_squared_js2(&self) -> f64 {
        self.energy_delay_product_js() * (self.elapsed_ps as f64 * 1.0e-12)
    }

    /// Fraction of the total energy consumed by front-end dynamic activity.
    pub fn frontend_fraction(&self) -> f64 {
        let total = self.total_pj();
        if total == 0.0 {
            0.0
        } else {
            self.frontend_pj / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PowerConfig;
    use flywheel_timing::TechNode;

    fn model() -> PowerModel {
        PowerModel::new(PowerConfig::paper(TechNode::N130))
    }

    #[test]
    fn empty_accumulator_has_only_leakage() {
        let acc = EnergyAccumulator::default();
        let b = acc.finish(&model(), 1_000_000);
        assert_eq!(b.frontend_pj, 0.0);
        assert_eq!(b.backend_pj, 0.0);
        assert_eq!(b.clock_pj, 0.0);
        assert!(b.leakage_pj() > 0.0);
        assert!((b.leakage_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn recording_accumulates_energy_in_the_right_bucket() {
        let m = model();
        let mut acc = EnergyAccumulator::new(MachineKind::Flywheel);
        acc.record(Unit::ICache, 10);
        acc.record(Unit::DCache, 5);
        acc.record(Unit::EcDataRead, 3);
        let b = acc.finish(&m, 0);
        assert!((b.frontend_pj - 10.0 * m.access_energy_pj(Unit::ICache)).abs() < 1e-9);
        assert!((b.backend_pj - 5.0 * m.access_energy_pj(Unit::DCache)).abs() < 1e-9);
        assert!((b.flywheel_pj - 3.0 * m.access_energy_pj(Unit::EcDataRead)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "does not instantiate")]
    fn recording_flywheel_units_on_a_baseline_account_is_rejected() {
        let m = model();
        let mut acc = EnergyAccumulator::new(MachineKind::Baseline);
        acc.record(Unit::EcDataRead, 1);
        let _ = acc.finish(&m, 0);
    }

    #[test]
    fn gated_clock_cycles_are_cheaper() {
        let m = model();
        let mut active = EnergyAccumulator::default();
        let mut gated = EnergyAccumulator::default();
        for _ in 0..1000 {
            active.tick_frontend(false);
            gated.tick_frontend(true);
        }
        let a = active.finish(&m, 0).clock_pj;
        let g = gated.finish(&m, 0).clock_pj;
        assert!(g < a * 0.2, "gated {g} should be far below active {a}");
    }

    #[test]
    fn flywheel_register_file_costs_more_per_access() {
        let m = model();
        let mut base = EnergyAccumulator::new(MachineKind::Baseline);
        let mut fly = EnergyAccumulator::new(MachineKind::Flywheel);
        base.record(Unit::RegFileRead, 100);
        fly.record(Unit::RegFileRead, 100);
        assert!(fly.finish(&m, 0).backend_pj > base.finish(&m, 0).backend_pj * 1.2);
    }

    #[test]
    fn baseline_breakdown_has_zero_flywheel_leakage() {
        // The root-cause differential test of this PR: over the same elapsed time
        // and power model, the baseline account must not be charged a single
        // picojoule of Execution-Cache / Register-Update leakage…
        let m = model();
        let elapsed = 10_000_000;
        let base = EnergyAccumulator::new(MachineKind::Baseline).finish(&m, elapsed);
        assert_eq!(base.leakage_flywheel_pj, 0.0);
        assert_eq!(base.flywheel_leakage_fraction(), 0.0);
        assert!(base.leakage_frontend_pj > 0.0);
        assert!(base.leakage_backend_pj > 0.0);
        // …while the Flywheel machine pays for all three categories plus the
        // larger register file, so its total leakage is strictly higher.
        let fly = EnergyAccumulator::new(MachineKind::Flywheel).finish(&m, elapsed);
        assert!(fly.leakage_flywheel_pj > 0.0);
        assert_eq!(fly.leakage_frontend_pj, base.leakage_frontend_pj);
        assert!(
            fly.leakage_backend_pj > base.leakage_backend_pj,
            "512-entry RF leaks more"
        );
        assert!(
            fly.leakage_pj() > base.leakage_pj() * 1.05,
            "flywheel leakage {} should clearly exceed baseline {}",
            fly.leakage_pj(),
            base.leakage_pj()
        );
    }

    #[test]
    fn energy_delay_product_trades_energy_against_time() {
        let m = model();
        let mut acc = EnergyAccumulator::default();
        acc.record(Unit::FuIntAlu, 1_000);
        let fast = acc.finish(&m, 1_000_000);
        let slow = acc.finish(&m, 3_000_000);
        // The slow run leaks longer *and* is slower: strictly worse on EDP/ED²P.
        assert!(slow.energy_delay_product_js() > fast.energy_delay_product_js());
        assert!(slow.energy_delay_squared_js2() > fast.energy_delay_squared_js2());
        let b = fast;
        let expected = b.total_pj() * 1e-12 * b.elapsed_ps as f64 * 1e-12;
        assert!((b.energy_delay_product_js() - expected).abs() <= 1e-18 * expected.abs());
    }

    #[test]
    fn average_power_uses_elapsed_time() {
        let m = model();
        let mut acc = EnergyAccumulator::default();
        acc.record(Unit::FuIntAlu, 1000);
        let fast = acc.finish(&m, 1_000_000);
        let slow = acc.finish(&m, 2_000_000);
        assert!(fast.average_power_w() > slow.average_power_w());
        assert_eq!(EnergyBreakdown::default().average_power_w(), 0.0);
    }

    #[test]
    fn merge_sums_counts_and_cycles() {
        let mut a = EnergyAccumulator::default();
        let mut b = EnergyAccumulator::default();
        a.record(Unit::Decode, 3);
        b.record(Unit::Decode, 4);
        a.tick_backend();
        b.tick_backend();
        b.tick_frontend(true);
        a.merge(&b);
        assert_eq!(a.count(Unit::Decode), 7);
        assert_eq!(a.backend_cycles(), 2);
        assert_eq!(a.frontend_cycles(), (0, 1));
    }

    #[test]
    #[should_panic(expected = "cannot merge")]
    fn merge_rejects_mismatched_machine_kinds() {
        let mut base = EnergyAccumulator::new(MachineKind::Baseline);
        let fly = EnergyAccumulator::new(MachineKind::Flywheel);
        base.merge(&fly);
    }
}
