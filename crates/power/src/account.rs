//! Activity accounting and energy/power reports.

use crate::{PowerModel, Unit, UnitCategory};

/// Records the activity of one simulation run: per-unit access counts and per-domain
/// clock edges.
///
/// The simulators in `flywheel-uarch` and `flywheel-core` call
/// [`EnergyAccumulator::record`] as events happen and the clock-tick methods once per
/// domain edge; at the end, [`EnergyAccumulator::finish`] turns the counts into an
/// [`EnergyBreakdown`] using a [`PowerModel`].
#[derive(Debug, Clone)]
pub struct EnergyAccumulator {
    counts: Vec<u64>,
    frontend_cycles: u64,
    frontend_gated_cycles: u64,
    backend_cycles: u64,
    /// Whether register-file accesses should be charged at the larger Flywheel
    /// register file's cost.
    flywheel_regfile: bool,
}

impl Default for EnergyAccumulator {
    fn default() -> Self {
        EnergyAccumulator::new(false)
    }
}

impl EnergyAccumulator {
    /// Creates an empty accumulator. `flywheel_regfile` selects whether register-file
    /// events are charged at the 512-entry Flywheel register file cost instead of the
    /// baseline cost.
    pub fn new(flywheel_regfile: bool) -> Self {
        EnergyAccumulator {
            counts: vec![0; Unit::all().len()],
            frontend_cycles: 0,
            frontend_gated_cycles: 0,
            backend_cycles: 0,
            flywheel_regfile,
        }
    }

    /// Records `n` accesses to `unit`.
    pub fn record(&mut self, unit: Unit, n: u64) {
        self.counts[unit.index()] += n;
    }

    /// Number of accesses recorded for `unit`.
    pub fn count(&self, unit: Unit) -> u64 {
        self.counts[unit.index()]
    }

    /// Records one front-end clock edge; `gated` selects whether the front-end was
    /// clock gated (trace-execution mode) on that edge.
    pub fn tick_frontend(&mut self, gated: bool) {
        self.tick_frontend_n(gated, 1);
    }

    /// Records `n` front-end clock edges at once (used when the simulator
    /// fast-forwards over provably idle cycles).
    pub fn tick_frontend_n(&mut self, gated: bool, n: u64) {
        if gated {
            self.frontend_gated_cycles += n;
        } else {
            self.frontend_cycles += n;
        }
    }

    /// Records one back-end clock edge.
    pub fn tick_backend(&mut self) {
        self.tick_backend_n(1);
    }

    /// Records `n` back-end clock edges at once (used when the simulator
    /// fast-forwards over provably idle cycles).
    pub fn tick_backend_n(&mut self, n: u64) {
        self.backend_cycles += n;
    }

    /// Front-end clock edges recorded (active, gated).
    pub fn frontend_cycles(&self) -> (u64, u64) {
        (self.frontend_cycles, self.frontend_gated_cycles)
    }

    /// Back-end clock edges recorded.
    pub fn backend_cycles(&self) -> u64 {
        self.backend_cycles
    }

    /// Merges the counts of another accumulator into this one.
    pub fn merge(&mut self, other: &EnergyAccumulator) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.frontend_cycles += other.frontend_cycles;
        self.frontend_gated_cycles += other.frontend_gated_cycles;
        self.backend_cycles += other.backend_cycles;
    }

    /// Computes the energy breakdown of the run given the power model and the total
    /// elapsed wall-clock time of the simulated execution, in picoseconds.
    pub fn finish(&self, model: &PowerModel, elapsed_ps: u64) -> EnergyBreakdown {
        let rf_factor = if self.flywheel_regfile {
            model.flywheel_regfile_factor()
        } else {
            1.0
        };

        let mut frontend_pj = 0.0;
        let mut backend_pj = 0.0;
        let mut flywheel_pj = 0.0;
        for unit in Unit::all() {
            let mut e = self.counts[unit.index()] as f64 * model.access_energy_pj(*unit);
            if matches!(unit, Unit::RegFileRead | Unit::RegFileWrite) {
                e *= rf_factor;
            }
            match unit.category() {
                UnitCategory::FrontEnd => frontend_pj += e,
                UnitCategory::BackEnd => backend_pj += e,
                UnitCategory::FlywheelExtra => flywheel_pj += e,
            }
        }

        let clock_pj = self.frontend_cycles as f64 * model.clock_frontend_pj(false)
            + self.frontend_gated_cycles as f64 * model.clock_frontend_pj(true)
            + self.backend_cycles as f64 * model.clock_backend_pj();

        let elapsed_s = elapsed_ps as f64 * 1.0e-12;
        let leakage_pj = model.total_leakage_w(None) * elapsed_s * 1.0e12;

        EnergyBreakdown {
            frontend_pj,
            backend_pj,
            flywheel_pj,
            clock_pj,
            leakage_pj,
            elapsed_ps,
        }
    }
}

/// The energy consumed by one simulation run, split by source.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Dynamic energy of front-end units (fetch, decode, rename, Issue Window), pJ.
    pub frontend_pj: f64,
    /// Dynamic energy of back-end units (register file, FUs, memory hierarchy), pJ.
    pub backend_pj: f64,
    /// Dynamic energy of Flywheel-only structures (Execution Cache, Register
    /// Update), pJ.
    pub flywheel_pj: f64,
    /// Clock-grid energy, pJ.
    pub clock_pj: f64,
    /// Leakage energy over the whole run, pJ.
    pub leakage_pj: f64,
    /// Simulated execution time, ps.
    pub elapsed_ps: u64,
}

impl EnergyBreakdown {
    /// Total energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.frontend_pj + self.backend_pj + self.flywheel_pj + self.clock_pj + self.leakage_pj
    }

    /// Total energy in millijoules.
    pub fn total_mj(&self) -> f64 {
        self.total_pj() * 1.0e-9
    }

    /// Average power over the run, in watts.
    ///
    /// Returns zero for a zero-length run.
    pub fn average_power_w(&self) -> f64 {
        if self.elapsed_ps == 0 {
            return 0.0;
        }
        self.total_pj() * 1.0e-12 / (self.elapsed_ps as f64 * 1.0e-12)
    }

    /// Fraction of the total energy that is leakage.
    pub fn leakage_fraction(&self) -> f64 {
        let total = self.total_pj();
        if total == 0.0 {
            0.0
        } else {
            self.leakage_pj / total
        }
    }

    /// Fraction of the total energy consumed by front-end dynamic activity.
    pub fn frontend_fraction(&self) -> f64 {
        let total = self.total_pj();
        if total == 0.0 {
            0.0
        } else {
            self.frontend_pj / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PowerConfig;
    use flywheel_timing::TechNode;

    fn model() -> PowerModel {
        PowerModel::new(PowerConfig::paper(TechNode::N130))
    }

    #[test]
    fn empty_accumulator_has_only_leakage() {
        let acc = EnergyAccumulator::default();
        let b = acc.finish(&model(), 1_000_000);
        assert_eq!(b.frontend_pj, 0.0);
        assert_eq!(b.backend_pj, 0.0);
        assert_eq!(b.clock_pj, 0.0);
        assert!(b.leakage_pj > 0.0);
        assert!((b.leakage_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn recording_accumulates_energy_in_the_right_bucket() {
        let m = model();
        let mut acc = EnergyAccumulator::default();
        acc.record(Unit::ICache, 10);
        acc.record(Unit::DCache, 5);
        acc.record(Unit::EcDataRead, 3);
        let b = acc.finish(&m, 0);
        assert!((b.frontend_pj - 10.0 * m.access_energy_pj(Unit::ICache)).abs() < 1e-9);
        assert!((b.backend_pj - 5.0 * m.access_energy_pj(Unit::DCache)).abs() < 1e-9);
        assert!((b.flywheel_pj - 3.0 * m.access_energy_pj(Unit::EcDataRead)).abs() < 1e-9);
    }

    #[test]
    fn gated_clock_cycles_are_cheaper() {
        let m = model();
        let mut active = EnergyAccumulator::default();
        let mut gated = EnergyAccumulator::default();
        for _ in 0..1000 {
            active.tick_frontend(false);
            gated.tick_frontend(true);
        }
        let a = active.finish(&m, 0).clock_pj;
        let g = gated.finish(&m, 0).clock_pj;
        assert!(g < a * 0.2, "gated {g} should be far below active {a}");
    }

    #[test]
    fn flywheel_register_file_costs_more_per_access() {
        let m = model();
        let mut base = EnergyAccumulator::new(false);
        let mut fly = EnergyAccumulator::new(true);
        base.record(Unit::RegFileRead, 100);
        fly.record(Unit::RegFileRead, 100);
        assert!(fly.finish(&m, 0).backend_pj > base.finish(&m, 0).backend_pj * 1.2);
    }

    #[test]
    fn average_power_uses_elapsed_time() {
        let m = model();
        let mut acc = EnergyAccumulator::default();
        acc.record(Unit::FuIntAlu, 1000);
        let fast = acc.finish(&m, 1_000_000);
        let slow = acc.finish(&m, 2_000_000);
        assert!(fast.average_power_w() > slow.average_power_w());
        assert_eq!(EnergyBreakdown::default().average_power_w(), 0.0);
    }

    #[test]
    fn merge_sums_counts_and_cycles() {
        let mut a = EnergyAccumulator::default();
        let mut b = EnergyAccumulator::default();
        a.record(Unit::Decode, 3);
        b.record(Unit::Decode, 4);
        a.tick_backend();
        b.tick_backend();
        b.tick_frontend(true);
        a.merge(&b);
        assert_eq!(a.count(Unit::Decode), 7);
        assert_eq!(a.backend_cycles(), 2);
        assert_eq!(a.frontend_cycles(), (0, 1));
    }
}
