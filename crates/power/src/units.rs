//! The energy-consuming units of the modelled processor.

use std::fmt;

/// A pipeline unit whose activity is tracked for energy accounting.
///
/// The split between [`UnitCategory::FrontEnd`] and [`UnitCategory::BackEnd`] is what
/// the Flywheel evaluation hinges on: while the processor replays instructions from
/// the Execution Cache, every front-end unit (and the front-end clock grid) is clock
/// gated and stops consuming dynamic energy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Unit {
    /// Instruction-cache access (per fetch group).
    ICache,
    /// Branch predictor / BTB lookup or update.
    BranchPredictor,
    /// Instruction decode (per instruction).
    Decode,
    /// Register rename-table read/update (per instruction).
    Rename,
    /// Issue Window entry allocation at dispatch (per instruction).
    IssueWindowInsert,
    /// Issue Window wake-up tag broadcast and match (per active back-end cycle).
    IssueWindowWakeup,
    /// Issue Window selection logic (per active back-end cycle).
    IssueWindowSelect,
    /// Reorder-buffer write/read (per instruction).
    Rob,
    /// Load/store queue search or insert (per memory instruction).
    Lsq,
    /// Physical register file read (per source operand).
    RegFileRead,
    /// Physical register file write (per produced result).
    RegFileWrite,
    /// Integer ALU operation.
    FuIntAlu,
    /// Integer multiply/divide operation.
    FuIntMulDiv,
    /// Floating-point add operation.
    FuFpAdd,
    /// Floating-point multiply/divide operation.
    FuFpMulDiv,
    /// Data-cache access (per load/store issued to memory).
    DCache,
    /// Unified L2 access (per L1 miss).
    L2,
    /// Result/bypass bus drive (per completing instruction).
    ResultBus,
    /// Retirement bookkeeping (per retired instruction).
    Retire,
    /// Execution Cache tag-array lookup (per trace search).
    EcTagLookup,
    /// Execution Cache data-array block read (per block fetched in trace-execution
    /// mode).
    EcDataRead,
    /// Execution Cache data-array block write (per block recorded during trace
    /// creation).
    EcDataWrite,
    /// Register Update stage: remapping-table read and physical-offset generation
    /// (per instruction, Flywheel only).
    RegisterUpdate,
}

/// Whether a unit belongs to the front-end clock domain (gated during
/// trace-execution mode), the back-end domain, or the Execution Cache path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnitCategory {
    /// Fetch/decode/rename/dispatch and the Issue Window scheduling logic.
    FrontEnd,
    /// Execution core: register file, functional units, memory hierarchy, retire.
    BackEnd,
    /// Structures that only exist in the Flywheel machine (Execution Cache and the
    /// Register Update remapping stage).
    FlywheelExtra,
}

/// Which structural family of machine an energy account describes — and therefore
/// which [`UnitCategory`]s physically exist on the die and leak.
///
/// This is the heart of the attributed power model: leakage (and the register-file
/// geometry) are derived from the machine kind at one place,
/// [`crate::EnergyAccumulator::finish`], instead of every call site remembering
/// which structures a machine instantiates. A baseline account can therefore never
/// be charged Execution-Cache or Register-Update leakage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MachineKind {
    /// The synchronous baseline of Table 2: front-end and back-end units only,
    /// with the 192-entry register file.
    Baseline,
    /// The Flywheel machine family: all three categories, with the 512-entry
    /// register-file geometry. The Figure 11 "Register Allocation" variant is
    /// this kind too — it has the Register Update stage — but its disabled
    /// Execution Cache enters the power model as `ec_bytes: 0` (see
    /// `FlywheelConfig::power_config` in `flywheel-core`), so the EC's share of
    /// the [`UnitCategory::FlywheelExtra`] leakage is zero by geometry.
    Flywheel,
}

impl MachineKind {
    /// Both kinds, in a stable order.
    pub fn all() -> &'static [MachineKind] {
        &[MachineKind::Baseline, MachineKind::Flywheel]
    }

    /// Whether this machine physically instantiates units of `category` (and
    /// therefore pays their leakage whether or not they switch).
    pub fn instantiates(&self, category: UnitCategory) -> bool {
        match self {
            MachineKind::Baseline => category != UnitCategory::FlywheelExtra,
            MachineKind::Flywheel => true,
        }
    }

    /// Whether the machine uses the large Flywheel register file: its geometry
    /// scales both the dynamic read/write energy
    /// ([`crate::PowerModel::flywheel_regfile_factor`]) and the register-file
    /// leakage ([`crate::PowerModel::leakage_w_for`]).
    pub fn flywheel_regfile(&self) -> bool {
        matches!(self, MachineKind::Flywheel)
    }
}

impl fmt::Display for MachineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineKind::Baseline => f.write_str("baseline"),
            MachineKind::Flywheel => f.write_str("flywheel"),
        }
    }
}

impl Unit {
    /// All units, in a stable order.
    pub fn all() -> &'static [Unit] {
        use Unit::*;
        &[
            ICache,
            BranchPredictor,
            Decode,
            Rename,
            IssueWindowInsert,
            IssueWindowWakeup,
            IssueWindowSelect,
            Rob,
            Lsq,
            RegFileRead,
            RegFileWrite,
            FuIntAlu,
            FuIntMulDiv,
            FuFpAdd,
            FuFpMulDiv,
            DCache,
            L2,
            ResultBus,
            Retire,
            EcTagLookup,
            EcDataRead,
            EcDataWrite,
            RegisterUpdate,
        ]
    }

    /// Dense index of this unit, usable to address an array of `Unit::all().len()`
    /// entries.
    pub fn index(&self) -> usize {
        Unit::all()
            .iter()
            .position(|u| u == self)
            .expect("unit must be listed in Unit::all()")
    }

    /// The clock-domain category of this unit.
    pub fn category(&self) -> UnitCategory {
        use Unit::*;
        match self {
            ICache | BranchPredictor | Decode | Rename | IssueWindowInsert | IssueWindowWakeup
            | IssueWindowSelect => UnitCategory::FrontEnd,
            Rob | Lsq | RegFileRead | RegFileWrite | FuIntAlu | FuIntMulDiv | FuFpAdd
            | FuFpMulDiv | DCache | L2 | ResultBus | Retire => UnitCategory::BackEnd,
            EcTagLookup | EcDataRead | EcDataWrite | RegisterUpdate => UnitCategory::FlywheelExtra,
        }
    }

    /// Whether the unit stops consuming dynamic energy while the processor runs in
    /// trace-execution mode (front-end clock gated).
    pub fn gated_in_trace_execution(&self) -> bool {
        self.category() == UnitCategory::FrontEnd
    }
}

impl fmt::Display for Unit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_unique() {
        let mut seen = vec![false; Unit::all().len()];
        for u in Unit::all() {
            assert!(!seen[u.index()], "{u} has a duplicate index");
            seen[u.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn issue_window_is_front_end() {
        // The whole point of the Flywheel design: scheduling logic is gated off the
        // fast path.
        assert_eq!(Unit::IssueWindowWakeup.category(), UnitCategory::FrontEnd);
        assert!(Unit::IssueWindowWakeup.gated_in_trace_execution());
        assert!(!Unit::DCache.gated_in_trace_execution());
        assert!(!Unit::EcDataRead.gated_in_trace_execution());
    }

    #[test]
    fn every_category_is_populated() {
        for cat in [
            UnitCategory::FrontEnd,
            UnitCategory::BackEnd,
            UnitCategory::FlywheelExtra,
        ] {
            assert!(Unit::all().iter().any(|u| u.category() == cat));
        }
    }

    #[test]
    fn machine_kinds_instantiate_the_right_categories() {
        assert!(MachineKind::Baseline.instantiates(UnitCategory::FrontEnd));
        assert!(MachineKind::Baseline.instantiates(UnitCategory::BackEnd));
        assert!(!MachineKind::Baseline.instantiates(UnitCategory::FlywheelExtra));
        for cat in [
            UnitCategory::FrontEnd,
            UnitCategory::BackEnd,
            UnitCategory::FlywheelExtra,
        ] {
            assert!(MachineKind::Flywheel.instantiates(cat));
        }
        assert!(MachineKind::Flywheel.flywheel_regfile());
        assert!(!MachineKind::Baseline.flywheel_regfile());
    }
}
