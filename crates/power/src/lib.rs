//! # flywheel-power
//!
//! Wattch-style dynamic-energy, clock-grid and leakage models for the Flywheel
//! reproduction.
//!
//! The paper measures power with a modified Wattch [Brooks et al.] augmented with a
//! Butts-Sohi static (leakage) model and an Alpha-21264-style clock-grid capacitance
//! model. This crate provides the same three ingredients:
//!
//! * [`PowerModel`] — per-access dynamic energy for each pipeline [`Unit`], per-edge
//!   clock-grid energy for the front-end and back-end clock domains (with clock
//!   gating), and per-unit leakage power, all parameterized by the structural
//!   configuration ([`PowerConfig`], defaults from the paper's Table 2) and the
//!   process technology ([`flywheel_timing::TechNode`], parameters from Table 2).
//! * [`EnergyAccumulator`] — activity counters filled in by the simulators, each
//!   bound to a [`MachineKind`] so the account knows which unit categories the
//!   machine physically instantiates.
//! * [`EnergyBreakdown`] — the resulting energy/power report used by the Figure
//!   13/14/15 experiments, with leakage *attributed* per [`UnitCategory`]: a
//!   baseline run carries zero Execution-Cache/Register-Update leakage by
//!   construction, and the Flywheel run's register-file leakage follows its
//!   512-entry geometry.
//!
//! Absolute joule values are calibrated to be plausible for a c. 2005 aggressive
//! out-of-order core, but the paper's results are all *normalized* to the baseline
//! machine, so only the relative weights of the units matter; see DESIGN.md for the
//! substitution rationale.
//!
//! ```
//! use flywheel_power::{EnergyAccumulator, MachineKind, PowerConfig, PowerModel, Unit};
//! use flywheel_timing::TechNode;
//!
//! let model = PowerModel::new(PowerConfig::paper(TechNode::N130));
//! let mut acc = EnergyAccumulator::new(MachineKind::Baseline);
//! acc.record(Unit::ICache, 1_000);
//! acc.record(Unit::IssueWindowWakeup, 1_000);
//! acc.tick_backend();
//! let report = acc.finish(&model, 1_000_000);
//! assert!(report.total_pj() > 0.0);
//! assert_eq!(report.leakage_flywheel_pj, 0.0); // no EC on the baseline die
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod account;
mod model;
mod units;

pub use account::{EnergyAccumulator, EnergyBreakdown};
pub use model::{PowerConfig, PowerModel};
pub use units::{MachineKind, Unit, UnitCategory};
