//! Dynamic trace generation.

use crate::{BranchBehavior, MemBehavior, SyntheticProgram};
use flywheel_isa::{BlockId, DynInst, MemAccess, Pc, Terminator};
use flywheel_rng::SimRng;

/// Per-branch dynamic state kept by the trace generator.
#[derive(Debug, Clone, Default)]
struct BranchState {
    /// Remaining taken back-edges for a loop branch (0 = resample on next visit).
    remaining_trips: u32,
    /// Position inside a pattern branch's period.
    pattern_pos: u8,
}

/// Per-memory-instruction dynamic state.
#[derive(Debug, Clone, Default)]
struct MemState {
    /// Current offset of a streaming access.
    offset: u64,
}

/// Generates a dynamic instruction trace by "executing" a [`SyntheticProgram`].
///
/// The generator walks the program's control-flow graph, resolving every conditional
/// branch with its attached [`BranchBehavior`], every call/return through an explicit
/// call stack, and every memory instruction with its attached [`MemBehavior`]. It
/// yields an unbounded stream of [`DynInst`] (the synthetic `main` loops forever), so
/// callers bound it with [`Iterator::take`] or by instruction budget in the
/// simulator.
///
/// Two generators constructed with the same program and seed produce identical
/// traces.
///
/// Per-branch and per-memory-instruction dynamic state lives in dense vectors
/// indexed by [`SyntheticProgram::word_slot`] (behaviours come from the equally
/// dense side tables built at synthesis time), so advancing the generator never
/// touches a hash map. For replaying the same trace many times, capture it once
/// into a [`crate::RecordedTrace`] instead of re-generating it.
///
/// ```
/// use flywheel_workloads::{Benchmark, TraceGenerator};
/// let program = Benchmark::Micro.synthesize(1);
/// let first_million: Vec<_> = TraceGenerator::new(&program, 1).take(10_000).collect();
/// assert_eq!(first_million.len(), 10_000);
/// ```
#[derive(Debug)]
pub struct TraceGenerator<'a> {
    program: &'a SyntheticProgram,
    rng: SimRng,
    /// Current block being executed.
    block: BlockId,
    /// Index of the next instruction within the block.
    inst_idx: usize,
    /// Return-address stack of block ids.
    call_stack: Vec<BlockId>,
    /// Dynamic branch state, one slot per static instruction.
    branch_states: Vec<BranchState>,
    /// Dynamic memory state, one slot per static instruction.
    mem_states: Vec<MemState>,
    seq: u64,
}

impl<'a> TraceGenerator<'a> {
    /// Creates a generator positioned at the program entry.
    pub fn new(program: &'a SyntheticProgram, seed: u64) -> Self {
        let slots = program.static_footprint();
        TraceGenerator {
            program,
            rng: SimRng::seed_from_u64(seed ^ 0x0ddc_0ffe_e000_0001),
            block: program.entry(),
            inst_idx: 0,
            call_stack: Vec::new(),
            branch_states: vec![BranchState::default(); slots],
            mem_states: vec![MemState::default(); slots],
            seq: 0,
        }
    }

    /// Number of instructions generated so far.
    pub fn generated(&self) -> u64 {
        self.seq
    }

    /// Current call-stack depth (number of pending returns).
    pub fn call_depth(&self) -> usize {
        self.call_stack.len()
    }

    fn resolve_branch(&mut self, pc: Pc) -> bool {
        let behavior = *self
            .program
            .branch_behavior(pc)
            .expect("conditional branch without behaviour");
        let state = &mut self.branch_states[self.program.word_slot(pc)];
        match behavior {
            BranchBehavior::LoopBack { mean_trips } => {
                if state.remaining_trips == 0 {
                    // Entering the loop: sample this entry's trip count around the
                    // mean (at least one iteration).
                    let jitter = 0.5 + self.rng.f64();
                    state.remaining_trips = (mean_trips * jitter).round().max(1.0) as u32;
                }
                state.remaining_trips -= 1;
                state.remaining_trips > 0
            }
            BranchBehavior::Biased { taken_prob } => self.rng.f64() < taken_prob,
            BranchBehavior::Pattern { pattern, period } => {
                let taken = (pattern >> state.pattern_pos) & 1 == 1;
                state.pattern_pos = (state.pattern_pos + 1) % period;
                taken
            }
            BranchBehavior::Random { taken_prob } => self.rng.f64() < taken_prob,
        }
    }

    fn resolve_mem(&mut self, pc: Pc) -> MemAccess {
        let behavior = *self
            .program
            .mem_behavior(pc)
            .expect("memory instruction without behaviour");
        let state = &mut self.mem_states[self.program.word_slot(pc)];
        let addr = match behavior {
            MemBehavior::Stream {
                base,
                stride,
                region_bytes,
            } => {
                let addr = base + state.offset;
                // `.max(1)` guards a zero-sized region (a hand-built profile could
                // produce one); real profiles clamp regions to >= 4 KiB, where this
                // is the identity. HotSet/Scattered guard with `bytes.max(8)` below.
                state.offset = (state.offset + stride) % region_bytes.max(1);
                addr
            }
            MemBehavior::HotSet { base, bytes } | MemBehavior::Scattered { base, bytes } => {
                base + (self.rng.range_u64(0, bytes.max(8)) & !7)
            }
        };
        MemAccess::new(addr, 8)
    }
}

impl Iterator for TraceGenerator<'_> {
    type Item = DynInst;

    fn next(&mut self) -> Option<DynInst> {
        let program = self.program.program();
        let block = program.block(self.block);
        let inst = block.insts()[self.inst_idx];
        let pc = block.start_pc() + self.inst_idx as u64;
        let is_last = self.inst_idx + 1 == block.len();

        let mut taken = false;
        let mut mem = None;
        let next_pc;

        if inst.op().is_mem() {
            mem = Some(self.resolve_mem(pc));
        }

        if is_last {
            // Resolve the terminator to find the next block.
            let (next_block, was_taken) = match block.terminator() {
                Terminator::FallThrough(t) => (*t, false),
                Terminator::Jump(t) => (*t, true),
                Terminator::CondBranch {
                    taken: t,
                    not_taken: nt,
                } => {
                    if self.resolve_branch(pc) {
                        (*t, true)
                    } else {
                        (*nt, false)
                    }
                }
                Terminator::Call { callee, return_to } => {
                    self.call_stack.push(*return_to);
                    (*callee, true)
                }
                Terminator::Return => {
                    let target = self.call_stack.pop().unwrap_or(self.program.entry());
                    (target, true)
                }
                Terminator::Indirect(targets) => {
                    let pick = self.rng.range_usize(0, targets.len());
                    (targets[pick], true)
                }
            };
            taken = was_taken;
            next_pc = program.block(next_block).start_pc();
            self.block = next_block;
            self.inst_idx = 0;
        } else {
            next_pc = pc.next();
            self.inst_idx += 1;
        }

        let dyn_inst = DynInst {
            seq: self.seq,
            pc,
            stat: inst,
            taken,
            next_pc,
            mem,
        };
        self.seq += 1;
        Some(dyn_inst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Benchmark;
    use flywheel_isa::OpClass;

    #[test]
    fn trace_is_deterministic() {
        let sp = Benchmark::Micro.synthesize(9);
        let a: Vec<_> = TraceGenerator::new(&sp, 9).take(5_000).collect();
        let b: Vec<_> = TraceGenerator::new(&sp, 9).take(5_000).collect();
        assert_eq!(a, b);
        let c: Vec<_> = TraceGenerator::new(&sp, 10).take(5_000).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn sequence_numbers_are_consecutive() {
        let sp = Benchmark::Micro.synthesize(2);
        for (i, d) in TraceGenerator::new(&sp, 2).take(1000).enumerate() {
            assert_eq!(d.seq, i as u64);
        }
    }

    #[test]
    fn control_flow_is_consistent() {
        // Every instruction's next_pc must be either the sequential successor or the
        // start of a real block, and non-control instructions never "jump".
        let sp = Benchmark::Gzip.synthesize(17);
        let program = sp.program();
        let mut prev: Option<DynInst> = None;
        for d in TraceGenerator::new(&sp, 17).take(20_000) {
            if let Some(p) = &prev {
                assert_eq!(p.next_pc, d.pc, "trace must be contiguous");
            }
            if !d.stat.op().is_ctrl() {
                assert_eq!(d.next_pc, d.pc.next(), "non-control op must fall through");
            }
            assert!(
                program.inst_at(d.pc).is_some(),
                "pc must map to the program"
            );
            prev = Some(d);
        }
    }

    #[test]
    fn memory_instructions_have_addresses() {
        let sp = Benchmark::Bzip2.synthesize(3);
        let mut mem_seen = 0;
        for d in TraceGenerator::new(&sp, 3).take(20_000) {
            if d.stat.op().is_mem() {
                assert!(d.mem.is_some());
                mem_seen += 1;
            } else {
                assert!(d.mem.is_none());
            }
        }
        assert!(
            mem_seen > 2_000,
            "memory ops should be frequent, saw {mem_seen}"
        );
    }

    #[test]
    fn calls_and_returns_balance() {
        let sp = Benchmark::Vortex.synthesize(8);
        let mut gen = TraceGenerator::new(&sp, 8);
        let mut calls = 0u64;
        let mut rets = 0u64;
        for _ in 0..50_000 {
            let d = gen.next().unwrap();
            match d.stat.ctrl() {
                Some(flywheel_isa::CtrlKind::Call) => calls += 1,
                Some(flywheel_isa::CtrlKind::Return) => rets += 1,
                _ => {}
            }
        }
        assert!(calls > 0, "vortex trace should contain calls");
        // Returns can never outnumber calls (the call stack never underflows in a
        // DAG-shaped call graph reached from main).
        assert!(rets <= calls);
        assert_eq!(gen.call_depth() as u64, calls - rets);
    }

    #[test]
    fn loops_repeat_their_bodies() {
        // A loop-heavy workload must revisit the same PCs many times: that locality
        // is what the Execution Cache exploits.
        let sp = Benchmark::Turb3d.synthesize(4);
        let trace: Vec<_> = TraceGenerator::new(&sp, 4).take(30_000).collect();
        let distinct: std::collections::HashSet<_> = trace.iter().map(|d| d.pc).collect();
        assert!(
            distinct.len() * 4 < trace.len(),
            "expected heavy PC reuse, got {} distinct of {}",
            distinct.len(),
            trace.len()
        );
    }

    #[test]
    fn taken_flag_matches_next_pc() {
        let sp = Benchmark::Parser.synthesize(6);
        for d in TraceGenerator::new(&sp, 6).take(20_000) {
            if d.stat.op() == OpClass::Ctrl && !d.taken {
                assert_eq!(d.next_pc, d.pc.next());
            }
            if d.taken {
                assert!(d.stat.op().is_ctrl());
            }
        }
    }
}
