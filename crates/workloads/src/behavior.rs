//! Dynamic behaviour attached to static branches and memory instructions.

/// The dynamic behaviour of one static conditional branch.
///
/// The behaviour is assigned at synthesis time (driven by
/// [`crate::BranchMixProfile`]) and interpreted by the [`crate::TraceGenerator`],
/// which keeps the per-branch state (loop counters, pattern positions).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BranchBehavior {
    /// A loop back-edge: taken for `trips - 1` consecutive executions, then not
    /// taken once, with `trips` resampled around `mean_trips` at every loop entry.
    LoopBack {
        /// Mean number of loop iterations per entry.
        mean_trips: f64,
    },
    /// A strongly biased branch taken with probability `taken_prob`.
    Biased {
        /// Probability that the branch is taken.
        taken_prob: f64,
    },
    /// A branch following a fixed repeating pattern of `period` outcomes encoded in
    /// the low bits of `pattern` (bit i = outcome of the i-th execution in the
    /// period). Well captured by global-history predictors.
    Pattern {
        /// Outcome bits, least-significant bit first.
        pattern: u32,
        /// Pattern period in `1..=32`.
        period: u8,
    },
    /// A data-dependent branch with no exploitable structure.
    Random {
        /// Probability that the branch is taken.
        taken_prob: f64,
    },
}

impl BranchBehavior {
    /// Whether a history-based predictor can in principle predict this branch well.
    pub fn is_predictable(&self) -> bool {
        !matches!(self, BranchBehavior::Random { .. })
    }
}

/// The dynamic address behaviour of one static load or store.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MemBehavior {
    /// Sequential streaming through a region of `region_bytes` bytes with a fixed
    /// stride; wraps around at the end of the region.
    Stream {
        /// First byte of the streamed region.
        base: u64,
        /// Stride in bytes between consecutive accesses.
        stride: u64,
        /// Size of the streamed region in bytes.
        region_bytes: u64,
    },
    /// Uniform random accesses inside a hot working set of `bytes` bytes.
    HotSet {
        /// First byte of the region.
        base: u64,
        /// Region size in bytes.
        bytes: u64,
    },
    /// Uniform random accesses inside a large region (mostly cache misses when the
    /// region exceeds the cache capacity).
    Scattered {
        /// First byte of the region.
        base: u64,
        /// Region size in bytes.
        bytes: u64,
    },
}

impl MemBehavior {
    /// The size in bytes of the region this behaviour touches.
    pub fn footprint(&self) -> u64 {
        match self {
            MemBehavior::Stream { region_bytes, .. } => *region_bytes,
            MemBehavior::HotSet { bytes, .. } | MemBehavior::Scattered { bytes, .. } => *bytes,
        }
    }

    /// The base address of the region.
    pub fn base(&self) -> u64 {
        match self {
            MemBehavior::Stream { base, .. }
            | MemBehavior::HotSet { base, .. }
            | MemBehavior::Scattered { base, .. } => *base,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictability_classification() {
        assert!(BranchBehavior::LoopBack { mean_trips: 10.0 }.is_predictable());
        assert!(BranchBehavior::Biased { taken_prob: 0.9 }.is_predictable());
        assert!(BranchBehavior::Pattern {
            pattern: 0b0101,
            period: 4
        }
        .is_predictable());
        assert!(!BranchBehavior::Random { taken_prob: 0.5 }.is_predictable());
    }

    #[test]
    fn footprint_and_base_are_exposed() {
        let m = MemBehavior::Stream {
            base: 0x1000,
            stride: 8,
            region_bytes: 4096,
        };
        assert_eq!(m.footprint(), 4096);
        assert_eq!(m.base(), 0x1000);
        let h = MemBehavior::HotSet {
            base: 0x2000,
            bytes: 64,
        };
        assert_eq!(h.footprint(), 64);
        assert_eq!(h.base(), 0x2000);
    }
}
