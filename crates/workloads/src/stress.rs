//! Stress workload family: profiles built to exercise machine paths the
//! SPEC-like suite barely touches.
//!
//! The paper's six-figure evaluation leans on workloads whose behaviour is
//! *representative*; the profiles here are deliberately *adversarial*. Each one
//! pushes a different corner of the two machine models:
//!
//! * [`ptr_chase`] — serialized pointer chasing over a working set far beyond
//!   L2. Nearly every load misses and depends on the previous load, so the
//!   Issue Window drains into the scheduler's hold queue and the idle
//!   fast-forward path dominates (its bounds must never fire early).
//! * [`branch_storm`] — short blocks terminated by data-dependent branches that
//!   gshare cannot learn. Exercises mispredict recovery: `InflightTable` tail
//!   squashes, `IssueScheduler::squash_after`, redirect synchronization between
//!   the clock domains, and Execution Cache divergence handling.
//! * [`code_bloat`] — a static footprint far beyond the I-cache and the
//!   Execution Cache, with call-dominated control flow. Keeps the front end on
//!   the miss path and forces continuous EC eviction/re-creation (the paper's
//!   `vortex` pushed to the extreme).
//! * [`store_storm`] — every third instruction a memory access, stores
//!   rivalling loads, all landing in a tiny hot set. Exercises the LSQ's
//!   `StoreIndex`: loads blocked by older unresolved stores and store-to-load
//!   forwarding become the common case instead of the exception.
//!
//! Two further profiles were not written by hand but *discovered*: the
//! adversarial workload search (`flywheel-bench`'s `scenarios search`) mutates
//! the four hand-built profiles above toward the extremes of the
//! Flywheel-vs-baseline gap, and the frontier heads are frozen here as
//! [`ec_worst`] (the smallest gap found — the Execution Cache's worst case)
//! and [`fly_best`] (the largest gap found). Each carries its provenance in
//! its doc comment and is a first-class [`crate::Benchmark`] with golden
//! coverage, so a regression that moves either extreme is caught.
//!
//! The profiles reuse the calibrated-profile machinery (`BenchmarkProfile`,
//! synthesis, trace generation, recording) unchanged, so every stress workload
//! works everywhere a SPEC-like one does: golden digests, scenario grids,
//! benches and both simulators.

use crate::{BenchmarkProfile, BranchMixProfile, InstMixProfile, LoopProfile, MemoryProfile};

/// Pointer-chasing, memory-bound profile: dependent loads over a 64 MiB
/// working set. IPC is bounded by main-memory latency, not by any pipeline
/// width.
pub fn ptr_chase() -> BenchmarkProfile {
    BenchmarkProfile {
        name: "ptrchase".to_owned(),
        mix: InstMixProfile {
            load: 0.40,
            store: 0.04,
            int_muldiv: 0.01,
            fp_add: 0.0,
            fp_muldiv: 0.0,
        },
        branches: BranchMixProfile {
            biased: 0.85,
            patterned: 0.10,
            random: 0.05,
            bias: 0.95,
            random_taken: 0.5,
        },
        memory: MemoryProfile {
            streaming: 0.05,
            hot_set: 0.10,
            scattered: 0.85,
            hot_set_bytes: 16 * 1024,
            scattered_bytes: 64 * 1024 * 1024,
            stream_stride: 8,
        },
        loops: LoopProfile {
            mean_trip_count: 48.0,
            max_nesting: 2,
            nest_probability: 0.3,
        },
        functions: 8,
        avg_block_len: 8,
        // Each load feeds the next: almost no exploitable ILP.
        dependency_distance: 1.3,
        dest_register_span: 10,
        call_probability: 0.02,
    }
}

/// Misprediction-heavy profile: 70% of conditional branches are effectively
/// random, and blocks are short, so the front end spends most of its time
/// refilling after squashes.
pub fn branch_storm() -> BenchmarkProfile {
    BenchmarkProfile {
        name: "brstorm".to_owned(),
        mix: InstMixProfile {
            load: 0.20,
            store: 0.08,
            int_muldiv: 0.01,
            fp_add: 0.0,
            fp_muldiv: 0.0,
        },
        branches: BranchMixProfile {
            biased: 0.15,
            patterned: 0.15,
            random: 0.70,
            bias: 0.80,
            random_taken: 0.5,
        },
        memory: MemoryProfile {
            streaming: 0.30,
            hot_set: 0.60,
            scattered: 0.10,
            hot_set_bytes: 24 * 1024,
            scattered_bytes: 4 * 1024 * 1024,
            stream_stride: 4,
        },
        loops: LoopProfile {
            mean_trip_count: 5.0,
            max_nesting: 2,
            nest_probability: 0.15,
        },
        functions: 40,
        // Two-instruction blocks: maximal branch density.
        avg_block_len: 2,
        dependency_distance: 2.5,
        dest_register_span: 14,
        call_probability: 0.15,
    }
}

/// I-cache- and Execution-Cache-thrashing profile: 400 functions of rarely
/// repeated code driven by calls, so neither the 64 KiB I-cache nor the
/// 128 KiB EC can hold the working set.
pub fn code_bloat() -> BenchmarkProfile {
    BenchmarkProfile {
        name: "codebloat".to_owned(),
        mix: InstMixProfile {
            load: 0.24,
            store: 0.12,
            int_muldiv: 0.01,
            fp_add: 0.0,
            fp_muldiv: 0.0,
        },
        branches: BranchMixProfile {
            biased: 0.60,
            patterned: 0.20,
            random: 0.20,
            bias: 0.90,
            random_taken: 0.5,
        },
        memory: MemoryProfile {
            streaming: 0.20,
            hot_set: 0.55,
            scattered: 0.25,
            hot_set_bytes: 48 * 1024,
            scattered_bytes: 12 * 1024 * 1024,
            stream_stride: 8,
        },
        loops: LoopProfile {
            mean_trip_count: 3.0,
            max_nesting: 2,
            nest_probability: 0.1,
        },
        functions: 400,
        avg_block_len: 5,
        dependency_distance: 3.0,
        dest_register_span: 22,
        call_probability: 0.40,
    }
}

/// Store-forward-heavy profile: stores nearly as frequent as loads, all
/// hammering a 2 KiB hot set, so "load blocked by older unresolved store" and
/// store-to-load forwarding are the common case in the LSQ.
pub fn store_storm() -> BenchmarkProfile {
    BenchmarkProfile {
        name: "ststorm".to_owned(),
        mix: InstMixProfile {
            load: 0.28,
            store: 0.30,
            int_muldiv: 0.01,
            fp_add: 0.0,
            fp_muldiv: 0.0,
        },
        branches: BranchMixProfile {
            biased: 0.80,
            patterned: 0.15,
            random: 0.05,
            bias: 0.94,
            random_taken: 0.5,
        },
        memory: MemoryProfile {
            streaming: 0.10,
            hot_set: 0.85,
            scattered: 0.05,
            hot_set_bytes: 2 * 1024,
            scattered_bytes: 4 * 1024 * 1024,
            stream_stride: 4,
        },
        loops: LoopProfile {
            mean_trip_count: 32.0,
            max_nesting: 2,
            nest_probability: 0.3,
        },
        functions: 10,
        avg_block_len: 8,
        dependency_distance: 1.8,
        dest_register_span: 10,
        call_probability: 0.05,
    }
}

/// Promoted adversarial profile: the minimize-gap frontier head of the
/// deterministic workload search (`scenarios search --seed 2005 --insts
/// 250000`), frozen with lightly rounded knobs. Descended from [`ptr_chase`]:
/// the search pushed the scattered fraction to 0.85 over a 64 MiB set, thinned
/// stores to 2% and shortened the dependency distance, leaving a stream of
/// serialized far misses where the Execution Cache's issue-width advantage
/// buys nothing — the Flywheel-vs-baseline speedup collapses to ~0.15x at the
/// paper's 0.13 µm iso-clock configuration, the worst point the search found.
pub fn ec_worst() -> BenchmarkProfile {
    BenchmarkProfile {
        name: "ecworst".to_owned(),
        mix: InstMixProfile {
            load: 0.40,
            store: 0.02,
            int_muldiv: 0.01,
            fp_add: 0.0,
            fp_muldiv: 0.0,
        },
        branches: BranchMixProfile {
            biased: 0.75,
            patterned: 0.10,
            random: 0.15,
            bias: 0.95,
            random_taken: 0.5,
        },
        memory: MemoryProfile {
            streaming: 0.05,
            hot_set: 0.10,
            scattered: 0.85,
            hot_set_bytes: 16 * 1024,
            scattered_bytes: 64 * 1024 * 1024,
            stream_stride: 8,
        },
        loops: LoopProfile {
            mean_trip_count: 48.0,
            max_nesting: 2,
            nest_probability: 0.3,
        },
        functions: 4,
        avg_block_len: 8,
        dependency_distance: 1.3,
        dest_register_span: 10,
        call_probability: 0.02,
    }
}

/// Promoted adversarial profile: the maximize-gap frontier head of the same
/// search run, frozen with lightly rounded knobs. Descended from
/// [`store_storm`]: the search removed the patterned branches, eased loads
/// slightly and kept everything inside a 2 KiB hot set behind a tiny static
/// footprint, so the Execution Cache holds the entire working set and the
/// wide back end streams store-forwarded traffic — the largest
/// Flywheel-vs-baseline gap the search found (~1.04x at iso-clock, where most
/// workloads lose throughput to the narrow EC-miss path).
pub fn fly_best() -> BenchmarkProfile {
    BenchmarkProfile {
        name: "flybest".to_owned(),
        mix: InstMixProfile {
            load: 0.26,
            store: 0.30,
            int_muldiv: 0.01,
            fp_add: 0.0,
            fp_muldiv: 0.0,
        },
        branches: BranchMixProfile {
            biased: 0.80,
            patterned: 0.0,
            random: 0.20,
            bias: 0.94,
            random_taken: 0.5,
        },
        memory: MemoryProfile {
            streaming: 0.02,
            hot_set: 0.85,
            scattered: 0.13,
            hot_set_bytes: 2 * 1024,
            scattered_bytes: 4 * 1024 * 1024,
            stream_stride: 4,
        },
        loops: LoopProfile {
            mean_trip_count: 32.0,
            max_nesting: 2,
            nest_probability: 0.3,
        },
        functions: 10,
        avg_block_len: 8,
        dependency_distance: 1.8,
        dest_register_span: 10,
        call_probability: 0.05,
    }
}

#[cfg(test)]
mod tests {
    use crate::{Benchmark, TraceGenerator, TraceStats};

    #[test]
    fn stress_profiles_validate() {
        for b in Benchmark::stress_suite() {
            b.profile().validate().unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn stress_workloads_synthesize_and_generate() {
        for b in Benchmark::stress_suite() {
            let program = b.synthesize(11);
            let trace: Vec<_> = TraceGenerator::new(&program, 11).take(4_000).collect();
            assert_eq!(trace.len(), 4_000, "{b} trace too short");
            let again: Vec<_> = TraceGenerator::new(&program, 11).take(4_000).collect();
            assert_eq!(trace, again, "{b} must be deterministic");
        }
    }

    #[test]
    fn stress_workloads_stress_their_target_paths() {
        // Each profile must actually skew the dynamic stream towards the path
        // it claims to exercise, relative to the tame Micro workload.
        let stats_of = |b: Benchmark| {
            let program = b.synthesize(13);
            TraceStats::collect(TraceGenerator::new(&program, 13).take(30_000))
        };
        let micro = stats_of(Benchmark::Micro);
        let chase = stats_of(Benchmark::PtrChase);
        assert!(
            chase.loads as f64 / chase.total as f64 > 0.3,
            "ptrchase should be load-dominated, got {}/{}",
            chase.loads,
            chase.total
        );
        assert!(
            chase.data_working_set_bytes() > 4 * micro.data_working_set_bytes(),
            "ptrchase working set {} should dwarf micro {}",
            chase.data_working_set_bytes(),
            micro.data_working_set_bytes()
        );
        let storm = stats_of(Benchmark::BranchStorm);
        assert!(
            storm.ctrl_fraction() > micro.ctrl_fraction() * 1.3 && storm.ctrl_fraction() > 0.12,
            "brstorm branch density {} should clearly exceed micro {}",
            storm.ctrl_fraction(),
            micro.ctrl_fraction()
        );
        // 70% of its static conditional branches are random: the dynamic taken
        // rate must sit near a coin flip, unlike micro's strongly biased code.
        assert!(
            (storm.taken_rate() - 0.5).abs() < (micro.taken_rate() - 0.5).abs(),
            "brstorm taken rate {} should be closer to 0.5 than micro {}",
            storm.taken_rate(),
            micro.taken_rate()
        );
        let stores = stats_of(Benchmark::StoreStorm);
        assert!(
            stores.stores as f64 / stores.total as f64 > 0.2,
            "ststorm should be store-heavy, got {}/{}",
            stores.stores,
            stores.total
        );
        let bloat = Benchmark::CodeBloat.synthesize(13);
        let vortex = Benchmark::Vortex.synthesize(13);
        assert!(
            bloat.static_footprint() > vortex.static_footprint(),
            "codebloat footprint {} should exceed vortex {}",
            bloat.static_footprint(),
            vortex.static_footprint()
        );
    }
}
