//! The paper's benchmark set as calibrated profiles.

use crate::{
    BenchmarkProfile, BranchMixProfile, InstMixProfile, LoopProfile, MemoryProfile,
    ProgramSynthesizer, SyntheticProgram,
};
use std::fmt;

/// The SPEC95/SPEC2000 benchmarks evaluated in the paper, plus a tiny `Micro`
/// workload used by unit tests.
///
/// Calling [`Benchmark::profile`] returns the calibrated statistical description;
/// [`Benchmark::synthesize`] generates the corresponding synthetic program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// SPEC95 `ijpeg` — integer image compression, loop-dominated, very predictable.
    Ijpeg,
    /// SPEC2000 `gcc` — compiler; huge static footprint, irregular control flow.
    Gcc,
    /// SPEC2000 `gzip` — LZ77 compression; tight loops, strong register reuse.
    Gzip,
    /// SPEC2000 `vpr` — FPGA place & route; pointer-heavy, register-pressure bound.
    Vpr,
    /// SPEC2000 `mesa` — software 3-D rendering (FP), loop-dominated.
    Mesa,
    /// SPEC2000 `equake` — FP earthquake simulation; sparse memory, long FP chains.
    Equake,
    /// SPEC2000 `parser` — natural-language parser; branchy, register-pressure bound.
    Parser,
    /// SPEC2000 `vortex` — object database; call-heavy with a large instruction
    /// footprint (lowest Execution-Cache residency in the paper).
    Vortex,
    /// SPEC2000 `bzip2` — block-sorting compression; predictable loops, hot data.
    Bzip2,
    /// SPEC95 `turb3d` — FP turbulence simulation; deep loop nests, high ILP.
    Turb3d,
    /// A tiny deterministic workload for unit tests (not part of the paper).
    Micro,
    /// Stress: pointer-chasing memory-bound workload (dependent loads over a
    /// 64 MiB working set; see [`crate::stress::ptr_chase`]).
    PtrChase,
    /// Stress: misprediction-heavy workload (short blocks, 70% random branches;
    /// see [`crate::stress::branch_storm`]).
    BranchStorm,
    /// Stress: I-cache/Execution-Cache-thrashing large-footprint workload (see
    /// [`crate::stress::code_bloat`]).
    CodeBloat,
    /// Stress: store-forward-heavy workload hammering a tiny hot set (see
    /// [`crate::stress::store_storm`]).
    StoreStorm,
    /// Promoted adversarial extreme: the minimize-gap frontier head of the
    /// deterministic workload search, frozen as [`crate::stress::ec_worst`] —
    /// the worst Flywheel-vs-baseline point the search found.
    EcWorst,
    /// Promoted adversarial extreme: the maximize-gap frontier head of the
    /// same search, frozen as [`crate::stress::fly_best`] — the largest
    /// Flywheel-vs-baseline gap the search found.
    FlyBest,
}

impl Benchmark {
    /// The ten benchmarks evaluated in the paper, in the order the figures use.
    pub fn paper_suite() -> &'static [Benchmark] {
        &[
            Benchmark::Ijpeg,
            Benchmark::Gcc,
            Benchmark::Gzip,
            Benchmark::Vpr,
            Benchmark::Mesa,
            Benchmark::Equake,
            Benchmark::Parser,
            Benchmark::Vortex,
            Benchmark::Bzip2,
            Benchmark::Turb3d,
        ]
    }

    /// The four stress workloads (none are part of the paper's evaluation):
    /// adversarial profiles exercising machine paths the SPEC-like suite barely
    /// touches (see [`crate::stress`]).
    pub fn stress_suite() -> &'static [Benchmark] {
        &[
            Benchmark::PtrChase,
            Benchmark::BranchStorm,
            Benchmark::CodeBloat,
            Benchmark::StoreStorm,
        ]
    }

    /// The two adversarial benchmarks promoted from the deterministic
    /// workload search frontier (see [`crate::stress::ec_worst`] and
    /// [`crate::stress::fly_best`]): discovered extremes of the
    /// Flywheel-vs-baseline gap, frozen as first-class workloads.
    pub fn adversarial_suite() -> &'static [Benchmark] {
        &[Benchmark::EcWorst, Benchmark::FlyBest]
    }

    /// Every benchmark the repo knows: the paper suite, the stress suite, the
    /// promoted adversarial extremes and the `micro` test workload.
    pub fn all() -> Vec<Benchmark> {
        let mut v = Benchmark::paper_suite().to_vec();
        v.push(Benchmark::Micro);
        v.extend_from_slice(Benchmark::stress_suite());
        v.extend_from_slice(Benchmark::adversarial_suite());
        v
    }

    /// Parses a benchmark from its [`Benchmark::name`] (as accepted by the
    /// `scenarios` CLI).
    pub fn from_name(name: &str) -> Option<Benchmark> {
        Benchmark::all().into_iter().find(|b| b.name() == name)
    }

    /// The benchmark's name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Benchmark::Ijpeg => "ijpeg",
            Benchmark::Gcc => "gcc",
            Benchmark::Gzip => "gzip",
            Benchmark::Vpr => "vpr",
            Benchmark::Mesa => "mesa",
            Benchmark::Equake => "equake",
            Benchmark::Parser => "parser",
            Benchmark::Vortex => "vortex",
            Benchmark::Bzip2 => "bzip2",
            Benchmark::Turb3d => "turb3d",
            Benchmark::Micro => "micro",
            Benchmark::PtrChase => "ptrchase",
            Benchmark::BranchStorm => "brstorm",
            Benchmark::CodeBloat => "codebloat",
            Benchmark::StoreStorm => "ststorm",
            Benchmark::EcWorst => "ecworst",
            Benchmark::FlyBest => "flybest",
        }
    }

    /// Whether the benchmark is floating-point dominated.
    pub fn is_fp(&self) -> bool {
        matches!(
            self,
            Benchmark::Mesa | Benchmark::Equake | Benchmark::Turb3d
        )
    }

    /// The calibrated statistical profile for this benchmark.
    ///
    /// Calibration targets (mispredict rates, miss rates, ILP, code footprint) follow
    /// the commonly published characterization of each benchmark; see DESIGN.md for
    /// the substitution rationale.
    pub fn profile(&self) -> BenchmarkProfile {
        match self {
            Benchmark::Ijpeg => BenchmarkProfile {
                name: "ijpeg".to_owned(),
                mix: InstMixProfile {
                    load: 0.22,
                    store: 0.10,
                    int_muldiv: 0.06,
                    fp_add: 0.0,
                    fp_muldiv: 0.0,
                },
                branches: BranchMixProfile {
                    biased: 0.82,
                    patterned: 0.12,
                    random: 0.06,
                    bias: 0.94,
                    random_taken: 0.5,
                },
                memory: MemoryProfile {
                    streaming: 0.55,
                    hot_set: 0.42,
                    scattered: 0.03,
                    hot_set_bytes: 24 * 1024,
                    scattered_bytes: 4 * 1024 * 1024,
                    stream_stride: 4,
                },
                loops: LoopProfile {
                    mean_trip_count: 64.0,
                    max_nesting: 3,
                    nest_probability: 0.45,
                },
                functions: 20,
                avg_block_len: 9,
                dependency_distance: 4.5,
                dest_register_span: 20,
                call_probability: 0.08,
            },
            Benchmark::Gcc => BenchmarkProfile {
                name: "gcc".to_owned(),
                mix: InstMixProfile {
                    load: 0.26,
                    store: 0.14,
                    int_muldiv: 0.01,
                    fp_add: 0.0,
                    fp_muldiv: 0.0,
                },
                branches: BranchMixProfile::irregular(),
                memory: MemoryProfile {
                    streaming: 0.20,
                    hot_set: 0.55,
                    scattered: 0.25,
                    hot_set_bytes: 48 * 1024,
                    scattered_bytes: 12 * 1024 * 1024,
                    stream_stride: 8,
                },
                loops: LoopProfile {
                    mean_trip_count: 7.0,
                    max_nesting: 2,
                    nest_probability: 0.2,
                },
                functions: 120,
                avg_block_len: 5,
                dependency_distance: 3.2,
                dest_register_span: 22,
                call_probability: 0.22,
            },
            Benchmark::Gzip => BenchmarkProfile {
                name: "gzip".to_owned(),
                mix: InstMixProfile {
                    load: 0.25,
                    store: 0.09,
                    int_muldiv: 0.01,
                    fp_add: 0.0,
                    fp_muldiv: 0.0,
                },
                branches: BranchMixProfile {
                    biased: 0.62,
                    patterned: 0.22,
                    random: 0.16,
                    bias: 0.90,
                    random_taken: 0.5,
                },
                memory: MemoryProfile {
                    streaming: 0.45,
                    hot_set: 0.45,
                    scattered: 0.10,
                    hot_set_bytes: 56 * 1024,
                    scattered_bytes: 6 * 1024 * 1024,
                    stream_stride: 4,
                },
                loops: LoopProfile {
                    mean_trip_count: 28.0,
                    max_nesting: 2,
                    nest_probability: 0.35,
                },
                functions: 16,
                avg_block_len: 6,
                // Tight dependence chains and very few destination registers: this is
                // what makes gzip lose >10% with the pool-based register allocation
                // in Figure 11.
                dependency_distance: 2.2,
                dest_register_span: 12,
                call_probability: 0.06,
            },
            Benchmark::Vpr => BenchmarkProfile {
                name: "vpr".to_owned(),
                mix: InstMixProfile {
                    load: 0.28,
                    store: 0.11,
                    int_muldiv: 0.02,
                    fp_add: 0.04,
                    fp_muldiv: 0.02,
                },
                branches: BranchMixProfile {
                    biased: 0.58,
                    patterned: 0.20,
                    random: 0.22,
                    bias: 0.88,
                    random_taken: 0.48,
                },
                memory: MemoryProfile {
                    streaming: 0.25,
                    hot_set: 0.50,
                    scattered: 0.25,
                    hot_set_bytes: 40 * 1024,
                    scattered_bytes: 10 * 1024 * 1024,
                    stream_stride: 8,
                },
                loops: LoopProfile {
                    mean_trip_count: 14.0,
                    max_nesting: 2,
                    nest_probability: 0.3,
                },
                functions: 36,
                avg_block_len: 6,
                dependency_distance: 2.5,
                dest_register_span: 12,
                call_probability: 0.12,
            },
            Benchmark::Mesa => BenchmarkProfile {
                name: "mesa".to_owned(),
                mix: InstMixProfile {
                    load: 0.26,
                    store: 0.12,
                    int_muldiv: 0.01,
                    fp_add: 0.14,
                    fp_muldiv: 0.11,
                },
                branches: BranchMixProfile {
                    biased: 0.80,
                    patterned: 0.14,
                    random: 0.06,
                    bias: 0.95,
                    random_taken: 0.5,
                },
                memory: MemoryProfile {
                    streaming: 0.50,
                    hot_set: 0.42,
                    scattered: 0.08,
                    hot_set_bytes: 32 * 1024,
                    scattered_bytes: 8 * 1024 * 1024,
                    stream_stride: 16,
                },
                loops: LoopProfile {
                    mean_trip_count: 40.0,
                    max_nesting: 3,
                    nest_probability: 0.4,
                },
                functions: 48,
                avg_block_len: 10,
                dependency_distance: 4.0,
                dest_register_span: 20,
                call_probability: 0.10,
            },
            Benchmark::Equake => BenchmarkProfile {
                name: "equake".to_owned(),
                mix: InstMixProfile {
                    load: 0.32,
                    store: 0.09,
                    int_muldiv: 0.01,
                    fp_add: 0.19,
                    fp_muldiv: 0.15,
                },
                branches: BranchMixProfile {
                    biased: 0.86,
                    patterned: 0.10,
                    random: 0.04,
                    bias: 0.96,
                    random_taken: 0.5,
                },
                memory: MemoryProfile {
                    streaming: 0.35,
                    hot_set: 0.30,
                    scattered: 0.35,
                    hot_set_bytes: 48 * 1024,
                    scattered_bytes: 24 * 1024 * 1024,
                    stream_stride: 8,
                },
                loops: LoopProfile {
                    mean_trip_count: 80.0,
                    max_nesting: 3,
                    nest_probability: 0.5,
                },
                functions: 14,
                avg_block_len: 11,
                dependency_distance: 3.0,
                dest_register_span: 20,
                call_probability: 0.05,
            },
            Benchmark::Parser => BenchmarkProfile {
                name: "parser".to_owned(),
                mix: InstMixProfile {
                    load: 0.27,
                    store: 0.12,
                    int_muldiv: 0.01,
                    fp_add: 0.0,
                    fp_muldiv: 0.0,
                },
                branches: BranchMixProfile {
                    biased: 0.55,
                    patterned: 0.22,
                    random: 0.23,
                    bias: 0.87,
                    random_taken: 0.47,
                },
                memory: MemoryProfile {
                    streaming: 0.18,
                    hot_set: 0.57,
                    scattered: 0.25,
                    hot_set_bytes: 40 * 1024,
                    scattered_bytes: 10 * 1024 * 1024,
                    stream_stride: 8,
                },
                loops: LoopProfile::branchy(),
                functions: 64,
                avg_block_len: 5,
                dependency_distance: 2.4,
                dest_register_span: 12,
                call_probability: 0.20,
            },
            Benchmark::Vortex => BenchmarkProfile {
                name: "vortex".to_owned(),
                mix: InstMixProfile {
                    load: 0.28,
                    store: 0.16,
                    int_muldiv: 0.01,
                    fp_add: 0.0,
                    fp_muldiv: 0.0,
                },
                branches: BranchMixProfile {
                    biased: 0.68,
                    patterned: 0.16,
                    random: 0.16,
                    bias: 0.93,
                    random_taken: 0.5,
                },
                memory: MemoryProfile {
                    streaming: 0.18,
                    hot_set: 0.52,
                    scattered: 0.30,
                    hot_set_bytes: 56 * 1024,
                    scattered_bytes: 16 * 1024 * 1024,
                    stream_stride: 8,
                },
                loops: LoopProfile {
                    mean_trip_count: 6.0,
                    max_nesting: 2,
                    nest_probability: 0.15,
                },
                // Very large static footprint and call-dominated control flow: the
                // Execution Cache holds the working set poorly, which is why vortex
                // spends ~40% of its time on the front-end path in the paper.
                functions: 160,
                avg_block_len: 6,
                dependency_distance: 3.5,
                dest_register_span: 22,
                call_probability: 0.30,
            },
            Benchmark::Bzip2 => BenchmarkProfile {
                name: "bzip2".to_owned(),
                mix: InstMixProfile {
                    load: 0.26,
                    store: 0.11,
                    int_muldiv: 0.02,
                    fp_add: 0.0,
                    fp_muldiv: 0.0,
                },
                branches: BranchMixProfile {
                    biased: 0.72,
                    patterned: 0.18,
                    random: 0.10,
                    bias: 0.92,
                    random_taken: 0.5,
                },
                memory: MemoryProfile {
                    streaming: 0.40,
                    hot_set: 0.35,
                    scattered: 0.25,
                    hot_set_bytes: 48 * 1024,
                    scattered_bytes: 12 * 1024 * 1024,
                    stream_stride: 4,
                },
                loops: LoopProfile {
                    mean_trip_count: 36.0,
                    max_nesting: 3,
                    nest_probability: 0.4,
                },
                functions: 18,
                avg_block_len: 7,
                dependency_distance: 3.0,
                dest_register_span: 18,
                call_probability: 0.07,
            },
            Benchmark::Turb3d => BenchmarkProfile {
                name: "turb3d".to_owned(),
                mix: InstMixProfile {
                    load: 0.27,
                    store: 0.11,
                    int_muldiv: 0.01,
                    fp_add: 0.20,
                    fp_muldiv: 0.16,
                },
                branches: BranchMixProfile {
                    biased: 0.90,
                    patterned: 0.07,
                    random: 0.03,
                    bias: 0.97,
                    random_taken: 0.5,
                },
                memory: MemoryProfile {
                    streaming: 0.60,
                    hot_set: 0.30,
                    scattered: 0.10,
                    hot_set_bytes: 32 * 1024,
                    scattered_bytes: 16 * 1024 * 1024,
                    stream_stride: 8,
                },
                loops: LoopProfile {
                    mean_trip_count: 96.0,
                    max_nesting: 3,
                    nest_probability: 0.55,
                },
                functions: 12,
                avg_block_len: 12,
                dependency_distance: 5.0,
                dest_register_span: 22,
                call_probability: 0.04,
            },
            Benchmark::Micro => BenchmarkProfile {
                name: "micro".to_owned(),
                mix: InstMixProfile::integer(),
                branches: BranchMixProfile::predictable(),
                memory: MemoryProfile::cache_friendly(),
                loops: LoopProfile {
                    mean_trip_count: 16.0,
                    max_nesting: 2,
                    nest_probability: 0.3,
                },
                functions: 3,
                avg_block_len: 6,
                dependency_distance: 3.0,
                dest_register_span: 16,
                call_probability: 0.1,
            },
            Benchmark::PtrChase => crate::stress::ptr_chase(),
            Benchmark::BranchStorm => crate::stress::branch_storm(),
            Benchmark::CodeBloat => crate::stress::code_bloat(),
            Benchmark::StoreStorm => crate::stress::store_storm(),
            Benchmark::EcWorst => crate::stress::ec_worst(),
            Benchmark::FlyBest => crate::stress::fly_best(),
        }
    }

    /// Synthesizes the static program for this benchmark with the given seed.
    ///
    /// The same `(benchmark, seed)` pair always produces the same program.
    pub fn synthesize(&self, seed: u64) -> SyntheticProgram {
        ProgramSynthesizer::new(self.profile()).synthesize(seed)
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_suite_has_ten_benchmarks() {
        assert_eq!(Benchmark::paper_suite().len(), 10);
    }

    #[test]
    fn all_profiles_validate() {
        for b in Benchmark::paper_suite().iter().chain([&Benchmark::Micro]) {
            b.profile().validate().unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn fp_benchmarks_have_fp_instructions() {
        for b in Benchmark::paper_suite() {
            let p = b.profile();
            if b.is_fp() {
                assert!(
                    p.mix.fp_add + p.mix.fp_muldiv > 0.1,
                    "{b} should be FP heavy"
                );
            } else {
                assert!(
                    p.mix.fp_add + p.mix.fp_muldiv < 0.1,
                    "{b} should be integer"
                );
            }
        }
    }

    #[test]
    fn stress_suite_round_trips_through_names() {
        assert_eq!(Benchmark::stress_suite().len(), 4);
        for b in Benchmark::all() {
            assert_eq!(Benchmark::from_name(b.name()), Some(b));
        }
        assert_eq!(Benchmark::from_name("no-such-bench"), None);
        assert!(!Benchmark::stress_suite().iter().any(|b| b.is_fp()));
    }

    #[test]
    fn promoted_adversarial_extremes_are_first_class() {
        assert_eq!(Benchmark::adversarial_suite().len(), 2);
        for b in Benchmark::adversarial_suite() {
            b.profile().validate().unwrap_or_else(|e| panic!("{e}"));
            assert!(!b.is_fp(), "{b} should be integer");
        }
        assert_eq!(Benchmark::from_name("ecworst"), Some(Benchmark::EcWorst));
        assert_eq!(Benchmark::from_name("flybest"), Some(Benchmark::FlyBest));
        // The promoted extremes ride along with — but do not dilute — the
        // hand-built stress family.
        assert!(!Benchmark::stress_suite().contains(&Benchmark::EcWorst));
        assert!(!Benchmark::stress_suite().contains(&Benchmark::FlyBest));
    }

    #[test]
    fn names_match_paper_labels() {
        let names: Vec<&str> = Benchmark::paper_suite().iter().map(|b| b.name()).collect();
        assert_eq!(
            names,
            vec![
                "ijpeg", "gcc", "gzip", "vpr", "mesa", "equake", "parser", "vortex", "bzip2",
                "turb3d"
            ]
        );
    }

    #[test]
    fn register_pressure_benchmarks_have_small_register_span() {
        // gzip, vpr and parser are singled out by the paper as losing >10% with the
        // limited-capacity register pools; our profiles encode that through a small
        // destination-register span.
        for b in [Benchmark::Gzip, Benchmark::Vpr, Benchmark::Parser] {
            assert!(b.profile().dest_register_span <= 12, "{b}");
        }
        for b in [Benchmark::Mesa, Benchmark::Turb3d, Benchmark::Gcc] {
            assert!(b.profile().dest_register_span >= 18, "{b}");
        }
    }

    #[test]
    fn vortex_has_largest_footprint() {
        let vortex = Benchmark::Vortex.profile().functions;
        for b in Benchmark::paper_suite() {
            if *b != Benchmark::Vortex {
                assert!(b.profile().functions <= vortex);
            }
        }
    }
}
