//! Aggregate statistics of a dynamic trace.

use flywheel_isa::{DynInst, OpClass};
use std::collections::HashSet;

/// Aggregate statistics over a dynamic instruction trace.
///
/// Used by the calibration tests (to check that a synthetic benchmark behaves the way
/// its profile promises) and by the characterization example.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceStats {
    /// Total number of instructions observed.
    pub total: u64,
    /// Number of loads.
    pub loads: u64,
    /// Number of stores.
    pub stores: u64,
    /// Number of conditional branches.
    pub cond_branches: u64,
    /// Number of taken conditional branches.
    pub taken_cond_branches: u64,
    /// Number of control transfers of any kind.
    pub ctrl: u64,
    /// Number of floating-point operations.
    pub fp_ops: u64,
    /// Number of distinct static PCs touched.
    pub distinct_pcs: u64,
    /// Number of distinct 64-byte data lines touched.
    pub distinct_data_lines: u64,
}

impl TraceStats {
    /// Collects statistics from an iterator of dynamic instructions.
    pub fn collect<I: IntoIterator<Item = DynInst>>(trace: I) -> Self {
        let mut stats = TraceStats::default();
        let mut pcs = HashSet::new();
        let mut lines = HashSet::new();
        for d in trace {
            stats.total += 1;
            pcs.insert(d.pc);
            match d.stat.op() {
                OpClass::Load => stats.loads += 1,
                OpClass::Store => stats.stores += 1,
                OpClass::Ctrl => {
                    stats.ctrl += 1;
                    if d.stat.is_cond_branch() {
                        stats.cond_branches += 1;
                        if d.taken {
                            stats.taken_cond_branches += 1;
                        }
                    }
                }
                op if op.is_fp() => stats.fp_ops += 1,
                _ => {}
            }
            if let Some(m) = d.mem {
                lines.insert(m.line_addr(64));
            }
        }
        stats.distinct_pcs = pcs.len() as u64;
        stats.distinct_data_lines = lines.len() as u64;
        stats
    }

    /// Fraction of instructions that are loads or stores.
    pub fn mem_fraction(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        (self.loads + self.stores) as f64 / self.total as f64
    }

    /// Fraction of instructions that are control transfers.
    pub fn ctrl_fraction(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.ctrl as f64 / self.total as f64
    }

    /// Taken rate of conditional branches.
    pub fn taken_rate(&self) -> f64 {
        if self.cond_branches == 0 {
            return 0.0;
        }
        self.taken_cond_branches as f64 / self.cond_branches as f64
    }

    /// Approximate data working-set size in bytes (distinct 64-byte lines).
    pub fn data_working_set_bytes(&self) -> u64 {
        self.distinct_data_lines * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Benchmark, TraceGenerator};

    fn stats_for(b: Benchmark, n: usize) -> TraceStats {
        let sp = b.synthesize(13);
        TraceStats::collect(TraceGenerator::new(&sp, 13).take(n))
    }

    #[test]
    fn totals_add_up() {
        let s = stats_for(Benchmark::Micro, 10_000);
        assert_eq!(s.total, 10_000);
        assert!(s.loads > 0 && s.stores > 0 && s.ctrl > 0);
        assert!(s.taken_cond_branches <= s.cond_branches);
        assert!(s.cond_branches <= s.ctrl);
    }

    #[test]
    fn memory_fraction_tracks_profile() {
        // The generated mix includes explicit control instructions on top of the
        // computational mix, so the measured fraction is slightly diluted; allow a
        // generous band around the profile value.
        for b in [Benchmark::Gzip, Benchmark::Equake, Benchmark::Gcc] {
            let profile = b.profile();
            let expected = profile.mix.load + profile.mix.store;
            let s = stats_for(b, 60_000);
            let measured = s.mem_fraction();
            assert!(
                (measured - expected).abs() < 0.12,
                "{b}: expected ~{expected:.2}, measured {measured:.2}"
            );
        }
    }

    #[test]
    fn fp_benchmarks_execute_fp_ops() {
        let fp = stats_for(Benchmark::Turb3d, 40_000);
        let int = stats_for(Benchmark::Gzip, 40_000);
        assert!((fp.fp_ops as f64) / (fp.total as f64) > 0.15);
        assert!((int.fp_ops as f64) / (int.total as f64) < 0.02);
    }

    #[test]
    fn vortex_touches_more_code_than_gzip() {
        let vortex = stats_for(Benchmark::Vortex, 60_000);
        let gzip = stats_for(Benchmark::Gzip, 60_000);
        assert!(
            vortex.distinct_pcs > gzip.distinct_pcs,
            "vortex {} vs gzip {}",
            vortex.distinct_pcs,
            gzip.distinct_pcs
        );
    }

    #[test]
    fn memory_bound_benchmarks_have_larger_working_sets() {
        let equake = stats_for(Benchmark::Equake, 60_000);
        let ijpeg = stats_for(Benchmark::Ijpeg, 60_000);
        assert!(equake.data_working_set_bytes() > ijpeg.data_working_set_bytes());
    }

    #[test]
    fn empty_trace_yields_zero_fractions() {
        let s = TraceStats::collect(std::iter::empty());
        assert_eq!(s.total, 0);
        assert_eq!(s.mem_fraction(), 0.0);
        assert_eq!(s.taken_rate(), 0.0);
        assert_eq!(s.ctrl_fraction(), 0.0);
    }
}
