//! Recorded dynamic traces: generate each workload once, replay it everywhere.
//!
//! The evaluation of the paper is trace-driven and every figure sweep replays the
//! *same* dynamic instruction stream per benchmark across many machine
//! configurations. Re-running [`crate::TraceGenerator`] for every (machine,
//! benchmark, configuration) cell pays program "execution" (RNG draws, control-flow
//! walking, behaviour lookups) once per simulated instruction per cell.
//! [`RecordedTrace`] captures the generator's output once into a packed
//! structure-of-arrays arena; [`TraceCursor`] then replays it any number of times
//! with pure slice indexing and zero per-instruction allocation.
//!
//! ## Arena layout
//!
//! One dynamic instruction costs 8 bytes + 1 bit in the columns, plus 8 bytes in
//! the memory side table when it is a load/store — versus ~80 bytes for a
//! materialised [`DynInst`] vector:
//!
//! * `pc_slots: Vec<u32>` — the instruction's [`SyntheticProgram::word_slot`]
//!   (PC and static instruction are both derived from it),
//! * `next_slots: Vec<u32>` — the word slot of the next dynamic PC,
//! * `taken: Vec<u64>` — a bitset of taken control transfers,
//! * `mem_addrs: Vec<u64>` — effective addresses of loads/stores only, in stream
//!   order (no `Option<MemAccess>` padding on the other ~65% of instructions),
//! * `static_insts: Vec<StaticInst>` — the flattened program, shared by all
//!   dynamic occurrences of a PC.
//!
//! ```
//! use flywheel_workloads::{Benchmark, RecordedTrace, TraceGenerator};
//!
//! let program = Benchmark::Micro.synthesize(1);
//! let trace = RecordedTrace::record(&program, 1, 10_000);
//! // Replay is bit-identical to generation...
//! let generated: Vec<_> = TraceGenerator::new(&program, 1).take(10_000).collect();
//! let replayed: Vec<_> = trace.cursor().collect();
//! assert_eq!(generated, replayed);
//! // ...and every cursor restarts from the beginning.
//! assert_eq!(trace.cursor().next(), generated.first().cloned());
//! ```

use crate::{SyntheticProgram, TraceGenerator};
use flywheel_isa::{DynInst, MemAccess, Pc, StaticInst};

/// All dynamic memory accesses of the synthetic workloads are 8 bytes wide; the
/// arena stores only addresses and reconstitutes the size on replay (asserted
/// during capture).
const MEM_ACCESS_BYTES: u8 = 8;

/// A dynamic instruction trace captured once from a [`TraceGenerator`] into a
/// packed structure-of-arrays arena.
///
/// The trace is self-contained (it copies the flattened static program), so it can
/// be wrapped in an `Arc` and shared by every sweep cell across threads; each cell
/// replays it through its own cheap [`TraceCursor`]. Capture is *bounded*: the
/// arena holds exactly the first `max_insts` instructions of the stream, so memory
/// stays proportional to the longest simulation run (see
/// [`RecordedTrace::capture_len_for`]).
///
/// # Example
///
/// ```
/// use flywheel_workloads::{Benchmark, RecordedTrace};
///
/// let program = Benchmark::Micro.synthesize(42);
/// let trace = RecordedTrace::record(&program, 42, 100);
/// assert_eq!(trace.len(), 100);
/// // Cursors are independent, restartable iterators over the same arena.
/// let first: Vec<u64> = trace.cursor().take(3).map(|d| d.seq).collect();
/// assert_eq!(first, vec![0, 1, 2]);
/// let mut cursor = trace.cursor();
/// cursor.next();
/// cursor.restart();
/// assert_eq!(cursor.next().unwrap().seq, 0);
/// ```
#[derive(Debug, Clone)]
pub struct RecordedTrace {
    /// Flattened static program in layout order, indexed by word slot.
    static_insts: Vec<StaticInst>,
    /// Byte address of slot 0.
    base_addr: u64,
    /// Per dynamic instruction: word slot of its PC.
    pc_slots: Vec<u32>,
    /// Per dynamic instruction: word slot of the next dynamic PC.
    next_slots: Vec<u32>,
    /// Bit `i` set = dynamic instruction `i` was a taken control transfer.
    taken: Vec<u64>,
    /// Effective addresses of loads/stores, in stream order.
    mem_addrs: Vec<u64>,
}

impl RecordedTrace {
    /// Captures the first `max_insts` instructions of
    /// `TraceGenerator::new(program, seed)` into an arena.
    ///
    /// Replaying the result is bit-identical to running the generator directly:
    /// same instructions, same sequence numbers, same addresses and branch
    /// outcomes.
    pub fn record(program: &SyntheticProgram, seed: u64, max_insts: usize) -> Self {
        let mut static_insts = Vec::with_capacity(program.static_footprint());
        for block in program.program().blocks() {
            static_insts.extend_from_slice(block.insts());
        }
        let base_addr = program.base_pc().addr();

        let mut trace = RecordedTrace {
            static_insts,
            base_addr,
            pc_slots: Vec::with_capacity(max_insts),
            next_slots: Vec::with_capacity(max_insts),
            taken: vec![0u64; max_insts.div_ceil(64)],
            mem_addrs: Vec::new(),
        };
        for (i, d) in TraceGenerator::new(program, seed)
            .take(max_insts)
            .enumerate()
        {
            debug_assert_eq!(d.seq, i as u64, "generator sequence must be 0-based");
            let slot = program.word_slot(d.pc);
            let next_slot = program.word_slot(d.next_pc);
            assert!(
                slot < trace.static_insts.len() && next_slot < trace.static_insts.len(),
                "trace PC outside the program"
            );
            debug_assert_eq!(trace.static_insts[slot], d.stat);
            trace.pc_slots.push(slot as u32);
            trace.next_slots.push(next_slot as u32);
            if d.taken {
                trace.taken[i / 64] |= 1u64 << (i % 64);
            }
            if let Some(m) = d.mem {
                assert_eq!(m.size, MEM_ACCESS_BYTES, "unexpected access size");
                trace.mem_addrs.push(m.addr);
            }
        }
        trace
    }

    /// Number of recorded dynamic instructions.
    pub fn len(&self) -> usize {
        self.pc_slots.len()
    }

    /// Whether the trace contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.pc_slots.is_empty()
    }

    /// Number of recorded memory accesses (the length of the side table).
    pub fn mem_accesses(&self) -> usize {
        self.mem_addrs.len()
    }

    /// Approximate arena footprint in bytes (columns, side table and the shared
    /// static instructions).
    pub fn arena_bytes(&self) -> usize {
        self.pc_slots.len() * std::mem::size_of::<u32>() * 2
            + self.taken.len() * std::mem::size_of::<u64>()
            + self.mem_addrs.len() * std::mem::size_of::<u64>()
            + self.static_insts.len() * std::mem::size_of::<StaticInst>()
    }

    /// How many instructions to capture so that a simulation with `budget_total`
    /// retired instructions (warm-up + measured) never exhausts the trace.
    ///
    /// The simulators consume the oracle stream strictly forward: every pulled
    /// instruction is retired, still in flight when the run stops (bounded by the
    /// in-flight table capacity, a few hundred entries), squashed on a mispredict
    /// recovery, or a single look-ahead peek. The 1/8 + 4096 headroom covers all
    /// three non-retired classes with two orders of magnitude of margin at
    /// experiment scale; bit-identity against unbounded generation is enforced by
    /// the `golden` digest harness in CI.
    pub fn capture_len_for(budget_total: u64) -> usize {
        (budget_total + budget_total / 8 + 4096) as usize
    }

    /// A zero-allocation iterator replaying the trace from its beginning.
    pub fn cursor(&self) -> TraceCursor<'_> {
        TraceCursor {
            trace: self,
            idx: 0,
            mem_idx: 0,
        }
    }

    /// Reconstructs the dynamic instruction at `idx`, tracking the memory side
    /// table through `mem_idx`.
    #[inline]
    fn inst_at(&self, idx: usize, mem_idx: &mut usize) -> DynInst {
        let slot = self.pc_slots[idx] as usize;
        let stat = self.static_insts[slot];
        let mem = if stat.op().is_mem() {
            let addr = self.mem_addrs[*mem_idx];
            *mem_idx += 1;
            Some(MemAccess::new(addr, MEM_ACCESS_BYTES))
        } else {
            None
        };
        DynInst {
            seq: idx as u64,
            pc: Pc::new(self.base_addr + slot as u64 * 4),
            stat,
            taken: (self.taken[idx / 64] >> (idx % 64)) & 1 == 1,
            next_pc: Pc::new(self.base_addr + self.next_slots[idx] as u64 * 4),
            mem,
        }
    }
}

/// Replays a [`RecordedTrace`] as an `Iterator<Item = DynInst>` with pure slice
/// indexing — no hashing, no RNG, no allocation per instruction.
///
/// Cursors are cheap (three words); hand a fresh one to every simulation that
/// should consume the stream from the beginning, or [`TraceCursor::restart`] an
/// existing one. The iterator ends after the recorded (bounded) prefix.
#[derive(Debug, Clone)]
pub struct TraceCursor<'a> {
    trace: &'a RecordedTrace,
    idx: usize,
    mem_idx: usize,
}

impl TraceCursor<'_> {
    /// Rewinds the cursor to the first instruction.
    pub fn restart(&mut self) {
        self.idx = 0;
        self.mem_idx = 0;
    }

    /// Instructions left to replay.
    pub fn remaining(&self) -> usize {
        self.trace.len() - self.idx
    }
}

impl Iterator for TraceCursor<'_> {
    type Item = DynInst;

    #[inline]
    fn next(&mut self) -> Option<DynInst> {
        if self.idx >= self.trace.len() {
            return None;
        }
        let d = self.trace.inst_at(self.idx, &mut self.mem_idx);
        self.idx += 1;
        Some(d)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining();
        (n, Some(n))
    }
}

impl ExactSizeIterator for TraceCursor<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Benchmark;

    #[test]
    fn capture_matches_generation_for_every_benchmark() {
        // Replay must be bit-identical to one-shot generation (same DynInst,
        // including seq, mem and branch outcomes) across the whole suite.
        const N: usize = 20_000;
        for bench in Benchmark::paper_suite().iter().chain([&Benchmark::Micro]) {
            let program = bench.synthesize(7);
            let trace = RecordedTrace::record(&program, 7, N);
            let generated: Vec<_> = TraceGenerator::new(&program, 7).take(N).collect();
            let replayed: Vec<_> = trace.cursor().collect();
            assert_eq!(generated, replayed, "replay diverged for {bench}");
        }
    }

    #[test]
    fn bounded_capture_truncates_at_the_requested_length() {
        let program = Benchmark::Micro.synthesize(3);
        let trace = RecordedTrace::record(&program, 3, 1_000);
        assert_eq!(trace.len(), 1_000);
        let mut cursor = trace.cursor();
        assert_eq!(cursor.len(), 1_000);
        let replayed: Vec<_> = cursor.by_ref().collect();
        assert_eq!(replayed.len(), 1_000);
        // The cursor is exhausted for good after the bounded prefix.
        assert_eq!(cursor.next(), None);
        assert_eq!(cursor.remaining(), 0);
        // The truncated prefix equals the prefix of a longer capture.
        let longer = RecordedTrace::record(&program, 3, 1_500);
        assert_eq!(longer.len(), 1_500);
        let prefix: Vec<_> = longer.cursor().take(1_000).collect();
        assert_eq!(replayed, prefix);
    }

    #[test]
    fn cursor_restart_is_deterministic() {
        let program = Benchmark::Gzip.synthesize(5);
        let trace = RecordedTrace::record(&program, 5, 5_000);
        let first: Vec<_> = trace.cursor().collect();
        // A fresh cursor and a restarted cursor both replay the identical stream.
        let again: Vec<_> = trace.cursor().collect();
        assert_eq!(first, again);
        let mut cursor = trace.cursor();
        let _ = cursor.by_ref().take(1_234).count();
        cursor.restart();
        let restarted: Vec<_> = cursor.collect();
        assert_eq!(first, restarted);
    }

    #[test]
    fn mem_side_table_has_no_padding() {
        let program = Benchmark::Bzip2.synthesize(9);
        let trace = RecordedTrace::record(&program, 9, 10_000);
        let mem_insts = trace.cursor().filter(|d| d.stat.op().is_mem()).count();
        assert_eq!(
            trace.mem_accesses(),
            mem_insts,
            "side table must hold exactly one entry per memory instruction"
        );
        // The packed arena is far smaller than a materialised DynInst vector.
        let materialized = trace.len() * std::mem::size_of::<DynInst>();
        assert!(
            trace.arena_bytes() * 2 < materialized,
            "arena {} should be well under half of {materialized}",
            trace.arena_bytes()
        );
    }

    #[test]
    fn capture_len_covers_the_budget_with_headroom() {
        assert!(RecordedTrace::capture_len_for(0) >= 4096);
        let n = RecordedTrace::capture_len_for(300_000);
        assert!(
            n >= 300_000 + 4096,
            "need headroom beyond the budget, got {n}"
        );
    }
}
