//! Synthetic program generation from a benchmark profile.

use crate::{BenchmarkProfile, BranchBehavior, MemBehavior};
use flywheel_isa::{
    ArchReg, BlockId, OpClass, Pc, Program, ProgramBuilder, StaticInst, Terminator,
};
use flywheel_rng::SimRng;
use std::collections::HashMap;

/// Base address of the synthetic data segment; memory regions are carved out of it.
const DATA_BASE: u64 = 0x1000_0000;

/// Registers reserved as loop counters (round-robin across nested loops).
const LOOP_COUNTER_REGS: [u8; 4] = [24, 25, 26, 27];
/// Registers reserved as base pointers for memory instructions.
const POINTER_REGS: [u8; 4] = [28, 29, 30, 31];

/// A synthesized static program plus the dynamic behaviour of its branches and
/// memory instructions.
///
/// Produced by [`ProgramSynthesizer::synthesize`] (or [`crate::Benchmark::synthesize`])
/// and consumed by [`crate::TraceGenerator`].
#[derive(Debug, Clone)]
pub struct SyntheticProgram {
    profile: BenchmarkProfile,
    program: Program,
    branch_behaviors: HashMap<Pc, BranchBehavior>,
    mem_behaviors: HashMap<Pc, MemBehavior>,
    /// Word index of the first instruction (programs are laid out contiguously).
    base_word: u64,
    /// Dense per-instruction branch behaviours, indexed by [`Self::word_slot`].
    /// Built once at synthesis time so the trace generator's per-instruction
    /// behaviour lookups are slice reads instead of `HashMap` probes.
    branch_dense: Vec<Option<BranchBehavior>>,
    /// Dense per-instruction memory behaviours, indexed by [`Self::word_slot`].
    mem_dense: Vec<Option<MemBehavior>>,
    entry: BlockId,
}

impl SyntheticProgram {
    /// The profile this program was generated from.
    pub fn profile(&self) -> &BenchmarkProfile {
        &self.profile
    }

    /// The static program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The entry block of the top-level (looping) main function.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Dense per-instruction slot of `pc`: its word offset from the program's
    /// first instruction. Every PC of the program maps to a unique slot in
    /// `0..static_footprint()`, which the trace machinery uses to index flat
    /// side tables (behaviours here, dynamic branch/memory state in
    /// [`crate::TraceGenerator`], recorded columns in [`crate::RecordedTrace`]).
    #[inline]
    pub fn word_slot(&self, pc: Pc) -> usize {
        debug_assert!(pc.word_index() >= self.base_word, "pc below program base");
        (pc.word_index() - self.base_word) as usize
    }

    /// The PC of the program's first instruction (slot 0).
    pub fn base_pc(&self) -> Pc {
        Pc::new(self.base_word * 4)
    }

    /// The dynamic behaviour of the conditional branch at `pc`, if one exists there.
    #[inline]
    pub fn branch_behavior(&self, pc: Pc) -> Option<&BranchBehavior> {
        self.branch_dense.get(self.word_slot(pc))?.as_ref()
    }

    /// The dynamic behaviour of the memory instruction at `pc`, if one exists there.
    #[inline]
    pub fn mem_behavior(&self, pc: Pc) -> Option<&MemBehavior> {
        self.mem_dense.get(self.word_slot(pc))?.as_ref()
    }

    /// All conditional-branch behaviours, keyed by PC.
    pub fn branch_behaviors(&self) -> &HashMap<Pc, BranchBehavior> {
        &self.branch_behaviors
    }

    /// All memory behaviours, keyed by PC.
    pub fn mem_behaviors(&self) -> &HashMap<Pc, MemBehavior> {
        &self.mem_behaviors
    }

    /// Total static code footprint in instructions.
    pub fn static_footprint(&self) -> usize {
        self.program.len()
    }
}

/// Intermediate representation of a block before ids are final.
#[derive(Debug, Default)]
struct ProtoBlock {
    insts: Vec<StaticInst>,
    term: Option<ProtoTerm>,
}

/// Terminator over proto-block indices, with function calls still symbolic.
#[derive(Debug, Clone)]
enum ProtoTerm {
    FallThrough(usize),
    Jump(usize),
    CondBranch { taken: usize, not_taken: usize },
    Call { callee_fn: usize, return_to: usize },
    Return,
    JumpToEntry,
}

/// A structural region of a function body, decided before lowering.
#[derive(Debug, Clone)]
enum RegionKind {
    Straight,
    Diamond,
    Loop { depth: u32 },
    Call { callee_fn: usize },
}

/// Generates synthetic programs from a [`BenchmarkProfile`].
///
/// The synthesizer builds a whole-program control-flow graph: `profile.functions`
/// functions arranged in a call DAG, each made of straight-line regions, `if`
/// diamonds, (possibly nested) loops and call sites, populated with instructions
/// whose classes, register dependences and memory behaviours follow the profile.
///
/// Generation is fully deterministic for a given `(profile, seed)` pair.
#[derive(Debug)]
pub struct ProgramSynthesizer {
    profile: BenchmarkProfile,
}

impl ProgramSynthesizer {
    /// Creates a synthesizer for `profile`.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`BenchmarkProfile::validate`].
    pub fn new(profile: BenchmarkProfile) -> Self {
        profile
            .validate()
            .unwrap_or_else(|e| panic!("invalid benchmark profile: {e}"));
        ProgramSynthesizer { profile }
    }

    /// Generates the synthetic program for `seed`.
    pub fn synthesize(&self, seed: u64) -> SyntheticProgram {
        let mut state = SynthState {
            profile: self.profile.clone(),
            rng: SimRng::seed_from_u64(seed ^ 0x4995_2399_c4aa_eac1),
            blocks: Vec::new(),
            branch_behaviors: Vec::new(),
            mem_behaviors: Vec::new(),
            function_entries: Vec::new(),
            next_region_base: DATA_BASE,
            dest_cursor_int: 1,
            dest_cursor_fp: 1,
            recent_int: Vec::new(),
            recent_fp: Vec::new(),
            loop_depth_counter: 0,
        };
        state.generate();
        state.finish()
    }
}

/// Mutable state used while generating one program.
struct SynthState {
    profile: BenchmarkProfile,
    rng: SimRng,
    blocks: Vec<ProtoBlock>,
    /// Behaviour of the branch that terminates block `usize`.
    branch_behaviors: Vec<(usize, BranchBehavior)>,
    /// Behaviour of the memory instruction at (block, inst index).
    mem_behaviors: Vec<((usize, usize), MemBehavior)>,
    function_entries: Vec<usize>,
    next_region_base: u64,
    dest_cursor_int: u8,
    dest_cursor_fp: u8,
    recent_int: Vec<ArchReg>,
    recent_fp: Vec<ArchReg>,
    loop_depth_counter: u32,
}

impl SynthState {
    // ---------------------------------------------------------------- block plumbing

    fn new_block(&mut self) -> usize {
        self.blocks.push(ProtoBlock::default());
        self.blocks.len() - 1
    }

    fn fill(&mut self, idx: usize, insts: Vec<StaticInst>, term: ProtoTerm) {
        let b = &mut self.blocks[idx];
        debug_assert!(b.term.is_none(), "block {idx} filled twice");
        b.insts = insts;
        b.term = Some(term);
    }

    // ---------------------------------------------------------------- top level

    fn generate(&mut self) {
        let functions = self.profile.functions as usize;
        // Reserve entry slots so call sites can reference functions generated later.
        // Function bodies are generated in order; each function's entry block is the
        // first block it allocates.
        for f in 0..functions {
            let entry = self.generate_function(f, functions);
            self.function_entries.push(entry);
        }
    }

    fn generate_function(&mut self, func_idx: usize, functions: usize) -> usize {
        // Reset the recent-register history at function boundaries: values do not
        // flow across calls in the synthetic code.
        self.recent_int.clear();
        self.recent_fp.clear();

        let n_regions = self.rng.range_inclusive_u64(3, 8) as usize;
        let mut kinds = Vec::with_capacity(n_regions);
        for _ in 0..n_regions {
            kinds.push(self.pick_region_kind(func_idx, functions, 0));
        }

        // Lower all regions in layout order, chaining each region's exits to the
        // entry of the next one, and finally to the function epilogue.
        let mut entries = Vec::with_capacity(kinds.len());
        let mut pending: Vec<Vec<Patch>> = Vec::with_capacity(kinds.len());
        for kind in &kinds {
            let (entry, patches) = self.lower_region(kind.clone());
            entries.push(entry);
            pending.push(patches);
        }
        // Epilogue block.
        let epilogue = self.new_block();
        let epilogue_insts = vec![StaticInst::nop()];
        if func_idx == 0 {
            // The main function loops forever so that traces of any length can be
            // generated.
            self.fill(epilogue, epilogue_insts, ProtoTerm::JumpToEntry);
        } else {
            self.fill(epilogue, epilogue_insts, ProtoTerm::Return);
        }

        // Patch each region to continue at the entry of the following region.
        for i in 0..entries.len() {
            let cont = if i + 1 < entries.len() {
                entries[i + 1]
            } else {
                epilogue
            };
            let patches = std::mem::take(&mut pending[i]);
            for p in patches {
                self.apply_patch(p, cont);
            }
        }
        entries[0]
    }

    fn pick_region_kind(&mut self, func_idx: usize, functions: usize, depth: u32) -> RegionKind {
        let can_call = func_idx + 1 < functions;
        let r = self.rng.f64();
        if can_call && r < self.profile.call_probability {
            let callee_fn = self.rng.range_usize(func_idx + 1, functions);
            RegionKind::Call { callee_fn }
        } else if r < self.profile.call_probability + 0.35 && depth < self.profile.loops.max_nesting
        {
            RegionKind::Loop { depth }
        } else if r < self.profile.call_probability + 0.35 + 0.30 {
            RegionKind::Diamond
        } else {
            RegionKind::Straight
        }
    }

    // ---------------------------------------------------------------- region lowering

    fn lower_region(&mut self, kind: RegionKind) -> (usize, Vec<Patch>) {
        match kind {
            RegionKind::Straight => {
                let b = self.new_block();
                let insts = self.gen_block_insts(b, None);
                self.fill(b, insts, ProtoTerm::FallThrough(usize::MAX));
                (b, vec![Patch::FallThrough(b)])
            }
            RegionKind::Diamond => {
                // Layout: header (cond branch), else side (fall-through / not taken),
                // then side (branch target). The else side jumps to the
                // continuation; the then side falls through to it.
                let header = self.new_block();
                let else_b = self.new_block();
                let then_b = self.new_block();

                let mut header_insts = self.gen_block_insts(header, None);
                let behavior = self.pick_branch_behavior();
                let cond_src = self.pick_source(false);
                header_insts.push(StaticInst::cond_branch(cond_src, None));
                self.branch_behaviors.push((header, behavior));
                self.fill(
                    header,
                    header_insts,
                    ProtoTerm::CondBranch {
                        taken: then_b,
                        not_taken: else_b,
                    },
                );

                let else_insts = self.gen_block_insts(else_b, None);
                self.fill(else_b, else_insts, ProtoTerm::Jump(usize::MAX));
                let then_insts = self.gen_block_insts(then_b, None);
                self.fill(then_b, then_insts, ProtoTerm::FallThrough(usize::MAX));

                (
                    header,
                    vec![Patch::Jump(else_b), Patch::FallThrough(then_b)],
                )
            }
            RegionKind::Loop { depth } => {
                // Rotated loop: body blocks first, then the latch block holding the
                // back-edge conditional branch (taken -> body entry, not taken ->
                // continuation).
                let counter = self.next_loop_counter();
                let n_body_regions = self.rng.range_inclusive_u64(1, 2);
                let mut body_kinds = Vec::new();
                for _ in 0..n_body_regions {
                    // Nested structure inside the loop body.
                    let kind = if self.rng.f64() < self.profile.loops.nest_probability
                        && depth + 1 < self.profile.loops.max_nesting
                    {
                        RegionKind::Loop { depth: depth + 1 }
                    } else if self.rng.f64() < 0.4 {
                        RegionKind::Diamond
                    } else {
                        RegionKind::Straight
                    };
                    body_kinds.push(kind);
                }

                let mut body_entries = Vec::new();
                let mut body_patches: Vec<Vec<Patch>> = Vec::new();
                for kind in body_kinds {
                    let (e, p) = self.lower_region(kind);
                    body_entries.push(e);
                    body_patches.push(p);
                }

                // Latch block: counter update + back-edge branch.
                let latch = self.new_block();
                let mut latch_insts = self.gen_block_insts(latch, Some(counter));
                latch_insts.push(StaticInst::alu(counter, counter, None));
                latch_insts.push(StaticInst::cond_branch(counter, None));
                self.branch_behaviors.push((
                    latch,
                    BranchBehavior::LoopBack {
                        mean_trips: self.profile.loops.mean_trip_count,
                    },
                ));
                self.fill(
                    latch,
                    latch_insts,
                    ProtoTerm::CondBranch {
                        taken: body_entries[0],
                        not_taken: usize::MAX,
                    },
                );

                // Chain body regions together and finally into the latch.
                for i in 0..body_entries.len() {
                    let cont = if i + 1 < body_entries.len() {
                        body_entries[i + 1]
                    } else {
                        latch
                    };
                    let patches = std::mem::take(&mut body_patches[i]);
                    for p in patches {
                        self.apply_patch(p, cont);
                    }
                }

                (body_entries[0], vec![Patch::CondNotTaken(latch)])
            }
            RegionKind::Call { callee_fn } => {
                let b = self.new_block();
                let mut insts = self.gen_block_insts(b, None);
                insts.push(StaticInst::call());
                self.fill(
                    b,
                    insts,
                    ProtoTerm::Call {
                        callee_fn,
                        return_to: usize::MAX,
                    },
                );
                (b, vec![Patch::CallReturn(b)])
            }
        }
    }

    fn apply_patch(&mut self, patch: Patch, cont: usize) {
        let (idx, slot) = match patch {
            Patch::FallThrough(i) => (i, PatchSlot::FallThrough),
            Patch::Jump(i) => (i, PatchSlot::Jump),
            Patch::CondNotTaken(i) => (i, PatchSlot::CondNotTaken),
            Patch::CallReturn(i) => (i, PatchSlot::CallReturn),
        };
        let term = self.blocks[idx]
            .term
            .as_mut()
            .expect("patching unfilled block");
        match (slot, term) {
            (PatchSlot::FallThrough, ProtoTerm::FallThrough(t)) => *t = cont,
            (PatchSlot::Jump, ProtoTerm::Jump(t)) => *t = cont,
            (PatchSlot::CondNotTaken, ProtoTerm::CondBranch { not_taken, .. }) => *not_taken = cont,
            (PatchSlot::CallReturn, ProtoTerm::Call { return_to, .. }) => *return_to = cont,
            (slot, term) => panic!("patch {slot:?} does not match terminator {term:?}"),
        }
    }

    // ---------------------------------------------------------------- instructions

    /// Generates the computational body of one block (without its terminator).
    ///
    /// `reserved` is a register the caller will write itself (the loop counter) and
    /// must not be clobbered here.
    fn gen_block_insts(&mut self, block_idx: usize, reserved: Option<ArchReg>) -> Vec<StaticInst> {
        let avg = self.profile.avg_block_len as f64;
        let len = self.sample_block_len(avg);
        let mut insts = Vec::with_capacity(len);
        for _ in 0..len {
            let inst = self.gen_inst(block_idx, insts.len(), reserved);
            insts.push(inst);
        }
        insts
    }

    fn sample_block_len(&mut self, avg: f64) -> usize {
        // Geometric-ish distribution around the average, clamped to [1, 3*avg].
        let span = (avg * 2.0).max(1.0);
        let len = 1.0 + self.rng.f64() * span;
        (len.round() as usize).clamp(1, (avg * 3.0).ceil() as usize)
    }

    fn gen_inst(
        &mut self,
        block_idx: usize,
        inst_idx: usize,
        reserved: Option<ArchReg>,
    ) -> StaticInst {
        let mix = self.profile.mix;
        let r = self.rng.f64();
        let op = if r < mix.load {
            OpClass::Load
        } else if r < mix.load + mix.store {
            OpClass::Store
        } else if r < mix.load + mix.store + mix.int_muldiv {
            if self.rng.f64() < 0.8 {
                OpClass::IntMul
            } else {
                OpClass::IntDiv
            }
        } else if r < mix.load + mix.store + mix.int_muldiv + mix.fp_add {
            OpClass::FpAdd
        } else if r < mix.load + mix.store + mix.int_muldiv + mix.fp_add + mix.fp_muldiv {
            if self.rng.f64() < 0.75 {
                OpClass::FpMul
            } else {
                OpClass::FpDiv
            }
        } else {
            OpClass::IntAlu
        };

        match op {
            OpClass::Load => {
                let dst = self.pick_dest(false, reserved);
                let base = self.pick_pointer();
                let behavior = self.pick_mem_behavior();
                self.mem_behaviors.push(((block_idx, inst_idx), behavior));
                let inst = StaticInst::load(dst, base);
                self.note_write(dst);
                inst
            }
            OpClass::Store => {
                let value = self.pick_source(false);
                let base = self.pick_pointer();
                let behavior = self.pick_mem_behavior();
                self.mem_behaviors.push(((block_idx, inst_idx), behavior));
                StaticInst::store(value, base)
            }
            OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv => {
                let dst = self.pick_dest(true, reserved);
                let s1 = self.pick_source(true);
                let s2 = if self.rng.f64() < 0.8 {
                    Some(self.pick_source(true))
                } else {
                    None
                };
                let inst = StaticInst::compute(op, dst, s1, s2);
                self.note_write(dst);
                inst
            }
            _ => {
                let dst = self.pick_dest(false, reserved);
                let s1 = self.pick_source(false);
                let s2 = if self.rng.f64() < 0.7 {
                    Some(self.pick_source(false))
                } else {
                    None
                };
                let inst = StaticInst::compute(op, dst, s1, s2);
                self.note_write(dst);
                inst
            }
        }
    }

    fn pick_dest(&mut self, fp: bool, reserved: Option<ArchReg>) -> ArchReg {
        let span = self.profile.dest_register_span.max(2) as u8;
        loop {
            let reg = if fp {
                let r = ArchReg::fp(self.dest_cursor_fp);
                self.dest_cursor_fp = if self.dest_cursor_fp >= span {
                    1
                } else {
                    self.dest_cursor_fp + 1
                };
                r
            } else {
                let r = ArchReg::int(self.dest_cursor_int);
                self.dest_cursor_int = if self.dest_cursor_int >= span {
                    1
                } else {
                    self.dest_cursor_int + 1
                };
                r
            };
            if Some(reg) != reserved {
                return reg;
            }
        }
    }

    fn pick_source(&mut self, fp: bool) -> ArchReg {
        // Sample a dependency distance: how many writes back the source value was
        // produced. Small distances create long dependence chains.
        let history = if fp {
            &self.recent_fp
        } else {
            &self.recent_int
        };
        if history.is_empty() {
            return self.pick_live_in(fp);
        }
        let mean = self.profile.dependency_distance.max(1.0);
        // Geometric sample with the configured mean.
        let p = 1.0 / mean;
        let mut dist = 0usize;
        while self.rng.f64() > p && dist < 64 {
            dist += 1;
        }
        if dist >= history.len() {
            self.pick_live_in(fp)
        } else {
            history[history.len() - 1 - dist]
        }
    }

    fn pick_live_in(&mut self, fp: bool) -> ArchReg {
        if fp {
            ArchReg::fp(20 + self.rng.range_u64(0, 4) as u8)
        } else {
            ArchReg::int(POINTER_REGS[self.rng.range_usize(0, POINTER_REGS.len())])
        }
    }

    fn pick_pointer(&mut self) -> ArchReg {
        ArchReg::int(POINTER_REGS[self.rng.range_usize(0, POINTER_REGS.len())])
    }

    fn note_write(&mut self, reg: ArchReg) {
        let history = if reg.class() == flywheel_isa::RegClass::Fp {
            &mut self.recent_fp
        } else {
            &mut self.recent_int
        };
        history.push(reg);
        if history.len() > 96 {
            history.remove(0);
        }
    }

    fn next_loop_counter(&mut self) -> ArchReg {
        let reg = LOOP_COUNTER_REGS[(self.loop_depth_counter as usize) % LOOP_COUNTER_REGS.len()];
        self.loop_depth_counter += 1;
        ArchReg::int(reg)
    }

    // ---------------------------------------------------------------- behaviours

    fn pick_branch_behavior(&mut self) -> BranchBehavior {
        let b = self.profile.branches;
        let r = self.rng.f64();
        if r < b.biased {
            // Half of the biased branches are biased not-taken instead of taken.
            let taken_prob = if self.rng.bool() {
                b.bias
            } else {
                1.0 - b.bias
            };
            BranchBehavior::Biased { taken_prob }
        } else if r < b.biased + b.patterned {
            let period = self.rng.range_inclusive_u64(3, 8) as u8;
            let pattern = self.rng.range_u64(1, u64::from((1u32 << period) - 1)) as u32;
            BranchBehavior::Pattern { pattern, period }
        } else {
            BranchBehavior::Random {
                taken_prob: b.random_taken,
            }
        }
    }

    fn pick_mem_behavior(&mut self) -> MemBehavior {
        let m = self.profile.memory;
        let r = self.rng.f64();
        if r < m.streaming {
            let region_bytes = (m.hot_set_bytes * 4).max(4096);
            let b = MemBehavior::Stream {
                base: self.next_region_base,
                stride: m.stream_stride,
                region_bytes,
            };
            self.next_region_base += region_bytes;
            b
        } else if r < m.streaming + m.hot_set {
            // Hot-set instructions share a small number of regions so that the
            // aggregate hot working set stays close to `hot_set_bytes`.
            let base = DATA_BASE + 0x0800_0000;
            MemBehavior::HotSet {
                base,
                bytes: m.hot_set_bytes,
            }
        } else {
            let base = DATA_BASE + 0x1000_0000;
            MemBehavior::Scattered {
                base,
                bytes: m.scattered_bytes,
            }
        }
    }

    // ---------------------------------------------------------------- emission

    fn finish(mut self) -> SyntheticProgram {
        let function_entries = std::mem::take(&mut self.function_entries);
        let blocks = std::mem::take(&mut self.blocks);
        let main_entry = function_entries[0];

        let mut builder = ProgramBuilder::new();
        for (idx, block) in blocks.iter().enumerate() {
            let term = block
                .term
                .clone()
                .unwrap_or_else(|| panic!("block {idx} was never filled"));
            let terminator = match term {
                ProtoTerm::FallThrough(t) => Terminator::FallThrough(BlockId(t as u32)),
                ProtoTerm::Jump(t) => Terminator::Jump(BlockId(t as u32)),
                ProtoTerm::CondBranch { taken, not_taken } => Terminator::CondBranch {
                    taken: BlockId(taken as u32),
                    not_taken: BlockId(not_taken as u32),
                },
                ProtoTerm::Call {
                    callee_fn,
                    return_to,
                } => Terminator::Call {
                    callee: BlockId(function_entries[callee_fn] as u32),
                    return_to: BlockId(return_to as u32),
                },
                ProtoTerm::Return => Terminator::Return,
                ProtoTerm::JumpToEntry => Terminator::Jump(BlockId(main_entry as u32)),
            };
            let id = builder.block(block.insts.clone(), terminator);
            debug_assert_eq!(id.0 as usize, idx);
        }
        let program = builder.build(BlockId(main_entry as u32));

        // Convert (block, inst index) keys into PCs now that the layout is final.
        // Both a PC-keyed map (stable public API) and dense word-slot-indexed side
        // tables (the trace generator's hot-path lookup) are built from the same
        // entries.
        let base_word = program.blocks()[0].start_pc().word_index();
        let mut branch_dense: Vec<Option<BranchBehavior>> = vec![None; program.len()];
        let mut mem_dense: Vec<Option<MemBehavior>> = vec![None; program.len()];
        let mut branch_behaviors = HashMap::new();
        for (block_idx, behavior) in &self.branch_behaviors {
            let block = program.block(BlockId(*block_idx as u32));
            let branch_offset = block.len() - 1;
            let pc = block.start_pc() + branch_offset as u64;
            debug_assert!(block.insts()[branch_offset].is_cond_branch());
            branch_behaviors.insert(pc, *behavior);
            branch_dense[(pc.word_index() - base_word) as usize] = Some(*behavior);
        }
        let mut mem_behaviors = HashMap::new();
        for ((block_idx, inst_idx), behavior) in &self.mem_behaviors {
            let block = program.block(BlockId(*block_idx as u32));
            let pc = block.start_pc() + *inst_idx as u64;
            debug_assert!(block.insts()[*inst_idx].op().is_mem());
            mem_behaviors.insert(pc, *behavior);
            mem_dense[(pc.word_index() - base_word) as usize] = Some(*behavior);
        }

        SyntheticProgram {
            profile: self.profile,
            program,
            branch_behaviors,
            mem_behaviors,
            base_word,
            branch_dense,
            mem_dense,
            entry: BlockId(main_entry as u32),
        }
    }
}

/// A pending control-flow edge that must be pointed at a continuation block.
#[derive(Debug, Clone, Copy)]
enum Patch {
    FallThrough(usize),
    Jump(usize),
    CondNotTaken(usize),
    CallReturn(usize),
}

#[derive(Debug, Clone, Copy)]
enum PatchSlot {
    FallThrough,
    Jump,
    CondNotTaken,
    CallReturn,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Benchmark;
    use flywheel_isa::CtrlKind;

    fn micro() -> SyntheticProgram {
        Benchmark::Micro.synthesize(7)
    }

    #[test]
    fn synthesis_is_deterministic() {
        let a = Benchmark::Gzip.synthesize(3);
        let b = Benchmark::Gzip.synthesize(3);
        assert_eq!(a.program(), b.program());
        assert_eq!(a.branch_behaviors(), b.branch_behaviors());
        let c = Benchmark::Gzip.synthesize(4);
        assert_ne!(a.program(), c.program());
    }

    #[test]
    fn every_cond_branch_has_a_behavior() {
        let sp = micro();
        for block in sp.program().blocks() {
            for (i, inst) in block.insts().iter().enumerate() {
                let pc = block.start_pc() + i as u64;
                if inst.is_cond_branch() {
                    assert!(
                        sp.branch_behavior(pc).is_some(),
                        "conditional branch at {pc} has no behaviour"
                    );
                }
                if inst.op().is_mem() {
                    assert!(
                        sp.mem_behavior(pc).is_some(),
                        "memory instruction at {pc} has no behaviour"
                    );
                }
            }
        }
    }

    #[test]
    fn cond_branch_not_taken_target_is_fall_through() {
        // The trace-driven front-end assumes that a not-taken branch continues at
        // pc.next(); the synthesizer must lay blocks out accordingly.
        let sp = Benchmark::Gcc.synthesize(11);
        let program = sp.program();
        for block in program.blocks() {
            if let Terminator::CondBranch { not_taken, .. } = block.terminator() {
                assert_eq!(
                    program.block(*not_taken).start_pc(),
                    block.end_pc(),
                    "not-taken successor of {} is not contiguous",
                    block.id()
                );
            }
            if let Terminator::FallThrough(t) = block.terminator() {
                assert_eq!(program.block(*t).start_pc(), block.end_pc());
            }
            if let Terminator::Call { return_to, .. } = block.terminator() {
                assert_eq!(program.block(*return_to).start_pc(), block.end_pc());
            }
        }
    }

    #[test]
    fn call_targets_are_function_entries_and_return_blocks_exist() {
        let sp = Benchmark::Vortex.synthesize(5);
        let program = sp.program();
        let mut call_count = 0;
        for block in program.blocks() {
            if let Terminator::Call { callee, .. } = block.terminator() {
                call_count += 1;
                // The callee must eventually reach a Return terminator.
                let callee_block = program.block(*callee);
                assert!(!callee_block.is_empty());
            }
        }
        assert!(call_count > 0, "vortex should contain call sites");
    }

    #[test]
    fn terminator_instructions_match_terminators() {
        let sp = micro();
        for block in sp.program().blocks() {
            let last = block.insts().last().unwrap();
            match block.terminator() {
                Terminator::CondBranch { .. } => assert!(last.is_cond_branch()),
                Terminator::Jump(_) => assert_eq!(last.ctrl(), Some(CtrlKind::Jump)),
                Terminator::Call { .. } => assert_eq!(last.ctrl(), Some(CtrlKind::Call)),
                Terminator::Return => assert_eq!(last.ctrl(), Some(CtrlKind::Return)),
                Terminator::FallThrough(_) => assert!(last.ctrl().is_none()),
                Terminator::Indirect(_) => assert_eq!(last.ctrl(), Some(CtrlKind::IndirectJump)),
            }
        }
    }

    #[test]
    fn footprint_scales_with_function_count() {
        let small = Benchmark::Gzip.synthesize(1).static_footprint();
        let large = Benchmark::Vortex.synthesize(1).static_footprint();
        assert!(
            large > small * 3,
            "vortex ({large}) should be much larger than gzip ({small})"
        );
    }

    #[test]
    fn dense_behavior_tables_match_pc_keyed_maps() {
        // The hot-path lookups go through the dense word-slot tables; they must
        // agree exactly with the PC-keyed maps for every instruction.
        let sp = Benchmark::Gcc.synthesize(11);
        for block in sp.program().blocks() {
            for i in 0..block.len() {
                let pc = block.start_pc() + i as u64;
                assert_eq!(
                    sp.branch_behavior(pc),
                    sp.branch_behaviors().get(&pc),
                    "branch behaviour mismatch at {pc}"
                );
                assert_eq!(
                    sp.mem_behavior(pc),
                    sp.mem_behaviors().get(&pc),
                    "memory behaviour mismatch at {pc}"
                );
            }
        }
    }

    #[test]
    fn word_slots_are_dense_and_unique() {
        let sp = micro();
        let mut seen = vec![false; sp.static_footprint()];
        for block in sp.program().blocks() {
            for i in 0..block.len() {
                let slot = sp.word_slot(block.start_pc() + i as u64);
                assert!(!seen[slot], "slot {slot} mapped twice");
                seen[slot] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every slot must be covered");
        assert_eq!(sp.word_slot(sp.base_pc()), 0);
    }

    #[test]
    fn loop_latches_use_loopback_behavior() {
        let sp = micro();
        let loopbacks = sp
            .branch_behaviors()
            .values()
            .filter(|b| matches!(b, BranchBehavior::LoopBack { .. }))
            .count();
        assert!(loopbacks > 0, "micro workload should contain loops");
    }
}
