//! Statistical benchmark profiles.

/// Fractions of non-control instruction classes in the generated code.
///
/// The fractions describe the *computational* part of a basic block; conditional
/// branches, jumps, calls and returns are added by the control-flow synthesizer and
/// their density is governed by [`BenchmarkProfile::avg_block_len`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstMixProfile {
    /// Fraction of loads.
    pub load: f64,
    /// Fraction of stores.
    pub store: f64,
    /// Fraction of integer multiplies/divides.
    pub int_muldiv: f64,
    /// Fraction of floating-point adds.
    pub fp_add: f64,
    /// Fraction of floating-point multiplies/divides.
    pub fp_muldiv: f64,
    // Remainder is integer ALU.
}

impl InstMixProfile {
    /// A typical integer-code mix.
    pub fn integer() -> Self {
        InstMixProfile {
            load: 0.24,
            store: 0.12,
            int_muldiv: 0.02,
            fp_add: 0.0,
            fp_muldiv: 0.0,
        }
    }

    /// A typical floating-point-code mix.
    pub fn floating_point() -> Self {
        InstMixProfile {
            load: 0.28,
            store: 0.10,
            int_muldiv: 0.01,
            fp_add: 0.18,
            fp_muldiv: 0.14,
        }
    }

    /// The integer-ALU remainder fraction.
    pub fn int_alu(&self) -> f64 {
        1.0 - self.load - self.store - self.int_muldiv - self.fp_add - self.fp_muldiv
    }

    /// Whether the fractions are all non-negative and sum to at most one.
    pub fn is_valid(&self) -> bool {
        let parts = [
            self.load,
            self.store,
            self.int_muldiv,
            self.fp_add,
            self.fp_muldiv,
        ];
        parts.iter().all(|&p| (0.0..=1.0).contains(&p)) && self.int_alu() >= 0.0
    }
}

/// How predictable the conditional branches of the workload are.
///
/// Each static conditional branch is assigned one of four behaviours at synthesis
/// time; the fractions here control that assignment. Loop back-edges are always
/// loop-behaved and are not governed by these fractions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BranchMixProfile {
    /// Fraction of strongly biased branches (taken or not-taken with probability
    /// [`BranchMixProfile::bias`]).
    pub biased: f64,
    /// Fraction of branches following a short repeating pattern (well predicted by
    /// gshare history).
    pub patterned: f64,
    /// Fraction of data-dependent, essentially random branches (poorly predicted).
    pub random: f64,
    /// Taken probability of a biased branch.
    pub bias: f64,
    /// Taken probability of a random branch.
    pub random_taken: f64,
}

impl BranchMixProfile {
    /// A well-predicted branch population (loops and biased guards).
    pub fn predictable() -> Self {
        BranchMixProfile {
            biased: 0.75,
            patterned: 0.18,
            random: 0.07,
            bias: 0.92,
            random_taken: 0.5,
        }
    }

    /// A control-heavy, hard-to-predict population (e.g. `gcc`).
    pub fn irregular() -> Self {
        BranchMixProfile {
            biased: 0.45,
            patterned: 0.25,
            random: 0.30,
            bias: 0.85,
            random_taken: 0.45,
        }
    }

    /// Whether the fractions sum to one (within rounding).
    pub fn is_valid(&self) -> bool {
        (self.biased + self.patterned + self.random - 1.0).abs() < 1e-9
            && (0.0..=1.0).contains(&self.bias)
            && (0.0..=1.0).contains(&self.random_taken)
    }
}

/// Memory-locality description.
///
/// Each static memory instruction is bound to one of three address-stream behaviours;
/// the fractions and working-set sizes below determine the resulting L1/L2 miss
/// rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryProfile {
    /// Fraction of memory instructions streaming through arrays with a small stride.
    pub streaming: f64,
    /// Fraction of memory instructions touching a small, hot working set.
    pub hot_set: f64,
    /// Fraction of memory instructions touching a large working set (mostly cache
    /// misses).
    pub scattered: f64,
    /// Size of the hot working set in bytes (should fit in L1 for cache-friendly
    /// codes).
    pub hot_set_bytes: u64,
    /// Size of the large working set in bytes (larger than L2 for memory-bound
    /// codes).
    pub scattered_bytes: u64,
    /// Stride, in bytes, of streaming accesses.
    pub stream_stride: u64,
}

impl MemoryProfile {
    /// Cache-friendly memory behaviour.
    pub fn cache_friendly() -> Self {
        MemoryProfile {
            streaming: 0.35,
            hot_set: 0.60,
            scattered: 0.05,
            hot_set_bytes: 32 * 1024,
            scattered_bytes: 8 * 1024 * 1024,
            stream_stride: 8,
        }
    }

    /// Memory-intensive behaviour with a working set exceeding L2.
    pub fn memory_bound() -> Self {
        MemoryProfile {
            streaming: 0.40,
            hot_set: 0.30,
            scattered: 0.30,
            hot_set_bytes: 48 * 1024,
            scattered_bytes: 16 * 1024 * 1024,
            stream_stride: 16,
        }
    }

    /// Whether the fractions sum to one (within rounding).
    pub fn is_valid(&self) -> bool {
        (self.streaming + self.hot_set + self.scattered - 1.0).abs() < 1e-9
            && self.hot_set_bytes > 0
            && self.scattered_bytes > 0
            && self.stream_stride > 0
    }
}

/// Loop-structure description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoopProfile {
    /// Mean trip count of innermost loops.
    pub mean_trip_count: f64,
    /// Maximum loop nesting depth generated.
    pub max_nesting: u32,
    /// Probability that a loop body contains a nested loop (per nesting level).
    pub nest_probability: f64,
}

impl LoopProfile {
    /// Loop-dominated numeric code.
    pub fn loopy() -> Self {
        LoopProfile {
            mean_trip_count: 48.0,
            max_nesting: 3,
            nest_probability: 0.4,
        }
    }

    /// Branchy, call-dominated code with short loops.
    pub fn branchy() -> Self {
        LoopProfile {
            mean_trip_count: 9.0,
            max_nesting: 2,
            nest_probability: 0.25,
        }
    }
}

/// The complete statistical description of a synthetic benchmark.
///
/// A profile is consumed by [`crate::ProgramSynthesizer`] (static structure) and by
/// [`crate::TraceGenerator`] (dynamic behaviour). The per-benchmark calibrated
/// profiles live on [`crate::Benchmark::profile`].
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkProfile {
    /// Human-readable benchmark name.
    pub name: String,
    /// Instruction-class mix.
    pub mix: InstMixProfile,
    /// Conditional-branch behaviour mix.
    pub branches: BranchMixProfile,
    /// Memory-locality behaviour.
    pub memory: MemoryProfile,
    /// Loop structure.
    pub loops: LoopProfile,
    /// Number of synthesized functions (drives static code footprint, I-cache and
    /// Execution Cache pressure).
    pub functions: u32,
    /// Average basic-block length in instructions (excluding the terminator).
    pub avg_block_len: u32,
    /// Mean register dependency distance, in instructions. Small values produce long
    /// dependence chains (low ILP); large values produce independent instructions
    /// (high ILP).
    pub dependency_distance: f64,
    /// Number of distinct architected destination registers the generated code cycles
    /// through. Small values stress the per-architected-register rename pools of the
    /// Flywheel register file (as `gzip`, `vpr` and `parser` do in the paper).
    pub dest_register_span: u32,
    /// Probability that a non-loop region is a call site.
    pub call_probability: f64,
}

impl BenchmarkProfile {
    /// Validates internal consistency of the profile.
    ///
    /// Returns a human-readable description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !self.mix.is_valid() {
            return Err(format!(
                "{}: instruction mix fractions are invalid",
                self.name
            ));
        }
        if !self.branches.is_valid() {
            return Err(format!("{}: branch mix fractions are invalid", self.name));
        }
        if !self.memory.is_valid() {
            return Err(format!("{}: memory profile is invalid", self.name));
        }
        if self.functions == 0 {
            return Err(format!("{}: must have at least one function", self.name));
        }
        if self.avg_block_len == 0 {
            return Err(format!("{}: blocks must not be empty", self.name));
        }
        if self.dependency_distance < 1.0 {
            return Err(format!("{}: dependency distance must be >= 1", self.name));
        }
        if self.dest_register_span < 2 || self.dest_register_span > 22 {
            return Err(format!(
                "{}: destination register span must be in 2..=22 (r23..r31 are reserved \
                 for loop counters and base pointers)",
                self.name
            ));
        }
        if !(0.0..=1.0).contains(&self.call_probability) {
            return Err(format!(
                "{}: call probability must be a probability",
                self.name
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canned_mixes_are_valid() {
        assert!(InstMixProfile::integer().is_valid());
        assert!(InstMixProfile::floating_point().is_valid());
        assert!(BranchMixProfile::predictable().is_valid());
        assert!(BranchMixProfile::irregular().is_valid());
        assert!(MemoryProfile::cache_friendly().is_valid());
        assert!(MemoryProfile::memory_bound().is_valid());
    }

    #[test]
    fn int_alu_is_remainder() {
        let mix = InstMixProfile::integer();
        let total =
            mix.load + mix.store + mix.int_muldiv + mix.fp_add + mix.fp_muldiv + mix.int_alu();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_mix_detected() {
        let mut mix = InstMixProfile::integer();
        mix.load = 0.9;
        mix.store = 0.9;
        assert!(!mix.is_valid());
    }

    #[test]
    fn profile_validation_catches_bad_register_span() {
        let mut p = crate::Benchmark::Gzip.profile();
        assert!(p.validate().is_ok());
        p.dest_register_span = 1;
        assert!(p.validate().is_err());
    }

    #[test]
    fn profile_validation_catches_bad_dependency_distance() {
        let mut p = crate::Benchmark::Mesa.profile();
        p.dependency_distance = 0.0;
        assert!(p.validate().is_err());
    }
}
