//! # flywheel-workloads
//!
//! Synthetic, statistically calibrated stand-ins for the SPEC95 / SPEC2000 benchmarks
//! used in the ISCA 2005 Flywheel paper.
//!
//! The paper evaluates on `ijpeg`, `gcc`, `gzip`, `vpr`, `mesa`, `equake`, `parser`,
//! `vortex`, `bzip2` and `turb3d`. Running the real binaries requires the SPEC suites
//! and an Alpha/PISA toolchain, neither of which is available here, so each benchmark
//! is replaced by a *synthetic program generator* plus a *dynamic trace generator*
//! whose observable microarchitectural behaviour (instruction mix, branch
//! predictability under gshare, cache miss rates, attainable ILP, loop/trace
//! locality, architected-register reuse) is calibrated to the published
//! characteristics of the original benchmark. The simulators only interact with a
//! workload through those statistics, so the *shape* of the paper's results is
//! preserved.
//!
//! The crate exposes:
//!
//! * [`Benchmark`] — the ten paper benchmarks (plus [`Benchmark::Micro`] for tests).
//! * [`BenchmarkProfile`] — the tunable statistical description of a workload.
//! * [`SyntheticProgram`] — a generated static program together with the dynamic
//!   behaviour attached to its branches and memory instructions.
//! * [`TraceGenerator`] — an iterator of [`flywheel_isa::DynInst`] driving the
//!   simulators.
//! * [`RecordedTrace`] / [`TraceCursor`] — a generator stream captured once into a
//!   packed arena and replayed with zero-allocation slice indexing, so sweeps that
//!   run the same workload across many machine configurations pay trace
//!   generation once per benchmark instead of once per cell.
//! * [`TraceStats`] — aggregate statistics of a trace, used for calibration tests.
//!
//! ```
//! use flywheel_workloads::{Benchmark, TraceGenerator};
//!
//! let program = Benchmark::Gzip.synthesize(42);
//! let trace: Vec<_> = TraceGenerator::new(&program, 42).take(1000).collect();
//! assert_eq!(trace.len(), 1000);
//! // The trace is deterministic for a given seed.
//! let again: Vec<_> = TraceGenerator::new(&program, 42).take(1000).collect();
//! assert_eq!(trace, again);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod behavior;
mod profile;
mod recorded;
mod spec;
mod stats;
pub mod stress;
mod synth;
mod trace;

pub use behavior::{BranchBehavior, MemBehavior};
pub use profile::{BenchmarkProfile, BranchMixProfile, InstMixProfile, LoopProfile, MemoryProfile};
pub use recorded::{RecordedTrace, TraceCursor};
pub use spec::Benchmark;
pub use stats::TraceStats;
pub use synth::{ProgramSynthesizer, SyntheticProgram};
pub use trace::TraceGenerator;
