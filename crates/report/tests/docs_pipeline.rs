//! End-to-end tests of the self-regenerating docs pipeline: populate a store,
//! render the documents, verify the `--check` logic accepts faithful docs and
//! catches tampered ones, and prove the regenerated tables are byte-identical
//! to the `experiments` binary's simulation path.

use flywheel_bench::store::ResultStore;
use flywheel_bench::{format_table, run_baseline, run_flywheel, Row};
use flywheel_core::FlywheelConfig;
use flywheel_report::{
    check_block, diff_texts, ec_residency_table, experiments_block, fig11_table, patch_block,
    populate, results_markdown, Source, BLOCK_BEGIN, BLOCK_END,
};
use flywheel_timing::TechNode;
use flywheel_uarch::SimBudget;
use flywheel_workloads::Benchmark;

fn tiny_budget() -> SimBudget {
    SimBudget::new(150, 600)
}

#[test]
fn pipeline_regenerates_checks_and_catches_tampering() {
    let budget = tiny_budget();
    let mut store = ResultStore::in_memory();

    // Cold populate simulates every figure cell; a second populate is free.
    let first = populate(&mut store, budget).unwrap();
    assert!(first.simulated > 0);
    let second = populate(&mut store, budget).unwrap();
    assert_eq!(second.simulated, 0, "populate must be incremental");
    assert_eq!(second.hits, first.hits + first.simulated);

    // Regeneration is deterministic: two renders are byte-identical.
    let mut src = Source::read_only(&mut store);
    let results = results_markdown(&mut src, budget, None).unwrap();
    let block = experiments_block(&mut src, budget).unwrap();
    let mut src = Source::read_only(&mut store);
    assert_eq!(results, results_markdown(&mut src, budget, None).unwrap());

    // A faithful document passes the check.
    let doc =
        format!("# Experiments\n\nprose\n\n{BLOCK_BEGIN}\nstale\n{BLOCK_END}\n\nmore prose\n");
    let published = patch_block(&doc, &block).unwrap();
    check_block(&published, &block, "EXPERIMENTS.md").unwrap();
    diff_texts(&results, &results, "RESULTS.md").unwrap();

    // Tamper with one digit inside a figure table: the check must fail and
    // point at the divergence.
    let digit = published
        .char_indices()
        .skip(published.find("== Figure 11").unwrap())
        .find(|(_, c)| c.is_ascii_digit())
        .map(|(i, _)| i)
        .unwrap();
    let mut tampered = published.clone();
    let old = tampered.remove(digit);
    tampered.insert(digit, if old == '9' { '8' } else { '9' });
    let err = check_block(&tampered, &block, "EXPERIMENTS.md").unwrap_err();
    assert!(err.contains("out of sync"), "got: {err}");

    // Deleting a marker is reported as such, not as a silent pass.
    let headless = published.replace(BLOCK_END, "");
    assert!(check_block(&headless, &block, "EXPERIMENTS.md").is_err());

    // Tampering RESULTS.md is caught by the same diff.
    let tampered_results = results.replacen("average", "avg", 1);
    assert!(diff_texts(&tampered_results, &results, "RESULTS.md").is_err());
}

#[test]
fn store_backed_tables_match_the_simulation_path_byte_for_byte() {
    // Render Figure 11 and the EC-residency study from stored records and
    // recompute them the way the experiments binary does, through the same
    // shared format_table; the bytes must agree.
    let budget = tiny_budget();
    let mut store = ResultStore::in_memory();
    populate(&mut store, budget).unwrap();
    let mut src = Source::read_only(&mut store);
    let from_store = fig11_table(&mut src, budget).unwrap();
    let residency_from_store = ec_residency_table(&mut src, budget).unwrap();

    let node = TechNode::N130;
    let columns = vec!["reg-alloc".to_owned(), "flywheel".to_owned()];
    let mut rows = Vec::new();
    let mut res_rows = Vec::new();
    for &bench in Benchmark::paper_suite() {
        let base = run_baseline(bench, node, budget);
        let regalloc = run_flywheel(
            bench,
            FlywheelConfig::register_allocation_only(node),
            budget,
        );
        let flywheel = run_flywheel(bench, FlywheelConfig::paper_iso_clock(node), budget);
        rows.push(Row {
            bench: bench.name(),
            values: vec![regalloc.speedup_over(&base), flywheel.speedup_over(&base)],
        });
        res_rows.push(Row {
            bench: bench.name(),
            values: vec![
                flywheel.flywheel.ec_residency,
                flywheel.flywheel.ec_hit_rate(),
            ],
        });
    }
    let expected = format_table(
        "Figure 11: performance at the baseline clock, normalized to the baseline",
        &columns,
        &rows,
    );
    assert_eq!(from_store, expected);
    let expected_res = format_table(
        "Execution-path residency (paper reports an 88% average; vortex the lowest)",
        &["residency".to_owned(), "ec hit rate".to_owned()],
        &res_rows,
    );
    assert_eq!(residency_from_store, expected_res);
}

#[test]
fn missing_records_name_the_populate_commands() {
    let mut store = ResultStore::in_memory();
    let mut src = Source::read_only(&mut store);
    let err = fig11_table(&mut src, tiny_budget()).unwrap_err();
    assert!(err.contains("--populate"), "got: {err}");
    assert!(err.contains("--store results.store"), "got: {err}");
}
