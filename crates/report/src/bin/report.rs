//! Regenerates (or verifies) the repo's published result documents from the
//! content-addressed result store.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p flywheel-report --bin report -- [options]
//!
//! --store PATH        result store to read (default: results.store)
//! --insts N           measured instructions per cell, N/10 warm-up on top
//!                     (default: the experiment budget, 250000)
//! --bench-json PATH   throughput report to embed (default: BENCH.json;
//!                     skipped if the file does not exist)
//! --results PATH      RESULTS.md artifact (default: RESULTS.md)
//! --experiments PATH  document carrying the generated figure block
//!                     (default: EXPERIMENTS.md)
//! --scenario-json PATH  scenario run JSON (the `scenarios` binary's `--json`
//!                     output); appends a "Degraded cells" section to
//!                     RESULTS.md surfacing any failed-cell manifest
//! --telemetry-log PATH  flywheel-telemetry/1 event log (written under
//!                     `--telemetry`); appends a "Kernel telemetry" section
//!                     with per-cell EC-residency timelines and occupancy
//!                     sparklines
//! --populate          simulate (and store) any record the figures need that
//!                     the store is missing, instead of failing
//! --check             verify the committed documents against the store and
//!                     exit non-zero on any disagreement, writing nothing
//! ```
//!
//! Without `--check`, the binary writes RESULTS.md and rewrites the generated
//! block of EXPERIMENTS.md in place. With `--check` (the CI gate), both files
//! are regenerated in memory and byte-compared against what is committed —
//! the paper tables in the docs therefore provably match `golden.txt`-pinned
//! simulator behaviour.

use flywheel_bench::store::ResultStore;
use flywheel_bench::telemetry::TelemetryLog;
use flywheel_report::{
    check_block, degraded_cells_section, diff_texts, experiments_block, patch_block, populate,
    results_markdown, telemetry_section, Source,
};
use flywheel_uarch::SimBudget;

fn usage() -> ! {
    eprintln!(
        "usage: report [--store PATH] [--insts N] [--bench-json PATH] \
         [--results PATH] [--experiments PATH] [--scenario-json PATH] \
         [--telemetry-log PATH] [--populate] [--check]"
    );
    std::process::exit(1);
}

fn fail(msg: &str) -> ! {
    eprintln!("report: {msg}");
    std::process::exit(1);
}

fn main() {
    let mut store_path = "results.store".to_owned();
    let mut bench_json_path = "BENCH.json".to_owned();
    let mut results_path = "RESULTS.md".to_owned();
    let mut experiments_path = "EXPERIMENTS.md".to_owned();
    let mut scenario_json_path: Option<String> = None;
    let mut telemetry_log_path: Option<String> = None;
    let mut budget = flywheel_bench::experiment_budget();
    let mut do_populate = false;
    let mut do_check = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || it.next().map(String::to_owned).unwrap_or_else(|| usage());
        match arg.as_str() {
            "--store" => store_path = value(),
            "--bench-json" => bench_json_path = value(),
            "--results" => results_path = value(),
            "--experiments" => experiments_path = value(),
            "--scenario-json" => scenario_json_path = Some(value()),
            "--telemetry-log" => telemetry_log_path = Some(value()),
            "--insts" => {
                let n: u64 = value().parse().unwrap_or_else(|_| usage());
                budget = SimBudget::new(n / 10, n);
            }
            "--populate" => do_populate = true,
            "--check" => do_check = true,
            _ => usage(),
        }
    }

    let mut store = ResultStore::open(&store_path)
        .unwrap_or_else(|e| fail(&format!("could not open store {store_path}: {e}")));
    println!("store {store_path}: {} records", store.len());

    if do_populate {
        let summary = populate(&mut store, budget).unwrap_or_else(|e| fail(&e));
        println!(
            "populate: {} cells recalled, {} simulated, {} records total",
            summary.hits,
            summary.simulated,
            store.len()
        );
    }

    let bench_json = std::fs::read_to_string(&bench_json_path).ok();
    if bench_json.is_none() {
        println!(
            "note: {bench_json_path} not found; RESULTS.md will omit the throughput trajectory"
        );
    }

    let mut src = Source::read_only(&mut store);
    let mut results =
        results_markdown(&mut src, budget, bench_json.as_deref()).unwrap_or_else(|e| fail(&e));
    if let Some(path) = &scenario_json_path {
        let json = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("could not read {path}: {e}")));
        let section =
            degraded_cells_section(&json).unwrap_or_else(|e| fail(&format!("{path}: {e}")));
        results.push_str(&section);
    }
    if let Some(path) = &telemetry_log_path {
        let log = TelemetryLog::read(std::path::Path::new(path)).unwrap_or_else(|e| fail(&e));
        println!("telemetry log {path}: {}", log.describe());
        results.push_str(&telemetry_section(&log));
    }
    let block = experiments_block(&mut src, budget).unwrap_or_else(|e| fail(&e));

    if do_check {
        let mut failures = Vec::new();
        match std::fs::read_to_string(&results_path) {
            Ok(committed) => {
                if let Err(e) = diff_texts(&committed, &results, &results_path) {
                    failures.push(e);
                }
            }
            Err(e) => failures.push(format!("{results_path}: {e}")),
        }
        match std::fs::read_to_string(&experiments_path) {
            Ok(committed) => {
                if let Err(e) = check_block(&committed, &block, &experiments_path) {
                    failures.push(e);
                }
            }
            Err(e) => failures.push(format!("{experiments_path}: {e}")),
        }
        if failures.is_empty() {
            println!("check: {results_path} and {experiments_path} match the store");
        } else {
            for f in &failures {
                eprintln!("report: {f}");
            }
            eprintln!(
                "report: committed docs drifted from the result store; regenerate them with \
                 `cargo run --release -p flywheel-report --bin report`"
            );
            std::process::exit(1);
        }
    } else {
        std::fs::write(&results_path, &results)
            .unwrap_or_else(|e| fail(&format!("could not write {results_path}: {e}")));
        println!("wrote {results_path}");
        let doc = std::fs::read_to_string(&experiments_path)
            .unwrap_or_else(|e| fail(&format!("could not read {experiments_path}: {e}")));
        let patched =
            patch_block(&doc, &block).unwrap_or_else(|e| fail(&format!("{experiments_path}: {e}")));
        if patched != doc {
            std::fs::write(&experiments_path, patched)
                .unwrap_or_else(|e| fail(&format!("could not write {experiments_path}: {e}")));
            println!("updated the generated block of {experiments_path}");
        } else {
            println!("{experiments_path} already up to date");
        }
    }
}
