//! # flywheel-report
//!
//! The self-regenerating documentation pipeline: turns the content-addressed
//! result store (`flywheel_bench::store`) back into the Markdown the repo
//! publishes, so the numbers in the docs are provably the numbers the
//! simulators produce.
//!
//! * Every paper figure table (Figures 2, 11, 12, 13, 14, 15, the
//!   Execution-Cache residency study, and the per-node leakage-attribution
//!   companion tables introduced with the attributed power model) is rendered
//!   from stored [`RunStats`](flywheel_bench::store::RunStats) records through
//!   the exact same [`format_table`] path the `experiments` binary prints, so a
//!   regenerated table is byte-identical to a freshly simulated one.
//! * [`results_markdown`] assembles the full `RESULTS.md` artifact: figure
//!   tables plus the simulator-throughput trajectory read from `BENCH.json`.
//! * [`patch_block`]/[`extract_block`] maintain the generated section of
//!   `EXPERIMENTS.md` between `flywheel-report` markers.
//! * The `report` binary drives it all, and its `--check` mode is the CI gate
//!   that fails when committed docs disagree with the store.
//!
//! Reads go through a [`Source`], which either refuses to simulate
//! ([`Source::read_only`], the `--check` path) or fills store misses by
//! simulating the missing cell ([`Source::computing`], the `--populate` path).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use flywheel_bench::stats::Aggregate;
use flywheel_bench::store::{ResultStore, StoreSummary};
use flywheel_bench::telemetry::TelemetryLog;
use flywheel_bench::{
    format_table, run_baseline_cfg, run_flywheel_cfg, Row, CLOCK_SWEEP, EXPERIMENT_SEED,
};
use flywheel_core::{FlywheelConfig, FlywheelResult};
use flywheel_timing::TechNode;
use flywheel_uarch::telemetry::{ClockDomain, TelemetryEvent};
use flywheel_uarch::{BaselineConfig, SimBudget, SimResult};
use flywheel_workloads::Benchmark;

/// The marker opening the generated section of EXPERIMENTS.md.
pub const BLOCK_BEGIN: &str = "<!-- flywheel-report:begin -->";
/// The marker closing the generated section of EXPERIMENTS.md.
pub const BLOCK_END: &str = "<!-- flywheel-report:end -->";

/// The technology node every simulated figure uses (the paper's 0.13 µm).
fn node() -> TechNode {
    TechNode::N130
}

/// The seed axis of the seed-sensitivity study: the experiment seed the
/// figures use plus four more, so every sensitivity aggregate carries n = 5
/// independent workload synthesis draws (t-distribution CIs at df = 4).
pub fn sensitivity_seeds() -> &'static [u64] {
    &[2005, 2006, 2007, 2008, 2009]
}

/// A store-backed supplier of simulation results for the figure renderers.
pub struct Source<'a> {
    store: &'a mut ResultStore,
    compute: bool,
    summary: StoreSummary,
}

impl<'a> Source<'a> {
    /// A source that only recalls stored records; a missing record is an
    /// error telling the operator how to populate the store.
    pub fn read_only(store: &'a mut ResultStore) -> Self {
        Source {
            store,
            compute: false,
            summary: StoreSummary::default(),
        }
    }

    /// A source that simulates (and stores) any missing record.
    pub fn computing(store: &'a mut ResultStore) -> Self {
        Source {
            store,
            compute: true,
            summary: StoreSummary::default(),
        }
    }

    /// How many records this source recalled vs simulated so far.
    pub fn summary(&self) -> StoreSummary {
        self.summary
    }

    fn missing(&self, what: &str) -> String {
        format!(
            "no stored record for {what}; populate the store first \
             (`cargo run --release -p flywheel-report --bin report -- --populate` or \
             `cargo run --release -p flywheel-bench --bin experiments -- all --store results.store`)"
        )
    }

    fn baseline_seeded(
        &mut self,
        bench: Benchmark,
        cfg: BaselineConfig,
        seed: u64,
        budget: SimBudget,
    ) -> Result<SimResult, String> {
        if let Some(r) = self.store.recall_baseline(&cfg, bench, seed, budget) {
            self.summary.hits += 1;
            return Ok(r);
        }
        if !self.compute {
            return Err(self.missing(&format!("baseline/{}/s{seed}", bench.name())));
        }
        let r = run_baseline_cfg(bench, seed, cfg.clone(), budget);
        self.summary.simulated += 1;
        self.store
            .record_baseline(&cfg, bench, seed, budget, &r)
            .map_err(|e| format!("could not append to the result store: {e}"))?;
        Ok(r)
    }

    fn baseline(
        &mut self,
        bench: Benchmark,
        cfg: BaselineConfig,
        budget: SimBudget,
    ) -> Result<SimResult, String> {
        self.baseline_seeded(bench, cfg, EXPERIMENT_SEED, budget)
    }

    fn flywheel_seeded(
        &mut self,
        bench: Benchmark,
        cfg: FlywheelConfig,
        seed: u64,
        budget: SimBudget,
    ) -> Result<FlywheelResult, String> {
        if let Some(r) = self.store.recall_flywheel(&cfg, bench, seed, budget) {
            self.summary.hits += 1;
            return Ok(r);
        }
        if !self.compute {
            return Err(self.missing(&format!("flywheel/{}/s{seed}", bench.name())));
        }
        let r = run_flywheel_cfg(bench, seed, cfg.clone(), budget);
        self.summary.simulated += 1;
        self.store
            .record_flywheel(&cfg, bench, seed, budget, &r)
            .map_err(|e| format!("could not append to the result store: {e}"))?;
        Ok(r)
    }

    fn flywheel(
        &mut self,
        bench: Benchmark,
        cfg: FlywheelConfig,
        budget: SimBudget,
    ) -> Result<FlywheelResult, String> {
        self.flywheel_seeded(bench, cfg, EXPERIMENT_SEED, budget)
    }
}

/// Figure 2 (pipeline-loop stretching), byte-identical to `experiments fig2`.
pub fn fig2_table(src: &mut Source<'_>, budget: SimBudget) -> Result<String, String> {
    let columns = vec!["fetch+1 %".to_owned(), "wakeup/sel %".to_owned()];
    let mut rows = Vec::new();
    for &bench in Benchmark::paper_suite() {
        let base = src.baseline(bench, BaselineConfig::paper(node()), budget)?;
        let deeper = src.baseline(
            bench,
            BaselineConfig::paper(node()).with_extra_frontend_stage(),
            budget,
        )?;
        let piped = src.baseline(
            bench,
            BaselineConfig::paper(node()).with_pipelined_wakeup(),
            budget,
        )?;
        let degradation =
            |v: &SimResult| (v.elapsed_ps as f64 / base.elapsed_ps as f64 - 1.0) * 100.0;
        rows.push(Row {
            bench: bench.name(),
            values: vec![degradation(&deeper), degradation(&piped)],
        });
    }
    Ok(format_table(
        "Figure 2: performance degradation (%) from pipeline-loop stretching",
        &columns,
        &rows,
    ))
}

/// Figure 11 (machines at the baseline clock), byte-identical to
/// `experiments fig11`.
pub fn fig11_table(src: &mut Source<'_>, budget: SimBudget) -> Result<String, String> {
    let columns = vec!["reg-alloc".to_owned(), "flywheel".to_owned()];
    let mut rows = Vec::new();
    for &bench in Benchmark::paper_suite() {
        let base = src.baseline(bench, BaselineConfig::paper(node()), budget)?;
        let regalloc = src.flywheel(
            bench,
            FlywheelConfig::register_allocation_only(node()),
            budget,
        )?;
        let flywheel = src.flywheel(bench, FlywheelConfig::paper_iso_clock(node()), budget)?;
        rows.push(Row {
            bench: bench.name(),
            values: vec![regalloc.speedup_over(&base), flywheel.speedup_over(&base)],
        });
    }
    Ok(format_table(
        "Figure 11: performance at the baseline clock, normalized to the baseline",
        &columns,
        &rows,
    ))
}

/// Which Figure 12–14 metric to read off the shared clock-sweep matrix.
#[derive(Debug, Clone, Copy)]
pub enum ClockSweepMetric {
    /// Figure 12: relative performance.
    Performance,
    /// Figure 13: relative energy.
    Energy,
    /// Figure 14: relative power.
    Power,
}

impl ClockSweepMetric {
    fn title(&self) -> &'static str {
        match self {
            ClockSweepMetric::Performance => "Figure 12: relative performance",
            ClockSweepMetric::Energy => "Figure 13: relative energy",
            ClockSweepMetric::Power => "Figure 14: relative power",
        }
    }
}

/// One of the Figure 12–14 tables, byte-identical to the `experiments`
/// binary's `fig12`/`fig13`/`fig14` output.
pub fn clock_sweep_table(
    src: &mut Source<'_>,
    metric: ClockSweepMetric,
    budget: SimBudget,
) -> Result<String, String> {
    let columns: Vec<String> = CLOCK_SWEEP
        .iter()
        .map(|(fe, be)| format!("FE{fe}/BE{be}"))
        .collect();
    let mut rows = Vec::new();
    for &bench in Benchmark::paper_suite() {
        let base = src.baseline(bench, BaselineConfig::paper(node()), budget)?;
        let mut values = Vec::new();
        for &(fe, be) in &CLOCK_SWEEP {
            let fly = src.flywheel(bench, FlywheelConfig::paper(node(), fe, be), budget)?;
            values.push(match metric {
                ClockSweepMetric::Performance => fly.speedup_over(&base),
                ClockSweepMetric::Energy => fly.energy_ratio_over(&base),
                ClockSweepMetric::Power => fly.power_ratio_over(&base),
            });
        }
        rows.push(Row {
            bench: bench.name(),
            values,
        });
    }
    Ok(format_table(metric.title(), &columns, &rows))
}

/// Figure 15 (relative energy per technology node), byte-identical to
/// `experiments fig15`.
pub fn fig15_table(src: &mut Source<'_>, budget: SimBudget) -> Result<String, String> {
    let nodes = TechNode::power_study_nodes();
    let columns: Vec<String> = nodes.iter().map(|n| n.to_string()).collect();
    let mut rows = Vec::new();
    for &bench in Benchmark::paper_suite() {
        let mut values = Vec::new();
        for &n in nodes {
            let base = src.baseline(bench, BaselineConfig::paper(n), budget)?;
            let fly = src.flywheel(bench, FlywheelConfig::paper(n, 100, 50), budget)?;
            values.push(fly.energy_ratio_over(&base));
        }
        rows.push(Row {
            bench: bench.name(),
            values,
        });
    }
    Ok(format_table(
        "Figure 15: relative energy of Flywheel (FE100%, BE50%) per technology node",
        &columns,
        &rows,
    ))
}

/// The leakage-attribution companion to Figure 15 at one technology node: how
/// much of each machine's total energy is leakage, how much of the Flywheel
/// machine's total leaks through its extra structures (Execution Cache +
/// Register Update — exactly the components the baseline no longer pays for
/// since the attributed power model), and the energy-delay-product ratio that
/// summarizes the trade.
///
/// Reads the same cells as Figure 15, so it adds no simulations to
/// [`populate`].
pub fn leakage_attribution_table(
    src: &mut Source<'_>,
    n: TechNode,
    budget: SimBudget,
) -> Result<String, String> {
    let columns = vec![
        "base leak %".to_owned(),
        "fly leak %".to_owned(),
        "fly extra %".to_owned(),
        "edp ratio".to_owned(),
    ];
    let mut rows = Vec::new();
    for &bench in Benchmark::paper_suite() {
        let base = src.baseline(bench, BaselineConfig::paper(n), budget)?;
        let fly = src.flywheel(bench, FlywheelConfig::paper(n, 100, 50), budget)?;
        rows.push(Row {
            bench: bench.name(),
            values: vec![
                base.energy.leakage_fraction() * 100.0,
                fly.sim.energy.leakage_fraction() * 100.0,
                fly.sim.energy.flywheel_leakage_fraction() * 100.0,
                fly.sim.edp_ratio_over(&base),
            ],
        });
    }
    Ok(format_table(
        &format!("Leakage attribution at {n} (Flywheel at FE100%, BE50%)"),
        &columns,
        &rows,
    ))
}

/// The Execution-Cache residency study, byte-identical to
/// `experiments ec_residency`.
pub fn ec_residency_table(src: &mut Source<'_>, budget: SimBudget) -> Result<String, String> {
    let columns = vec!["residency".to_owned(), "ec hit rate".to_owned()];
    let mut rows = Vec::new();
    for &bench in Benchmark::paper_suite() {
        let fly = src.flywheel(bench, FlywheelConfig::paper_iso_clock(node()), budget)?;
        rows.push(Row {
            bench: bench.name(),
            values: vec![fly.flywheel.ec_residency, fly.flywheel.ec_hit_rate()],
        });
    }
    Ok(format_table(
        "Execution-path residency (paper reports an 88% average; vortex the lowest)",
        &columns,
        &rows,
    ))
}

/// One row of a seed-sensitivity table: per column, a `(mean, ci95)` pair.
struct CiRow {
    bench: &'static str,
    values: Vec<(f64, f64)>,
}

/// Renders a seed-sensitivity table in the figure-table style, one
/// `mean ± half-width` cell per column, plus the average row. Kept separate
/// from [`format_table`] because confidence half-widths need more digits
/// than point estimates.
fn format_ci_table(title: &str, columns: &[String], rows: &[CiRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "\n== {title} ==");
    let _ = write!(out, "{:<10}", "bench");
    for c in columns {
        let _ = write!(out, " {c:>16}");
    }
    let _ = writeln!(out);
    let mut sums = vec![(0.0, 0.0); columns.len()];
    for row in rows {
        let _ = write!(out, "{:<10}", row.bench);
        for (i, &(mean, hw)) in row.values.iter().enumerate() {
            sums[i].0 += mean;
            sums[i].1 += hw;
            let _ = write!(out, " {mean:>8.3} ±{hw:>6.4}");
        }
        let _ = writeln!(out);
    }
    let _ = write!(out, "{:<10}", "average");
    for &(sum_mean, sum_hw) in &sums {
        let _ = write!(
            out,
            " {:>8.3} ±{:>6.4}",
            sum_mean / rows.len() as f64,
            sum_hw / rows.len() as f64
        );
    }
    let _ = writeln!(out);
    out
}

/// Below this many measured instructions per cell, the relative CI-width
/// gate is waived: a few hundred instructions measure synthesis noise, not
/// the mechanism, so wide intervals are expected there. The published docs
/// always render at the experiment budget (250k), far above this line.
const CI_GATE_MIN_MEASURED: u64 = 50_000;

/// The CI-width sanity gate: a seed-sensitivity interval must be finite and
/// non-negative at any budget, and plausibly narrow at a real one. A
/// half-width exceeding the point estimate itself at the experiment budget
/// means the metric is unstable across seeds (or a wrong-seed record leaked
/// into the aggregate) — the renderer refuses, which fails `report --check`
/// and `--populate` alike. The threshold is deliberately loose: the
/// byte-compare of the rendered tables is the precision gate; this one only
/// rejects statistical nonsense. (The widest natural interval across the
/// committed seed axis is parser at 73% of its estimate — workload synthesis
/// genuinely restructures the program per seed.)
fn check_ci(what: &str, agg: &Aggregate, budget: SimBudget) -> Result<(), String> {
    let mean = agg.mean();
    let hw = agg.ci95_halfwidth();
    if !mean.is_finite() || !hw.is_finite() || hw < 0.0 {
        return Err(format!(
            "seed-sensitivity CI for {what} is degenerate (mean {mean}, ±{hw})"
        ));
    }
    if budget.measured_instructions < CI_GATE_MIN_MEASURED {
        return Ok(());
    }
    let rel = hw / mean.abs().max(1e-12);
    if rel > 1.0 {
        return Err(format!(
            "seed-sensitivity CI for {what} is implausibly wide: {mean:.6} ± {hw:.6} \
             ({:.1}% of the estimate) — the metric is unstable across seeds or a \
             wrong-seed record entered the aggregate",
            rel * 100.0
        ));
    }
    Ok(())
}

/// Seed sensitivity of Figure 11: the reg-alloc and Flywheel speedups as
/// mean ± 95% CI over [`sensitivity_seeds`] (each seed is an independent
/// workload-synthesis draw of the same statistical profile, so the interval
/// measures how much of the figure is synthesis luck rather than mechanism).
pub fn fig11_seed_sensitivity_table(
    src: &mut Source<'_>,
    budget: SimBudget,
) -> Result<String, String> {
    let seeds = sensitivity_seeds();
    let columns = vec!["reg-alloc".to_owned(), "flywheel".to_owned()];
    let mut rows = Vec::new();
    for &bench in Benchmark::paper_suite() {
        let mut ra = Aggregate::new();
        let mut fly = Aggregate::new();
        for &seed in seeds {
            let base = src.baseline_seeded(bench, BaselineConfig::paper(node()), seed, budget)?;
            let regalloc = src.flywheel_seeded(
                bench,
                FlywheelConfig::register_allocation_only(node()),
                seed,
                budget,
            )?;
            let full =
                src.flywheel_seeded(bench, FlywheelConfig::paper_iso_clock(node()), seed, budget)?;
            ra.add(regalloc.speedup_over(&base));
            fly.add(full.speedup_over(&base));
        }
        check_ci(&format!("{}/reg-alloc", bench.name()), &ra, budget)?;
        check_ci(&format!("{}/flywheel", bench.name()), &fly, budget)?;
        rows.push(CiRow {
            bench: bench.name(),
            values: vec![
                (ra.mean(), ra.ci95_halfwidth()),
                (fly.mean(), fly.ci95_halfwidth()),
            ],
        });
    }
    Ok(format_ci_table(
        &format!(
            "Seed sensitivity (Figure 11): speedup mean ± 95% CI over {} seeds",
            seeds.len()
        ),
        &columns,
        &rows,
    ))
}

/// Seed sensitivity of Figure 15: the per-node relative energy of Flywheel
/// (FE100%, BE50%) as mean ± 95% CI over [`sensitivity_seeds`].
pub fn fig15_seed_sensitivity_table(
    src: &mut Source<'_>,
    budget: SimBudget,
) -> Result<String, String> {
    let seeds = sensitivity_seeds();
    let nodes = TechNode::power_study_nodes();
    let columns: Vec<String> = nodes.iter().map(|n| n.to_string()).collect();
    let mut rows = Vec::new();
    for &bench in Benchmark::paper_suite() {
        let mut values = Vec::new();
        for &n in nodes {
            let mut energy = Aggregate::new();
            for &seed in seeds {
                let base = src.baseline_seeded(bench, BaselineConfig::paper(n), seed, budget)?;
                let fly =
                    src.flywheel_seeded(bench, FlywheelConfig::paper(n, 100, 50), seed, budget)?;
                energy.add(fly.energy_ratio_over(&base));
            }
            check_ci(&format!("{}/{n}", bench.name()), &energy, budget)?;
            values.push((energy.mean(), energy.ci95_halfwidth()));
        }
        rows.push(CiRow {
            bench: bench.name(),
            values,
        });
    }
    Ok(format_ci_table(
        &format!(
            "Seed sensitivity (Figure 15): relative energy mean ± 95% CI over {} seeds",
            seeds.len()
        ),
        &columns,
        &rows,
    ))
}

/// All figure tables, in the `experiments all` order.
pub fn all_figure_tables(src: &mut Source<'_>, budget: SimBudget) -> Result<String, String> {
    let mut out = String::new();
    out.push_str(&fig2_table(src, budget)?);
    out.push_str(&fig11_table(src, budget)?);
    out.push_str(&clock_sweep_table(
        src,
        ClockSweepMetric::Performance,
        budget,
    )?);
    out.push_str(&clock_sweep_table(src, ClockSweepMetric::Energy, budget)?);
    out.push_str(&clock_sweep_table(src, ClockSweepMetric::Power, budget)?);
    out.push_str(&fig15_table(src, budget)?);
    for &n in TechNode::power_study_nodes() {
        out.push_str(&leakage_attribution_table(src, n, budget)?);
    }
    out.push_str(&ec_residency_table(src, budget)?);
    out.push_str(&fig11_seed_sensitivity_table(src, budget)?);
    out.push_str(&fig15_seed_sensitivity_table(src, budget)?);
    Ok(out)
}

/// Simulates (or recalls) every cell the figure tables read, appending any
/// missing record to the store. Returns how many cells were recalled vs
/// simulated.
pub fn populate(store: &mut ResultStore, budget: SimBudget) -> Result<StoreSummary, String> {
    let mut src = Source::computing(store);
    all_figure_tables(&mut src, budget)?;
    Ok(src.summary())
}

/// Extracts one field of a hand-assembled `BENCH.json` object line.
fn json_field<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let pat = format!("\"{name}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        return stripped.split('"').next();
    }
    rest.split([',', '}']).next().map(str::trim)
}

/// Renders the simulator-throughput trajectory table from a `BENCH.json`
/// document written by the `experiments` binary.
pub fn trajectory_table(bench_json: &str) -> Result<String, String> {
    if !bench_json.contains("\"schema\": \"flywheel-bench/1\"") {
        return Err("BENCH.json: unknown or missing schema".to_owned());
    }
    let mut out = String::new();
    out.push_str("| experiment | wall s | simulated instructions | MIPS |\n");
    out.push_str("|------------|-------:|-----------------------:|-----:|\n");
    let mut rows = 0;
    for line in bench_json.lines() {
        let line = line.trim();
        let name = if line.starts_with("{\"name\":") {
            json_field(line, "name")
        } else if line.starts_with("\"total\":") {
            Some("**total**")
        } else {
            continue;
        };
        let (Some(name), Some(wall), Some(insts), Some(mips)) = (
            name,
            json_field(line, "wall_seconds"),
            json_field(line, "simulated_instructions"),
            json_field(line, "simulated_mips"),
        ) else {
            return Err(format!("BENCH.json: malformed line '{line}'"));
        };
        // Entries answered entirely from the result store measured recall
        // speed, not simulation, and are excluded from the total line.
        let recalled = if json_field(line, "recalled") == Some("true") {
            " (recalled)"
        } else {
            ""
        };
        out.push_str(&format!(
            "| {name}{recalled} | {wall} | {insts} | {mips} |\n"
        ));
        rows += 1;
    }
    if rows == 0 {
        return Err("BENCH.json: no experiment entries found".to_owned());
    }
    Ok(out)
}

/// Renders the "Degraded cells" section from a scenario JSON document
/// (`flywheel-scenarios/2` or `/3`, written by the `scenarios` binary's
/// `--json` flag): the failed-cell manifest as a Markdown table, or — when
/// the run completed every cell — a one-line all-clear. A fault-tolerant
/// sweep can finish without some cells (see `flywheel_bench::scenario`); this
/// section keeps that degradation visible in the published docs instead of
/// letting a silently smaller grid masquerade as a complete one. Schema `/3`
/// added the seed axis and per-point seed aggregates; the failed-cell
/// manifest this section reads is unchanged between the two.
pub fn degraded_cells_section(scenario_json: &str) -> Result<String, String> {
    if !scenario_json.contains("\"schema\": \"flywheel-scenarios/2\"")
        && !scenario_json.contains("\"schema\": \"flywheel-scenarios/3\"")
    {
        return Err(
            "scenario JSON: unknown or missing schema (need flywheel-scenarios/2 or /3)".to_owned(),
        );
    }
    let mut out = String::new();
    out.push_str("\n## Degraded cells\n\n");
    let mut rows = String::new();
    let mut failed = 0;
    for line in scenario_json.lines() {
        let line = line.trim();
        if !line.starts_with("{\"label\":") {
            continue;
        }
        let (Some(label), Some(cause), Some(attempts), Some(detail)) = (
            json_field(line, "label"),
            json_field(line, "cause"),
            json_field(line, "attempts"),
            json_field(line, "detail"),
        ) else {
            return Err(format!(
                "scenario JSON: malformed failed-cell line '{line}'"
            ));
        };
        rows.push_str(&format!(
            "| `{label}` | {cause} | {attempts} | {detail} |\n"
        ));
        failed += 1;
    }
    let cell_count = scenario_json
        .lines()
        .filter(|l| l.trim().starts_with("{\"bench\":"))
        .count();
    if failed == 0 {
        out.push_str(&format!(
            "Complete run: all {cell_count} cells simulated, none failed.\n"
        ));
    } else {
        out.push_str(&format!(
            "**Degraded run**: {failed} of {} cells failed after bounded retries; \
             the sweep completed without them. Re-run the scenario (warm cells are\n\
             recalled from the store) to fill the gaps.\n\n",
            cell_count + failed,
        ));
        out.push_str("| cell | cause | attempts | detail |\n");
        out.push_str("|------|-------|---------:|--------|\n");
        out.push_str(&rows);
    }
    Ok(out)
}

/// Per-cell accumulation behind [`telemetry_section`].
struct CellTelemetry {
    label: String,
    key_hex: String,
    events: u64,
    /// ROB occupancy per sample, in drain order (the sparkline's raw data).
    rob_samples: Vec<u32>,
    /// Closed (and one possibly-open) Execution-Cache intervals, back-end
    /// cycles: `(enter, Some(exit))` or `(enter, None)` when the run ended
    /// while still resident.
    ec_intervals: Vec<(u64, Option<u64>)>,
    open_enter: Option<u64>,
    gated_fe_cycles: u64,
    pool_stalls: u64,
    last_be_cycle: u64,
}

impl CellTelemetry {
    fn new(label: &str, key_hex: &str) -> CellTelemetry {
        CellTelemetry {
            label: label.to_owned(),
            key_hex: key_hex.to_owned(),
            events: 0,
            rob_samples: Vec::new(),
            ec_intervals: Vec::new(),
            open_enter: None,
            gated_fe_cycles: 0,
            pool_stalls: 0,
            last_be_cycle: 0,
        }
    }

    fn feed(&mut self, event: &TelemetryEvent) {
        self.events += 1;
        match *event {
            TelemetryEvent::Occupancy { be_cycle, rob, .. } => {
                self.rob_samples.push(rob);
                self.last_be_cycle = self.last_be_cycle.max(be_cycle);
            }
            TelemetryEvent::EcEnter { be_cycle } => {
                self.open_enter = Some(be_cycle);
                self.last_be_cycle = self.last_be_cycle.max(be_cycle);
            }
            TelemetryEvent::EcExit { be_cycle } => {
                if let Some(enter) = self.open_enter.take() {
                    self.ec_intervals.push((enter, Some(be_cycle)));
                }
                self.last_be_cycle = self.last_be_cycle.max(be_cycle);
            }
            TelemetryEvent::PoolStall { be_cycle, stalls } => {
                self.pool_stalls += stalls;
                self.last_be_cycle = self.last_be_cycle.max(be_cycle);
            }
            TelemetryEvent::GatedInterval {
                domain: ClockDomain::FrontEnd,
                cycles,
                ..
            } => self.gated_fe_cycles += cycles,
            TelemetryEvent::GatedInterval { .. } => {}
        }
    }

    /// Converts a dangling `EcEnter` (run ended while resident) into an
    /// open-ended interval; called once after the whole log has been fed.
    fn finish(&mut self) {
        if let Some(enter) = self.open_enter.take() {
            self.ec_intervals.push((enter, None));
        }
    }

    /// Back-end cycles spent inside the Execution Cache; an interval still
    /// open at end of log is counted up to the last cycle any event stamped.
    fn ec_resident_cycles(&self) -> u64 {
        self.ec_intervals
            .iter()
            .map(|&(enter, exit)| exit.unwrap_or(self.last_be_cycle).saturating_sub(enter))
            .sum()
    }

    fn ec_visits(&self) -> usize {
        self.ec_intervals.len()
    }

    fn ec_timeline(&self) -> String {
        const MAX_SHOWN: usize = 8;
        if self.ec_intervals.is_empty() {
            return "never entered".to_owned();
        }
        let mut out = String::new();
        for &(enter, exit) in self.ec_intervals.iter().take(MAX_SHOWN) {
            if !out.is_empty() {
                out.push(' ');
            }
            match exit {
                Some(e) => out.push_str(&format!("[{enter}, {e})")),
                None => out.push_str(&format!("[{enter}, end)")),
            }
        }
        if self.ec_intervals.len() > MAX_SHOWN {
            out.push_str(&format!(" +{} more", self.ec_intervals.len() - MAX_SHOWN));
        }
        out
    }
}

/// Compresses `values` into a `width`-character Unicode bar sparkline
/// (linear scale against the series maximum).
fn sparkline(values: &[u32], width: usize) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let max = u64::from(values.iter().copied().max().unwrap_or(0).max(1));
    let buckets = width.min(values.len()).max(1);
    let mut out = String::new();
    for b in 0..buckets {
        let lo = b * values.len() / buckets;
        let hi = (((b + 1) * values.len()) / buckets).max(lo + 1);
        let mean = values[lo..hi].iter().map(|&v| u64::from(v)).sum::<u64>() / (hi - lo) as u64;
        out.push(BARS[(mean * 7 / max) as usize]);
    }
    out
}

/// Renders the "Kernel telemetry" RESULTS.md section from a parsed
/// `flywheel-telemetry/1` event log: a per-cell summary table (event counts,
/// ROB occupancy, Execution-Cache residency, gating, pool stalls) followed by
/// per-cell EC-residency timelines and ROB-occupancy sparklines. Cells appear
/// in first-event order, which is drain (≈ execution) order.
pub fn telemetry_section(log: &TelemetryLog) -> String {
    let mut out = String::new();
    out.push_str("\n## Kernel telemetry\n\n");
    out.push_str(&format!(
        "From the `flywheel-telemetry/1` event log (`--telemetry`; see\n\
         ARCHITECTURE.md). Log verdict: {}.\n",
        log.describe()
    ));
    if log.dropped > 0 {
        out.push_str(&format!(
            "\n**Note**: the bounded event queue dropped {} event{}; the timelines\n\
             below are a truncated (but honestly accounted) view of the run.\n",
            log.dropped,
            if log.dropped == 1 { "" } else { "s" },
        ));
    }
    if log.records.is_empty() {
        out.push_str(
            "\nThe log contains no events — telemetry was armed but every cell was\n\
             recalled from the result store (recalled cells simulate nothing).\n",
        );
        return out;
    }

    // Group by (key, label) in first-event order.
    let mut cells: Vec<CellTelemetry> = Vec::new();
    for r in &log.records {
        let key_hex = r.key.hex();
        let cell = match cells
            .iter_mut()
            .find(|c| c.label == r.label && c.key_hex == key_hex)
        {
            Some(c) => c,
            None => {
                cells.push(CellTelemetry::new(&r.label, &key_hex));
                cells.last_mut().expect("just pushed")
            }
        };
        cell.feed(&r.event);
    }
    for c in &mut cells {
        c.finish();
    }

    out.push_str(
        "\n| cell | events | occ samples | ROB mean/max | EC visits | EC-resident be-cycles | gated fe-cycles | pool stalls |\n\
         |------|-------:|------------:|-------------:|----------:|----------------------:|----------------:|------------:|\n",
    );
    for c in &cells {
        let (rob_mean, rob_max) = if c.rob_samples.is_empty() {
            (0, 0)
        } else {
            let sum: u64 = c.rob_samples.iter().map(|&v| u64::from(v)).sum();
            (
                sum / c.rob_samples.len() as u64,
                u64::from(*c.rob_samples.iter().max().unwrap_or(&0)),
            )
        };
        out.push_str(&format!(
            "| `{}` | {} | {} | {rob_mean}/{rob_max} | {} | {} | {} | {} |\n",
            c.label,
            c.events,
            c.rob_samples.len(),
            c.ec_visits(),
            c.ec_resident_cycles(),
            c.gated_fe_cycles,
            c.pool_stalls,
        ));
    }

    out.push_str(
        "\nPer-cell timelines (Execution-Cache residency as `[enter, exit)` back-end\n\
         cycle intervals; ROB occupancy as a time-ordered sparkline):\n\n",
    );
    for c in &cells {
        out.push_str(&format!("- `{}` (key `{}…`)\n", c.label, &c.key_hex[..8]));
        out.push_str(&format!("  - EC residency: {}\n", c.ec_timeline()));
        if !c.rob_samples.is_empty() {
            out.push_str(&format!(
                "  - ROB occupancy: `{}` ({} samples)\n",
                sparkline(&c.rob_samples, 32),
                c.rob_samples.len(),
            ));
        }
    }
    out
}

/// Assembles the full RESULTS.md artifact from the store (and, optionally,
/// the `BENCH.json` throughput report).
pub fn results_markdown(
    src: &mut Source<'_>,
    budget: SimBudget,
    bench_json: Option<&str>,
) -> Result<String, String> {
    let tables = all_figure_tables(src, budget)?;
    let mut out = String::new();
    out.push_str("# RESULTS\n\n");
    out.push_str(
        "Regenerated from the content-addressed result store by\n\
         `cargo run --release -p flywheel-report --bin report`. **Do not edit by\n\
         hand** — CI runs `report --check` and fails when this file disagrees\n\
         with the store. To refresh after a legitimate behaviour change:\n\
         regenerate `golden.txt`, re-populate the store, and re-run the report\n\
         binary (see EXPERIMENTS.md).\n\n",
    );
    out.push_str(&format!(
        "Store: schema `{}`, code-version salt `{:016x}` (derived from the\n\
         committed `golden.txt`, so records can never outlive a simulator\n\
         behaviour change). Budget: {} warm-up + {} measured instructions per\n\
         cell, seed {}.\n",
        flywheel_bench::store::STORE_SCHEMA,
        flywheel_bench::store::code_version_salt(),
        budget.warmup_instructions,
        budget.measured_instructions,
        EXPERIMENT_SEED,
    ));
    out.push_str("\n## Figure tables\n\n```text");
    out.push_str(&tables);
    out.push_str("```\n");
    if let Some(json) = bench_json {
        out.push_str(
            "\n## Simulator throughput trajectory\n\n\
             From `BENCH.json` (written by the `experiments` binary; wall-clock\n\
             and MIPS are host-dependent — diff across commits on the same\n\
             machine to track the simulator's own performance):\n\n",
        );
        out.push_str(&trajectory_table(json)?);
    }
    Ok(out)
}

/// The generated EXPERIMENTS.md section (between the report markers).
pub fn experiments_block(src: &mut Source<'_>, budget: SimBudget) -> Result<String, String> {
    let tables = all_figure_tables(src, budget)?;
    Ok(format!(
        "{BLOCK_BEGIN}\n\
         The tables below are regenerated from the result store by\n\
         `cargo run --release -p flywheel-report --bin report` (checked by CI via\n\
         `report --check`; budget {} + {} instructions, seed {}):\n\n```text{tables}```\n{BLOCK_END}",
        budget.warmup_instructions, budget.measured_instructions, EXPERIMENT_SEED,
    ))
}

/// Extracts the generated block (markers included) from a document.
pub fn extract_block(doc: &str) -> Result<&str, String> {
    let start = doc
        .find(BLOCK_BEGIN)
        .ok_or_else(|| format!("missing '{BLOCK_BEGIN}' marker"))?;
    let end = doc
        .find(BLOCK_END)
        .ok_or_else(|| format!("missing '{BLOCK_END}' marker"))?;
    if end < start {
        return Err("generated-block markers out of order".to_owned());
    }
    if doc[start + BLOCK_BEGIN.len()..].contains(BLOCK_BEGIN)
        || doc[end + BLOCK_END.len()..].contains(BLOCK_END)
    {
        return Err("duplicate generated-block markers".to_owned());
    }
    Ok(&doc[start..end + BLOCK_END.len()])
}

/// Replaces the generated block of `doc` with `block` (which must carry the
/// markers, as produced by [`experiments_block`]).
pub fn patch_block(doc: &str, block: &str) -> Result<String, String> {
    let current = extract_block(doc)?;
    Ok(doc.replacen(current, block, 1))
}

/// Compares a document's generated block against the expected one; on
/// mismatch, reports the first diverging line.
pub fn check_block(doc: &str, expected_block: &str, what: &str) -> Result<(), String> {
    diff_texts(extract_block(doc)?, expected_block, what)
}

/// Byte-compares two documents, reporting the first diverging line.
pub fn diff_texts(actual: &str, expected: &str, what: &str) -> Result<(), String> {
    if actual == expected {
        return Ok(());
    }
    let mut a = actual.lines();
    let mut e = expected.lines();
    let mut line = 1;
    loop {
        match (a.next(), e.next()) {
            (Some(x), Some(y)) if x == y => line += 1,
            (x, y) => {
                return Err(format!(
                    "{what}: out of sync with the store at line {line}\n  committed: {}\n  expected:  {}",
                    x.unwrap_or("<end of file>"),
                    y.unwrap_or("<end of file>"),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_patching_round_trips() {
        let doc = format!("intro\n{BLOCK_BEGIN}\nold\n{BLOCK_END}\noutro\n");
        let block = format!("{BLOCK_BEGIN}\nnew\n{BLOCK_END}");
        let patched = patch_block(&doc, &block).unwrap();
        assert_eq!(
            patched,
            format!("intro\n{BLOCK_BEGIN}\nnew\n{BLOCK_END}\noutro\n")
        );
        check_block(&patched, &block, "doc").unwrap();
        assert!(check_block(&doc, &block, "doc").is_err());
        assert!(extract_block("no markers").is_err());
        let dup = format!("{BLOCK_BEGIN}\n{BLOCK_END}\n{BLOCK_BEGIN}\n{BLOCK_END}");
        assert!(extract_block(&dup).is_err());
    }

    #[test]
    fn trajectory_table_parses_the_handwritten_json() {
        let json = "{\n  \"schema\": \"flywheel-bench/1\",\n  \"sweep_workers\": 4,\n  \"experiments\": [\n    {\"name\": \"fig2\", \"wall_seconds\": 2.510, \"simulated_instructions\": 9000000, \"simulated_mips\": 3.59},\n    {\"name\": \"fig11\", \"wall_seconds\": 2.670, \"simulated_instructions\": 9000000, \"simulated_mips\": 3.37}\n  ],\n  \"total\": {\"wall_seconds\": 5.180, \"simulated_instructions\": 18000000, \"simulated_mips\": 3.47}\n}\n";
        let table = trajectory_table(json).unwrap();
        assert!(table.contains("| fig2 | 2.510 | 9000000 | 3.59 |"));
        assert!(table.contains("| **total** | 5.180 | 18000000 | 3.47 |"));
        assert!(trajectory_table("{}").is_err());
        assert!(trajectory_table("{\"schema\": \"flywheel-bench/1\"}").is_err());
    }

    #[test]
    fn degraded_cells_section_renders_manifest_or_all_clear() {
        let clean = "{\n  \"schema\": \"flywheel-scenarios/2\",\n  \"failed_count\": 0,\n  \"cells\": [\n    {\"bench\": \"gzip\", \"seed\": 2005}\n  ],\n  \"failed_cells\": [\n  ]\n}\n";
        let section = degraded_cells_section(clean).unwrap();
        assert!(section.contains("## Degraded cells"));
        assert!(section.contains("Complete run: all 1 cells simulated"));

        let degraded = "{\n  \"schema\": \"flywheel-scenarios/2\",\n  \"failed_count\": 1,\n  \"cells\": [\n    {\"bench\": \"gzip\", \"seed\": 2005}\n  ],\n  \"failed_cells\": [\n    {\"label\": \"flywheel/gzip/s7\", \"cause\": \"timeout\", \"attempts\": 3, \"detail\": \"watchdog tripped\"}\n  ]\n}\n";
        let section = degraded_cells_section(degraded).unwrap();
        assert!(section.contains("1 of 2 cells failed"));
        assert!(section.contains("| `flywheel/gzip/s7` | timeout | 3 | watchdog tripped |"));

        // Schema /3 (seed axis + aggregates) renders identically.
        let v3 = "{\n  \"schema\": \"flywheel-scenarios/3\",\n  \"failed_count\": 0,\n  \"seeds\": [1, 2],\n  \"cells\": [\n    {\"bench\": \"gzip\", \"seed\": 1}\n  ],\n  \"failed_cells\": [\n  ],\n  \"seed_aggregates\": [\n  ]\n}\n";
        let section = degraded_cells_section(v3).unwrap();
        assert!(section.contains("Complete run: all 1 cells simulated"));

        assert!(degraded_cells_section("{}").is_err());
        let v1 = "{\n  \"schema\": \"flywheel-scenarios/1\"\n}\n";
        assert!(degraded_cells_section(v1).is_err());
    }

    #[test]
    fn telemetry_section_renders_timelines_and_accounting() {
        use flywheel_bench::store::StoreKey;
        use flywheel_bench::telemetry::TelemetryRecord;

        let key = StoreKey::of_input("cell-a");
        let rec = |event| TelemetryRecord {
            key,
            label: "flywheel/gzip/s2005".to_owned(),
            event,
        };
        let mut records = vec![
            rec(TelemetryEvent::EcEnter { be_cycle: 100 }),
            rec(TelemetryEvent::Occupancy {
                be_cycle: 128,
                iw: 4,
                rob: 10,
                frontend_q: 2,
                lsq: 3,
            }),
            rec(TelemetryEvent::EcExit { be_cycle: 300 }),
            rec(TelemetryEvent::GatedInterval {
                domain: ClockDomain::FrontEnd,
                start_cycle: 40,
                cycles: 80,
            }),
            rec(TelemetryEvent::PoolStall {
                be_cycle: 310,
                stalls: 17,
            }),
            rec(TelemetryEvent::Occupancy {
                be_cycle: 400,
                iw: 4,
                rob: 30,
                frontend_q: 2,
                lsq: 3,
            }),
            // A second visit left open at end of run.
            rec(TelemetryEvent::EcEnter { be_cycle: 500 }),
        ];
        // A second cell interleaved into the same log.
        records.push(TelemetryRecord {
            key: StoreKey::of_input("cell-b"),
            label: "baseline/gzip/s2005".to_owned(),
            event: TelemetryEvent::Occupancy {
                be_cycle: 64,
                iw: 1,
                rob: 5,
                frontend_q: 1,
                lsq: 0,
            },
        });
        let log = TelemetryLog {
            records,
            dropped: 2,
            damaged_lines: 0,
        };
        let section = telemetry_section(&log);
        assert!(section.contains("## Kernel telemetry"), "{section}");
        assert!(section.contains("clean (8 events, 2 dropped"), "{section}");
        assert!(section.contains("dropped 2 events"), "{section}");
        // Cell A: 7 events, 2 occ samples, ROB mean 20 max 30, 2 EC visits,
        // resident (300-100) + (500-500 → last cycle 500) = 200, gated 80,
        // 17 aggregated pool stalls.
        assert!(
            section.contains("| `flywheel/gzip/s2005` | 7 | 2 | 20/30 | 2 | 200 | 80 | 17 |"),
            "{section}"
        );
        assert!(
            section.contains("- EC residency: [100, 300) [500, end)"),
            "{section}"
        );
        assert!(section.contains("(2 samples)"), "{section}");
        // Cell B renders its own row, in first-event order after cell A.
        assert!(
            section.contains("| `baseline/gzip/s2005` | 1 | 1 | 5/5 | 0 | 0 | 0 | 0 |"),
            "{section}"
        );
        assert!(
            section.contains("- EC residency: never entered"),
            "{section}"
        );
    }

    #[test]
    fn telemetry_section_handles_an_empty_log() {
        let log = TelemetryLog::default();
        let section = telemetry_section(&log);
        assert!(section.contains("clean (0 events, 0 dropped"), "{section}");
        assert!(section.contains("contains no events"), "{section}");
        assert!(!section.contains("| cell |"), "{section}");
    }

    #[test]
    fn sparklines_compress_and_scale() {
        assert_eq!(sparkline(&[], 8), "");
        assert_eq!(sparkline(&[0, 0], 8), "▁▁");
        let s = sparkline(&[0, 1, 2, 3, 4, 5, 6, 7], 8);
        assert_eq!(s, "▁▂▃▄▅▆▇█");
        // More samples than width: bucketed down to `width` characters.
        let many: Vec<u32> = (0..100).collect();
        assert_eq!(sparkline(&many, 16).chars().count(), 16);
    }

    #[test]
    fn read_only_source_refuses_to_simulate() {
        let mut store = ResultStore::in_memory();
        let mut src = Source::read_only(&mut store);
        let err = fig2_table(&mut src, SimBudget::new(100, 400)).unwrap_err();
        assert!(err.contains("no stored record"), "got: {err}");
        assert_eq!(src.summary(), StoreSummary::default());
    }

    #[test]
    fn sensitivity_seed_axis_is_sorted_unique_and_anchored() {
        let seeds = sensitivity_seeds();
        assert!(
            seeds.len() >= 5,
            "need at least five seeds for a t-based CI"
        );
        assert_eq!(
            seeds[0], EXPERIMENT_SEED,
            "first seed must be the figures' seed"
        );
        for w in seeds.windows(2) {
            assert!(w[0] < w[1], "seed axis must be sorted and duplicate-free");
        }
    }

    #[test]
    fn ci_width_gate_accepts_tight_and_rejects_wide_intervals() {
        let real = SimBudget::new(50_000, 250_000);
        // Five seeds of a stable metric: ~1% spread, comfortably inside the gate.
        let tight = Aggregate::of([1.00, 1.01, 0.99, 1.00, 1.01]);
        check_ci("stable", &tight, real).unwrap();

        // A wild metric: the half-width dwarfs the mean.
        let wide = Aggregate::of([0.1, 2.0, 0.1, 2.0, 0.1]);
        let err = check_ci("unstable", &wide, real).unwrap_err();
        assert!(err.contains("implausibly wide"), "got: {err}");
        assert!(err.contains("unstable"), "got: {err}");

        // At a toy budget the width gate is waived (noise is expected)...
        check_ci("unstable", &wide, SimBudget::new(100, 400)).unwrap();
        // ...but degenerate values are refused at any budget.
        let nan = Aggregate::of([f64::NAN, 1.0]);
        let err = check_ci("nan", &nan, SimBudget::new(100, 400)).unwrap_err();
        assert!(err.contains("degenerate"), "got: {err}");
    }

    #[test]
    fn ci_tables_render_means_and_half_widths() {
        let rows = vec![
            CiRow {
                bench: "gzip",
                values: vec![(0.875, 0.0123), (1.25, 0.004)],
            },
            CiRow {
                bench: "vpr",
                values: vec![(0.925, 0.0077), (1.35, 0.006)],
            },
        ];
        let table = format_ci_table(
            "Seed sensitivity (test)",
            &["reg-alloc".to_owned(), "flywheel".to_owned()],
            &rows,
        );
        assert!(table.contains("== Seed sensitivity (test) =="), "{table}");
        assert!(
            table.contains("gzip          0.875 ±0.0123    1.250 ±0.0040"),
            "{table}"
        );
        // Average row: mean of means, mean of half-widths.
        assert!(
            table.contains("average       0.900 ±0.0100    1.300 ±0.0050"),
            "{table}"
        );
    }
}
