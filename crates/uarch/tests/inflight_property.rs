//! Property/fuzz test of [`InflightTable`] against a naive model.
//!
//! The table is the hot-path backbone of both simulator kernels: a power-of-two
//! ring addressed by `seq & mask` whose correctness rests on the invariant that
//! live sequence numbers fit in a window no wider than the capacity (growing on
//! demand) — plus the window-restart rule when the table drains (trace-replay
//! hand-backs re-inject *older* sequence numbers). The unit tests cover the
//! edges we thought of; this test drives randomized alloc/retire/squash/grow
//! sequences (seeded by `flywheel-rng`, so failures reproduce exactly) against
//! a naive `Vec`-backed model and checks full observable equivalence after
//! every step.

use flywheel_isa::{ArchReg, DynInst, Pc, StaticInst};
use flywheel_rng::SimRng;
use flywheel_uarch::{InflightEntry, InflightTable};

/// The naive reference: live entries as a sorted `Vec` of (seq, payload).
#[derive(Default)]
struct NaiveModel {
    live: Vec<(u64, u64)>, // (seq, complete_at payload)
}

impl NaiveModel {
    fn insert(&mut self, seq: u64) {
        debug_assert!(!self.live.iter().any(|&(s, _)| s == seq));
        let pos = self.live.partition_point(|&(s, _)| s < seq);
        self.live.insert(pos, (seq, 0));
    }

    fn remove(&mut self, seq: u64) -> bool {
        match self.live.binary_search_by_key(&seq, |&(s, _)| s) {
            Ok(pos) => {
                self.live.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    fn head(&self) -> Option<u64> {
        self.live.first().map(|&(s, _)| s)
    }

    fn tail(&self) -> Option<u64> {
        self.live.last().map(|&(s, _)| s)
    }

    fn set_payload(&mut self, seq: u64, v: u64) {
        let pos = self.live.binary_search_by_key(&seq, |&(s, _)| s).unwrap();
        self.live[pos].1 = v;
    }
}

fn entry(seq: u64) -> InflightEntry {
    let d = DynInst {
        seq,
        pc: Pc::new(0x4000 + (seq % 1024) * 4),
        stat: StaticInst::alu(ArchReg::int(1), ArchReg::int(2), None),
        taken: false,
        next_pc: Pc::new(0x4000 + (seq % 1024) * 4 + 4),
        mem: None,
    };
    InflightEntry::new_frontend(d, seq, false)
}

/// Checks every observable of the table against the model: length, emptiness,
/// per-live-seq lookup (including the mutated payload), and misses on a band
/// of absent sequence numbers around the window.
fn check_equivalent(table: &InflightTable, model: &NaiveModel, rng: &mut SimRng) {
    assert_eq!(table.len(), model.live.len());
    assert_eq!(table.is_empty(), model.live.is_empty());
    for &(seq, payload) in &model.live {
        assert!(table.contains(seq), "live seq {seq} missing");
        let e = table.get(seq).expect("live seq present");
        assert_eq!(e.d.seq, seq);
        assert_eq!(e.complete_at, payload, "payload of seq {seq}");
    }
    // Probe absent sequence numbers: below the window, inside window gaps, and
    // above the window.
    let lo = model.head().unwrap_or(50).saturating_sub(5);
    let hi = model.tail().unwrap_or(50) + 5;
    for _ in 0..8 {
        let seq = rng.range_inclusive_u64(lo, hi);
        let in_model = model.live.binary_search_by_key(&seq, |&(s, _)| s).is_ok();
        assert_eq!(table.contains(seq), in_model, "probe of seq {seq}");
        assert_eq!(table.get(seq).is_some(), in_model);
    }
}

/// One fuzz campaign: `steps` random operations at the given capacity hint.
fn fuzz_campaign(seed: u64, capacity: usize, steps: usize, max_live: usize) {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut table = InflightTable::with_capacity(capacity);
    let mut model = NaiveModel::default();
    let mut next_seq = 50u64; // start away from zero to catch offset bugs

    for step in 0..steps {
        match rng.range_u64(0, 100) {
            // Alloc burst: dispatch 1..=8 new instructions at the tail.
            0..=39 => {
                let burst = rng.range_inclusive_u64(1, 8);
                for _ in 0..burst {
                    if model.live.len() >= max_live {
                        break;
                    }
                    table.insert(entry(next_seq));
                    model.insert(next_seq);
                    next_seq += 1;
                }
            }
            // Retire burst: pop 1..=4 entries from the window head.
            40..=69 => {
                for _ in 0..rng.range_inclusive_u64(1, 4) {
                    let Some(seq) = model.head() else { break };
                    let removed = table.remove(seq).expect("head entry present");
                    assert_eq!(removed.d.seq, seq);
                    assert!(model.remove(seq));
                    assert!(table.remove(seq).is_none(), "double remove must miss");
                }
            }
            // Squash: drop the youngest 1..=6 entries from the tail
            // (mispredict recovery walks the window backwards).
            70..=84 => {
                for _ in 0..rng.range_inclusive_u64(1, 6) {
                    let Some(seq) = model.tail() else { break };
                    assert!(table.remove(seq).is_some());
                    assert!(model.remove(seq));
                }
            }
            // Mutate a random live entry through get_mut (the kernels update
            // state/complete_at in place).
            85..=94 => {
                if !model.live.is_empty() {
                    let idx = rng.range_usize(0, model.live.len());
                    let seq = model.live[idx].0;
                    let v = rng.next_u64() % 1_000_000;
                    table.get_mut(seq).expect("live entry").complete_at = v;
                    model.set_payload(seq, v);
                }
            }
            // Drain-and-restart: empty the table, then restart the window at a
            // *smaller* sequence number (trace-replay hand-back edge).
            _ => {
                while let Some(seq) = model.head() {
                    assert!(table.remove(seq).is_some());
                    assert!(model.remove(seq));
                }
                assert!(table.is_empty());
                next_seq = next_seq.saturating_sub(rng.range_u64(0, 40)).max(1);
            }
        }
        if step % 7 == 0 {
            check_equivalent(&table, &model, &mut rng);
        }
    }
    check_equivalent(&table, &model, &mut rng);
}

#[test]
fn randomized_ops_match_the_naive_model() {
    // Ample live window at a comfortable capacity: exercises steady-state ring
    // wrapping (the window slides far past the capacity many times over).
    for seed in [1, 2, 3, 4] {
        fuzz_campaign(seed, 64, 20_000, 48);
    }
}

#[test]
fn tiny_capacity_forces_growth_and_stays_equivalent() {
    // Capacity hint far below the window the ops build up: every campaign must
    // grow the ring (rehashing every live entry) several times and keep all
    // lookups intact.
    for seed in [10, 11, 12] {
        fuzz_campaign(seed, 4, 8_000, 300);
    }
}

#[test]
fn wide_windows_wrap_the_ring_repeatedly() {
    // Large bursts against a just-large-enough ring: the slot index wraps
    // constantly while head and tail chase each other.
    for seed in [21, 22] {
        fuzz_campaign(seed, 256, 30_000, 200);
    }
}
