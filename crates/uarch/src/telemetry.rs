//! Bounded, lock-light microarchitectural telemetry: typed events both
//! simulator kernels append to an in-memory queue — but only when armed.
//!
//! The design mirrors [`crate::watchdog`]: a sweep executor arms a
//! [`TelemetrySession`] on the worker thread before running a cell; the
//! kernels snapshot the armed session once at the top of `run()`
//! ([`armed`]) into a [`TelemetryRecorder`] and feed it from their step
//! loops. Cost when disarmed (every non-telemetry caller): one thread-local
//! read per kernel `run()`, zero work per simulated cycle — which is what
//! keeps telemetry-off runs byte-identical to the golden transcript and
//! within noise of the committed throughput numbers.
//!
//! The queue itself ([`TelemetryQueue`]) is bounded and never blocks the
//! simulating thread: `push` uses `try_lock`, and a full (or momentarily
//! contended) queue increments an explicit dropped-events counter instead of
//! waiting. A background drain thread (owned by `flywheel-bench`, which also
//! owns the on-disk event log) empties the queue concurrently.
//!
//! Telemetry is observational only: a recorder reads kernel state and never
//! writes it, so armed and disarmed runs simulate identical machines.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Clock domain a gating interval belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockDomain {
    /// The front-end (fetch/dispatch) clock domain.
    FrontEnd,
    /// The back-end (issue/execute) clock domain.
    BackEnd,
}

impl ClockDomain {
    /// Compact wire tag (`fe`/`be`).
    pub fn tag(self) -> &'static str {
        match self {
            ClockDomain::FrontEnd => "fe",
            ClockDomain::BackEnd => "be",
        }
    }

    /// Inverse of [`ClockDomain::tag`].
    pub fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "fe" => Some(ClockDomain::FrontEnd),
            "be" => Some(ClockDomain::BackEnd),
            _ => None,
        }
    }
}

/// One typed telemetry event, stamped with kernel cycle counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TelemetryEvent {
    /// Periodic pipeline-stage occupancy sample (back-end edge).
    Occupancy {
        /// Back-end cycle of the sample.
        be_cycle: u64,
        /// Issue-window entries in flight.
        iw: u32,
        /// Reorder-buffer entries in flight.
        rob: u32,
        /// Front-end (fetch) queue depth.
        frontend_q: u32,
        /// Load/store queue depth.
        lsq: u32,
    },
    /// The Flywheel kernel switched into Execution-Cache mode.
    EcEnter {
        /// Back-end cycle of the switch.
        be_cycle: u64,
    },
    /// The Flywheel kernel fell back to trace-creation mode.
    EcExit {
        /// Back-end cycle of the switch.
        be_cycle: u64,
    },
    /// Dispatch stalls on an exhausted rename/register pool, aggregated over
    /// one sample interval (per-cycle stall events would flood the bounded
    /// queue on pool-starved workloads).
    PoolStall {
        /// Back-end cycle the aggregate was flushed at.
        be_cycle: u64,
        /// Stall cycles accumulated since the previous flush.
        stalls: u64,
    },
    /// A contiguous interval during which a clock domain was gated.
    GatedInterval {
        /// The gated domain.
        domain: ClockDomain,
        /// First gated cycle (in the domain's own clock).
        start_cycle: u64,
        /// Gated cycles in the interval.
        cycles: u64,
    },
}

impl TelemetryEvent {
    /// Serializes the event into its one-token-kind wire form
    /// (`occ 120 3 14 2 1`, `ec-enter 512`, `gated fe 100 40`, ...).
    pub fn render(&self) -> String {
        match *self {
            TelemetryEvent::Occupancy {
                be_cycle,
                iw,
                rob,
                frontend_q,
                lsq,
            } => format!("occ {be_cycle} {iw} {rob} {frontend_q} {lsq}"),
            TelemetryEvent::EcEnter { be_cycle } => format!("ec-enter {be_cycle}"),
            TelemetryEvent::EcExit { be_cycle } => format!("ec-exit {be_cycle}"),
            TelemetryEvent::PoolStall { be_cycle, stalls } => {
                format!("pool-stall {be_cycle} {stalls}")
            }
            TelemetryEvent::GatedInterval {
                domain,
                start_cycle,
                cycles,
            } => format!("gated {} {start_cycle} {cycles}", domain.tag()),
        }
    }

    /// Parses the wire form back; `None` on any malformed input.
    pub fn parse(text: &str) -> Option<TelemetryEvent> {
        let mut it = text.split(' ');
        let kind = it.next()?;
        let mut num = || it.next()?.parse::<u64>().ok();
        let event = match kind {
            "occ" => TelemetryEvent::Occupancy {
                be_cycle: num()?,
                iw: u32::try_from(num()?).ok()?,
                rob: u32::try_from(num()?).ok()?,
                frontend_q: u32::try_from(num()?).ok()?,
                lsq: u32::try_from(num()?).ok()?,
            },
            "ec-enter" => TelemetryEvent::EcEnter { be_cycle: num()? },
            "ec-exit" => TelemetryEvent::EcExit { be_cycle: num()? },
            "pool-stall" => TelemetryEvent::PoolStall {
                be_cycle: num()?,
                stalls: num()?,
            },
            "gated" => {
                let domain = ClockDomain::from_tag(it.next()?)?;
                let mut num = || it.next()?.parse::<u64>().ok();
                TelemetryEvent::GatedInterval {
                    domain,
                    start_cycle: num()?,
                    cycles: num()?,
                }
            }
            _ => return None,
        };
        if it.next().is_some() {
            return None; // trailing garbage
        }
        Some(event)
    }
}

/// Interior state of a [`TelemetryQueue`], behind its single mutex.
struct QueueInner {
    events: VecDeque<(Arc<str>, TelemetryEvent)>,
    /// Events accepted per tag, kept across drains so cell columns can be
    /// filled in after the queue has been flushed to disk.
    counts: HashMap<Arc<str>, u64>,
}

/// A bounded multi-producer event queue that never blocks a producer.
///
/// `push` takes the mutex with `try_lock`; if the drain thread happens to
/// hold it, or the queue is at capacity, the event is counted as dropped and
/// the simulating thread moves on immediately.
pub struct TelemetryQueue {
    capacity: usize,
    inner: Mutex<QueueInner>,
    accepted: AtomicU64,
    dropped: AtomicU64,
}

impl TelemetryQueue {
    /// Default queue bound (events, across all producer threads).
    pub const DEFAULT_CAPACITY: usize = 1 << 16;

    /// Creates a queue bounded at `capacity` events.
    pub fn new(capacity: usize) -> Self {
        TelemetryQueue {
            capacity: capacity.max(1),
            inner: Mutex::new(QueueInner {
                events: VecDeque::new(),
                counts: HashMap::new(),
            }),
            accepted: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Appends one event under `tag`. Never blocks: a full queue or a
    /// momentarily contended lock drops the event and bumps the counter.
    pub fn push(&self, tag: &Arc<str>, event: TelemetryEvent) {
        match self.inner.try_lock() {
            Ok(mut inner) => {
                if inner.events.len() >= self.capacity {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                inner.events.push_back((Arc::clone(tag), event));
                *inner.counts.entry(Arc::clone(tag)).or_insert(0) += 1;
                self.accepted.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Takes every queued event (used by the drain thread).
    pub fn drain(&self) -> Vec<(Arc<str>, TelemetryEvent)> {
        match self.inner.lock() {
            Ok(mut inner) => inner.events.drain(..).collect(),
            Err(_) => Vec::new(),
        }
    }

    /// Events accepted so far under tags starting with `prefix` (drained or
    /// not) — the per-cell count surfaced in scenario tables.
    pub fn count_matching(&self, prefix: &str) -> u64 {
        match self.inner.lock() {
            Ok(inner) => inner
                .counts
                .iter()
                .filter(|(tag, _)| tag.starts_with(prefix))
                .map(|(_, n)| *n)
                .sum(),
            Err(_) => 0,
        }
    }

    /// Total events accepted into the queue.
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Total events dropped (queue full or lock contended).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// What a worker thread arms before running a cell: where events go, under
/// which tag, and how densely occupancy is sampled.
#[derive(Clone)]
pub struct TelemetrySession {
    /// Destination queue (shared with the drain thread).
    pub queue: Arc<TelemetryQueue>,
    /// Opaque cell tag every event is attributed to (the bench layer uses
    /// `"<store-key-hex> <cell-label>"`, making the log content-addressed).
    pub tag: Arc<str>,
    /// Back-end cycles between occupancy samples.
    pub sample_interval: u64,
}

/// Default back-end cycles between occupancy samples.
pub const DEFAULT_SAMPLE_INTERVAL: u64 = 1024;

thread_local! {
    static ARMED: std::cell::RefCell<Option<TelemetrySession>> =
        const { std::cell::RefCell::new(None) };
}

/// Arms telemetry for the current thread until the returned guard drops.
///
/// Nested arms are allowed; the guard restores the previous session.
pub fn arm(session: TelemetrySession) -> TelemetryGuard {
    let prev = ARMED.with(|a| a.replace(Some(session)));
    TelemetryGuard { prev }
}

/// Disarms telemetry when dropped, restoring whatever was armed before.
pub struct TelemetryGuard {
    prev: Option<TelemetrySession>,
}

impl Drop for TelemetryGuard {
    fn drop(&mut self) {
        ARMED.with(|a| *a.borrow_mut() = self.prev.take());
    }
}

/// Snapshots the armed session into a per-run recorder, or `None` when the
/// thread has no telemetry armed (the common case).
pub fn armed() -> Option<TelemetryRecorder> {
    ARMED.with(|a| a.borrow().clone()).map(|session| {
        let first_sample = session.sample_interval;
        TelemetryRecorder {
            session,
            next_sample: first_sample,
            gated_fe_start: None,
            pending_stalls: 0,
            next_stall_flush: first_sample,
        }
    })
}

/// Per-run recorder a kernel holds for the duration of one `run()`.
///
/// All methods observe; none mutate simulator state.
pub struct TelemetryRecorder {
    session: TelemetrySession,
    next_sample: u64,
    /// Front-end cycle at which the current Execution-Cache (gated) interval
    /// began, when the kernel is in EC mode.
    gated_fe_start: Option<u64>,
    /// Pool-exhaustion stall cycles accumulated since the last flush.
    pending_stalls: u64,
    next_stall_flush: u64,
}

impl TelemetryRecorder {
    fn push(&self, event: TelemetryEvent) {
        self.session.queue.push(&self.session.tag, event);
    }

    /// Emits an occupancy sample when `be_cycle` has reached the next sample
    /// point; robust to bulk cycle skips (`fast_forward`), which simply land
    /// the next sample at the first poll past the interval.
    #[inline]
    pub fn sample_occupancy(
        &mut self,
        be_cycle: u64,
        iw: usize,
        rob: usize,
        feq: usize,
        lsq: usize,
    ) {
        if be_cycle < self.next_sample {
            return;
        }
        self.next_sample = be_cycle.saturating_add(self.session.sample_interval);
        let clamp = |n: usize| u32::try_from(n).unwrap_or(u32::MAX);
        self.push(TelemetryEvent::Occupancy {
            be_cycle,
            iw: clamp(iw),
            rob: clamp(rob),
            frontend_q: clamp(feq),
            lsq: clamp(lsq),
        });
    }

    /// Records an Execution-Cache mode edge observed by the run loop:
    /// `executing` is the mode after the edge. Entering stamps an `EcEnter`;
    /// leaving stamps an `EcExit` plus the front-end clock-gating interval
    /// the EC residency implied.
    pub fn mode_edge(&mut self, executing: bool, be_cycle: u64, fe_cycle: u64) {
        if executing {
            self.push(TelemetryEvent::EcEnter { be_cycle });
            self.gated_fe_start = Some(fe_cycle);
        } else {
            self.push(TelemetryEvent::EcExit { be_cycle });
            if let Some(start) = self.gated_fe_start.take() {
                self.push(TelemetryEvent::GatedInterval {
                    domain: ClockDomain::FrontEnd,
                    start_cycle: start,
                    cycles: fe_cycle.saturating_sub(start),
                });
            }
        }
    }

    /// Accounts `n` new pool-exhaustion dispatch stalls observed since the
    /// previous poll. Stalls are aggregated and flushed as one counted event
    /// per sample interval: a pool-starved workload can stall on most cycles,
    /// and per-cycle events would overwhelm the bounded queue (the drops
    /// would be honest, but the timeline would be noise).
    pub fn pool_stalls(&mut self, be_cycle: u64, n: u64) {
        self.pending_stalls += n;
        if be_cycle >= self.next_stall_flush {
            self.flush_stalls(be_cycle);
        }
    }

    fn flush_stalls(&mut self, be_cycle: u64) {
        if self.pending_stalls > 0 {
            self.push(TelemetryEvent::PoolStall {
                be_cycle,
                stalls: self.pending_stalls,
            });
            self.pending_stalls = 0;
        }
        self.next_stall_flush = be_cycle.saturating_add(self.session.sample_interval);
    }

    /// Flushes state that only resolves at end of run: pending pool-stall
    /// aggregates, and a trailing gated interval when the kernel finished
    /// while still in EC mode.
    pub fn finish(&mut self, be_cycle: u64, fe_cycle: u64) {
        if self.pending_stalls > 0 {
            self.flush_stalls(be_cycle);
        }
        if let Some(start) = self.gated_fe_start.take() {
            self.push(TelemetryEvent::GatedInterval {
                domain: ClockDomain::FrontEnd,
                start_cycle: start,
                cycles: fe_cycle.saturating_sub(start),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session(queue: &Arc<TelemetryQueue>, tag: &str, interval: u64) -> TelemetrySession {
        TelemetrySession {
            queue: Arc::clone(queue),
            tag: Arc::from(tag),
            sample_interval: interval,
        }
    }

    #[test]
    fn disarmed_thread_reports_no_telemetry() {
        assert!(armed().is_none());
    }

    #[test]
    fn guard_restores_previous_session() {
        let q = Arc::new(TelemetryQueue::new(16));
        {
            let _outer = arm(session(&q, "outer", 1));
            {
                let _inner = arm(session(&q, "inner", 1));
                armed().unwrap().sample_occupancy(1, 1, 1, 1, 1);
            }
            armed().unwrap().sample_occupancy(1, 2, 2, 2, 2);
        }
        assert!(armed().is_none());
        assert_eq!(q.count_matching("inner"), 1);
        assert_eq!(q.count_matching("outer"), 1);
    }

    #[test]
    fn full_queue_drops_instead_of_blocking() {
        let q = Arc::new(TelemetryQueue::new(2));
        let tag: Arc<str> = Arc::from("cell");
        for c in 0..5 {
            q.push(&tag, TelemetryEvent::EcEnter { be_cycle: c });
        }
        assert_eq!(q.accepted(), 2);
        assert_eq!(q.dropped(), 3);
        assert_eq!(q.drain().len(), 2);
        // Counts survive the drain; drops are never counted as accepted.
        assert_eq!(q.count_matching("cell"), 2);
    }

    #[test]
    fn events_round_trip_through_wire_form() {
        let events = [
            TelemetryEvent::Occupancy {
                be_cycle: 120,
                iw: 3,
                rob: 14,
                frontend_q: 2,
                lsq: 1,
            },
            TelemetryEvent::EcEnter { be_cycle: 512 },
            TelemetryEvent::EcExit { be_cycle: 1024 },
            TelemetryEvent::PoolStall {
                be_cycle: 7,
                stalls: 190,
            },
            TelemetryEvent::GatedInterval {
                domain: ClockDomain::FrontEnd,
                start_cycle: 100,
                cycles: 40,
            },
            TelemetryEvent::GatedInterval {
                domain: ClockDomain::BackEnd,
                start_cycle: 0,
                cycles: 1,
            },
        ];
        for e in events {
            assert_eq!(TelemetryEvent::parse(&e.render()), Some(e), "{e:?}");
        }
        for bad in [
            "",
            "occ 1 2 3",
            "ec-enter",
            "gated xx 1 2",
            "occ 1 2 3 4 5 6",
            "pool-stall 7",
            "nope 3",
        ] {
            assert_eq!(TelemetryEvent::parse(bad), None, "'{bad}' must not parse");
        }
    }

    #[test]
    fn occupancy_sampling_honours_interval_and_bulk_skips() {
        let q = Arc::new(TelemetryQueue::new(64));
        let _g = arm(session(&q, "cell", 100));
        let mut rec = armed().unwrap();
        for c in 0..250 {
            rec.sample_occupancy(c, 1, 1, 1, 1);
        }
        // Samples at cycles 100 and 200.
        assert_eq!(q.count_matching("cell"), 2);
        rec.sample_occupancy(10_000, 1, 1, 1, 1); // bulk skip lands one sample
        assert_eq!(q.count_matching("cell"), 3);
    }

    #[test]
    fn pool_stalls_aggregate_to_one_counted_event_per_interval() {
        let q = Arc::new(TelemetryQueue::new(64));
        let _g = arm(session(&q, "cell", 100));
        let mut rec = armed().unwrap();
        // Stall on every cycle of the first interval: ONE event, count 100.
        for c in 0..100 {
            rec.pool_stalls(c, 1);
        }
        rec.pool_stalls(100, 1);
        // A stall-free tail leaves nothing pending except the last lone stall.
        rec.finish(250, 0);
        let events: Vec<_> = q.drain().into_iter().map(|(_, e)| e).collect();
        assert_eq!(
            events,
            vec![TelemetryEvent::PoolStall {
                be_cycle: 100,
                stalls: 101,
            },]
        );

        // Pending stalls that never reach the next interval flush at finish.
        let mut rec = armed().unwrap();
        rec.pool_stalls(3, 2);
        rec.finish(9, 0);
        let events: Vec<_> = q.drain().into_iter().map(|(_, e)| e).collect();
        assert_eq!(
            events,
            vec![TelemetryEvent::PoolStall {
                be_cycle: 9,
                stalls: 2,
            }]
        );
    }

    #[test]
    fn mode_edges_emit_gating_intervals() {
        let q = Arc::new(TelemetryQueue::new(64));
        let _g = arm(session(&q, "cell", u64::MAX));
        let mut rec = armed().unwrap();
        rec.mode_edge(true, 10, 5);
        rec.mode_edge(false, 30, 17);
        rec.mode_edge(true, 40, 20);
        rec.finish(50, 26);
        let events: Vec<_> = q.drain().into_iter().map(|(_, e)| e).collect();
        assert_eq!(
            events,
            vec![
                TelemetryEvent::EcEnter { be_cycle: 10 },
                TelemetryEvent::EcExit { be_cycle: 30 },
                TelemetryEvent::GatedInterval {
                    domain: ClockDomain::FrontEnd,
                    start_cycle: 5,
                    cycles: 12,
                },
                TelemetryEvent::EcEnter { be_cycle: 40 },
                TelemetryEvent::GatedInterval {
                    domain: ClockDomain::FrontEnd,
                    start_cycle: 20,
                    cycles: 6,
                },
            ]
        );
    }
}
