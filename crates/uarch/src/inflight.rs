//! Slab/ring-indexed in-flight instruction bookkeeping shared by both simulator
//! kernels.
//!
//! The hot loop of a cycle-accurate simulator touches its in-flight instructions
//! many times per cycle. The original kernels kept them in a
//! `HashMap<u64, Entry>` and rescanned whole structures every cycle; this module
//! replaces that with three dense, allocation-free structures:
//!
//! * [`InflightTable`] — a ring of entries addressed by sequence number. All
//!   in-flight sequence numbers fall inside a window bounded by the ROB and the
//!   front-end queue, so `seq & mask` is a perfect slot index and every lookup is
//!   one array access instead of a hash probe.
//! * [`IssueScheduler`] — a wakeup network plus a ready list. Instructions whose
//!   sources are still being produced register as waiters on those physical
//!   registers; when a producer issues, its consumers are woken. The issue stage
//!   then scans only woken entries (in program order) instead of the whole Issue
//!   Window.
//! * [`StoreIndex`] — the earliest unresolved (not yet address-resolved) store
//!   and the set of resolved stores still in the LSQ, so the "is this load
//!   blocked by an older store" and store-to-load forwarding checks no longer
//!   walk the whole LSQ per load.
//!
//! The structures are deliberately policy-free: all scheduling decisions stay in
//! the pipeline drivers (`flywheel-uarch`'s baseline and `flywheel-core`'s
//! Flywheel machine), which keeps the refactor bit-identical with the original
//! HashMap-based kernels (verified with the `golden` binary in
//! `flywheel-bench`).

use crate::regs::{PhysReg, PhysRegFile, RenameOutcome};
use flywheel_isa::DynInst;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Lifecycle of an in-flight instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryState {
    /// Fetched, travelling through the front-end pipeline stages.
    FrontEnd,
    /// Dispatched into the Issue Window, waiting for operands / a functional
    /// unit (or, for replayed instructions, the moment before they start
    /// executing).
    Waiting,
    /// Issued to the execution core.
    Issued,
    /// Result produced; waiting to retire.
    Completed,
}

/// One in-flight dynamic instruction, together with the scheduler bookkeeping
/// that lets the issue stage avoid rescanning it while its operands are pending.
#[derive(Debug, Clone)]
pub struct InflightEntry {
    /// The dynamic instruction.
    pub d: DynInst,
    /// Rename outcome (physical sources/destination), set at dispatch.
    pub rename: RenameOutcome,
    /// Pipeline lifecycle state.
    pub state: EntryState,
    /// Front-end time at which the instruction may leave the front-end pipeline.
    pub dispatch_ready_ps: u64,
    /// Back-end time from which the wake-up logic can see the instruction
    /// (dual-clock synchronization).
    pub visible_at_ps: u64,
    /// Back-end cycle at which the instruction completes (valid once issued).
    pub complete_at: u64,
    /// Whether the branch predictor got this control instruction wrong.
    pub mispredicted: bool,
    /// Number of source operands whose producer has not issued yet.
    pub pending_srcs: u8,
    /// Back-end cycle at which all known sources are available (the max of the
    /// producers' wakeup cycles seen so far; only meaningful once
    /// `pending_srcs == 0`).
    pub ready_cycle: u64,
    /// Whether the entry currently occupies an Issue Window slot.
    pub in_iw: bool,
}

impl InflightEntry {
    /// An entry as created at fetch, before rename.
    pub fn new_frontend(d: DynInst, dispatch_ready_ps: u64, mispredicted: bool) -> Self {
        InflightEntry {
            d,
            rename: RenameOutcome::default(),
            state: EntryState::FrontEnd,
            dispatch_ready_ps,
            visible_at_ps: 0,
            complete_at: 0,
            mispredicted,
            pending_srcs: 0,
            ready_cycle: 0,
            in_iw: false,
        }
    }

    /// An entry injected directly into the execution core by trace replay
    /// (bypasses the Issue Window and the wakeup scheduler).
    pub fn new_replay(d: DynInst, rename: RenameOutcome) -> Self {
        InflightEntry {
            d,
            rename,
            state: EntryState::Waiting,
            dispatch_ready_ps: 0,
            visible_at_ps: 0,
            complete_at: 0,
            mispredicted: false,
            pending_srcs: 0,
            ready_cycle: 0,
            in_iw: false,
        }
    }
}

/// A ring of in-flight entries addressed by sequence number.
///
/// Sequence numbers of live entries always fall inside a window bounded by the
/// machine's in-flight capacity (ROB + front-end queue), so a power-of-two ring
/// indexed by `seq & mask` gives collision-free O(1) access. The table grows
/// automatically if a window ever exceeds the initial capacity hint.
///
/// # Example
///
/// ```
/// use flywheel_uarch::{InflightEntry, InflightTable};
/// use flywheel_workloads::{Benchmark, RecordedTrace};
///
/// // Instructions enter in fetch order and are addressed by sequence number.
/// let program = Benchmark::Micro.synthesize(7);
/// let trace = RecordedTrace::record(&program, 7, 32);
/// let mut table = InflightTable::with_capacity(8);
/// for d in trace.cursor().take(4) {
///     table.insert(InflightEntry::new_frontend(d, 0, false));
/// }
/// assert_eq!(table.len(), 4);
/// assert!(table.contains(0) && table.contains(3));
/// // Retirement pops the window head; the freed slot is reusable at once.
/// let retired = table.remove(0).unwrap();
/// assert_eq!(retired.d.seq, 0);
/// assert_eq!(table.len(), 3);
/// assert!(table.get(0).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct InflightTable {
    slots: Vec<Option<InflightEntry>>,
    mask: u64,
    /// Lower bound on every live sequence number.
    head_seq: u64,
    /// One past the largest sequence number ever inserted into the current
    /// window.
    tail_seq: u64,
    live: usize,
}

impl InflightTable {
    /// Creates a table able to hold at least `capacity` simultaneous entries
    /// without reallocating.
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(16).next_power_of_two();
        InflightTable {
            slots: vec![None; cap],
            mask: cap as u64 - 1,
            head_seq: 0,
            tail_seq: 0,
            live: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no instruction is in flight.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Whether `seq` is in flight.
    pub fn contains(&self, seq: u64) -> bool {
        seq >= self.head_seq
            && seq < self.tail_seq
            && self.slots[(seq & self.mask) as usize]
                .as_ref()
                .is_some_and(|e| e.d.seq == seq)
    }

    /// The entry for `seq`, if it is in flight.
    pub fn get(&self, seq: u64) -> Option<&InflightEntry> {
        if seq < self.head_seq || seq >= self.tail_seq {
            return None;
        }
        self.slots[(seq & self.mask) as usize]
            .as_ref()
            .filter(|e| e.d.seq == seq)
    }

    /// Mutable access to the entry for `seq`, if it is in flight.
    pub fn get_mut(&mut self, seq: u64) -> Option<&mut InflightEntry> {
        if seq < self.head_seq || seq >= self.tail_seq {
            return None;
        }
        self.slots[(seq & self.mask) as usize]
            .as_mut()
            .filter(|e| e.d.seq == seq)
    }

    /// Inserts `entry` (keyed by `entry.d.seq`).
    ///
    /// # Panics
    ///
    /// Panics if the sequence number is older than a live entry's window start
    /// or if its slot is already occupied (which would mean the in-flight window
    /// exceeded the table size — the table grows to prevent this).
    pub fn insert(&mut self, entry: InflightEntry) {
        let seq = entry.d.seq;
        if self.live == 0 {
            // Empty table: restart the window at the new sequence number. This
            // matters after trace-replay hand-backs, where sequence numbers can
            // step backwards relative to a drained window.
            self.head_seq = seq;
            self.tail_seq = seq;
        }
        assert!(
            seq >= self.head_seq,
            "insert of seq {seq} below live window start {}",
            self.head_seq
        );
        while seq - self.head_seq >= self.slots.len() as u64 {
            self.grow();
        }
        let slot = &mut self.slots[(seq & self.mask) as usize];
        assert!(slot.is_none(), "in-flight window overflow at seq {seq}");
        *slot = Some(entry);
        self.live += 1;
        self.tail_seq = self.tail_seq.max(seq + 1);
    }

    /// Removes and returns the entry for `seq`.
    pub fn remove(&mut self, seq: u64) -> Option<InflightEntry> {
        if seq < self.head_seq || seq >= self.tail_seq {
            return None;
        }
        let slot = &mut self.slots[(seq & self.mask) as usize];
        if slot.as_ref().is_some_and(|e| e.d.seq == seq) {
            let e = slot.take();
            self.live -= 1;
            if self.live == 0 {
                self.head_seq = self.tail_seq;
            } else if seq == self.head_seq {
                // Advance the window start past the freed prefix so the ring
                // never appears full just because retired slots linger.
                while self.head_seq < self.tail_seq
                    && self.slots[(self.head_seq & self.mask) as usize].is_none()
                {
                    self.head_seq += 1;
                }
            }
            e
        } else {
            None
        }
    }

    fn grow(&mut self) {
        let new_cap = self.slots.len() * 2;
        let mut slots = vec![None; new_cap];
        let mask = new_cap as u64 - 1;
        for e in self.slots.drain(..).flatten() {
            let idx = (e.d.seq & mask) as usize;
            debug_assert!(slots[idx].is_none());
            slots[idx] = Some(e);
        }
        self.slots = slots;
        self.mask = mask;
    }
}

impl std::ops::Index<u64> for InflightTable {
    type Output = InflightEntry;

    fn index(&self, seq: u64) -> &InflightEntry {
        self.get(seq)
            .unwrap_or_else(|| panic!("seq {seq} not in flight"))
    }
}

impl std::ops::IndexMut<u64> for InflightTable {
    fn index_mut(&mut self, seq: u64) -> &mut InflightEntry {
        self.get_mut(seq)
            .unwrap_or_else(|| panic!("seq {seq} not in flight"))
    }
}

/// Wakeup network + ready list: the issue stage scans only entries whose source
/// operands have all been produced (or scheduled), in program order.
///
/// Entries whose operands are scheduled but not yet available — a woken
/// consumer's `ready_cycle` is its producer's issue cycle *plus the execution
/// latency*, which for a memory-miss producer lies hundreds of cycles in the
/// future — are parked in a time-indexed hold queue instead of the ready list,
/// so the per-cycle issue scan never revisits instructions that provably cannot
/// issue yet. The driver calls [`Self::release_due`] at the top of each issue
/// scan to move entries whose cycle has come into the ready list.
#[derive(Debug, Clone)]
pub struct IssueScheduler {
    /// Per-physical-register list of waiting consumer sequence numbers.
    /// Squashed consumers are left in place and skipped lazily on wake (their
    /// sequence numbers are never reused, so a stale entry can only miss).
    waiters: Vec<Vec<u64>>,
    /// Sequence numbers with `pending_srcs == 0` whose `ready_cycle` has been
    /// reached, sorted ascending (= program order, the order the original
    /// kernel scanned the Issue Window in).
    ready: Vec<u64>,
    /// Entries with `pending_srcs == 0` waiting for their operands to arrive,
    /// as `(ready_cycle + wakeup_extra, seq)`. Squashed entries are skipped
    /// lazily on release.
    held: BinaryHeap<Reverse<(u64, u64)>>,
    /// Extra wake-up latency in cycles (1 with pipelined Wake-up/Select, else
    /// 0), folded into the hold deadline.
    wakeup_extra: u64,
    /// Wakeups deferred while the ready list is being scanned
    /// ([`Self::defer_wake`] / [`Self::drain_wakes`]).
    deferred: Vec<(PhysReg, u64)>,
}

impl IssueScheduler {
    /// Creates a scheduler for a machine with `phys_regs` physical registers
    /// and `wakeup_extra` extra cycles of wake-up latency (pipelined
    /// Wake-up/Select).
    pub fn new(phys_regs: usize, wakeup_extra: u64) -> Self {
        IssueScheduler {
            waiters: vec![Vec::new(); phys_regs],
            ready: Vec::new(),
            held: BinaryHeap::new(),
            wakeup_extra,
            deferred: Vec::new(),
        }
    }

    /// Registers a freshly dispatched entry: counts outstanding producers,
    /// records the ready cycle contributed by already-issued ones, and either
    /// parks the entry on the wakeup lists or queues it in the hold queue (from
    /// where [`Self::release_due`] moves it to the ready list once its operands
    /// arrive).
    pub fn on_dispatch(&mut self, table: &mut InflightTable, seq: u64, prf: &PhysRegFile) {
        let entry = &mut table[seq];
        let mut pending = 0u8;
        let mut ready_cycle = 0u64;
        for &src in &entry.rename.srcs {
            let at = prf.ready_at(src);
            if at == u64::MAX {
                pending += 1;
                self.waiters[src as usize].push(seq);
            } else {
                ready_cycle = ready_cycle.max(at);
            }
        }
        entry.pending_srcs = pending;
        entry.ready_cycle = ready_cycle;
        if pending == 0 {
            self.held.push(Reverse((
                ready_cycle.saturating_add(self.wakeup_extra),
                seq,
            )));
        }
    }

    /// Moves every held entry whose operand-arrival cycle has been reached into
    /// the ready list. Must run before each issue scan. Stale hold entries
    /// (squashed or re-dispatched instructions) are validated against the live
    /// table and dropped.
    pub fn release_due(&mut self, table: &InflightTable, cycle: u64) {
        while let Some(&Reverse((due, seq))) = self.held.peek() {
            if due > cycle {
                break;
            }
            self.held.pop();
            let Some(entry) = table.get(seq) else {
                continue;
            };
            // A re-dispatched instruction (trace-replay hand-back) gets fresh
            // hold entries; only the one matching its current schedule counts.
            if entry.state != EntryState::Waiting
                || !entry.in_iw
                || entry.pending_srcs != 0
                || entry.ready_cycle.saturating_add(self.wakeup_extra) != due
            {
                continue;
            }
            self.push_ready(seq);
        }
    }

    /// The earliest hold-queue deadline, if any (entries may be stale; the
    /// value is a conservative lower bound for event scheduling).
    pub fn next_due(&self) -> Option<u64> {
        self.held.peek().map(|&Reverse((due, _))| due)
    }

    /// Records a wakeup of `reg`'s consumers to be applied by
    /// [`Self::drain_wakes`] once the current issue scan ends. Woken consumers
    /// could not issue in the same cycle anyway (the value arrives at
    /// `ready_cycle`, which is in the future), and deferring keeps the ready
    /// list stable while the pipeline iterates it.
    pub fn defer_wake(&mut self, reg: PhysReg, ready_cycle: u64) {
        self.deferred.push((reg, ready_cycle));
    }

    /// Applies every wakeup deferred during the issue scan. Must be called at
    /// the end of any scan that issues instructions (both kernels do so at the
    /// end of their issue stages).
    pub fn drain_wakes(&mut self, table: &mut InflightTable) {
        let mut i = 0;
        while i < self.deferred.len() {
            let (reg, ready_cycle) = self.deferred[i];
            self.wake(table, reg, ready_cycle);
            i += 1;
        }
        self.deferred.clear();
    }

    /// Wakes the consumers of `reg`: called when its producer issues and the
    /// scoreboard learns the cycle the value arrives. Fully woken consumers go
    /// to the hold queue keyed by the cycle their last operand arrives.
    fn wake(&mut self, table: &mut InflightTable, reg: PhysReg, ready_cycle: u64) {
        // The list is drained even when some consumers are stale (squashed):
        // a producer issues exactly once per allocation of `reg`, so everything
        // parked here is either woken now or dead.
        let mut waiters = std::mem::take(&mut self.waiters[reg as usize]);
        for seq in waiters.drain(..) {
            let Some(entry) = table.get_mut(seq) else {
                continue;
            };
            debug_assert!(entry.pending_srcs > 0);
            entry.pending_srcs -= 1;
            entry.ready_cycle = entry.ready_cycle.max(ready_cycle);
            if entry.pending_srcs == 0 {
                self.held.push(Reverse((
                    entry.ready_cycle.saturating_add(self.wakeup_extra),
                    seq,
                )));
            }
        }
        // Hand the (empty) buffer back so its capacity is reused.
        self.waiters[reg as usize] = waiters;
    }

    fn push_ready(&mut self, seq: u64) {
        // Duplicate hold entries can survive a squash + re-dispatch race with a
        // coinciding deadline; inserting once keeps the list a set.
        if let Err(pos) = self.ready.binary_search(&seq) {
            self.ready.insert(pos, seq);
        }
    }

    /// Number of ready (woken) entries.
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// The `i`-th ready sequence number in program order.
    pub fn ready_seq(&self, i: usize) -> u64 {
        self.ready[i]
    }

    /// Removes issued entries from the ready list. `issued` must be sorted
    /// ascending (it is collected in scan order).
    pub fn remove_issued(&mut self, issued: &[u64]) {
        if issued.is_empty() {
            return;
        }
        let mut k = 0;
        self.ready.retain(|&seq| {
            while k < issued.len() && issued[k] < seq {
                k += 1;
            }
            !(k < issued.len() && issued[k] == seq)
        });
    }

    /// Drops every ready entry younger than `branch_seq` (mispredict recovery).
    /// Stale wakeup registrations are skipped lazily.
    pub fn squash_after(&mut self, branch_seq: u64) {
        let cut = self.ready.partition_point(|&seq| seq <= branch_seq);
        self.ready.truncate(cut);
    }
}

/// Time-indexed queue of executing instructions, replacing the per-cycle scan
/// of the whole executing set with a heap pop of the entries actually due.
///
/// Long-latency instructions (memory misses run for hundreds of back-end
/// cycles) sit in the queue untouched until their completion cycle; the
/// per-cycle cost is a single peek. Squashed instructions leave stale entries
/// that the driver must validate against the live table on pop (entry present,
/// still `Issued`, and `complete_at` matching the popped deadline).
#[derive(Debug, Clone, Default)]
pub struct CompletionQueue {
    heap: BinaryHeap<Reverse<(u64, u64)>>,
}

impl CompletionQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        CompletionQueue::default()
    }

    /// Schedules `seq` to complete at back-end cycle `at`.
    pub fn push(&mut self, at: u64, seq: u64) {
        self.heap.push(Reverse((at, seq)));
    }

    /// Pops one entry due at or before `cycle`, as `(complete_at, seq)`.
    pub fn pop_due(&mut self, cycle: u64) -> Option<(u64, u64)> {
        match self.heap.peek() {
            Some(&Reverse((at, _))) if at <= cycle => {
                let Reverse(pair) = self.heap.pop().expect("peeked entry exists");
                Some(pair)
            }
            _ => None,
        }
    }

    /// The earliest scheduled completion cycle, if any (entries may be stale;
    /// the value is a conservative lower bound for event scheduling).
    pub fn next_due(&self) -> Option<u64> {
        self.heap.peek().map(|&Reverse((at, _))| at)
    }

    /// Whether no completion is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Index over the stores resident in the LSQ, replacing per-load walks of the
/// whole queue.
#[derive(Debug, Clone, Default)]
pub struct StoreIndex {
    /// Dispatched stores whose address is not resolved yet (state `Waiting`),
    /// sorted ascending.
    waiting: Vec<u64>,
    /// Issued/completed stores still in the LSQ as `(seq, cache line)`, sorted
    /// ascending by sequence number.
    resolved: Vec<(u64, u64)>,
}

impl StoreIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        StoreIndex::default()
    }

    /// Records a store entering the LSQ at dispatch (address still unresolved).
    pub fn on_dispatch_store(&mut self, seq: u64) {
        debug_assert!(self.waiting.last().is_none_or(|&s| s < seq));
        self.waiting.push(seq);
    }

    /// Moves a store from unresolved to resolved when it issues. Stores that
    /// never dispatched through the Issue Window (trace replay) enter the
    /// resolved set directly.
    pub fn on_store_issue(&mut self, seq: u64, line: u64) {
        if let Ok(pos) = self.waiting.binary_search(&seq) {
            self.waiting.remove(pos);
        }
        let pos = self.resolved.partition_point(|&(s, _)| s < seq);
        self.resolved.insert(pos, (seq, line));
    }

    /// Removes a store from the index when it retires.
    pub fn on_store_retire(&mut self, seq: u64) {
        if let Ok(pos) = self.resolved.binary_search_by_key(&seq, |&(s, _)| s) {
            self.resolved.remove(pos);
        }
    }

    /// Drops every store younger than `branch_seq` (mispredict recovery).
    pub fn squash_after(&mut self, branch_seq: u64) {
        let cut = self.waiting.partition_point(|&s| s <= branch_seq);
        self.waiting.truncate(cut);
        let cut = self.resolved.partition_point(|&(s, _)| s <= branch_seq);
        self.resolved.truncate(cut);
    }

    /// The oldest store whose address is still unresolved, if any.
    pub fn earliest_waiting(&self) -> Option<u64> {
        self.waiting.first().copied()
    }

    /// Whether a load at `load_seq` must wait for an older unresolved store.
    pub fn blocks_load(&self, load_seq: u64) -> bool {
        self.earliest_waiting().is_some_and(|s| s < load_seq)
    }

    /// Whether an older resolved store to the same cache line can forward its
    /// data to a load at `load_seq`.
    pub fn forwards_to(&self, load_seq: u64, line: u64) -> bool {
        self.resolved
            .iter()
            .take_while(|&&(s, _)| s < load_seq)
            .any(|&(_, l)| l == line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flywheel_isa::{ArchReg, DynInst, Pc, StaticInst};

    fn entry(seq: u64) -> InflightEntry {
        let d = DynInst {
            seq,
            pc: Pc::new(0x1000 + seq * 4),
            stat: StaticInst::alu(ArchReg::int(1), ArchReg::int(2), None),
            taken: false,
            next_pc: Pc::new(0x1000 + seq * 4 + 4),
            mem: None,
        };
        InflightEntry::new_frontend(d, 0, false)
    }

    #[test]
    fn insert_lookup_remove_roundtrip() {
        let mut t = InflightTable::with_capacity(8);
        assert!(t.is_empty());
        for seq in 10..20 {
            t.insert(entry(seq));
        }
        assert_eq!(t.len(), 10);
        for seq in 10..20 {
            assert!(t.contains(seq));
            assert_eq!(t[seq].d.seq, seq);
        }
        assert!(!t.contains(9));
        assert!(!t.contains(20));
        assert!(t.get(9).is_none());
        let removed = t.remove(15).expect("present");
        assert_eq!(removed.d.seq, 15);
        assert!(!t.contains(15));
        assert!(t.remove(15).is_none());
        assert_eq!(t.len(), 9);
    }

    #[test]
    fn retire_from_head_advances_the_window() {
        let mut t = InflightTable::with_capacity(16);
        for seq in 0..12 {
            t.insert(entry(seq));
        }
        // Retire in program order, refill from the tail: the window slides and
        // the ring keeps wrapping without collisions.
        for round in 0..100u64 {
            t.remove(round).expect("head entry present");
            t.insert(entry(12 + round));
            assert_eq!(t.len(), 12);
        }
        for seq in 100..112 {
            assert!(t.contains(seq));
        }
    }

    #[test]
    fn squash_from_tail_then_reuse_window() {
        let mut t = InflightTable::with_capacity(16);
        for seq in 0..10 {
            t.insert(entry(seq));
        }
        // Squash the five youngest, then insert fresh (younger-than-squashed
        // never recurs; new seqs continue upward).
        for seq in (5..10).rev() {
            t.remove(seq).expect("squashed entry present");
        }
        assert_eq!(t.len(), 5);
        for seq in 10..18 {
            t.insert(entry(seq));
        }
        assert_eq!(t.len(), 13);
        assert!(t.contains(4) && !t.contains(7) && t.contains(17));
    }

    #[test]
    fn ring_wraparound_grows_on_demand() {
        let mut t = InflightTable::with_capacity(4);
        // Window wider than the initial capacity forces growth.
        for seq in 0..100 {
            t.insert(entry(seq));
        }
        assert_eq!(t.len(), 100);
        for seq in 0..100 {
            assert_eq!(t[seq].d.seq, seq);
        }
    }

    #[test]
    fn empty_table_resets_the_window_backwards() {
        let mut t = InflightTable::with_capacity(8);
        for seq in 50..54 {
            t.insert(entry(seq));
        }
        for seq in 50..54 {
            t.remove(seq);
        }
        assert!(t.is_empty());
        // Trace-replay hand-backs can re-inject older sequence numbers once the
        // machine has drained.
        t.insert(entry(40));
        assert!(t.contains(40));
    }

    #[test]
    fn scheduler_wakes_consumers_in_program_order() {
        let mut t = InflightTable::with_capacity(16);
        let mut prf = PhysRegFile::new(8);
        let mut sched = IssueScheduler::new(8, 0);
        prf.mark_pending(3);
        for seq in [5u64, 6, 7] {
            let mut e = entry(seq);
            e.rename.srcs = [3].into_iter().collect();
            e.state = EntryState::Waiting;
            e.in_iw = true;
            t.insert(e);
            sched.on_dispatch(&mut t, seq, &prf);
        }
        assert_eq!(sched.ready_len(), 0, "all parked on the pending producer");
        prf.mark_ready(3, 17);
        sched.defer_wake(3, 17);
        sched.drain_wakes(&mut t);
        // The woken consumers wait in the hold queue until their operand
        // arrives at cycle 17; releasing earlier surfaces nothing.
        assert_eq!(sched.next_due(), Some(17));
        sched.release_due(&t, 16);
        assert_eq!(sched.ready_len(), 0, "operands arrive at cycle 17");
        sched.release_due(&t, 17);
        assert_eq!(sched.ready_len(), 3);
        assert_eq!(
            (0..3).map(|i| sched.ready_seq(i)).collect::<Vec<_>>(),
            vec![5, 6, 7]
        );
        assert_eq!(t[5].ready_cycle, 17);
        sched.remove_issued(&[5, 7]);
        assert_eq!(sched.ready_len(), 1);
        assert_eq!(sched.ready_seq(0), 6);
    }

    #[test]
    fn pipelined_wakeup_delays_the_release_by_one_cycle() {
        let mut t = InflightTable::with_capacity(16);
        let mut prf = PhysRegFile::new(8);
        let mut sched = IssueScheduler::new(8, 1);
        prf.mark_pending(2);
        let mut e = entry(4);
        e.rename.srcs = [2].into_iter().collect();
        e.state = EntryState::Waiting;
        e.in_iw = true;
        t.insert(e);
        sched.on_dispatch(&mut t, 4, &prf);
        prf.mark_ready(2, 10);
        sched.defer_wake(2, 10);
        sched.drain_wakes(&mut t);
        sched.release_due(&t, 10);
        assert_eq!(sched.ready_len(), 0, "pipelined wakeup adds one cycle");
        sched.release_due(&t, 11);
        assert_eq!(sched.ready_len(), 1);
    }

    #[test]
    fn scheduler_skips_squashed_waiters() {
        let mut t = InflightTable::with_capacity(16);
        let prf_pending = {
            let mut p = PhysRegFile::new(4);
            p.mark_pending(1);
            p
        };
        let mut sched = IssueScheduler::new(4, 0);
        let mut e = entry(8);
        e.rename.srcs = [1].into_iter().collect();
        t.insert(e);
        sched.on_dispatch(&mut t, 8, &prf_pending);
        // Ready entries younger than the branch disappear; the parked waiter is
        // squashed from the table and must be skipped on wake and on release.
        sched.squash_after(7);
        t.remove(8);
        sched.defer_wake(1, 9);
        sched.drain_wakes(&mut t);
        sched.release_due(&t, 100);
        assert_eq!(sched.ready_len(), 0);
    }

    #[test]
    fn completion_queue_pops_in_deadline_order() {
        let mut q = CompletionQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop_due(1000), None);
        q.push(30, 7);
        q.push(10, 9);
        q.push(10, 3);
        assert_eq!(q.next_due(), Some(10));
        assert_eq!(q.pop_due(9), None, "nothing due before cycle 10");
        assert_eq!(q.pop_due(10), Some((10, 3)));
        assert_eq!(q.pop_due(10), Some((10, 9)));
        assert_eq!(q.pop_due(10), None);
        assert_eq!(q.pop_due(u64::MAX), Some((30, 7)));
        assert!(q.is_empty());
    }

    #[test]
    fn store_index_tracks_blocking_and_forwarding() {
        let mut s = StoreIndex::new();
        assert!(!s.blocks_load(100));
        s.on_dispatch_store(10);
        s.on_dispatch_store(20);
        assert!(s.blocks_load(15), "unresolved store 10 blocks load 15");
        assert!(!s.blocks_load(5), "older load unaffected");
        s.on_store_issue(10, 0x40);
        assert!(!s.blocks_load(15), "store 10 resolved");
        assert!(s.blocks_load(25), "store 20 still unresolved");
        assert!(s.forwards_to(15, 0x40));
        assert!(!s.forwards_to(15, 0x80));
        assert!(
            !s.forwards_to(10, 0x40),
            "stores do not forward to older loads"
        );
        s.on_store_retire(10);
        assert!(!s.forwards_to(15, 0x40));
        s.squash_after(12);
        assert!(!s.blocks_load(25), "squash removed store 20");
    }
}
